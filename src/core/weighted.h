// Extensions sketched in the paper's §8 (future work), implemented here:
//
//  * Weighted DisC — every object carries a relevance weight; among valid
//    r-DisC diverse subsets we greedily prefer heavy objects, aiming for a
//    maximum-weight independent dominating set.
//  * Multi-radius DisC — relevance shrinks an object's radius, so relevant
//    regions are represented more densely. Each object p gets a radius
//    r(p) in [r_min, r_max]; a selected object covers its r(p)-neighborhood,
//    and two selected objects must be farther apart than min(r(p1), r(p2)).
//
// Both operate on the dataset/metric directly (no M-tree): they are
// reference-quality implementations of the paper's proposals, benchmarked
// in bench/bench_ablation_extensions.

#ifndef DISC_CORE_WEIGHTED_H_
#define DISC_CORE_WEIGHTED_H_

#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"
#include "util/status.h"

namespace disc {

/// How the weighted greedy ranks candidates.
enum class WeightedObjective {
  /// Pick the heaviest still-white object (pure relevance).
  kMaxWeight,
  /// Pick the white object maximizing weight * (1 + white neighbors) —
  /// balances relevance against coverage progress.
  kWeightTimesCoverage,
};

/// Greedy weighted DisC: returns a valid r-DisC diverse subset biased toward
/// heavy objects. `weights` must be positive and one per object.
Result<std::vector<ObjectId>> GreedyWeightedDisc(
    const Dataset& dataset, const DistanceMetric& metric, double radius,
    const std::vector<double>& weights,
    WeightedObjective objective = WeightedObjective::kWeightTimesCoverage);

/// Sum of weights of `set`.
double TotalWeight(const std::vector<ObjectId>& set,
                   const std::vector<double>& weights);

/// Per-object radii for multi-radius DisC: relevance 1 maps to r_min,
/// relevance 0 to r_max (more relevant => finer representation).
Result<std::vector<double>> RelevanceRadii(const std::vector<double>& relevance,
                                           double r_min, double r_max);

/// Greedy multi-radius DisC. A selected object covers its own-radius
/// neighborhood; a candidate is eligible while no selected object lies
/// within min(r(candidate), r(selected)) of it. Candidates are processed
/// by decreasing relevance (ties toward smaller id). Guarantees: every
/// object is within r(s) of some selected s; selected objects are pairwise
/// dissimilar under the min-radius rule.
Result<std::vector<ObjectId>> MultiRadiusDisc(
    const Dataset& dataset, const DistanceMetric& metric,
    const std::vector<double>& radii, const std::vector<double>& relevance);

}  // namespace disc

#endif  // DISC_CORE_WEIGHTED_H_
