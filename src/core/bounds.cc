#include "core/bounds.h"

#include <cmath>
#include <cstddef>
#include <string>

namespace disc {

Result<int> MaxIndependentNeighborsBound(MetricKind kind, size_t dim) {
  if (kind == MetricKind::kEuclidean && dim == 2) return 5;   // Lemma 2
  if (kind == MetricKind::kManhattan && dim == 2) return 7;   // Lemma 3
  if (kind == MetricKind::kEuclidean && dim == 3) return 24;  // §2.3
  return Status::NotFound("no proven bound for metric " +
                          std::string(MetricKindToString(kind)) + " in " +
                          std::to_string(dim) + " dimensions");
}

double HarmonicNumber(size_t n) {
  double h = 0.0;
  for (size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

double GreedyCApproximationFactor(size_t max_degree) {
  return HarmonicNumber(max_degree + 1);
}

namespace {

Status CheckRadii(double r1, double r2) {
  if (!(r1 > 0) || r2 < r1) {
    return Status::InvalidArgument("require r2 >= r1 > 0, got r1=" +
                                   std::to_string(r1) + " r2=" +
                                   std::to_string(r2));
  }
  return Status::OK();
}

}  // namespace

Result<int> IndependentNeighborsInAnnulusEuclidean(double r1, double r2) {
  DISC_RETURN_NOT_OK(CheckRadii(r1, r2));
  const double beta = (1.0 + std::sqrt(5.0)) / 2.0;
  double rings = std::ceil(std::log(r2 / r1) / std::log(beta));
  if (rings < 1) rings = 1;  // r2 == r1 still allows one ring of neighbors
  return static_cast<int>(9 * rings);
}

Result<int> IndependentNeighborsInAnnulusManhattan(double r1, double r2) {
  DISC_RETURN_NOT_OK(CheckRadii(r1, r2));
  int gamma = static_cast<int>(std::ceil((r2 - r1) / r1));
  if (gamma < 1) gamma = 1;
  int total = 0;
  for (int i = 1; i <= gamma; ++i) total += 2 * i + 1;
  return 4 * total;
}

Result<double> ZoomInGrowthBound(MetricKind kind, double r_new, double r_old) {
  if (r_new <= 0 || r_old < r_new) {
    return Status::InvalidArgument("zoom-in requires 0 < r_new <= r_old");
  }
  Result<int> ni = kind == MetricKind::kEuclidean
                       ? IndependentNeighborsInAnnulusEuclidean(r_new, r_old)
                       : kind == MetricKind::kManhattan
                             ? IndependentNeighborsInAnnulusManhattan(r_new,
                                                                      r_old)
                             : Result<int>(Status::NotFound(
                                   "no NI bound for this metric"));
  if (!ni.ok()) return ni.status();
  return 1.0 + static_cast<double>(*ni);
}

}  // namespace disc
