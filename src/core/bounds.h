// Theoretical bounds from the paper, as checkable functions:
//
//   Theorem 1  — any r-DisC diverse subset is at most B times the minimum,
//                where B is the max number of pairwise-independent neighbors.
//   Lemma 2/3  — B = 5 (Euclidean, d=2), B = 7 (Manhattan, d=2); §2.3 also
//                states B = 24 for Euclidean d=3.
//   Theorem 2  — Greedy-C is within ln(Delta) of the minimum (via H(Δ+1)).
//   Lemma 4    — |NI_{r1,r2}| bounds for zooming (Euclidean & Manhattan, 2-D).
//   Lemma 7    — an r-DisC solution is a 3-approximation of MaxMin's optimal
//                fMin for the same k.
//
// The test suite uses these to assert that measured quantities never exceed
// what the paper proves.

#ifndef DISC_CORE_BOUNDS_H_
#define DISC_CORE_BOUNDS_H_

#include <cstddef>

#include "metric/metric.h"
#include "util/status.h"

namespace disc {

/// B of Theorem 1 for a metric/dimension combination with a known bound:
/// Euclidean d=2 -> 5, Manhattan d=2 -> 7, Euclidean d=3 -> 24.
/// Other combinations return NotFound (the paper proves none).
Result<int> MaxIndependentNeighborsBound(MetricKind kind, size_t dim);

/// H(n), the n-th harmonic number (H(0) = 0).
double HarmonicNumber(size_t n);

/// Theorem 2's approximation factor for Greedy-C: H(max_degree + 1).
double GreedyCApproximationFactor(size_t max_degree);

/// Lemma 4(i): for Euclidean d=2 and r2 >= r1 > 0,
/// |NI_{r1,r2}| <= 9 * ceil(log_beta(r2/r1)) with beta the golden ratio.
/// Returns InvalidArgument unless r2 >= r1 > 0.
Result<int> IndependentNeighborsInAnnulusEuclidean(double r1, double r2);

/// Lemma 4(ii): for Manhattan d=2, |NI_{r1,r2}| <= 4 * sum_{i=1..g}(2i+1)
/// with g = ceil((r2-r1)/r1). Returns InvalidArgument unless r2 >= r1 > 0.
Result<int> IndependentNeighborsInAnnulusManhattan(double r1, double r2);

/// Lemma 5(ii)'s multiplicative bound for zooming-in: |S^r'| <=
/// (1 + NI(r', r)) * |S^r| for the matching metric (the +1 accounts for the
/// kept object itself; NI bounds the additions per kept object).
Result<double> ZoomInGrowthBound(MetricKind kind, double r_new, double r_old);

}  // namespace disc

#endif  // DISC_CORE_BOUNDS_H_
