// Object colors, following the paper's presentation (§2.3, §3):
//  white — not yet covered by the solution,
//  grey  — covered by some selected (black) object,
//  black — selected into the diverse subset,
//  red   — transient zoom-out state: was black at the old radius and awaits
//          a keep-or-drop decision at the new one (Algorithm 3).

#ifndef DISC_CORE_COLOR_H_
#define DISC_CORE_COLOR_H_

#include <cstdint>

namespace disc {

enum class Color : uint8_t {
  kWhite = 0,
  kGrey = 1,
  kBlack = 2,
  kRed = 3,
};

/// "white" / "grey" / "black" / "red".
const char* ColorToString(Color color);

}  // namespace disc

#endif  // DISC_CORE_COLOR_H_
