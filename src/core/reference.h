// Index-free reference implementations of the DisC heuristics, operating
// directly on the neighborhood graph. They use the same deterministic
// tie-breaking as the M-tree-backed algorithms (priority descending, object
// id ascending), so on identical inputs the two paths produce *identical*
// solutions — the backbone of the integration tests.

#ifndef DISC_CORE_REFERENCE_H_
#define DISC_CORE_REFERENCE_H_

#include <vector>

#include "graph/neighborhood.h"

namespace disc {

/// Basic-DisC over the graph, considering candidates in `order` (pass the
/// tree's LeafOrder() to mirror the indexed implementation, or id order for
/// a standalone run).
std::vector<ObjectId> ReferenceBasicDisc(const NeighborhoodGraph& graph,
                                         const std::vector<ObjectId>& order);

/// Greedy-DisC over the graph with exact white-neighborhood counts.
std::vector<ObjectId> ReferenceGreedyDisc(const NeighborhoodGraph& graph);

/// Greedy-C over the graph (white and grey objects are candidates; the
/// priority is white neighbors plus a self-cover bonus for white candidates).
std::vector<ObjectId> ReferenceGreedyC(const NeighborhoodGraph& graph);

}  // namespace disc

#endif  // DISC_CORE_REFERENCE_H_
