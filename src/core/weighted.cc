#include "core/weighted.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/color.h"
#include "graph/neighborhood.h"

namespace disc {

namespace {

Status CheckWeights(const Dataset& dataset, const std::vector<double>& w,
                    const char* what) {
  if (w.size() != dataset.size()) {
    return Status::InvalidArgument(std::string(what) + " size " +
                                   std::to_string(w.size()) +
                                   " does not match dataset size " +
                                   std::to_string(dataset.size()));
  }
  for (double v : w) {
    if (!(v > 0)) {
      return Status::InvalidArgument(std::string(what) +
                                     " must be strictly positive");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<ObjectId>> GreedyWeightedDisc(
    const Dataset& dataset, const DistanceMetric& metric, double radius,
    const std::vector<double>& weights, WeightedObjective objective) {
  DISC_RETURN_NOT_OK(CheckWeights(dataset, weights, "weights"));
  if (radius < 0) return Status::InvalidArgument("radius must be >= 0");

  NeighborhoodGraph graph(dataset, metric, radius);
  const size_t n = dataset.size();
  std::vector<Color> colors(n, Color::kWhite);
  std::vector<uint32_t> white_neighbors(n);
  for (ObjectId id = 0; id < n; ++id) {
    white_neighbors[id] = static_cast<uint32_t>(graph.degree(id));
  }

  auto score = [&](ObjectId id) {
    switch (objective) {
      case WeightedObjective::kMaxWeight:
        return weights[id];
      case WeightedObjective::kWeightTimesCoverage:
        return weights[id] * (1.0 + white_neighbors[id]);
    }
    return weights[id];
  };

  std::vector<ObjectId> solution;
  size_t whites = n;
  while (whites > 0) {
    // Linear scan keeps the float-valued objective simple and deterministic
    // (ties toward the smaller id); n is at most a few tens of thousands.
    ObjectId best = kInvalidObject;
    double best_score = -1.0;
    for (ObjectId id = 0; id < n; ++id) {
      if (colors[id] != Color::kWhite) continue;
      double s = score(id);
      if (s > best_score) {
        best_score = s;
        best = id;
      }
    }
    colors[best] = Color::kBlack;
    solution.push_back(best);
    --whites;
    std::vector<ObjectId> newly_grey;
    for (ObjectId nb : graph.neighbors(best)) {
      if (colors[nb] == Color::kWhite) {
        colors[nb] = Color::kGrey;
        newly_grey.push_back(nb);
        --whites;
      }
    }
    for (ObjectId pj : newly_grey) {
      for (ObjectId nb : graph.neighbors(pj)) {
        if (white_neighbors[nb] > 0) --white_neighbors[nb];
      }
    }
  }
  return solution;
}

double TotalWeight(const std::vector<ObjectId>& set,
                   const std::vector<double>& weights) {
  double total = 0.0;
  for (ObjectId id : set) total += weights[id];
  return total;
}

Result<std::vector<double>> RelevanceRadii(const std::vector<double>& relevance,
                                           double r_min, double r_max) {
  if (!(r_min > 0) || r_max < r_min) {
    return Status::InvalidArgument("require 0 < r_min <= r_max");
  }
  std::vector<double> radii(relevance.size());
  for (size_t i = 0; i < relevance.size(); ++i) {
    if (relevance[i] < 0 || relevance[i] > 1) {
      return Status::InvalidArgument("relevance values must lie in [0, 1]");
    }
    radii[i] = r_max - relevance[i] * (r_max - r_min);
  }
  return radii;
}

Result<std::vector<ObjectId>> MultiRadiusDisc(
    const Dataset& dataset, const DistanceMetric& metric,
    const std::vector<double>& radii, const std::vector<double>& relevance) {
  DISC_RETURN_NOT_OK(CheckWeights(dataset, radii, "radii"));
  if (relevance.size() != dataset.size()) {
    return Status::InvalidArgument("relevance size does not match dataset");
  }
  const size_t n = dataset.size();

  // Most relevant first: relevant objects grab their (small) neighborhoods
  // before coarse representatives blanket the area.
  std::vector<ObjectId> order(n);
  std::iota(order.begin(), order.end(), ObjectId{0});
  std::stable_sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    if (relevance[a] != relevance[b]) return relevance[a] > relevance[b];
    return a < b;
  });

  std::vector<char> covered(n, 0);
  std::vector<ObjectId> solution;
  for (ObjectId c : order) {
    if (covered[c]) continue;
    // An uncovered object is never "blocked": being within
    // min(r(c), r(s)) <= r(s) of a selected s would mean s covers it.
    solution.push_back(c);
    covered[c] = 1;
    for (ObjectId p = 0; p < n; ++p) {
      if (!covered[p] &&
          metric.Distance(dataset.point(c), dataset.point(p)) <= radii[c]) {
        covered[p] = 1;
      }
    }
  }
  return solution;
}

}  // namespace disc
