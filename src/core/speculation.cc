#include "core/speculation.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace disc {

size_t ResolveSpeculationWidth(size_t speculate, ThreadPool* pool) {
  if (speculate != 0) return speculate;
  return pool == nullptr ? 1 : pool->threads();
}

SelectionSpeculator::SelectionSpeculator(MTree* tree, double radius,
                                         QueryFilter filter, bool pruned,
                                         QueryKind kind, size_t width,
                                         ThreadPool* pool)
    : tree_(tree),
      radius_(radius),
      filter_(filter),
      pruned_(pruned),
      kind_(kind),
      width_(width),
      pool_(pool) {}

void SelectionSpeculator::SpeculativeQuery(ObjectId center,
                                           Entry* entry) const {
  entry->center = center;
  MTree::ThreadStatsScope scope(*tree_, &entry->cost);
  switch (kind_) {
    case QueryKind::kGreedyDisc:
      tree_->RangeQueryAroundSpeculative(center, radius_, filter_, pruned_,
                                         /*assume_black=*/true, &entry->found,
                                         &entry->trace);
      break;
    case QueryKind::kGreedyC:
      tree_->RangeQueryAroundSpeculative(center, radius_, filter_, pruned_,
                                         /*assume_black=*/false, &entry->found,
                                         &entry->trace);
      break;
    case QueryKind::kFastC:
      tree_->RangeQueryBottomUpSpeculative(center, radius_, filter_, pruned_,
                                           /*stop_at_grey=*/true,
                                           &entry->found, &entry->trace);
      break;
  }
}

void SelectionSpeculator::SerialQuery(ObjectId center,
                                      std::vector<Neighbor>* out) const {
  switch (kind_) {
    case QueryKind::kGreedyDisc:
    case QueryKind::kGreedyC:
      tree_->RangeQueryAround(center, radius_, filter_, pruned_, out);
      break;
    case QueryKind::kFastC:
      tree_->RangeQueryBottomUp(center, radius_, filter_, pruned_,
                                /*stop_at_grey=*/true, out);
      break;
  }
}

void SelectionSpeculator::MaybePrefetch(const IndexedMaxHeap& heap) {
  if (width_ <= 1 || !cache_.empty() || heap.empty()) return;
  const std::vector<size_t> candidates = heap.TopK(width_);
  cache_.resize(candidates.size());
  ++stats_.batches;
  stats_.evaluated += candidates.size();
  // Which queries run — and therefore every counter — is fixed by the batch;
  // the pool only decides how many run at once. Each evaluation accounts to
  // its entry's private sink, so nothing touches the tree's stats until a
  // commit publishes exactly one entry's cost.
  if (pool_ == nullptr || pool_->threads() <= 1) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      SpeculativeQuery(static_cast<ObjectId>(candidates[i]), &cache_[i]);
    }
  } else {
    pool_->Run(candidates.size(), [&](size_t i) {
      SpeculativeQuery(static_cast<ObjectId>(candidates[i]), &cache_[i]);
    });
  }
}

void SelectionSpeculator::Take(ObjectId center, std::vector<Neighbor>* out) {
  for (size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i].center != center) continue;
    Entry entry = std::move(cache_[i]);
    cache_.erase(cache_.begin() + static_cast<ptrdiff_t>(i));
    if (tree_->SpeculationValid(entry.trace)) {
      ++stats_.committed;
      tree_->ChargeStats(entry.cost);
      *out = std::move(entry.found);
      return;
    }
    // Invalidated: the snapshot diverged from the live colors. The whole
    // batch shares that snapshot, so later entries are suspect too — flush
    // rather than re-validating one by one (keeps the waste bound at one
    // batch per serial fallback).
    ++stats_.discarded;
    break;
  }
  Flush();
  SerialQuery(center, out);
}

void SelectionSpeculator::Flush() {
  stats_.discarded += cache_.size();
  cache_.clear();
}

SpeculationStats SelectionSpeculator::Finish() {
  Flush();
  return stats_;
}

}  // namespace disc
