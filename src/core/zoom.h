// Adaptive diversification: zooming-in, zooming-out, and local zooming
// (§3 and §5.2 of the paper).
//
// All operations are incremental: they start from the colors and
// closest-black-neighbor distances an earlier run left in the M-tree and
// adapt the solution to a new radius, rather than recomputing from scratch.
// This preserves most of the previously-seen result (low Jaccard distance,
// Figures 13/16) at a fraction of the node accesses (Figures 12/15).
//
// Precondition for the operations that *read* closest-black distances
// (ZoomIn, and LocalZoom when it zooms in): the tree's colors encode a
// valid r-DisC solution for the *old* radius, and closest-black distances
// are exact for it. Runs that used the pruning rule must first call
// MTree::RecomputeClosestBlackDistances(old_radius) (§5.2); unpruned runs
// keep those distances exact as they go. ZoomOut rebuilds the distances
// from scratch and does not read them.
//
// What each operation leaves behind: the non-greedy passes (plain Zoom-In,
// ZoomOutVariant::kArbitrary) query every neighbor of every selected object
// and so leave exact distances. The greedy passes use white-only queries,
// so already-grey objects keep their distance to some *earlier* black — an
// upper bound that is sufficient for the current radius but stale for a
// further zoom-in. Chaining a zoom-in after a greedy pass therefore
// requires RecomputeClosestBlackDistances again; the engine layer
// (engine/engine.h) tracks this automatically.

#ifndef DISC_CORE_ZOOM_H_
#define DISC_CORE_ZOOM_H_

#include "core/disc_algorithms.h"
#include "mtree/mtree.h"

namespace disc {

/// First-pass selection order for zooming-out (Algorithm 3): which red
/// (previously black) object is confirmed into the new solution next.
enum class ZoomOutVariant {
  /// Leaf order (the paper's non-greedy Zoom-Out).
  kArbitrary,
  /// (a) most red neighbors at r' — trims competing old picks fastest.
  kGreedyMostRed,
  /// (b) fewest red neighbors at r' — retains as much of S^r as possible.
  kGreedyFewestRed,
  /// (c) most white neighbors at r' — minimizes the second-pass additions,
  /// at the cost of a white-count query per red object.
  kGreedyMostWhite,
};

/// "arbitrary" / "greedy-a" / "greedy-b" / "greedy-c".
const char* ZoomOutVariantToString(ZoomOutVariant variant);

/// Zooming-in (r' < old radius). Every previously selected object is kept
/// (S^r ⊆ S^r'); formerly covered objects that lost their representative
/// become candidates. `greedy` selects candidates by largest white
/// neighborhood (Greedy-Zoom-In, Algorithm 2); otherwise leaf order
/// (Zoom-In). Returns the full new solution.
///
/// `observe_all` (greedy only; the non-greedy pass always observes all)
/// replaces each selection's pruned white-only query with an unpruned
/// all-colors query, so every neighbor of every added object observes its
/// exact distance. The selection sequence is identical — the extra
/// neighbors are grey or black and never candidates — but the pass leaves
/// exact closest-black distances, letting a chained zoom-in skip
/// MTree::RecomputeClosestBlackDistances at the cost of wider selection
/// queries here. Whether that trade wins is workload-dependent; see
/// bench_parallel_select.cc, which gates the engine default.
DiscResult ZoomIn(MTree* tree, double new_radius, bool greedy,
                  bool observe_all = false);

/// Zooming-out (r' > old radius). First pass confirms or drops the old
/// selection per `variant`; second pass covers any newly exposed areas
/// (greedily for the greedy variants, in leaf order for kArbitrary).
DiscResult ZoomOut(MTree* tree, double new_radius, ZoomOutVariant variant);

/// Local zooming (§3, Figures 1(d)/2): re-diversifies only the objects in
/// N_old_radius(center) at the new radius, leaving the rest of the solution
/// untouched (the paper: "the algorithm receives as input only the objects
/// in N_r(p_i)"). `center` is typically a member of the current solution the
/// user wants to explore; new_radius < old_radius zooms in, > zooms out.
/// Inside the region, coverage and independence hold at new_radius among
/// region objects; outside, the old-radius guarantees stand. Returns the
/// merged (global) solution.
DiscResult LocalZoom(MTree* tree, ObjectId center, double old_radius,
                     double new_radius, bool greedy);

}  // namespace disc

#endif  // DISC_CORE_ZOOM_H_
