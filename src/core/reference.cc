#include "core/reference.h"

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/color.h"
#include "util/indexed_heap.h"

namespace disc {

std::vector<ObjectId> ReferenceBasicDisc(const NeighborhoodGraph& graph,
                                         const std::vector<ObjectId>& order) {
  std::vector<Color> colors(graph.num_vertices(), Color::kWhite);
  std::vector<ObjectId> solution;
  for (ObjectId id : order) {
    if (colors[id] != Color::kWhite) continue;
    colors[id] = Color::kBlack;
    solution.push_back(id);
    for (ObjectId nb : graph.neighbors(id)) {
      if (colors[nb] == Color::kWhite) colors[nb] = Color::kGrey;
    }
  }
  return solution;
}

std::vector<ObjectId> ReferenceGreedyDisc(const NeighborhoodGraph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<Color> colors(n, Color::kWhite);
  IndexedMaxHeap heap(n);
  for (ObjectId id = 0; id < n; ++id) {
    heap.Push(id, static_cast<int64_t>(graph.degree(id)));
  }
  std::vector<ObjectId> solution;
  std::vector<ObjectId> newly_grey;
  while (!heap.empty()) {
    ObjectId pi = heap.PopTop();
    colors[pi] = Color::kBlack;
    solution.push_back(pi);
    newly_grey.clear();
    for (ObjectId nb : graph.neighbors(pi)) {
      if (colors[nb] == Color::kWhite) {
        colors[nb] = Color::kGrey;
        newly_grey.push_back(nb);
        heap.Remove(nb);
      }
    }
    for (ObjectId pj : newly_grey) {
      for (ObjectId nb : graph.neighbors(pj)) {
        if (colors[nb] == Color::kWhite && heap.contains(nb)) {
          heap.Adjust(nb, -1);
        }
      }
    }
  }
  return solution;
}

std::vector<ObjectId> ReferenceGreedyC(const NeighborhoodGraph& graph) {
  const size_t n = graph.num_vertices();
  std::vector<Color> colors(n, Color::kWhite);
  size_t whites = n;
  IndexedMaxHeap heap(n);
  for (ObjectId id = 0; id < n; ++id) {
    heap.Push(id, static_cast<int64_t>(graph.degree(id)) + 1);
  }
  std::vector<ObjectId> solution;
  std::vector<ObjectId> newly_grey;
  while (whites > 0 && !heap.empty()) {
    ObjectId pi = heap.PopTop();
    bool was_white = colors[pi] == Color::kWhite;
    colors[pi] = Color::kBlack;
    if (was_white) --whites;
    solution.push_back(pi);

    newly_grey.clear();
    for (ObjectId nb : graph.neighbors(pi)) {
      if (colors[nb] == Color::kWhite) {
        colors[nb] = Color::kGrey;
        --whites;
        newly_grey.push_back(nb);
      }
      if (was_white && heap.contains(nb)) heap.Adjust(nb, -1);
    }
    for (ObjectId pj : newly_grey) {
      if (heap.contains(pj)) heap.Adjust(pj, -1);
      for (ObjectId nb : graph.neighbors(pj)) {
        if (heap.contains(nb)) heap.Adjust(nb, -1);
      }
    }
  }
  return solution;
}

}  // namespace disc
