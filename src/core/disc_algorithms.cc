#include "core/disc_algorithms.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/internal.h"
#include "core/speculation.h"
#include "util/indexed_heap.h"
#include "util/parallel.h"
#include "util/status.h"

namespace disc {

const char* GreedyVariantToString(GreedyVariant variant) {
  switch (variant) {
    case GreedyVariant::kGrey:
      return "grey";
    case GreedyVariant::kWhite:
      return "white";
    case GreedyVariant::kLazyGrey:
      return "lazy-grey";
    case GreedyVariant::kLazyWhite:
      return "lazy-white";
  }
  return "unknown";
}

const char* AlgorithmToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBasic:
      return "basic";
    case Algorithm::kGreedy:
      return "greedy";
    case Algorithm::kGreedyWhite:
      return "greedy-white";
    case Algorithm::kLazyGrey:
      return "lazy-grey";
    case Algorithm::kLazyWhite:
      return "lazy-white";
    case Algorithm::kGreedyC:
      return "greedy-c";
    case Algorithm::kFastC:
      return "fast-c";
  }
  return "unknown";
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  for (Algorithm algorithm :
       {Algorithm::kBasic, Algorithm::kGreedy, Algorithm::kGreedyWhite,
        Algorithm::kLazyGrey, Algorithm::kLazyWhite, Algorithm::kGreedyC,
        Algorithm::kFastC}) {
    if (name == AlgorithmToString(algorithm)) return algorithm;
  }
  return Status::InvalidArgument(
      "unknown algorithm '" + name +
      "' (want basic|greedy|greedy-white|lazy-grey|lazy-white|greedy-c|"
      "fast-c)");
}

bool IsDiscFamily(Algorithm algorithm) {
  return algorithm != Algorithm::kGreedyC && algorithm != Algorithm::kFastC;
}

bool AlgorithmUsesNeighborCounts(Algorithm algorithm) {
  return algorithm != Algorithm::kBasic;
}

namespace {

DiscResult RunGreedy(MTree* tree, double radius, GreedyVariant variant,
                     const AlgorithmRunOptions& options) {
  GreedyDiscOptions greedy;
  greedy.variant = variant;
  greedy.pruned = options.pruned;
  greedy.initial_counts = options.initial_counts;
  greedy.pool = options.pool;
  greedy.speculate = options.speculate;
  return GreedyDisc(tree, radius, greedy);
}

}  // namespace

DiscResult RunAlgorithm(MTree* tree, Algorithm algorithm, double radius,
                        const AlgorithmRunOptions& options) {
  switch (algorithm) {
    case Algorithm::kBasic:
      return BasicDisc(tree, radius, options.pruned);
    case Algorithm::kGreedy:
      return RunGreedy(tree, radius, GreedyVariant::kGrey, options);
    case Algorithm::kGreedyWhite:
      return RunGreedy(tree, radius, GreedyVariant::kWhite, options);
    case Algorithm::kLazyGrey:
      return RunGreedy(tree, radius, GreedyVariant::kLazyGrey, options);
    case Algorithm::kLazyWhite:
      return RunGreedy(tree, radius, GreedyVariant::kLazyWhite, options);
    case Algorithm::kGreedyC:
      return GreedyC(tree, radius, options.initial_counts, options.pool,
                     options.speculate);
    case Algorithm::kFastC:
      return FastC(tree, radius, options.initial_counts, options.pool,
                   options.speculate);
  }
  return DiscResult{};
}

DiscResult BasicDisc(MTree* tree, double radius, bool pruned) {
  internal::RunScope scope(tree);
  tree->ResetColors();
  // Pruned runs may skip already-grey neighbors, leaving their closest-black
  // distances incomplete; unpruned runs visit every neighbor and keep them
  // exact (see MTree::RecomputeClosestBlackDistances).
  const QueryFilter filter =
      pruned ? QueryFilter::kWhiteOnly : QueryFilter::kAll;

  std::vector<ObjectId> solution;
  std::vector<Neighbor> found;
  tree->ScanLeaves(/*skip_grey_leaves=*/pruned, [&](ObjectId id) {
    if (tree->color(id) != Color::kWhite) return;
    tree->SetColor(id, Color::kBlack);
    solution.push_back(id);
    found.clear();
    tree->RangeQueryAround(id, radius, filter, pruned, &found);
    for (const Neighbor& nb : found) {
      if (tree->color(nb.id) == Color::kWhite) {
        tree->SetColor(nb.id, Color::kGrey);
      }
      tree->ObserveBlackNeighbor(nb.id, nb.dist);
    }
  });
  return scope.Finish(std::move(solution));
}

DiscResult GreedyDisc(MTree* tree, double radius,
                      const GreedyDiscOptions& options) {
  internal::RunScope scope(tree);
  tree->ResetColors();
  const size_t n = tree->size();
  const QueryFilter filter =
      options.pruned ? QueryFilter::kWhiteOnly : QueryFilter::kAll;

  // L': every (white) object keyed by its white-neighborhood size.
  std::vector<uint32_t> counts;
  if (options.initial_counts != nullptr) {
    assert(options.initial_counts->size() == n);
    counts = *options.initial_counts;
  } else {
    tree->ComputeNeighborCountsPostBuild(radius, &counts, options.pool);
  }
  IndexedMaxHeap heap(n);
  for (ObjectId id = 0; id < n; ++id) {
    heap.Push(id, counts[id]);
  }

  // Update radius for neighborhood-size maintenance: the lazy variants
  // deliberately use a smaller radius, leaving distant counts stale (§6).
  double update_radius = radius;
  switch (options.variant) {
    case GreedyVariant::kGrey:
      update_radius = radius;
      break;
    case GreedyVariant::kLazyGrey:
      update_radius = radius / 2.0;
      break;
    case GreedyVariant::kWhite:
      update_radius = 2.0 * radius;
      break;
    case GreedyVariant::kLazyWhite:
      update_radius = 1.5 * radius;
      break;
  }
  const bool grey_style = options.variant == GreedyVariant::kGrey ||
                          options.variant == GreedyVariant::kLazyGrey;

  // Speculation: evaluate the heap's next few candidates' neighborhoods
  // concurrently against the current colors, commit only evaluations whose
  // traces still validate when the candidate is actually popped. Byte-
  // identical to the serial loop at any (width, thread count).
  const size_t width = ResolveSpeculationWidth(options.speculate, options.pool);
  SelectionSpeculator speculator(tree, radius, filter, options.pruned,
                                 SelectionSpeculator::QueryKind::kGreedyDisc,
                                 width, options.pool);
  ThreadPool* pool =
      (options.pool != nullptr && options.pool->threads() > 1) ? options.pool
                                                               : nullptr;

  std::vector<ObjectId> solution;
  std::vector<Neighbor> found, update_found;
  std::vector<ObjectId> newly_grey;
  while (!heap.empty()) {
    speculator.MaybePrefetch(heap);
    // The heap holds exactly the white objects, so the top is the white
    // object with the largest (possibly stale, for lazy variants) count.
    ObjectId pi = heap.PopTop();
    assert(tree->color(pi) == Color::kWhite);
    tree->SetColor(pi, Color::kBlack);
    solution.push_back(pi);

    found.clear();
    speculator.Take(pi, &found);
    newly_grey.clear();
    for (const Neighbor& nb : found) {
      if (tree->color(nb.id) == Color::kWhite) {
        tree->SetColor(nb.id, Color::kGrey);
        newly_grey.push_back(nb.id);
        heap.Remove(nb.id);
      }
      tree->ObserveBlackNeighbor(nb.id, nb.dist);
    }

    if (grey_style) {
      // One query per newly-grey object: its white neighbors lost one white
      // neighborhood member. Colors are fixed for the rest of this step, so
      // the queries are a read-only fan-out; the heap adjustments apply on
      // the calling thread in newly-grey order, exactly as the serial loop.
      if (pool == nullptr || newly_grey.size() <= 1) {
        for (ObjectId pj : newly_grey) {
          update_found.clear();
          tree->RangeQueryAround(pj, update_radius, filter, options.pruned,
                                 &update_found);
          for (const Neighbor& nb : update_found) {
            if (tree->color(nb.id) == Color::kWhite && heap.contains(nb.id)) {
              heap.Adjust(nb.id, -1);
            }
          }
        }
      } else {
        struct UpdateResult {
          std::vector<Neighbor> found;
          AccessStats cost;
        };
        ParallelOrderedReduce<std::vector<UpdateResult>>(
            pool, 0, newly_grey.size(), /*grain=*/1,
            [&](size_t chunk_begin, size_t chunk_end) {
              std::vector<UpdateResult> results(chunk_end - chunk_begin);
              for (size_t j = chunk_begin; j < chunk_end; ++j) {
                UpdateResult& r = results[j - chunk_begin];
                MTree::ThreadStatsScope stats_scope(*tree, &r.cost);
                tree->RangeQueryAround(newly_grey[j], update_radius, filter,
                                       options.pruned, &r.found);
              }
              return results;
            },
            [&](std::vector<UpdateResult>& results) {
              for (UpdateResult& r : results) {
                tree->ChargeStats(r.cost);
                for (const Neighbor& nb : r.found) {
                  if (tree->color(nb.id) == Color::kWhite &&
                      heap.contains(nb.id)) {
                    heap.Adjust(nb.id, -1);
                  }
                }
              }
            });
      }
    } else {
      // White-style: only white objects within 2r of pi can have lost white
      // neighbors. One query retrieves them; the per-object loss is counted
      // against the newly-grey list with plain distance computations (fanned
      // out over the retrieved candidates, losses applied in result order).
      update_found.clear();
      tree->RangeQueryAround(pi, update_radius, filter, options.pruned,
                             &update_found);
      if (pool == nullptr || update_found.size() <= 1 || newly_grey.empty()) {
        for (const Neighbor& nb : update_found) {
          if (tree->color(nb.id) != Color::kWhite || !heap.contains(nb.id)) {
            continue;
          }
          int64_t lost = 0;
          for (ObjectId pj : newly_grey) {
            if (tree->Distance(nb.id, pj) <= radius) ++lost;
          }
          if (lost > 0) heap.Adjust(nb.id, -lost);
        }
      } else {
        struct LossResult {
          std::vector<std::pair<ObjectId, int64_t>> lost;
          AccessStats cost;
        };
        const size_t grain =
            RecommendedGrain(update_found.size(), pool->threads());
        ParallelOrderedReduce<LossResult>(
            pool, 0, update_found.size(), grain,
            [&](size_t chunk_begin, size_t chunk_end) {
              LossResult r;
              MTree::ThreadStatsScope stats_scope(*tree, &r.cost);
              for (size_t j = chunk_begin; j < chunk_end; ++j) {
                const Neighbor& nb = update_found[j];
                // Membership never changes during the phase (Adjust moves
                // priorities only), so reading it from the workers matches
                // the serial loop's checks.
                if (tree->color(nb.id) != Color::kWhite ||
                    !heap.contains(nb.id)) {
                  continue;
                }
                int64_t lost = 0;
                for (ObjectId pj : newly_grey) {
                  if (tree->Distance(nb.id, pj) <= radius) ++lost;
                }
                if (lost > 0) r.lost.emplace_back(nb.id, lost);
              }
              return r;
            },
            [&](LossResult& r) {
              tree->ChargeStats(r.cost);
              for (const auto& [id, lost] : r.lost) {
                heap.Adjust(id, -lost);
              }
            });
      }
    }
  }
  DiscResult result = scope.Finish(std::move(solution));
  result.speculation = speculator.Finish();
  return result;
}

}  // namespace disc
