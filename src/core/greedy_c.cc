// Greedy-C and Fast-C (§2.3, §5.1): coverage-only diversification.
//
// Both maintain the L' structure over white AND grey objects, keyed by the
// number of uncovered objects a candidate would newly cover: its white
// neighbors plus one if the candidate is itself still white. Greedy-C keeps
// every count exact (which forbids the grey-subtree pruning rule and makes
// it expensive); Fast-C accepts stale counts for grey objects in exchange
// for pruned, grey-stopping bottom-up queries.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/disc_algorithms.h"
#include "core/internal.h"
#include "core/speculation.h"
#include "util/indexed_heap.h"
#include "util/parallel.h"

namespace disc {

namespace {

// Shared implementation; `fast` toggles the Fast-C query strategy.
DiscResult CoverageGreedy(MTree* tree, double radius, bool fast,
                          const std::vector<uint32_t>* initial_counts,
                          ThreadPool* pool, size_t speculate) {
  internal::RunScope scope(tree);
  tree->ResetColors();
  const size_t n = tree->size();

  std::vector<uint32_t> counts;
  if (initial_counts != nullptr) {
    assert(initial_counts->size() == n);
    counts = *initial_counts;
  } else {
    tree->ComputeNeighborCountsPostBuild(radius, &counts, pool);
  }

  // Candidate priority = newly-covered objects = white neighbors + self bonus.
  // Initially everything is white, so the bonus is +1 everywhere; it keeps
  // the loop progressing (whenever whites remain, some candidate has
  // priority >= 1, and selecting it reduces the white population).
  IndexedMaxHeap heap(n);
  for (ObjectId id = 0; id < n; ++id) {
    heap.Push(id, static_cast<int64_t>(counts[id]) + 1);
  }

  // Selection queries re-measure a candidate's gain; Fast-C uses the
  // grey-stopping bottom-up search there, which exits almost immediately for
  // candidates whose region has gone grey. Greedy-C needs unfiltered queries
  // because grey candidates' counts must stay exact. The speculator mirrors
  // these queries for the heap's top candidates and commits cached results
  // whose traces still validate (Greedy-C's are color-independent and never
  // invalidate; Fast-C's grey-stopping climbs can).
  const size_t width = ResolveSpeculationWidth(speculate, pool);
  SelectionSpeculator speculator(
      tree, radius, fast ? QueryFilter::kWhiteOnly : QueryFilter::kAll,
      /*pruned=*/fast, fast ? SelectionSpeculator::QueryKind::kFastC
                            : SelectionSpeculator::QueryKind::kGreedyC,
      width, pool);
  ThreadPool* fanout_pool =
      (pool != nullptr && pool->threads() > 1) ? pool : nullptr;

  std::vector<ObjectId> solution;
  std::vector<Neighbor> found, update_found;
  std::vector<ObjectId> newly_grey;
  while (tree->white_count() > 0 && !heap.empty()) {
    speculator.MaybePrefetch(heap);
    ObjectId pi = heap.PopTop();
    const bool was_white = tree->color(pi) == Color::kWhite;

    found.clear();
    speculator.Take(pi, &found);
    newly_grey.clear();
    for (const Neighbor& nb : found) {
      if (tree->color(nb.id) == Color::kWhite) newly_grey.push_back(nb.id);
    }

    // Fast-C's heap priorities go stale (it skips the per-covered-object
    // update queries), so re-validate lazily: the query above re-measures
    // the candidate's true gain; if it dropped well below the next-best
    // priority, push it back and try the new top instead. Selecting within
    // 2x of the best-known priority (rather than demanding the exact
    // maximum) keeps the pop count — and hence query count — low while
    // staying a constant-factor greedy step; this is where "similar sized
    // solutions at fewer accesses" comes from. With exact counts (Greedy-C)
    // the popped maximum is never stale and both branches are no-ops.
    int64_t fresh_gain =
        static_cast<int64_t>(newly_grey.size()) + (was_white ? 1 : 0);
    if (fresh_gain == 0) continue;  // covers nothing, and gains only shrink
    if (!heap.empty() && 2 * fresh_gain < heap.TopPriority()) {
      heap.Push(pi, fresh_gain);
      continue;
    }

    tree->SetColor(pi, Color::kBlack);
    solution.push_back(pi);
    for (const Neighbor& nb : found) {
      if (tree->color(nb.id) == Color::kWhite) {
        tree->SetColor(nb.id, Color::kGrey);
      }
      tree->ObserveBlackNeighbor(nb.id, nb.dist);
    }

    // pi left the white population: every remaining candidate that counted
    // pi as a white neighbor loses 1.
    if (was_white) {
      for (const Neighbor& nb : found) {
        if (heap.contains(nb.id)) heap.Adjust(nb.id, -1);
      }
    }
    // Each newly-grey object pj loses its own +1 bonus, and every candidate
    // counting pj as a white neighbor loses 1. The latter requires a range
    // query per covered object — the dominant cost of Greedy-C. Fast-C
    // replaces it with a one-access look at pj's own leaf (most affected
    // candidates are leaf-mates, by M-tree locality) and lets the lazy
    // re-validation above absorb the remaining staleness: this is where its
    // access savings come from. Colors and heap membership are fixed for the
    // rest of this step, so the queries fan out read-only; the heap
    // adjustments apply on the calling thread in newly-grey order.
    if (fanout_pool == nullptr || newly_grey.size() <= 1) {
      for (ObjectId pj : newly_grey) {
        if (heap.contains(pj)) heap.Adjust(pj, -1);
        update_found.clear();
        if (fast) {
          tree->LeafMatesWithin(pj, radius, &update_found);
        } else {
          tree->RangeQueryAround(pj, radius, QueryFilter::kAll,
                                 /*pruned=*/false, &update_found);
        }
        for (const Neighbor& nb : update_found) {
          if (heap.contains(nb.id)) heap.Adjust(nb.id, -1);
        }
      }
    } else {
      struct UpdateResult {
        std::vector<Neighbor> found;
        AccessStats cost;
      };
      size_t update_index = 0;
      ParallelOrderedReduce<std::vector<UpdateResult>>(
          fanout_pool, 0, newly_grey.size(), /*grain=*/1,
          [&](size_t chunk_begin, size_t chunk_end) {
            std::vector<UpdateResult> results(chunk_end - chunk_begin);
            for (size_t j = chunk_begin; j < chunk_end; ++j) {
              UpdateResult& r = results[j - chunk_begin];
              MTree::ThreadStatsScope stats_scope(*tree, &r.cost);
              if (fast) {
                tree->LeafMatesWithin(newly_grey[j], radius, &r.found);
              } else {
                tree->RangeQueryAround(newly_grey[j], radius, QueryFilter::kAll,
                                       /*pruned=*/false, &r.found);
              }
            }
            return results;
          },
          [&](std::vector<UpdateResult>& results) {
            for (UpdateResult& r : results) {
              tree->ChargeStats(r.cost);
              ObjectId pj = newly_grey[update_index++];
              if (heap.contains(pj)) heap.Adjust(pj, -1);
              for (const Neighbor& nb : r.found) {
                if (heap.contains(nb.id)) heap.Adjust(nb.id, -1);
              }
            }
          });
    }
  }
  DiscResult result = scope.Finish(std::move(solution));
  result.speculation = speculator.Finish();
  return result;
}

}  // namespace

DiscResult GreedyC(MTree* tree, double radius,
                   const std::vector<uint32_t>* initial_counts,
                   ThreadPool* pool, size_t speculate) {
  return CoverageGreedy(tree, radius, /*fast=*/false, initial_counts, pool,
                        speculate);
}

DiscResult FastC(MTree* tree, double radius,
                 const std::vector<uint32_t>* initial_counts,
                 ThreadPool* pool, size_t speculate) {
  return CoverageGreedy(tree, radius, /*fast=*/true, initial_counts, pool,
                        speculate);
}

}  // namespace disc
