#include "core/zoom.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/internal.h"
#include "util/indexed_heap.h"

namespace disc {

namespace {

// Restriction of an operation to a subset of objects (local zooming).
// A null membership vector means "everything" (global zooming).
struct Region {
  const std::vector<char>* member = nullptr;

  bool contains(ObjectId id) const {
    return member == nullptr || (*member)[id] != 0;
  }
};

// Shared zoom-in machinery. Candidates are the region's grey objects whose
// closest black representative is farther than the new (smaller) radius.
// Returns only the *newly added* objects; callers merge with the kept ones.
std::vector<ObjectId> ZoomInCore(MTree* tree, double r_new, bool greedy,
                                 bool observe_all, const Region& region) {
  std::vector<ObjectId> added;
  std::vector<Neighbor> found, update_found;

  if (!greedy) {
    // Zoom-In: one pass of the leaf chain. A grey object that lost its
    // representative turns black on the spot; its range query records it as
    // the new closest black of everything it now covers, so later objects in
    // the pass see up-to-date distances.
    tree->ScanLeaves(/*skip_grey_leaves=*/false, [&](ObjectId id) {
      if (tree->color(id) != Color::kGrey || !region.contains(id)) return;
      if (tree->closest_black_dist(id) <= r_new) return;
      tree->SetColor(id, Color::kBlack);
      added.push_back(id);
      found.clear();
      tree->RangeQueryAround(id, r_new, QueryFilter::kAll, /*pruned=*/false,
                             &found);
      for (const Neighbor& nb : found) {
        tree->ObserveBlackNeighbor(nb.id, nb.dist);
      }
    });
    return added;
  }

  // Greedy-Zoom-In (Algorithm 2): whiten the uncovered objects, then run the
  // greedy selection over them, maintaining white-neighborhood counts with
  // grey-style updates. All queries can use the pruning rule because white
  // counters are live again.
  std::vector<ObjectId> whitened;
  tree->ScanLeaves(/*skip_grey_leaves=*/false, [&](ObjectId id) {
    if (tree->color(id) != Color::kGrey || !region.contains(id)) return;
    if (tree->closest_black_dist(id) <= r_new) return;
    tree->SetColor(id, Color::kWhite);
    whitened.push_back(id);
  });

  IndexedMaxHeap heap(tree->size());
  for (ObjectId w : whitened) {
    found.clear();
    tree->RangeQueryAround(w, r_new, QueryFilter::kWhiteOnly, /*pruned=*/true,
                           &found);
    heap.Push(w, static_cast<int64_t>(found.size()));
  }

  std::vector<ObjectId> newly_grey;
  while (!heap.empty()) {
    ObjectId pi = heap.PopTop();
    assert(tree->color(pi) == Color::kWhite);
    tree->SetColor(pi, Color::kBlack);
    added.push_back(pi);

    // observe_all widens the selection query from pruned/white-only to
    // unpruned/all-colors: same whites found (so the same selection
    // sequence and the same heap maintenance), but already-grey neighbors
    // of the new black also observe their exact distance instead of
    // keeping an upper bound from some earlier black (see ZoomIn).
    found.clear();
    if (observe_all) {
      tree->RangeQueryAround(pi, r_new, QueryFilter::kAll, /*pruned=*/false,
                             &found);
    } else {
      tree->RangeQueryAround(pi, r_new, QueryFilter::kWhiteOnly,
                             /*pruned=*/true, &found);
    }
    newly_grey.clear();
    for (const Neighbor& nb : found) {
      if (tree->color(nb.id) == Color::kWhite) {
        tree->SetColor(nb.id, Color::kGrey);
        newly_grey.push_back(nb.id);
        if (heap.contains(nb.id)) heap.Remove(nb.id);
      }
      tree->ObserveBlackNeighbor(nb.id, nb.dist);
    }
    for (ObjectId pj : newly_grey) {
      update_found.clear();
      tree->RangeQueryAround(pj, r_new, QueryFilter::kWhiteOnly,
                             /*pruned=*/true, &update_found);
      for (const Neighbor& nb : update_found) {
        if (heap.contains(nb.id)) heap.Adjust(nb.id, -1);
      }
    }
  }
  return added;
}

// Shared zoom-out machinery (Algorithm 3). Returns the region's new
// solution; callers merge with any out-of-region selection.
std::vector<ObjectId> ZoomOutCore(MTree* tree, double r_new,
                                  ZoomOutVariant variant,
                                  const Region& region) {
  const size_t n = tree->size();

  // Recolor: black -> red (awaiting confirmation), grey -> white. Old
  // closest-black observations in the region are stale now.
  std::vector<ObjectId> reds;
  for (ObjectId id = 0; id < n; ++id) {
    if (!region.contains(id)) continue;
    if (tree->color(id) == Color::kBlack) {
      tree->SetColor(id, Color::kRed);
      reds.push_back(id);
    } else if (tree->color(id) == Color::kGrey) {
      tree->SetColor(id, Color::kWhite);
    }
    tree->ClearClosestBlackDistance(id);
  }

  std::vector<ObjectId> solution;
  std::vector<Neighbor> found, update_found;

  // ---- Pass 1: confirm or drop the old selection -----------------------
  // `alive[i]` tracks which reds are still undecided.
  std::vector<char> alive(reds.size(), 1);
  std::vector<size_t> red_index(n, std::numeric_limits<size_t>::max());
  for (size_t i = 0; i < reds.size(); ++i) red_index[reds[i]] = i;

  // Red-red adjacency at the new radius, for the most/fewest-red variants
  // and for dropping covered reds in O(deg).
  std::vector<std::vector<size_t>> red_adj(reds.size());
  for (size_t i = 0; i < reds.size(); ++i) {
    for (size_t j = i + 1; j < reds.size(); ++j) {
      if (tree->Distance(reds[i], reds[j]) <= r_new) {
        red_adj[i].push_back(j);
        red_adj[j].push_back(i);
      }
    }
  }

  IndexedMaxHeap red_heap(reds.size());
  switch (variant) {
    case ZoomOutVariant::kArbitrary:
      break;  // leaf order, no heap
    case ZoomOutVariant::kGreedyMostRed:
      for (size_t i = 0; i < reds.size(); ++i) {
        red_heap.Push(i, static_cast<int64_t>(red_adj[i].size()));
      }
      break;
    case ZoomOutVariant::kGreedyFewestRed:
      for (size_t i = 0; i < reds.size(); ++i) {
        red_heap.Push(i, -static_cast<int64_t>(red_adj[i].size()));
      }
      break;
    case ZoomOutVariant::kGreedyMostWhite:
      // A white-count query per red object: this is what makes variant (c)
      // expensive (Figure 15).
      for (size_t i = 0; i < reds.size(); ++i) {
        found.clear();
        tree->RangeQueryAround(reds[i], r_new, QueryFilter::kWhiteOnly,
                               /*pruned=*/true, &found);
        red_heap.Push(i, static_cast<int64_t>(found.size()));
      }
      break;
  }

  // Confirms red #i into the new solution and greys everything it covers.
  auto select_red = [&](size_t i) {
    ObjectId pi = reds[i];
    alive[i] = 0;
    tree->SetColor(pi, Color::kBlack);
    solution.push_back(pi);
    found.clear();
    tree->RangeQueryAround(pi, r_new, QueryFilter::kAll, /*pruned=*/false,
                           &found);
    for (const Neighbor& nb : found) {
      if (!region.contains(nb.id)) continue;
      Color c = tree->color(nb.id);
      if (c == Color::kRed) {
        // A competing old pick is too close at r': drop it.
        size_t j = red_index[nb.id];
        alive[j] = 0;
        tree->SetColor(nb.id, Color::kGrey);
        if (red_heap.contains(j)) red_heap.Remove(j);
        if (variant == ZoomOutVariant::kGreedyMostRed ||
            variant == ZoomOutVariant::kGreedyFewestRed) {
          for (size_t k : red_adj[j]) {
            if (!red_heap.contains(k)) continue;
            red_heap.Adjust(
                k, variant == ZoomOutVariant::kGreedyFewestRed ? +1 : -1);
          }
        }
      } else if (c == Color::kWhite) {
        tree->SetColor(nb.id, Color::kGrey);
        if (variant == ZoomOutVariant::kGreedyMostWhite) {
          // Remaining reds near this white lose a potential covert.
          for (size_t k = 0; k < reds.size(); ++k) {
            if (!alive[k] || !red_heap.contains(k)) continue;
            if (tree->Distance(nb.id, reds[k]) <= r_new) {
              red_heap.Adjust(k, -1);
            }
          }
        }
      }
      tree->ObserveBlackNeighbor(nb.id, nb.dist);
    }
  };

  if (variant == ZoomOutVariant::kArbitrary) {
    // Leaf order over the red objects.
    tree->ScanLeaves(/*skip_grey_leaves=*/false, [&](ObjectId id) {
      if (tree->color(id) != Color::kRed) return;
      select_red(red_index[id]);
    });
  } else {
    while (!red_heap.empty()) {
      size_t i = red_heap.PopTop();
      // Heap members are alive by construction (dropped reds are removed).
      select_red(i);
    }
    // The "fewest red" adjustment above can only have touched alive reds;
    // removals keep the heap consistent, so every red is now decided.
  }

  // ---- Pass 2: cover the newly exposed areas ---------------------------
  if (variant == ZoomOutVariant::kArbitrary) {
    tree->ScanLeaves(/*skip_grey_leaves=*/false, [&](ObjectId id) {
      if (tree->color(id) != Color::kWhite || !region.contains(id)) return;
      tree->SetColor(id, Color::kBlack);
      solution.push_back(id);
      found.clear();
      tree->RangeQueryAround(id, r_new, QueryFilter::kAll, /*pruned=*/false,
                             &found);
      for (const Neighbor& nb : found) {
        if (region.contains(nb.id) && tree->color(nb.id) == Color::kWhite) {
          tree->SetColor(nb.id, Color::kGrey);
        }
        tree->ObserveBlackNeighbor(nb.id, nb.dist);
      }
    });
    return solution;
  }

  // Greedy second pass (Algorithm 3 lines 12-19): standard greedy selection
  // over the remaining whites.
  std::vector<ObjectId> whites;
  for (ObjectId id = 0; id < n; ++id) {
    if (tree->color(id) == Color::kWhite && region.contains(id)) {
      whites.push_back(id);
    }
  }
  IndexedMaxHeap heap(n);
  for (ObjectId w : whites) {
    found.clear();
    tree->RangeQueryAround(w, r_new, QueryFilter::kWhiteOnly, /*pruned=*/true,
                           &found);
    heap.Push(w, static_cast<int64_t>(found.size()));
  }
  std::vector<ObjectId> newly_grey;
  while (!heap.empty()) {
    ObjectId pi = heap.PopTop();
    tree->SetColor(pi, Color::kBlack);
    solution.push_back(pi);
    found.clear();
    tree->RangeQueryAround(pi, r_new, QueryFilter::kWhiteOnly, /*pruned=*/true,
                           &found);
    newly_grey.clear();
    for (const Neighbor& nb : found) {
      if (!region.contains(nb.id)) continue;
      tree->SetColor(nb.id, Color::kGrey);
      tree->ObserveBlackNeighbor(nb.id, nb.dist);
      newly_grey.push_back(nb.id);
      if (heap.contains(nb.id)) heap.Remove(nb.id);
    }
    for (ObjectId pj : newly_grey) {
      update_found.clear();
      tree->RangeQueryAround(pj, r_new, QueryFilter::kWhiteOnly,
                             /*pruned=*/true, &update_found);
      for (const Neighbor& nb : update_found) {
        if (heap.contains(nb.id)) heap.Adjust(nb.id, -1);
      }
    }
  }
  return solution;
}

}  // namespace

const char* ZoomOutVariantToString(ZoomOutVariant variant) {
  switch (variant) {
    case ZoomOutVariant::kArbitrary:
      return "arbitrary";
    case ZoomOutVariant::kGreedyMostRed:
      return "greedy-a";
    case ZoomOutVariant::kGreedyFewestRed:
      return "greedy-b";
    case ZoomOutVariant::kGreedyMostWhite:
      return "greedy-c";
  }
  return "unknown";
}

DiscResult ZoomIn(MTree* tree, double new_radius, bool greedy,
                  bool observe_all) {
  internal::RunScope scope(tree);
  // S^r' keeps all of S^r (Lemma 5), then adds the re-exposed objects.
  std::vector<ObjectId> solution = tree->ObjectsWithColor(Color::kBlack);
  std::vector<ObjectId> added =
      ZoomInCore(tree, new_radius, greedy, observe_all, Region{});
  solution.insert(solution.end(), added.begin(), added.end());
  return scope.Finish(std::move(solution));
}

DiscResult ZoomOut(MTree* tree, double new_radius, ZoomOutVariant variant) {
  internal::RunScope scope(tree);
  return scope.Finish(ZoomOutCore(tree, new_radius, variant, Region{}));
}

DiscResult LocalZoom(MTree* tree, ObjectId center, double old_radius,
                     double new_radius, bool greedy) {
  internal::RunScope scope(tree);

  // The operation's input is N_old_radius(center) plus the center itself.
  std::vector<char> member(tree->size(), 0);
  member[center] = 1;
  std::vector<Neighbor> in_region;
  tree->RangeQueryAround(center, old_radius, QueryFilter::kAll,
                         /*pruned=*/false, &in_region);
  for (const Neighbor& nb : in_region) member[nb.id] = 1;
  Region region{&member};

  // Out-of-region selection is untouched.
  std::vector<ObjectId> solution;
  for (ObjectId id : tree->ObjectsWithColor(Color::kBlack)) {
    if (!region.contains(id)) solution.push_back(id);
  }

  if (new_radius < old_radius) {
    // Local zoom-in: previously selected region objects stay (superset
    // property holds within the region as well).
    for (ObjectId id : tree->ObjectsWithColor(Color::kBlack)) {
      if (region.contains(id)) solution.push_back(id);
    }
    std::vector<ObjectId> added =
        ZoomInCore(tree, new_radius, greedy, /*observe_all=*/false, region);
    solution.insert(solution.end(), added.begin(), added.end());
  } else {
    std::vector<ObjectId> region_solution = ZoomOutCore(
        tree, new_radius,
        greedy ? ZoomOutVariant::kGreedyMostRed : ZoomOutVariant::kArbitrary,
        region);
    solution.insert(solution.end(), region_solution.begin(),
                    region_solution.end());
  }
  return scope.Finish(std::move(solution));
}

}  // namespace disc
