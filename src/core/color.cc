#include "core/color.h"

namespace disc {

const char* ColorToString(Color color) {
  switch (color) {
    case Color::kWhite:
      return "white";
    case Color::kGrey:
      return "grey";
    case Color::kBlack:
      return "black";
    case Color::kRed:
      return "red";
  }
  return "unknown";
}

}  // namespace disc
