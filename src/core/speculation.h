// Speculative parallel candidate evaluation for the greedy selection loops.
//
// Greedy-DisC and Greedy-C/Fast-C are serial by nature: every selection runs
// a range query whose outcome depends on the color state the previous
// selection just mutated. The loop itself cannot fan out — but the *next few*
// selections are highly predictable (the heap's top-k candidates), and range
// queries are read-only. So the speculator evaluates the top-k candidates'
// neighborhoods concurrently against the current color snapshot, recording a
// QueryTrace of every color-dependent decision (mtree/mtree.h). When the
// loop actually pops a candidate, a cached evaluation whose trace still
// validates is committed — byte-identical, result and AccessStats both, to
// running the query at that moment — and anything invalidated by the
// intervening commits is discarded (and counted; wasted work never appears
// in the tree's stats).
//
// The contract, extending the util/parallel.h determinism rules:
//   * speculate only against snapshots — queries run on workers under
//     private stats sinks and never publish partial color state;
//   * commit only in canonical order — the caller's pop order, on the
//     calling thread, with validation against the live colors;
//   * the batch size (width), not the thread count, determines which
//     speculative queries run, so commit/discard counters are identical for
//     every thread count at a fixed width. The pool only decides how many
//     evaluate at once.
//
// Liveness: for Greedy-DisC the batch is evaluated with the top candidate
// assumed black (the algorithm recolors before querying), so the first take
// after every prefetch always validates; width = 1 degenerates to exactly
// the serial loop.

#ifndef DISC_CORE_SPECULATION_H_
#define DISC_CORE_SPECULATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mtree/mtree.h"
#include "util/indexed_heap.h"

namespace disc {

class ThreadPool;  // util/parallel.h

/// Outcome counters of one selection run's speculation. Deterministic for a
/// fixed (workload, width) — independent of the thread count — and never
/// part of the wire protocol or the engine's session fingerprint (width is
/// resolved from the thread budget by default, which IS allowed to differ
/// between byte-identical runs).
struct SpeculationStats {
  uint64_t batches = 0;    // prefetch rounds issued
  uint64_t evaluated = 0;  // speculative queries run
  uint64_t committed = 0;  // consumed with a still-valid trace
  uint64_t discarded = 0;  // invalidated, superseded, or never consumed

  SpeculationStats& operator+=(const SpeculationStats& other) {
    batches += other.batches;
    evaluated += other.evaluated;
    committed += other.committed;
    discarded += other.discarded;
    return *this;
  }

  bool operator==(const SpeculationStats& other) const {
    return batches == other.batches && evaluated == other.evaluated &&
           committed == other.committed && discarded == other.discarded;
  }
};

/// Resolves a speculation width knob: 0 (auto) takes the pool's thread
/// count, so serial engines keep the exact pre-speculation code path and
/// threaded engines speculate one candidate per worker. Any other value is
/// used as given — including widths > 1 with a null pool, where the batch
/// evaluates sequentially (same commits, same discards, no concurrency);
/// that is how a 1-thread run reproduces a 4-thread run's counters.
size_t ResolveSpeculationWidth(size_t speculate, ThreadPool* pool);

/// One selection loop's speculation state. Create per run; call
/// MaybePrefetch at the top of the loop (before PopTop) and Take in place of
/// the serial selection query. Take is byte-identical to the serial query —
/// same neighbors in the same order, same AccessStats charged to the tree —
/// at any (width, thread count).
class SelectionSpeculator {
 public:
  /// Which serial selection query is being mirrored.
  enum class QueryKind {
    /// Greedy-DisC: RangeQueryAround after the candidate turned black —
    /// speculation assumes the candidate black (MTree::QueryTrace).
    kGreedyDisc,
    /// Greedy-C: RangeQueryAround, kAll/unpruned, before recoloring.
    /// Color-independent, so speculation never invalidates.
    kGreedyC,
    /// Fast-C: grey-stopping bottom-up query, before recoloring.
    kFastC,
  };

  /// `width` is the resolved batch size (ResolveSpeculationWidth); <= 1
  /// disables the machinery entirely. `pool` may be null even for width > 1.
  SelectionSpeculator(MTree* tree, double radius, QueryFilter filter,
                      bool pruned, QueryKind kind, size_t width,
                      ThreadPool* pool);

  /// When the cache is empty, evaluates the heap's top `width` candidates
  /// against the current snapshot (concurrently when a pool is available).
  void MaybePrefetch(const IndexedMaxHeap& heap);

  /// The selection query for `center`: commits a still-valid cached
  /// evaluation, or flushes the cache and runs the serial query.
  void Take(ObjectId center, std::vector<Neighbor>* out);

  /// Discards whatever is still cached and returns the final counters.
  SpeculationStats Finish();

  const SpeculationStats& stats() const { return stats_; }

 private:
  struct Entry {
    ObjectId center = kInvalidObject;
    std::vector<Neighbor> found;
    MTree::QueryTrace trace;
    AccessStats cost;  // accounted via a private sink; charged on commit
  };

  void SpeculativeQuery(ObjectId center, Entry* entry) const;
  void SerialQuery(ObjectId center, std::vector<Neighbor>* out) const;
  void Flush();

  MTree* tree_;
  const double radius_;
  const QueryFilter filter_;
  const bool pruned_;
  const QueryKind kind_;
  const size_t width_;
  ThreadPool* pool_;

  std::vector<Entry> cache_;
  SpeculationStats stats_;
};

}  // namespace disc

#endif  // DISC_CORE_SPECULATION_H_
