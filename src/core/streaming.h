// Online DisC diversity (§8 future work: "designing algorithms for the
// online version of the problem").
//
// StreamingDisc maintains an r-DisC diverse subset over a stream of arriving
// objects: after every insertion, the selected subset covers everything seen
// so far and stays pairwise dissimilar. The rule is the online counterpart
// of Basic-DisC — an arrival joins the solution iff no current member covers
// it — so the maintained set is always a maximal independent set of the
// neighborhood graph over the prefix, and (by Theorem 1) at most B times the
// offline optimum. Selected objects are never evicted, which gives the user
// a stable, monotonically growing view.

#ifndef DISC_CORE_STREAMING_H_
#define DISC_CORE_STREAMING_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"
#include "util/status.h"

namespace disc {

/// Maintains an r-DisC diverse subset under object arrivals.
/// The metric must outlive the instance.
class StreamingDisc {
 public:
  StreamingDisc(const DistanceMetric& metric, double radius)
      : metric_(metric), radius_(radius) {}

  /// Processes one arrival. Returns true when the object was selected into
  /// the diverse subset (it was not covered by any current member).
  /// Returns InvalidArgument on dimension mismatch with earlier arrivals.
  Result<bool> Insert(Point point);

  /// Ids (arrival order indexes) of the selected objects, ascending.
  const std::vector<ObjectId>& solution() const { return solution_; }

  /// Number of objects seen so far.
  size_t seen() const { return seen_.size(); }

  /// All objects seen so far, in arrival order.
  const Dataset& seen_dataset() const { return seen_; }

  double radius() const { return radius_; }

  /// For the object with arrival index `id`: distance to its representative
  /// (0 for selected objects).
  double representative_distance(ObjectId id) const {
    return representative_dist_[id];
  }

 private:
  const DistanceMetric& metric_;
  double radius_;
  Dataset seen_;
  std::vector<ObjectId> solution_;
  std::vector<double> representative_dist_;
};

}  // namespace disc

#endif  // DISC_CORE_STREAMING_H_
