// The DisC diversity algorithms of §2.3 and §5.1, M-tree backed:
//
//   Basic-DisC    — scan the leaf chain; every still-white object becomes
//                   black and greys its neighborhood. Produces a maximal
//                   independent set (valid r-DisC subset) in one pass.
//   Greedy-DisC   — repeatedly select the white object with the largest
//                   white neighborhood (the paper's L' structure). Variants
//                   differ in how neighborhood sizes are maintained:
//                     Grey       — one query around every newly-grey object,
//                     White      — one 2r query around the selected object,
//                     Lazy-Grey  — Grey with update radius r/2,
//                     Lazy-White — White with update radius 3r/2.
//                   Lazy variants trade slightly larger solutions for fewer
//                   node accesses (Figure 8 / Table 3).
//   Greedy-C      — drops the independence requirement: both white and grey
//                   objects are candidates (r-C diverse subsets, §2.3).
//   Fast-C        — Greedy-C with bottom-up range queries that stop climbing
//                   at the first grey ancestor; cheaper, may miss distant
//                   neighbors (§5.1).
//
// All algorithms run deterministically (ties broken toward smaller object
// ids) and leave the tree's colors and closest-black distances behind for
// the zooming operations in core/zoom.h.

#ifndef DISC_CORE_DISC_ALGORITHMS_H_
#define DISC_CORE_DISC_ALGORITHMS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/speculation.h"
#include "mtree/mtree.h"
#include "util/status.h"

namespace disc {

class ThreadPool;  // util/parallel.h

/// White-neighborhood maintenance strategy for Greedy-DisC (§5.1).
enum class GreedyVariant {
  kGrey,
  kWhite,
  kLazyGrey,
  kLazyWhite,
};

/// "grey" / "white" / "lazy-grey" / "lazy-white".
const char* GreedyVariantToString(GreedyVariant variant);

/// Every diversification algorithm the library implements, as a single
/// dispatchable identity (the greedy variants of §5.1 are distinct values so
/// a (algorithm, radius) pair fully determines a run's output).
enum class Algorithm {
  kBasic,        // Basic-DisC
  kGreedy,       // Greedy-DisC, Grey variant
  kGreedyWhite,  // Greedy-DisC, White variant
  kLazyGrey,     // Greedy-DisC, Lazy-Grey variant
  kLazyWhite,    // Greedy-DisC, Lazy-White variant
  kGreedyC,      // Greedy-C (covering only)
  kFastC,        // Fast-C (covering only, approximate maintenance)
};

/// "basic" / "greedy" / "greedy-white" / "lazy-grey" / "lazy-white" /
/// "greedy-c" / "fast-c".
const char* AlgorithmToString(Algorithm algorithm);

/// Parses the names AlgorithmToString produces. Returns InvalidArgument with
/// an "unknown algorithm" message otherwise.
Result<Algorithm> ParseAlgorithm(const std::string& name);

/// True for the algorithms whose output is an r-DisC diverse (independent
/// and covering) subset — the precondition for the zooming operations of
/// core/zoom.h. False for the covering-only Greedy-C / Fast-C.
bool IsDiscFamily(Algorithm algorithm);

/// True when a run of `algorithm` consumes precomputed white-neighborhood
/// counts (every algorithm except Basic-DisC).
bool AlgorithmUsesNeighborCounts(Algorithm algorithm);

/// The output of a diversification run: the selected objects in selection
/// order plus the index work the run consumed. `speculation` reports the
/// selection-loop speculation outcome (all-zero for non-greedy algorithms
/// and for width <= 1); it is diagnostics only — never part of the stats,
/// the wire protocol, or any cache identity.
struct DiscResult {
  std::vector<ObjectId> solution;
  AccessStats stats;
  SpeculationStats speculation;
  double wall_ms = 0.0;

  size_t size() const { return solution.size(); }
};

/// Options for GreedyDisc.
struct GreedyDiscOptions {
  GreedyVariant variant = GreedyVariant::kGrey;
  /// Enables the §5.1 pruning rule (skip subtrees with no white objects).
  /// Pruned runs require MTree::RecomputeClosestBlackDistances before
  /// zooming (§5.2); unpruned runs keep those distances exact as they go.
  bool pruned = true;
  /// White-neighborhood sizes computed by MTree::BuildWithNeighborCounts
  /// (either build strategy; the counts are identical for both). When null,
  /// a post-build counting pass runs (and is charged to stats).
  const std::vector<uint32_t>* initial_counts = nullptr;
  /// Parallelizes the run across this pool: the initial counting pass (only
  /// taken when initial_counts is null), speculative candidate evaluation
  /// in the selection loop, and the per-step neighborhood-maintenance
  /// queries (committed in canonical order). Solutions, stats, and the
  /// tree's end state are byte-identical to a serial run for every thread
  /// count (core/speculation.h).
  ThreadPool* pool = nullptr;
  /// Selection-speculation batch width: 0 resolves to the pool's thread
  /// count (1 without a pool — the exact pre-speculation code path); an
  /// explicit width forces that batch size even without a pool, which
  /// evaluates the batch sequentially with identical commit/discard
  /// counters (ResolveSpeculationWidth).
  size_t speculate = 0;
};

/// Basic-DisC. `pruned` additionally skips all-grey leaves during the scan.
DiscResult BasicDisc(MTree* tree, double radius, bool pruned = true);

/// Greedy-DisC in the selected variant.
DiscResult GreedyDisc(MTree* tree, double radius,
                      const GreedyDiscOptions& options = {});

/// Greedy-C: covering but not necessarily independent (never pruned — grey
/// subtrees must stay reachable for neighborhood-count maintenance).
/// `initial_counts` (optional) supplies neighborhood sizes computed by
/// MTree::BuildWithNeighborCounts; otherwise a post-build pass runs (fanned
/// out across `pool` when given) and is charged to the result's stats.
/// `speculate` as in GreedyDiscOptions.
DiscResult GreedyC(MTree* tree, double radius,
                   const std::vector<uint32_t>* initial_counts = nullptr,
                   ThreadPool* pool = nullptr, size_t speculate = 0);

/// Fast-C: the cheaper Greedy-C using grey-stopping bottom-up queries and
/// lazy candidate re-validation instead of exact count maintenance.
DiscResult FastC(MTree* tree, double radius,
                 const std::vector<uint32_t>* initial_counts = nullptr,
                 ThreadPool* pool = nullptr, size_t speculate = 0);

/// Options for RunAlgorithm, the knobs shared by every algorithm. `pruned`
/// is ignored by Greedy-C / Fast-C (they are never pruned; see GreedyC).
/// `pool` parallelizes the counting pass, the speculative selection
/// queries, and the maintenance fan-outs of the greedy algorithms;
/// solutions and stats totals are identical to a serial run for every
/// thread count. `speculate` as in GreedyDiscOptions (Basic-DisC has no
/// selection heap and ignores it).
struct AlgorithmRunOptions {
  bool pruned = true;
  const std::vector<uint32_t>* initial_counts = nullptr;
  ThreadPool* pool = nullptr;
  size_t speculate = 0;
};

/// Runs any Algorithm against the tree — the single dispatch point used by
/// the engine layer (and available to benches/tools that select algorithms
/// by name).
DiscResult RunAlgorithm(MTree* tree, Algorithm algorithm, double radius,
                        const AlgorithmRunOptions& options = {});

}  // namespace disc

#endif  // DISC_CORE_DISC_ALGORITHMS_H_
