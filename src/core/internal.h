// Shared helpers for the core algorithm implementations. Internal header.

#ifndef DISC_CORE_INTERNAL_H_
#define DISC_CORE_INTERNAL_H_

#include <utility>
#include <vector>

#include "core/disc_algorithms.h"
#include "mtree/mtree.h"
#include "util/stopwatch.h"

namespace disc {
namespace internal {

/// Captures the tree's access counters at construction and attributes the
/// delta (plus wall-clock) to the DiscResult produced at Finish().
class RunScope {
 public:
  explicit RunScope(MTree* tree) : tree_(tree), start_(tree->stats()) {}

  DiscResult Finish(std::vector<ObjectId> solution) {
    DiscResult result;
    result.solution = std::move(solution);
    result.stats = tree_->stats() - start_;
    result.wall_ms = watch_.ElapsedMillis();
    return result;
  }

 private:
  MTree* tree_;
  AccessStats start_;
  Stopwatch watch_;
};

}  // namespace internal
}  // namespace disc

#endif  // DISC_CORE_INTERNAL_H_
