#include "core/streaming.h"

#include <limits>
#include <string>
#include <utility>

namespace disc {

Result<bool> StreamingDisc::Insert(Point point) {
  // Validate the dimension before any distance computation: the metric
  // assumes (and asserts) matching dimensions, so a mismatched arrival must
  // be rejected up front, not discovered mid-scan.
  if (!seen_.empty() && point.dim() != seen_.dim()) {
    return Status::InvalidArgument(
        "arrival dimension " + std::to_string(point.dim()) +
        " does not match stream dimension " + std::to_string(seen_.dim()));
  }

  // Check coverage against the current solution. The solution is small
  // compared to the stream, so a linear scan is the right tool; an index
  // would pay more in maintenance than it saves here.
  double best = std::numeric_limits<double>::infinity();
  for (ObjectId s : solution_) {
    double d = metric_.Distance(point, seen_.point(s));
    if (d < best) best = d;
    if (best <= radius_) break;
  }

  ObjectId id = static_cast<ObjectId>(seen_.size());
  DISC_RETURN_NOT_OK(seen_.Add(std::move(point)));

  if (best <= radius_) {
    representative_dist_.push_back(best);
    return false;
  }
  // Uncovered: it joins the solution. It is farther than r from every
  // member (that is exactly what "uncovered" means), so independence is
  // preserved; coverage holds because it now covers itself.
  solution_.push_back(id);
  representative_dist_.push_back(0.0);
  return true;
}

}  // namespace disc
