// Neighborhood graph G_{P,r}: vertex per object, edge when dist <= r.
//
// Section 2.2 of the paper reduces Minimum r-DisC Diverse Subset to Minimum
// Independent Dominating Set on this graph. The graph module is the
// M-tree-free substrate: it provides ground truth for tests, powers the
// brute-force reference algorithms, and backs the structural verifiers.
//
// Construction is the r-neighborhood computation that dominates every DisC
// pass (N_r(p) for all p, §4–§6). The direct constructor delegates to the
// shared adjacency builders in neighbor/adjacency.h (grid accelerator or
// exact O(n^2) scan); the tree constructor issues one index range query per
// object; and FromBackend builds the graph through any pluggable
// NeighborBackend (neighbor/backend.h), which is how approximate (LSH) and
// sharded engines plug into everything defined on this graph. All paths
// accept an optional util/parallel.h thread pool: the object range is
// partitioned into chunks, each chunk collects edges (or adjacency rows)
// into private buffers, and the buffers are merged on the calling thread in
// ascending chunk order — the resulting graph is byte-identical to the
// serial build for every thread count. A null pool (or a one-thread pool)
// runs the original serial loops.

#ifndef DISC_GRAPH_NEIGHBORHOOD_H_
#define DISC_GRAPH_NEIGHBORHOOD_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "neighbor/backend.h"
#include "util/status.h"

namespace disc {

class ThreadPool;  // util/parallel.h

/// Adjacency-list representation of G_{P,r}. Neighbor lists are sorted by id
/// and exclude the vertex itself, matching N_r(p_i) in the paper.
class NeighborhoodGraph {
 public:
  /// Builds the graph by computing pairwise distances — exactly once per
  /// unordered pair on both paths. Uses a uniform-grid accelerator for
  /// low-dimensional Minkowski metrics and falls back to the exact O(n^2)
  /// scan otherwise; both produce identical graphs.
  NeighborhoodGraph(const Dataset& dataset, const DistanceMetric& metric,
                    double radius, ThreadPool* pool = nullptr);

  /// Builds the graph from a built M-tree with one range query per object —
  /// the index-backed path for workloads where the grid accelerator does not
  /// apply (high dimensionality, non-Minkowski metrics). Produces exactly
  /// the same graph as the direct constructors; cost scales with the tree's
  /// clustering quality, so bulk-loaded trees (MTree::BulkLoad) pay off
  /// here. The queries are charged to tree.stats() — with a pool, each
  /// worker queries under a private sink (MTree::ThreadStatsScope) and the
  /// sinks are summed back, so the totals equal the serial build's.
  explicit NeighborhoodGraph(const MTree& tree, double radius,
                             ThreadPool* pool = nullptr);

  /// The guarded front door the daemon path uses instead of the direct
  /// constructor: logs the chosen strategy (grid vs brute force) to stderr,
  /// and — when the grid does not apply and max_brute_force_points > 0 —
  /// refuses datasets above that cap with InvalidArgument rather than
  /// letting the silent O(n^2) fallback exhaust memory.
  static Result<NeighborhoodGraph> Build(const Dataset& dataset,
                                         const DistanceMetric& metric,
                                         double radius,
                                         ThreadPool* pool = nullptr,
                                         size_t max_brute_force_points = 0);

  /// Builds the graph through a pluggable neighbor backend
  /// (neighbor/backend.h). Exact backends produce exactly the graph the
  /// constructors above produce; approximate backends produce a subgraph
  /// (every reported edge is distance-verified, some true edges may be
  /// missing — the recall the CI quality gate measures). Accounting goes to
  /// the backend's stats().
  static Result<NeighborhoodGraph> FromBackend(const NeighborBackend& backend,
                                               double radius,
                                               ThreadPool* pool = nullptr);

  size_t num_vertices() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }
  double radius() const { return radius_; }

  /// N_r(v): sorted ids at distance <= r, excluding v.
  const std::vector<ObjectId>& neighbors(ObjectId v) const {
    return adjacency_[v];
  }

  /// |N_r(v)|.
  size_t degree(ObjectId v) const { return adjacency_[v].size(); }

  /// Max degree Delta over all vertices (0 for the empty graph).
  size_t MaxDegree() const;

  bool HasEdge(ObjectId a, ObjectId b) const;

 private:
  /// Adopts an already-built adjacency structure (FromBackend).
  NeighborhoodGraph(double radius, AdjacencyLists adjacency, size_t num_edges)
      : radius_(radius),
        num_edges_(num_edges),
        adjacency_(std::move(adjacency)) {}

  void BuildFromTree(const MTree& tree, ThreadPool* pool);

  double radius_;
  size_t num_edges_ = 0;
  AdjacencyLists adjacency_;
};

}  // namespace disc

#endif  // DISC_GRAPH_NEIGHBORHOOD_H_
