// Exact Minimum Independent Dominating Set solver (branch and bound).
//
// The paper proves Minimum r-DisC Diverse Subset equivalent to Minimum
// Independent Dominating Set (Observation 1), an NP-hard problem, and builds
// heuristics. This exact solver provides ground truth on small instances so
// tests can (a) check heuristic solutions are valid and within the paper's
// approximation bounds (Theorems 1-2) and (b) quantify heuristic quality.

#ifndef DISC_GRAPH_EXACT_H_
#define DISC_GRAPH_EXACT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/neighborhood.h"

namespace disc {

/// Configuration for the exact solver.
struct ExactSolverOptions {
  /// Hard cap on instance size: the solver refuses larger graphs rather than
  /// silently taking exponential time.
  size_t max_vertices = 40;
  /// Safety valve on explored search nodes (0 = unlimited).
  uint64_t max_search_nodes = 50'000'000;
};

/// Computes a minimum independent dominating set of `graph` by branch and
/// bound: always branch on a lowest-id uncovered vertex v — any independent
/// dominating set must contain v or one of its neighbors.
///
/// Errors: InvalidArgument when the graph exceeds max_vertices;
/// kOutOfRange when the node budget is exhausted before proving optimality.
Result<std::vector<ObjectId>> ExactMinimumIndependentDominatingSet(
    const NeighborhoodGraph& graph, const ExactSolverOptions& options = {});

/// Convenience: size of the optimum, with the same error behavior.
Result<size_t> ExactMinimumIndependentDominatingSetSize(
    const NeighborhoodGraph& graph, const ExactSolverOptions& options = {});

}  // namespace disc

#endif  // DISC_GRAPH_EXACT_H_
