#include "graph/exact.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace disc {

namespace {

// Branch-and-bound search state over the whole graph. Vertices carry two
// counters so decisions are undoable in O(deg):
//   blocked[v] : number of set members adjacent to v (v unavailable when > 0)
//   covers[v]  : number of set members in N+[v]      (v covered when > 0)
class Solver {
 public:
  Solver(const NeighborhoodGraph& graph, uint64_t node_budget)
      : graph_(graph),
        n_(graph.num_vertices()),
        blocked_(n_, 0),
        covers_(n_, 0),
        node_budget_(node_budget) {}

  // Returns true when optimality was proven within budget.
  bool Run() {
    // Seed the incumbent with a greedy maximal independent set so pruning
    // has a realistic bound from the start.
    GreedySeed();
    current_.clear();
    exhausted_ = false;
    Search();
    return !exhausted_;
  }

  const std::vector<ObjectId>& best() const { return best_; }

 private:
  void GreedySeed() {
    std::vector<char> covered(n_, 0);
    best_.clear();
    for (ObjectId v = 0; v < n_; ++v) {
      if (covered[v]) continue;
      // v is uncovered; it is also non-adjacent to all chosen vertices
      // (otherwise it would be covered), so adding it keeps independence.
      best_.push_back(v);
      covered[v] = 1;
      for (ObjectId u : graph_.neighbors(v)) covered[u] = 1;
    }
  }

  size_t CountUncovered() const {
    size_t count = 0;
    for (ObjectId v = 0; v < n_; ++v) {
      if (covers_[v] == 0) ++count;
    }
    return count;
  }

  void Take(ObjectId c) {
    current_.push_back(c);
    ++covers_[c];
    ++blocked_[c];  // a set member cannot be re-added
    for (ObjectId u : graph_.neighbors(c)) {
      ++covers_[u];
      ++blocked_[u];
    }
  }

  void Undo(ObjectId c) {
    current_.pop_back();
    --covers_[c];
    --blocked_[c];
    for (ObjectId u : graph_.neighbors(c)) {
      --covers_[u];
      --blocked_[u];
    }
  }

  void Search() {
    if (exhausted_) return;
    if (node_budget_ > 0 && ++nodes_ > node_budget_) {
      exhausted_ = true;
      return;
    }

    // Find the lowest-id uncovered vertex.
    ObjectId pivot = kInvalidObject;
    for (ObjectId v = 0; v < n_; ++v) {
      if (covers_[v] == 0) {
        pivot = v;
        break;
      }
    }
    if (pivot == kInvalidObject) {
      // All covered: current_ is an independent dominating set.
      if (current_.size() < best_.size()) best_ = current_;
      return;
    }

    if (current_.size() + 1 >= best_.size()) return;  // cannot improve

    // Lower bound: each added vertex covers at most Delta+1 new vertices.
    size_t uncovered = CountUncovered();
    size_t delta_plus_1 = graph_.MaxDegree() + 1;
    size_t lower = (uncovered + delta_plus_1 - 1) / delta_plus_1;
    if (current_.size() + lower >= best_.size()) return;

    // Any independent dominating set contains pivot or one of its neighbors;
    // only unblocked candidates keep the set independent.
    if (blocked_[pivot] == 0) {
      Take(pivot);
      Search();
      Undo(pivot);
    }
    for (ObjectId u : graph_.neighbors(pivot)) {
      if (blocked_[u] != 0) continue;
      Take(u);
      Search();
      Undo(u);
      if (exhausted_) return;
    }
    // If no candidate was available, pivot can never be dominated on this
    // branch; fall through (dead end, nothing recorded).
  }

  const NeighborhoodGraph& graph_;
  const ObjectId n_;
  std::vector<uint16_t> blocked_;
  std::vector<uint16_t> covers_;
  std::vector<ObjectId> current_;
  std::vector<ObjectId> best_;
  uint64_t node_budget_;
  uint64_t nodes_ = 0;
  bool exhausted_ = false;
};

}  // namespace

Result<std::vector<ObjectId>> ExactMinimumIndependentDominatingSet(
    const NeighborhoodGraph& graph, const ExactSolverOptions& options) {
  if (graph.num_vertices() > options.max_vertices) {
    return Status::InvalidArgument(
        "exact solver limited to " + std::to_string(options.max_vertices) +
        " vertices, got " + std::to_string(graph.num_vertices()));
  }
  if (graph.num_vertices() == 0) return std::vector<ObjectId>{};
  Solver solver(graph, options.max_search_nodes);
  if (!solver.Run()) {
    return Status::OutOfRange("exact solver exceeded its search-node budget");
  }
  std::vector<ObjectId> result = solver.best();
  std::sort(result.begin(), result.end());
  return result;
}

Result<size_t> ExactMinimumIndependentDominatingSetSize(
    const NeighborhoodGraph& graph, const ExactSolverOptions& options) {
  DISC_ASSIGN_OR_RETURN(auto set,
                        ExactMinimumIndependentDominatingSet(graph, options));
  return set.size();
}

}  // namespace disc
