// Verifiers for the structural properties that define DisC diversity:
// independence (dissimilarity), dominance (coverage) and maximality.
// Used pervasively by the test suite to validate every algorithm's output,
// and by examples to certify solutions shown to users.

#ifndef DISC_GRAPH_PROPERTIES_H_
#define DISC_GRAPH_PROPERTIES_H_

#include <vector>

#include "graph/neighborhood.h"

namespace disc {

/// True when no two vertices of `set` are adjacent (dissimilarity condition).
bool IsIndependentSet(const NeighborhoodGraph& graph,
                      const std::vector<ObjectId>& set);

/// True when every vertex is in `set` or adjacent to one (coverage condition).
bool IsDominatingSet(const NeighborhoodGraph& graph,
                     const std::vector<ObjectId>& set);

/// True when `set` is independent and no vertex can be added while keeping it
/// independent. By Lemma 1 this is equivalent to independent + dominating.
bool IsMaximalIndependentSet(const NeighborhoodGraph& graph,
                             const std::vector<ObjectId>& set);

/// One-stop verification that `set` is an r-DisC diverse subset of `dataset`
/// (Definition 1), computed directly from distances in O(|P| * |set|) without
/// materializing the graph. Returns OK or an error describing the violation.
Status VerifyDisCDiverse(const Dataset& dataset, const DistanceMetric& metric,
                         double radius, const std::vector<ObjectId>& set);

/// Verifies only the coverage condition (r-C diverse subsets, §2.3).
Status VerifyCovering(const Dataset& dataset, const DistanceMetric& metric,
                      double radius, const std::vector<ObjectId>& set);

}  // namespace disc

#endif  // DISC_GRAPH_PROPERTIES_H_
