#include "graph/properties.h"

#include <cstddef>
#include <string>
#include <vector>

namespace disc {

bool IsIndependentSet(const NeighborhoodGraph& graph,
                      const std::vector<ObjectId>& set) {
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      if (graph.HasEdge(set[i], set[j])) return false;
    }
  }
  return true;
}

bool IsDominatingSet(const NeighborhoodGraph& graph,
                     const std::vector<ObjectId>& set) {
  std::vector<char> covered(graph.num_vertices(), 0);
  for (ObjectId v : set) {
    covered[v] = 1;
    for (ObjectId u : graph.neighbors(v)) covered[u] = 1;
  }
  for (char c : covered) {
    if (!c) return false;
  }
  return true;
}

bool IsMaximalIndependentSet(const NeighborhoodGraph& graph,
                             const std::vector<ObjectId>& set) {
  // Lemma 1: an independent set is maximal iff it is dominating.
  return IsIndependentSet(graph, set) && IsDominatingSet(graph, set);
}

Status VerifyDisCDiverse(const Dataset& dataset, const DistanceMetric& metric,
                         double radius, const std::vector<ObjectId>& set) {
  DISC_RETURN_NOT_OK(VerifyCovering(dataset, metric, radius, set));
  // Dissimilarity: all pairs in the solution farther than r apart.
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      double d = metric.Distance(dataset.point(set[i]), dataset.point(set[j]));
      if (d <= radius) {
        return Status::FailedPrecondition(
            "dissimilarity violated: objects " + std::to_string(set[i]) +
            " and " + std::to_string(set[j]) + " at distance " +
            std::to_string(d) + " <= r = " + std::to_string(radius));
      }
    }
  }
  return Status::OK();
}

Status VerifyCovering(const Dataset& dataset, const DistanceMetric& metric,
                      double radius, const std::vector<ObjectId>& set) {
  for (ObjectId v : set) {
    if (v >= dataset.size()) {
      return Status::InvalidArgument("object id " + std::to_string(v) +
                                     " out of range");
    }
  }
  std::vector<char> covered(dataset.size(), 0);
  for (ObjectId s : set) {
    covered[s] = 1;
  }
  for (ObjectId v = 0; v < dataset.size(); ++v) {
    if (covered[v]) continue;
    bool found = false;
    for (ObjectId s : set) {
      if (metric.Distance(dataset.point(v), dataset.point(s)) <= radius) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::FailedPrecondition(
          "coverage violated: object " + std::to_string(v) +
          " has no representative within r = " + std::to_string(radius));
    }
  }
  return Status::OK();
}

}  // namespace disc
