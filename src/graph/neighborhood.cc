#include "graph/neighborhood.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <utility>
#include <vector>

#include "neighbor/adjacency.h"
#include "util/parallel.h"

namespace disc {

NeighborhoodGraph::NeighborhoodGraph(const Dataset& dataset,
                                     const DistanceMetric& metric,
                                     double radius, ThreadPool* pool)
    : radius_(radius), adjacency_(dataset.size()) {
  if (dataset.size() <= 1) return;
  if (GridCompatible(metric, dataset.dim(), dataset.size()) && radius > 0) {
    num_edges_ =
        BuildAdjacencyWithGrid(dataset, metric, radius, pool, &adjacency_);
  } else {
    num_edges_ =
        BuildAdjacencyBruteForce(dataset, metric, radius, pool, &adjacency_);
  }
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
}

NeighborhoodGraph::NeighborhoodGraph(const MTree& tree, double radius,
                                     ThreadPool* pool)
    : radius_(radius), adjacency_(tree.size()) {
  BuildFromTree(tree, pool);
}

Result<NeighborhoodGraph> NeighborhoodGraph::Build(
    const Dataset& dataset, const DistanceMetric& metric, double radius,
    ThreadPool* pool, size_t max_brute_force_points) {
  const size_t n = dataset.size();
  const bool grid = GridCompatible(metric, dataset.dim(), n) && radius > 0;
  if (!grid && max_brute_force_points > 0 && n > max_brute_force_points) {
    return Status::InvalidArgument(
        "neighborhood graph over " + std::to_string(n) + " points (" +
        metric.name() + " metric, dim " + std::to_string(dataset.dim()) +
        ") would fall back to the O(n^2) scan, above the cap of " +
        std::to_string(max_brute_force_points) +
        "; use an approximate neighbor backend (lsh, lsh-sharded)");
  }
  std::fprintf(stderr,
               "NeighborhoodGraph: strategy=%s n=%zu dim=%zu radius=%g\n",
               grid ? "grid" : "brute-force", n, dataset.dim(), radius);
  return NeighborhoodGraph(dataset, metric, radius, pool);
}

Result<NeighborhoodGraph> NeighborhoodGraph::FromBackend(
    const NeighborBackend& backend, double radius, ThreadPool* pool) {
  AdjacencyLists adjacency;
  size_t num_edges = 0;
  DISC_RETURN_NOT_OK(
      backend.BuildNeighborhoods(radius, pool, &adjacency, &num_edges));
  return NeighborhoodGraph(radius, std::move(adjacency), num_edges);
}

void NeighborhoodGraph::BuildFromTree(const MTree& tree, ThreadPool* pool) {
  const size_t n = tree.size();
  if (pool == nullptr || pool->threads() <= 1) {
    std::vector<Neighbor> found;
    for (ObjectId i = 0; i < n; ++i) {
      found.clear();
      tree.RangeQueryAround(i, radius_, QueryFilter::kAll, /*pruned=*/false,
                            &found);
      auto& list = adjacency_[i];
      list.reserve(found.size());
      for (const Neighbor& nb : found) list.push_back(nb.id);
      std::sort(list.begin(), list.end());
      num_edges_ += list.size();  // every edge seen from both endpoints
    }
    num_edges_ /= 2;
    return;
  }

  // Adjacency rows are disjoint per object, so chunks write them in place;
  // only the access accounting needs per-thread sinks, summed back into
  // tree.stats() in chunk order (exact integer totals, same as serial).
  struct ChunkResult {
    AccessStats stats;
    size_t directed_edges = 0;
  };
  const size_t grain = RecommendedGrain(n, pool->threads());
  ParallelOrderedReduce<ChunkResult>(
      pool, 0, n, grain,
      [&](size_t chunk_begin, size_t chunk_end) {
        ChunkResult result;
        MTree::ThreadStatsScope scope(tree, &result.stats);
        std::vector<Neighbor> found;
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          found.clear();
          tree.RangeQueryAround(static_cast<ObjectId>(i), radius_,
                                QueryFilter::kAll, /*pruned=*/false, &found);
          auto& list = adjacency_[i];
          list.reserve(found.size());
          for (const Neighbor& nb : found) list.push_back(nb.id);
          std::sort(list.begin(), list.end());
          result.directed_edges += list.size();
        }
        return result;
      },
      [&](ChunkResult& result) {
        tree.stats() += result.stats;
        num_edges_ += result.directed_edges;
      });
  num_edges_ /= 2;
}

size_t NeighborhoodGraph::MaxDegree() const {
  size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

bool NeighborhoodGraph::HasEdge(ObjectId a, ObjectId b) const {
  const auto& list = adjacency_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

}  // namespace disc
