#include "graph/neighborhood.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace disc {

namespace {

// The grid accelerator requires that dist(p, q) <= r implies every coordinate
// difference is <= r. True for Euclidean / Manhattan / Chebyshev, not for
// Hamming (codes are unordered categories).
bool GridCompatible(const DistanceMetric& metric, size_t dim, size_t n) {
  if (metric.kind() == MetricKind::kHamming) return false;
  // The grid pays off for large low-dimensional inputs; cell enumeration is
  // 3^dim per point, so cap the dimensionality.
  return dim >= 1 && dim <= 3 && n >= 256;
}

using EdgeList = std::vector<std::pair<ObjectId, ObjectId>>;

}  // namespace

NeighborhoodGraph::NeighborhoodGraph(const Dataset& dataset,
                                     const DistanceMetric& metric,
                                     double radius, ThreadPool* pool)
    : radius_(radius), adjacency_(dataset.size()) {
  if (dataset.size() <= 1) return;
  if (GridCompatible(metric, dataset.dim(), dataset.size()) && radius > 0) {
    BuildWithGrid(dataset, metric, pool);
  } else {
    BuildBruteForce(dataset, metric, pool);
  }
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
}

NeighborhoodGraph::NeighborhoodGraph(const MTree& tree, double radius,
                                     ThreadPool* pool)
    : radius_(radius), adjacency_(tree.size()) {
  BuildFromTree(tree, pool);
}

void NeighborhoodGraph::MergeEdges(const EdgeList& edges) {
  for (const auto& [i, j] : edges) {
    adjacency_[i].push_back(j);
    adjacency_[j].push_back(i);
    ++num_edges_;
  }
}

void NeighborhoodGraph::BuildBruteForce(const Dataset& dataset,
                                        const DistanceMetric& metric,
                                        ThreadPool* pool) {
  const size_t n = dataset.size();
  if (pool == nullptr || pool->threads() <= 1) {
    // One distance computation per unordered pair: j starts above i and the
    // edge is recorded at both endpoints (the regression test in
    // tests/neighborhood_test.cc pins the call count to n(n-1)/2).
    for (ObjectId i = 0; i < n; ++i) {
      for (ObjectId j = i + 1; j < n; ++j) {
        if (metric.Distance(dataset.point(i), dataset.point(j)) <= radius_) {
          adjacency_[i].push_back(j);
          adjacency_[j].push_back(i);
          ++num_edges_;
        }
      }
    }
    return;
  }

  // Chunks of rows collect (i, j) pairs into private buffers; merging in
  // ascending chunk order reproduces the serial (i asc, j asc) edge
  // sequence exactly, so the graph is byte-identical for any thread count.
  const size_t grain = RecommendedGrain(n, pool->threads());
  ParallelOrderedReduce<EdgeList>(
      pool, 0, n, grain,
      [&](size_t chunk_begin, size_t chunk_end) {
        EdgeList edges;
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          const Point& p = dataset.point(i);
          for (size_t j = i + 1; j < n; ++j) {
            if (metric.Distance(p, dataset.point(j)) <= radius_) {
              edges.emplace_back(static_cast<ObjectId>(i),
                                 static_cast<ObjectId>(j));
            }
          }
        }
        return edges;
      },
      [&](EdgeList& edges) { MergeEdges(edges); });
}

void NeighborhoodGraph::BuildWithGrid(const Dataset& dataset,
                                      const DistanceMetric& metric,
                                      ThreadPool* pool) {
  const size_t n = dataset.size();
  const size_t dim = dataset.dim();

  // Hash points into cells of side r; any neighbor pair lies in the same or
  // an adjacent cell along every axis.
  auto cell_key = [&](const Point& p) {
    // Pack up to 3 cell coordinates (21 bits each, offset to stay positive).
    uint64_t key = 0;
    for (size_t d = 0; d < dim; ++d) {
      int64_t c = static_cast<int64_t>(std::floor(p[d] / radius_)) + (1 << 20);
      key = (key << 21) | static_cast<uint64_t>(c & ((1 << 21) - 1));
    }
    return key;
  };

  std::unordered_map<uint64_t, std::vector<ObjectId>> cells;
  cells.reserve(n);
  for (ObjectId i = 0; i < n; ++i) {
    cells[cell_key(dataset.point(i))].push_back(i);
  }

  // Enumerate each point's 3^dim neighboring cells; the cell map is shared
  // read-only once populated. One distance computation per unordered
  // candidate pair (the j <= i skip dedupes the two enumerations that see
  // the pair).
  const size_t num_offsets = static_cast<size_t>(std::pow(3.0, dim));
  auto scan_rows = [&](size_t row_begin, size_t row_end, auto&& emit) {
    std::vector<int64_t> base(dim);
    for (size_t i = row_begin; i < row_end; ++i) {
      const Point& p = dataset.point(i);
      for (size_t d = 0; d < dim; ++d) {
        base[d] = static_cast<int64_t>(std::floor(p[d] / radius_));
      }
      for (size_t mask = 0; mask < num_offsets; ++mask) {
        uint64_t key = 0;
        size_t rem = mask;
        for (size_t d = 0; d < dim; ++d) {
          int64_t delta = static_cast<int64_t>(rem % 3) - 1;
          rem /= 3;
          int64_t c = base[d] + delta + (1 << 20);
          key = (key << 21) | static_cast<uint64_t>(c & ((1 << 21) - 1));
        }
        auto it = cells.find(key);
        if (it == cells.end()) continue;
        for (ObjectId j : it->second) {
          if (j <= i) continue;  // each unordered pair once
          if (metric.Distance(p, dataset.point(j)) <= radius_) {
            emit(static_cast<ObjectId>(i), j);
          }
        }
      }
    }
  };

  if (pool == nullptr || pool->threads() <= 1) {
    // Serial: stream edges straight into the adjacency lists (no O(E)
    // staging buffer).
    scan_rows(0, n, [&](ObjectId i, ObjectId j) {
      adjacency_[i].push_back(j);
      adjacency_[j].push_back(i);
      ++num_edges_;
    });
    return;
  }

  const size_t grain = RecommendedGrain(n, pool->threads());
  ParallelOrderedReduce<EdgeList>(
      pool, 0, n, grain,
      [&](size_t chunk_begin, size_t chunk_end) {
        EdgeList edges;
        scan_rows(chunk_begin, chunk_end, [&](ObjectId i, ObjectId j) {
          edges.emplace_back(i, j);
        });
        return edges;
      },
      [&](EdgeList& edges) { MergeEdges(edges); });
}

void NeighborhoodGraph::BuildFromTree(const MTree& tree, ThreadPool* pool) {
  const size_t n = tree.size();
  if (pool == nullptr || pool->threads() <= 1) {
    std::vector<Neighbor> found;
    for (ObjectId i = 0; i < n; ++i) {
      found.clear();
      tree.RangeQueryAround(i, radius_, QueryFilter::kAll, /*pruned=*/false,
                            &found);
      auto& list = adjacency_[i];
      list.reserve(found.size());
      for (const Neighbor& nb : found) list.push_back(nb.id);
      std::sort(list.begin(), list.end());
      num_edges_ += list.size();  // every edge seen from both endpoints
    }
    num_edges_ /= 2;
    return;
  }

  // Adjacency rows are disjoint per object, so chunks write them in place;
  // only the access accounting needs per-thread sinks, summed back into
  // tree.stats() in chunk order (exact integer totals, same as serial).
  struct ChunkResult {
    AccessStats stats;
    size_t directed_edges = 0;
  };
  const size_t grain = RecommendedGrain(n, pool->threads());
  ParallelOrderedReduce<ChunkResult>(
      pool, 0, n, grain,
      [&](size_t chunk_begin, size_t chunk_end) {
        ChunkResult result;
        MTree::ThreadStatsScope scope(tree, &result.stats);
        std::vector<Neighbor> found;
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          found.clear();
          tree.RangeQueryAround(static_cast<ObjectId>(i), radius_,
                                QueryFilter::kAll, /*pruned=*/false, &found);
          auto& list = adjacency_[i];
          list.reserve(found.size());
          for (const Neighbor& nb : found) list.push_back(nb.id);
          std::sort(list.begin(), list.end());
          result.directed_edges += list.size();
        }
        return result;
      },
      [&](ChunkResult& result) {
        tree.stats() += result.stats;
        num_edges_ += result.directed_edges;
      });
  num_edges_ /= 2;
}

size_t NeighborhoodGraph::MaxDegree() const {
  size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

bool NeighborhoodGraph::HasEdge(ObjectId a, ObjectId b) const {
  const auto& list = adjacency_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

}  // namespace disc
