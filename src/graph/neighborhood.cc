#include "graph/neighborhood.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace disc {

namespace {

// The grid accelerator requires that dist(p, q) <= r implies every coordinate
// difference is <= r. True for Euclidean / Manhattan / Chebyshev, not for
// Hamming (codes are unordered categories).
bool GridCompatible(const DistanceMetric& metric, size_t dim, size_t n) {
  if (metric.kind() == MetricKind::kHamming) return false;
  // The grid pays off for large low-dimensional inputs; cell enumeration is
  // 3^dim per point, so cap the dimensionality.
  return dim >= 1 && dim <= 3 && n >= 256;
}

}  // namespace

NeighborhoodGraph::NeighborhoodGraph(const Dataset& dataset,
                                     const DistanceMetric& metric,
                                     double radius)
    : radius_(radius), adjacency_(dataset.size()) {
  if (dataset.size() <= 1) return;
  if (GridCompatible(metric, dataset.dim(), dataset.size()) && radius > 0) {
    BuildWithGrid(dataset, metric);
  } else {
    BuildBruteForce(dataset, metric);
  }
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
}

NeighborhoodGraph::NeighborhoodGraph(const MTree& tree, double radius)
    : radius_(radius), adjacency_(tree.size()) {
  std::vector<Neighbor> found;
  for (ObjectId i = 0; i < tree.size(); ++i) {
    found.clear();
    tree.RangeQueryAround(i, radius, QueryFilter::kAll, /*pruned=*/false,
                          &found);
    auto& list = adjacency_[i];
    list.reserve(found.size());
    for (const Neighbor& nb : found) list.push_back(nb.id);
    std::sort(list.begin(), list.end());
    num_edges_ += list.size();  // every edge seen from both endpoints
  }
  num_edges_ /= 2;
}

void NeighborhoodGraph::BuildBruteForce(const Dataset& dataset,
                                        const DistanceMetric& metric) {
  const size_t n = dataset.size();
  for (ObjectId i = 0; i < n; ++i) {
    for (ObjectId j = i + 1; j < n; ++j) {
      if (metric.Distance(dataset.point(i), dataset.point(j)) <= radius_) {
        adjacency_[i].push_back(j);
        adjacency_[j].push_back(i);
        ++num_edges_;
      }
    }
  }
}

void NeighborhoodGraph::BuildWithGrid(const Dataset& dataset,
                                      const DistanceMetric& metric) {
  const size_t n = dataset.size();
  const size_t dim = dataset.dim();

  // Hash points into cells of side r; any neighbor pair lies in the same or
  // an adjacent cell along every axis.
  auto cell_key = [&](const Point& p) {
    // Pack up to 3 cell coordinates (21 bits each, offset to stay positive).
    uint64_t key = 0;
    for (size_t d = 0; d < dim; ++d) {
      int64_t c = static_cast<int64_t>(std::floor(p[d] / radius_)) + (1 << 20);
      key = (key << 21) | static_cast<uint64_t>(c & ((1 << 21) - 1));
    }
    return key;
  };

  std::unordered_map<uint64_t, std::vector<ObjectId>> cells;
  cells.reserve(n);
  for (ObjectId i = 0; i < n; ++i) {
    cells[cell_key(dataset.point(i))].push_back(i);
  }

  // Enumerate each point's 3^dim neighboring cells.
  std::vector<int64_t> offsets;
  const size_t num_offsets = static_cast<size_t>(std::pow(3.0, dim));
  for (ObjectId i = 0; i < n; ++i) {
    const Point& p = dataset.point(i);
    std::vector<int64_t> base(dim);
    for (size_t d = 0; d < dim; ++d) {
      base[d] = static_cast<int64_t>(std::floor(p[d] / radius_));
    }
    for (size_t mask = 0; mask < num_offsets; ++mask) {
      uint64_t key = 0;
      size_t rem = mask;
      for (size_t d = 0; d < dim; ++d) {
        int64_t delta = static_cast<int64_t>(rem % 3) - 1;
        rem /= 3;
        int64_t c = base[d] + delta + (1 << 20);
        key = (key << 21) | static_cast<uint64_t>(c & ((1 << 21) - 1));
      }
      auto it = cells.find(key);
      if (it == cells.end()) continue;
      for (ObjectId j : it->second) {
        if (j <= i) continue;  // each unordered pair once
        if (metric.Distance(p, dataset.point(j)) <= radius_) {
          adjacency_[i].push_back(j);
          adjacency_[j].push_back(i);
          ++num_edges_;
        }
      }
    }
  }
}

size_t NeighborhoodGraph::MaxDegree() const {
  size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

bool NeighborhoodGraph::HasEdge(ObjectId a, ObjectId b) const {
  const auto& list = adjacency_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

}  // namespace disc
