#include "eval/quality.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <unordered_set>
#include <vector>

namespace disc {

double FMin(const Dataset& dataset, const DistanceMetric& metric,
            const std::vector<ObjectId>& set) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      best = std::min(best, metric.Distance(dataset.point(set[i]),
                                            dataset.point(set[j])));
    }
  }
  return best;
}

double FSum(const Dataset& dataset, const DistanceMetric& metric,
            const std::vector<ObjectId>& set) {
  double total = 0.0;
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      total += metric.Distance(dataset.point(set[i]), dataset.point(set[j]));
    }
  }
  return total;
}

double CoverageFraction(const Dataset& dataset, const DistanceMetric& metric,
                        double radius, const std::vector<ObjectId>& set) {
  if (dataset.empty()) return 1.0;
  std::vector<char> covered(dataset.size(), 0);
  for (ObjectId s : set) covered[s] = 1;
  size_t count = 0;
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    if (!covered[i]) {
      for (ObjectId s : set) {
        if (metric.Distance(dataset.point(i), dataset.point(s)) <= radius) {
          covered[i] = 1;
          break;
        }
      }
    }
    if (covered[i]) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(dataset.size());
}

double MeanRepresentationDistance(const Dataset& dataset,
                                  const DistanceMetric& metric,
                                  const std::vector<ObjectId>& set) {
  if (dataset.empty() || set.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double total = 0.0;
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (ObjectId s : set) {
      best = std::min(best,
                      metric.Distance(dataset.point(i), dataset.point(s)));
    }
    total += best;
  }
  return total / static_cast<double>(dataset.size());
}

double JaccardDistance(const std::vector<ObjectId>& a,
                       const std::vector<ObjectId>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::unordered_set<ObjectId> set_a(a.begin(), a.end());
  std::unordered_set<ObjectId> set_b(b.begin(), b.end());
  size_t intersection = 0;
  for (ObjectId id : set_a) {
    if (set_b.count(id)) ++intersection;
  }
  size_t union_size = set_a.size() + set_b.size() - intersection;
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

}  // namespace disc
