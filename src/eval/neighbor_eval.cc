#include "eval/neighbor_eval.h"

#include <algorithm>

namespace disc {

AdjacencyComparison CompareAdjacency(const AdjacencyLists& oracle,
                                     const AdjacencyLists& candidate) {
  AdjacencyComparison result;
  const size_t n = std::min(oracle.size(), candidate.size());
  for (size_t v = 0; v < n; ++v) {
    // Count each undirected edge once, at its lower endpoint. Both lists
    // are sorted, so a single merge walk classifies every edge.
    const std::vector<ObjectId>& truth = oracle[v];
    const std::vector<ObjectId>& seen = candidate[v];
    size_t i = 0;
    size_t j = 0;
    while (i < truth.size() || j < seen.size()) {
      const bool truth_next =
          j >= seen.size() || (i < truth.size() && truth[i] <= seen[j]);
      const bool seen_next =
          i >= truth.size() || (j < seen.size() && seen[j] <= truth[i]);
      if (truth_next && seen_next) {  // edge in both
        if (truth[i] > static_cast<ObjectId>(v)) {
          ++result.oracle_edges;
          ++result.candidate_edges;
        }
        ++i;
        ++j;
      } else if (truth_next) {  // oracle only
        if (truth[i] > static_cast<ObjectId>(v)) {
          ++result.oracle_edges;
          ++result.missing_edges;
        }
        ++i;
      } else {  // candidate only
        if (seen[j] > static_cast<ObjectId>(v)) {
          ++result.candidate_edges;
          ++result.false_edges;
        }
        ++j;
      }
    }
  }
  result.recall =
      result.oracle_edges == 0
          ? 1.0
          : 1.0 - static_cast<double>(result.missing_edges) /
                      static_cast<double>(result.oracle_edges);
  return result;
}

SolutionGraphQuality EvaluateSolutionOnOracle(
    const AdjacencyLists& oracle, const std::vector<ObjectId>& solution) {
  SolutionGraphQuality quality;
  const size_t n = oracle.size();
  if (n == 0) {
    quality.coverage = 1.0;
    return quality;
  }
  std::vector<char> member(n, 0);
  for (ObjectId id : solution) member[id] = 1;

  size_t covered = 0;
  for (size_t v = 0; v < n; ++v) {
    if (member[v]) {
      ++covered;
      continue;
    }
    for (ObjectId u : oracle[v]) {
      if (member[u]) {
        ++covered;
        break;
      }
    }
  }
  quality.coverage = static_cast<double>(covered) / static_cast<double>(n);

  if (!solution.empty()) {
    size_t violations = 0;
    for (ObjectId id : solution) {
      for (ObjectId u : oracle[id]) {
        if (member[u]) {
          ++violations;
          break;
        }
      }
    }
    quality.independence_violation_rate =
        static_cast<double>(violations) / static_cast<double>(solution.size());
  }
  return quality;
}

}  // namespace disc
