// Solution-quality measures used across the experimental evaluation:
// the f_Min / f_Sum diversity objectives (§4), coverage statistics, and the
// Jaccard distance between solutions (Figures 13/16: how much of the old
// result a zooming operation preserves).

#ifndef DISC_EVAL_QUALITY_H_
#define DISC_EVAL_QUALITY_H_

#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"

namespace disc {

/// Minimum pairwise distance within `set` (+inf for |set| < 2).
double FMin(const Dataset& dataset, const DistanceMetric& metric,
            const std::vector<ObjectId>& set);

/// Sum of pairwise distances within `set`.
double FSum(const Dataset& dataset, const DistanceMetric& metric,
            const std::vector<ObjectId>& set);

/// Fraction of dataset objects within `radius` of some member of `set`
/// (members cover themselves). 1.0 means full coverage.
double CoverageFraction(const Dataset& dataset, const DistanceMetric& metric,
                        double radius, const std::vector<ObjectId>& set);

/// Mean distance from each object to its closest member of `set`
/// (the k-medoids objective; lower is a tighter representation).
double MeanRepresentationDistance(const Dataset& dataset,
                                  const DistanceMetric& metric,
                                  const std::vector<ObjectId>& set);

/// Jaccard distance 1 - |A ∩ B| / |A ∪ B|; 0 when both sets are empty.
double JaccardDistance(const std::vector<ObjectId>& a,
                       const std::vector<ObjectId>& b);

}  // namespace disc

#endif  // DISC_EVAL_QUALITY_H_
