// Console table + CSV emission used by the benchmark harness and examples.
// Every bench prints an aligned table mirroring the paper's rows and also
// writes a machine-readable CSV next to the binary for re-plotting.

#ifndef DISC_EVAL_TABLE_H_
#define DISC_EVAL_TABLE_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace disc {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string (title, header, separator, rows).
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

  /// Writes header + rows as CSV. Returns IOError when the path is
  /// unwritable.
  Status WriteCsv(const std::string& path) const;

  /// Writes the table as a machine-readable JSON object
  /// {"title": ..., "header": [...], "rows": [[...], ...]} with all cells as
  /// strings, for perf-trajectory tooling (see BUILDING.md). Returns IOError
  /// when the path is unwritable.
  Status WriteJson(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (trailing zeros
/// trimmed), e.g. FormatDouble(0.012345, 3) == "0.0123".
std::string FormatDouble(double value, int digits = 6);

}  // namespace disc

#endif  // DISC_EVAL_TABLE_H_
