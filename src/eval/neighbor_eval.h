// Quality measures for pluggable neighbor backends (neighbor/backend.h):
// how close an approximate adjacency structure comes to the exact oracle,
// and what that gap does to a solution computed on the approximate graph.
//
// Everything here operates on plain AdjacencyLists so the eval layer stays
// independent of how the structures were built — tests and benches build the
// oracle with the exact adjacency builders and candidates with any backend,
// then meet in the middle here. The LSH backends verify every candidate with
// an exact distance, so their lists are subsets of the oracle's; recall
// (missed true edges) is their only deviation and false_edges doubles as a
// corruption detector.

#ifndef DISC_EVAL_NEIGHBOR_EVAL_H_
#define DISC_EVAL_NEIGHBOR_EVAL_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "neighbor/adjacency.h"

namespace disc {

/// Edge-level agreement between a candidate adjacency structure and the
/// exact oracle over the same objects. Undirected edges are counted once.
struct AdjacencyComparison {
  uint64_t oracle_edges = 0;
  uint64_t candidate_edges = 0;
  /// Oracle edges the candidate lacks (the recall loss).
  uint64_t missing_edges = 0;
  /// Candidate edges the oracle lacks. Always 0 for the distance-verified
  /// backends; nonzero means a corrupted build, not an approximation.
  uint64_t false_edges = 0;
  /// 1 - missing_edges / oracle_edges (1.0 for an edgeless oracle).
  double recall = 1.0;

  /// Total disagreement — the metric the CI exact-family gate pins to 0.
  uint64_t mismatches() const { return missing_edges + false_edges; }
};

/// Compares `candidate` against `oracle`. Both must hold one list per
/// object over the same object universe, each list sorted ascending and
/// excluding the object itself (the AdjacencyLists contract).
AdjacencyComparison CompareAdjacency(const AdjacencyLists& oracle,
                                     const AdjacencyLists& candidate);

/// How a solution computed on an approximate graph holds up under the TRUE
/// neighborhood structure. A missed edge can break either r-DisC guarantee:
/// an uncovered object (coverage < 1) or two solution members within r of
/// each other (independence violation).
struct SolutionGraphQuality {
  /// Fraction of objects that are in the solution or oracle-adjacent to a
  /// member (Definition 1 coverage, judged on the oracle).
  double coverage = 0.0;
  /// Fraction of solution members with another member in their oracle
  /// neighborhood (0 for a genuinely independent solution).
  double independence_violation_rate = 0.0;
};

/// Judges `solution` on the oracle adjacency structure. Solution ids must
/// be valid indices into `oracle`.
SolutionGraphQuality EvaluateSolutionOnOracle(
    const AdjacencyLists& oracle, const std::vector<ObjectId>& solution);

}  // namespace disc

#endif  // DISC_EVAL_NEIGHBOR_EVAL_H_
