#include "eval/table.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.h"

namespace disc {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  // Column widths over header + rows.
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "  ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  if (!header_.empty()) {
    out += render_row(header_);
    size_t total = 0;
    for (size_t i = 0; i < columns; ++i) total += widths[i] + (i > 0 ? 2 : 0);
    out += std::string(total, '-') + "\n";
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

Status TablePrinter::WriteCsv(const std::string& path) const {
  CsvWriter writer(path);
  DISC_RETURN_NOT_OK(writer.status());
  if (!header_.empty()) writer.WriteRow(header_);
  for (const auto& row : rows_) writer.WriteRow(row);
  writer.Close();
  return writer.status();
}

namespace {

// Minimal JSON string escaping: quotes, backslashes, and control characters.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendJsonStringArray(const std::vector<std::string>& cells,
                           std::string* out) {
  *out += '[';
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += '"' + JsonEscape(cells[i]) + '"';
  }
  *out += ']';
}

}  // namespace

Status TablePrinter::WriteJson(const std::string& path) const {
  std::string out = "{\n  \"title\": \"" + JsonEscape(title_) + "\",\n";
  out += "  \"header\": ";
  AppendJsonStringArray(header_, &out);
  out += ",\n  \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    AppendJsonStringArray(rows_[i], &out);
  }
  out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != out.size() || !closed) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace disc
