#include "eval/table.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.h"

namespace disc {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  // Column widths over header + rows.
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "  ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  if (!header_.empty()) {
    out += render_row(header_);
    size_t total = 0;
    for (size_t i = 0; i < columns; ++i) total += widths[i] + (i > 0 ? 2 : 0);
    out += std::string(total, '-') + "\n";
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

Status TablePrinter::WriteCsv(const std::string& path) const {
  CsvWriter writer(path);
  DISC_RETURN_NOT_OK(writer.status());
  if (!header_.empty()) writer.WriteRow(header_);
  for (const auto& row : rows_) writer.WriteRow(row);
  writer.Close();
  return writer.status();
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace disc
