#include "data/cities.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/random.h"

namespace disc {

namespace {

constexpr uint64_t kCitiesSeed = 0x9e3779b97f4a7c15ULL;

// Mimics a settlement distribution: the key property of the real dataset
// (Greek cities normalized to the country's bounding box, which is mostly
// sea and mountains) is *extreme concentration* — settlements occupy a few
// percent of the box, along coastal arcs and valley corridors, and are
// additionally micro-clustered (villages a few hundred meters apart, i.e.
// within ~0.001 of the normalized map). The constants below are tuned so
// Basic-DisC solution sizes across r = 0.001..0.015 land in the ranges the
// paper reports in Table 3(c).
void EmitCluster(Dataset* dataset, Random* rng, double cx, double cy,
                 double sx, double sy, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    double x = std::clamp(cx + rng->Gaussian(0.0, sx), 0.0, 1.0);
    double y = std::clamp(cy + rng->Gaussian(0.0, sy), 0.0, 1.0);
    (void)dataset->Add(Point{x, y});
  }
}

void EmitArc(Dataset* dataset, Random* rng, double cx, double cy, double radius,
             double from_angle, double to_angle, double jitter, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    double t = rng->Uniform01();
    double angle = from_angle + t * (to_angle - from_angle);
    double x = cx + radius * std::cos(angle) + rng->Gaussian(0.0, jitter);
    double y = cy + radius * std::sin(angle) + rng->Gaussian(0.0, jitter);
    (void)dataset->Add(
        Point{std::clamp(x, 0.0, 1.0), std::clamp(y, 0.0, 1.0)});
  }
}

// A corridor of villages along the segment between two anchor points.
void EmitCorridor(Dataset* dataset, Random* rng, double x1, double y1,
                  double x2, double y2, double jitter, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    double t = rng->Uniform01();
    double x = x1 + t * (x2 - x1) + rng->Gaussian(0.0, jitter);
    double y = y1 + t * (y2 - y1) + rng->Gaussian(0.0, jitter);
    (void)dataset->Add(
        Point{std::clamp(x, 0.0, 1.0), std::clamp(y, 0.0, 1.0)});
  }
}

}  // namespace

Dataset MakeCitiesDataset() {
  Random rng(kCitiesSeed);
  Dataset dataset(2);

  // Two metropolitan areas: very dense cores.
  EmitCluster(&dataset, &rng, 0.62, 0.38, 0.006, 0.005, 700);
  EmitCluster(&dataset, &rng, 0.48, 0.80, 0.004, 0.004, 400);

  // Regional towns with village halos.
  struct Town {
    double x, y;
    size_t core, halo;
  };
  const Town towns[] = {
      {0.30, 0.62, 90, 54}, {0.22, 0.45, 68, 45}, {0.70, 0.62, 84, 50},
      {0.40, 0.30, 62, 40}, {0.55, 0.55, 78, 45}, {0.78, 0.25, 51, 36},
      {0.35, 0.86, 68, 36}, {0.15, 0.74, 45, 32}, {0.67, 0.88, 45, 29},
  };
  for (const Town& t : towns) {
    EmitCluster(&dataset, &rng, t.x, t.y, 0.0025, 0.0025, t.core);
    EmitCluster(&dataset, &rng, t.x, t.y, 0.004, 0.004, t.halo);
  }

  // Coastline arcs of fishing towns.
  EmitArc(&dataset, &rng, 0.50, 0.50, 0.42, -0.40, 0.11, 0.002, 160);
  EmitArc(&dataset, &rng, 0.45, 0.55, 0.33, 2.0, 2.48, 0.002, 120);

  // Valley corridors connecting towns.
  EmitCorridor(&dataset, &rng, 0.30, 0.62, 0.22, 0.45, 0.002, 70);
  EmitCorridor(&dataset, &rng, 0.62, 0.38, 0.70, 0.62, 0.002, 70);

  // Island chains: tiny clusters in the "sea" corner.
  for (int i = 0; i < 18; ++i) {
    double cx = rng.Uniform(0.55, 0.98);
    double cy = rng.Uniform(0.02, 0.30);
    EmitCluster(&dataset, &rng, cx, cy, 0.0015, 0.0015,
                3 + static_cast<size_t>(rng.UniformInt(6)));
  }

  // Remote outliers keep the normalized box honest (border posts, islets).
  for (int i = 0; i < 20; ++i) {
    (void)dataset.Add(Point{rng.Uniform01(), rng.Uniform01()});
  }

  // Micro-clustering: the remaining budget becomes satellite villages near
  // an existing settlement. Two scales shape the r=0.001 column of Table
  // 3(c): twin villages (~0.0006 away, absorbed by their parent's
  // representative) and nearby villages (~0.0018 away, needing their own
  // representative at r=0.001 but merging by r=0.0025).
  const size_t base = dataset.size();
  while (dataset.size() < kCitiesCardinality) {
    ObjectId parent = static_cast<ObjectId>(rng.UniformInt(base));
    const Point& p = dataset.point(parent);
    double sigma = rng.Uniform01() < 0.52 ? 0.0006 : 0.0018;
    double x = std::clamp(p[0] + rng.Gaussian(0.0, sigma), 0.0, 1.0);
    double y = std::clamp(p[1] + rng.Gaussian(0.0, sigma), 0.0, 1.0);
    (void)dataset.Add(Point{x, y});
  }

  dataset.NormalizeToUnitBox();
  return dataset;
}

Result<Dataset> LoadCitiesCsv(const std::string& path) {
  DISC_ASSIGN_OR_RETURN(Dataset dataset, LoadPointsCsv(path));
  if (dataset.dim() != 2) {
    return Status::InvalidArgument(
        "cities CSV must have exactly 2 columns, got " +
        std::to_string(dataset.dim()));
  }
  dataset.NormalizeToUnitBox();
  return dataset;
}

}  // namespace disc
