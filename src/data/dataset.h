// Dataset: an ordered collection of Points plus optional schema metadata.
//
// The order of points is significant: object ids are dense indexes into the
// dataset, and deterministic algorithms (M-tree build, Basic-DisC leaf-order
// traversal, tie-breaking) are defined relative to it.

#ifndef DISC_DATA_DATASET_H_
#define DISC_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "metric/point.h"
#include "util/status.h"

namespace disc {

/// A query result set P: the input to every diversification algorithm.
class Dataset {
 public:
  Dataset() = default;

  /// Creates a dataset with the given dimensionality and no points.
  explicit Dataset(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const Point& point(ObjectId id) const { return points_[id]; }
  const std::vector<Point>& points() const { return points_; }

  /// Appends a point. Returns InvalidArgument on dimension mismatch.
  Status Add(Point p);

  /// Optional human-readable label per point (e.g. a city or camera name).
  /// Empty when the dataset has no labels.
  const std::string& label(ObjectId id) const;
  void SetLabel(ObjectId id, std::string label);
  bool has_labels() const { return !labels_.empty(); }

  /// Optional attribute (column) names; empty when unset.
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  void SetAttributeNames(std::vector<std::string> names) {
    attribute_names_ = std::move(names);
  }

  /// Min-max normalizes every dimension into [0, 1] in place, matching the
  /// paper's preprocessing of the Cities dataset. Constant dimensions map
  /// to 0. No-op on empty datasets.
  void NormalizeToUnitBox();

  /// Per-dimension [min, max] over all points. Requires a non-empty dataset.
  void BoundingBox(std::vector<double>* mins, std::vector<double>* maxs) const;

  /// Largest pairwise distance estimate via the double-sweep heuristic
  /// (exact for our use: choosing the initial radius scale in examples).
  double DiameterEstimate(const class DistanceMetric& metric) const;

 private:
  size_t dim_ = 0;
  std::vector<Point> points_;
  std::vector<std::string> labels_;
  std::vector<std::string> attribute_names_;
};

/// Loads a headerless numeric CSV (one point per row) as a Dataset.
Result<Dataset> LoadPointsCsv(const std::string& path);

/// Writes points one per row; `selected` (optional) adds a final 0/1 column
/// marking membership, which the example apps use to emit plottable figures.
Status SavePointsCsv(const std::string& path, const Dataset& dataset,
                     const std::vector<ObjectId>* selected = nullptr);

}  // namespace disc

#endif  // DISC_DATA_DATASET_H_
