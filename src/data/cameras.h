// "Cameras" dataset substitute.
//
// The paper evaluates on 579 digital cameras with 7 categorical attributes
// (brand, model, megapixels, zoom, interface, battery, storage) scraped from
// acme.com/digicams, compared under Hamming distance with radii 1..6. That
// catalog is not redistributable, so this module synthesizes a deterministic
// stand-in with the same shape: 579 items, 7 categorical attributes whose
// cardinalities and correlations mirror a real camera catalog (brands have
// house styles: battery/storage/interface choices correlate with brand and
// era). See DESIGN.md §5 for the substitution rationale.

#ifndef DISC_DATA_CAMERAS_H_
#define DISC_DATA_CAMERAS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace disc {

/// Number of cameras in the paper's dataset.
inline constexpr size_t kCamerasCardinality = 579;

/// Number of categorical attributes per camera.
inline constexpr size_t kCamerasAttributes = 7;

/// Returns the synthetic camera catalog: 579 points in 7 categorical
/// dimensions, each coordinate an integer category code (compare with
/// HammingMetric). Attribute names and a human-readable label per camera
/// ("<Brand> <Model>") are attached to the dataset.
Dataset MakeCamerasDataset();

/// Decodes one attribute value of a camera point back to its display string,
/// e.g. CameraAttributeValue(ds, id, 0) -> "Canon".
std::string CameraAttributeValue(const Dataset& dataset, ObjectId id,
                                 size_t attribute);

/// Display names of the 7 attributes, in dimension order.
const std::vector<std::string>& CameraAttributeNames();

}  // namespace disc

#endif  // DISC_DATA_CAMERAS_H_
