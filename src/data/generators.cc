#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/random.h"

namespace disc {

Dataset MakeUniformDataset(size_t n, size_t dim, uint64_t seed) {
  Random rng(seed);
  Dataset dataset(dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> coords(dim);
    for (size_t d = 0; d < dim; ++d) coords[d] = rng.Uniform01();
    (void)dataset.Add(Point(std::move(coords)));
  }
  return dataset;
}

Dataset MakeClusteredDataset(size_t n, size_t dim, uint64_t seed,
                             const ClusteredOptions& options) {
  Random rng(seed);
  Dataset dataset(dim);
  if (n == 0 || options.num_clusters == 0) return dataset;

  // Cluster centers away from the boundary so spheres mostly fit in the box.
  std::vector<Point> centers;
  centers.reserve(options.num_clusters);
  for (size_t c = 0; c < options.num_clusters; ++c) {
    std::vector<double> coords(dim);
    for (size_t d = 0; d < dim; ++d) coords[d] = rng.Uniform(0.1, 0.9);
    centers.emplace_back(std::move(coords));
  }

  // "Clusters of different sizes": both cardinality weights and radii vary.
  std::vector<double> weights(options.num_clusters);
  std::vector<double> radii(options.num_clusters);
  double total_weight = 0.0;
  for (size_t c = 0; c < options.num_clusters; ++c) {
    weights[c] = rng.Uniform(0.5, 2.0);
    total_weight += weights[c];
    radii[c] = options.spread * rng.Uniform(0.5, 2.0);
  }

  size_t noise = static_cast<size_t>(std::floor(n * options.noise_fraction));
  size_t clustered = n - noise;

  size_t emitted = 0;
  for (size_t c = 0; c < options.num_clusters && emitted < clustered; ++c) {
    size_t count = (c + 1 == options.num_clusters)
                       ? clustered - emitted
                       : std::min(clustered - emitted,
                                  static_cast<size_t>(std::llround(
                                      clustered * weights[c] / total_weight)));
    for (size_t i = 0; i < count; ++i) {
      std::vector<double> coords(dim);
      for (size_t d = 0; d < dim; ++d) {
        double v = centers[c][d] + rng.Gaussian(0.0, radii[c]);
        coords[d] = std::clamp(v, 0.0, 1.0);
      }
      (void)dataset.Add(Point(std::move(coords)));
      ++emitted;
    }
  }
  for (size_t i = 0; i < noise; ++i) {
    std::vector<double> coords(dim);
    for (size_t d = 0; d < dim; ++d) coords[d] = rng.Uniform01();
    (void)dataset.Add(Point(std::move(coords)));
  }
  return dataset;
}

Dataset MakeGridDataset(size_t side) {
  Dataset dataset(2);
  if (side == 0) return dataset;
  double step = side > 1 ? 1.0 / static_cast<double>(side - 1) : 0.0;
  for (size_t y = 0; y < side; ++y) {
    for (size_t x = 0; x < side; ++x) {
      (void)dataset.Add(Point{x * step, y * step});
    }
  }
  return dataset;
}

}  // namespace disc
