#include "data/dataset.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "metric/metric.h"
#include "util/csv.h"

namespace disc {

namespace {
const std::string kEmptyLabel;
}  // namespace

Status Dataset::Add(Point p) {
  if (dim_ == 0 && points_.empty()) {
    dim_ = p.dim();
  }
  if (p.dim() != dim_) {
    return Status::InvalidArgument(
        "point dimension " + std::to_string(p.dim()) +
        " does not match dataset dimension " + std::to_string(dim_));
  }
  points_.push_back(std::move(p));
  return Status::OK();
}

const std::string& Dataset::label(ObjectId id) const {
  if (id < labels_.size()) return labels_[id];
  return kEmptyLabel;
}

void Dataset::SetLabel(ObjectId id, std::string label) {
  if (labels_.size() <= id) labels_.resize(points_.size());
  labels_[id] = std::move(label);
}

void Dataset::NormalizeToUnitBox() {
  if (points_.empty()) return;
  std::vector<double> mins, maxs;
  BoundingBox(&mins, &maxs);
  for (Point& p : points_) {
    for (size_t d = 0; d < dim_; ++d) {
      double range = maxs[d] - mins[d];
      p[d] = range > 0 ? (p[d] - mins[d]) / range : 0.0;
    }
  }
}

void Dataset::BoundingBox(std::vector<double>* mins,
                          std::vector<double>* maxs) const {
  assert(!points_.empty());
  mins->assign(dim_, std::numeric_limits<double>::infinity());
  maxs->assign(dim_, -std::numeric_limits<double>::infinity());
  for (const Point& p : points_) {
    for (size_t d = 0; d < dim_; ++d) {
      (*mins)[d] = std::min((*mins)[d], p[d]);
      (*maxs)[d] = std::max((*maxs)[d], p[d]);
    }
  }
}

double Dataset::DiameterEstimate(const DistanceMetric& metric) const {
  if (points_.size() < 2) return 0.0;
  // Double sweep: farthest point from points_[0], then farthest from that.
  auto farthest_from = [&](ObjectId from) {
    ObjectId best = from;
    double best_dist = -1.0;
    for (ObjectId i = 0; i < points_.size(); ++i) {
      double d = metric.Distance(points_[from], points_[i]);
      if (d > best_dist) {
        best_dist = d;
        best = i;
      }
    }
    return std::make_pair(best, best_dist);
  };
  auto [a, unused] = farthest_from(0);
  (void)unused;
  auto [b, diameter] = farthest_from(a);
  (void)b;
  return diameter;
}

Result<Dataset> LoadPointsCsv(const std::string& path) {
  DISC_ASSIGN_OR_RETURN(auto rows, ReadCsv(path));
  Dataset dataset;
  for (size_t row_idx = 0; row_idx < rows.size(); ++row_idx) {
    const auto& row = rows[row_idx];
    std::vector<double> coords;
    coords.reserve(row.size());
    for (const std::string& field : row) {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || (end && *end != '\0')) {
        return Status::Corruption("non-numeric field '" + field + "' at row " +
                                  std::to_string(row_idx) + " in " + path);
      }
      coords.push_back(v);
    }
    DISC_RETURN_NOT_OK(dataset.Add(Point(std::move(coords))));
  }
  return dataset;
}

Status SavePointsCsv(const std::string& path, const Dataset& dataset,
                     const std::vector<ObjectId>* selected) {
  CsvWriter writer(path);
  DISC_RETURN_NOT_OK(writer.status());
  std::unordered_set<ObjectId> chosen;
  if (selected != nullptr) chosen.insert(selected->begin(), selected->end());
  std::vector<std::string> row;
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    row.clear();
    const Point& p = dataset.point(i);
    for (size_t d = 0; d < dataset.dim(); ++d) {
      row.push_back(std::to_string(p[d]));
    }
    if (selected != nullptr) {
      row.push_back(chosen.count(i) ? "1" : "0");
    }
    writer.WriteRow(row);
  }
  writer.Close();
  return writer.status();
}

}  // namespace disc
