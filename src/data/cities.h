// "Cities" dataset substitute.
//
// The paper evaluates on 5922 Greek cities/villages (2-D geographic points
// from rtreeportal.org, normalized to [0,1]). That file is not redistributable
// here, so this module deterministically synthesizes a stand-in with the same
// experimental role: a non-uniform real-world-like 2-D point cloud with dense
// urban clusters, sparse rural interior, coastal arcs and island chains, plus
// isolated outliers. Cardinality matches the original (5922 points). See
// DESIGN.md §5 for the substitution rationale.
//
// If a real cities CSV (two numeric columns) is available, LoadCitiesCsv()
// loads and normalizes it so all experiments can run on the original data.

#ifndef DISC_DATA_CITIES_H_
#define DISC_DATA_CITIES_H_

#include <cstddef>
#include <string>

#include "data/dataset.h"

namespace disc {

/// Number of points in the paper's Cities dataset.
inline constexpr size_t kCitiesCardinality = 5922;

/// Deterministic synthetic stand-in for the Greek cities dataset,
/// normalized to [0,1]^2. Always returns the same 5922 points.
Dataset MakeCitiesDataset();

/// Loads a 2-column numeric CSV of coordinates and normalizes it to [0,1]^2.
Result<Dataset> LoadCitiesCsv(const std::string& path);

}  // namespace disc

#endif  // DISC_DATA_CITIES_H_
