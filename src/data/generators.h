// Synthetic workload generators matching the paper's §6 setup:
// multi-dimensional objects with coordinates in [0,1], either uniformly
// distributed ("Uniform") or forming hyperspherical clusters of different
// sizes ("Clustered").

#ifndef DISC_DATA_GENERATORS_H_
#define DISC_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>

#include "data/dataset.h"

namespace disc {

/// Parameters for MakeClusteredDataset. Defaults are tuned so DisC solution
/// sizes on the 10000-point 2-D instance match the ranges of Table 3(b).
struct ClusteredOptions {
  /// Number of hyperspherical clusters.
  size_t num_clusters = 10;
  /// Std-dev of the Gaussian radial spread of each cluster, before the
  /// per-cluster size jitter.
  double spread = 0.025;
  /// Fraction of points scattered uniformly as background noise/outliers.
  double noise_fraction = 0.005;
};

/// n points uniformly distributed in [0,1]^dim.
Dataset MakeUniformDataset(size_t n, size_t dim, uint64_t seed);

/// n points in [0,1]^dim forming hyperspherical clusters of different sizes
/// (cluster cardinalities and radii vary), plus a small uniform noise floor.
Dataset MakeClusteredDataset(size_t n, size_t dim, uint64_t seed,
                             const ClusteredOptions& options = {});

/// Evenly spaced grid in [0,1]^2 with side*side points; used by tests and
/// bounds checks where exact neighbor structure must be predictable.
Dataset MakeGridDataset(size_t side);

}  // namespace disc

#endif  // DISC_DATA_GENERATORS_H_
