#include "data/cameras.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace disc {

namespace {

constexpr uint64_t kCamerasSeed = 0x5d1c0ffee1234567ULL;

// Attribute vocabularies. Cardinalities mirror the real acme.com catalog's
// scale (many brands and model lines, a handful of interface/battery/storage
// options) so Hamming neighborhood sizes behave like the paper's.
const std::vector<std::string>& Brands() {
  static const std::vector<std::string> v = {
      "Canon",  "Nikon",   "Sony",   "FujiFilm", "Olympus", "Kodak",
      "Pentax", "Ricoh",   "Epson",  "Toshiba",  "Casio",   "Panasonic",
      "Minolta", "Samsung", "Leica",  "HP",       "Konica",  "Agfa",
      "Vivitar", "Sanyo"};
  return v;
}

const std::vector<std::string>& ModelLines() {
  static const std::vector<std::string> v = {
      "PowerShot", "Coolpix", "Mavica",  "FinePix", "Camedia", "EasyShare",
      "Optio",     "RDC",     "PhotoPC", "PDR",     "Exilim",  "Lumix",
      "Dimage",    "Digimax", "Digilux", "PhotoSmart"};
  return v;
}

const std::vector<std::string>& MegapixelClasses() {
  static const std::vector<std::string> v = {"<1MP", "1-2MP", "2-3MP", "3-4MP",
                                             "4-6MP", "6-8MP", ">8MP"};
  return v;
}

const std::vector<std::string>& ZoomClasses() {
  static const std::vector<std::string> v = {"none", "2x", "3x",
                                             "4-5x", "6-10x", ">10x"};
  return v;
}

const std::vector<std::string>& Interfaces() {
  static const std::vector<std::string> v = {"serial", "serial+USB", "USB",
                                             "USB+FireWire", "none"};
  return v;
}

const std::vector<std::string>& Batteries() {
  static const std::vector<std::string> v = {"AA", "AA+lithium", "lithium",
                                             "NiMH", "NiCd"};
  return v;
}

const std::vector<std::string>& Storages() {
  static const std::vector<std::string> v = {
      "CompactFlash", "SmartMedia",   "MemoryStick", "SecureDigital",
      "MultiMediaCard+SD", "xD-PictureCard", "internal"};
  return v;
}

const std::vector<const std::vector<std::string>*>& Vocabularies() {
  static const std::vector<const std::vector<std::string>*> v = {
      &Brands(),     &ModelLines(), &MegapixelClasses(), &ZoomClasses(),
      &Interfaces(), &Batteries(),  &Storages()};
  return v;
}

// Weighted choice helper: picks an index according to `weights`.
size_t WeightedPick(Random* rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = rng->Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (x < weights[i]) return i;
    x -= weights[i];
  }
  return weights.size() - 1;
}

}  // namespace

const std::vector<std::string>& CameraAttributeNames() {
  static const std::vector<std::string> v = {
      "brand", "model-line", "megapixels", "zoom",
      "interface", "battery", "storage"};
  return v;
}

Dataset MakeCamerasDataset() {
  Random rng(kCamerasSeed);
  Dataset dataset(kCamerasAttributes);

  const size_t num_brands = Brands().size();

  // Brand popularity follows a rough power law (a few brands dominate).
  std::vector<double> brand_weights(num_brands);
  for (size_t b = 0; b < num_brands; ++b) {
    brand_weights[b] = 1.0 / static_cast<double>(b + 1);
  }

  // "House style" per brand: preferred model line, interface, battery and
  // storage, plus an era bias (older brands skew to low megapixels / serial).
  struct HouseStyle {
    size_t model_line;
    size_t interface;
    size_t battery;
    size_t storage;
    double era;  // 0 = early era, 1 = late era
  };
  std::vector<HouseStyle> styles(num_brands);
  for (size_t b = 0; b < num_brands; ++b) {
    styles[b].model_line = rng.UniformInt(ModelLines().size());
    styles[b].interface = rng.UniformInt(Interfaces().size());
    styles[b].battery = rng.UniformInt(Batteries().size());
    styles[b].storage = rng.UniformInt(Storages().size());
    styles[b].era = rng.Uniform01();
  }

  auto biased_pick = [&](size_t preferred, size_t cardinality,
                         double loyalty) -> size_t {
    if (rng.Uniform01() < loyalty) return preferred;
    return rng.UniformInt(cardinality);
  };

  for (size_t i = 0; i < kCamerasCardinality; ++i) {
    size_t brand = WeightedPick(&rng, brand_weights);
    const HouseStyle& style = styles[brand];

    size_t model_line = biased_pick(style.model_line, ModelLines().size(), 0.6);

    // Era drifts per camera around the brand's center; megapixels and zoom
    // grow with era, keeping the attributes realistically correlated.
    double era = std::clamp(style.era + rng.Gaussian(0.0, 0.25), 0.0, 1.0);
    size_t mp = std::min<size_t>(
        MegapixelClasses().size() - 1,
        static_cast<size_t>(era * (MegapixelClasses().size() - 1) +
                            rng.Uniform(0.0, 1.5)));
    size_t zoom = std::min<size_t>(
        ZoomClasses().size() - 1,
        static_cast<size_t>(era * 3.0 + rng.Uniform(0.0, 2.0)));

    size_t interface = biased_pick(style.interface, Interfaces().size(), 0.5);
    size_t battery = biased_pick(style.battery, Batteries().size(), 0.5);
    size_t storage = biased_pick(style.storage, Storages().size(), 0.55);

    (void)dataset.Add(Point{static_cast<double>(brand),
                            static_cast<double>(model_line),
                            static_cast<double>(mp), static_cast<double>(zoom),
                            static_cast<double>(interface),
                            static_cast<double>(battery),
                            static_cast<double>(storage)});
    dataset.SetLabel(static_cast<ObjectId>(i),
                     Brands()[brand] + " " + ModelLines()[model_line] + "-" +
                         std::to_string(100 + i));
  }

  dataset.SetAttributeNames(CameraAttributeNames());
  return dataset;
}

std::string CameraAttributeValue(const Dataset& dataset, ObjectId id,
                                 size_t attribute) {
  assert(attribute < kCamerasAttributes);
  const auto& vocab = *Vocabularies()[attribute];
  size_t code = static_cast<size_t>(dataset.point(id)[attribute]);
  assert(code < vocab.size());
  return vocab[code];
}

}  // namespace disc
