// DiscEngine: the session-oriented façade over the whole library.
//
// Every consumer used to hand-assemble the same pipeline — load a dataset,
// pick a metric, build an MTree, run an algorithm, then issue zoom calls
// whose correctness silently depended on the colors / closest-black state
// the previous run left in the tree (§5.2). The engine owns that state
// machine end to end: construct one from an EngineConfig, then issue
// Diversify and Zoom requests against it.
//
//   auto engine = DiscEngine::Create(config);         // dataset + index
//   auto result = (*engine)->Diversify(request);      // colors now valid
//   auto finer  = (*engine)->Zoom(zoom_request);      // adapts, no rebuild
//
// What the engine tracks between calls:
//  * which solution (algorithm, radius) the tree colors currently encode,
//  * whether closest-black distances are exact for it (§5.2: pruned runs
//    and greedy zoom passes leave them stale; a zoom-in recomputes on
//    demand or fails, per request),
//  * a bounded cache of recent solutions keyed by (algorithm, radius,
//    pruned) — a repeated Diversify restores the cached colors and returns
//    with zero additional node accesses,
//  * white-neighborhood counts per radius, shared across algorithms.
//
// Misuse that used to be undefined behavior at the core layer (zooming with
// no solution, zooming a covering-only Greedy-C/Fast-C result, zooming on
// stale distances) is surfaced here as Status::FailedPrecondition.
//
// The engine is externally single-threaded by design: one engine == one
// session. A server shards sessions across engines (one per loaded
// dataset). Internally the engine may fan read-only passes (the per-radius
// neighborhood counts) out across a thread pool sized by
// EngineConfig::threads; results and reported stats are byte-identical for
// every thread count (util/parallel.h documents the determinism contract).

#ifndef DISC_ENGINE_ENGINE_H_
#define DISC_ENGINE_ENGINE_H_

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/disc_algorithms.h"
#include "core/weighted.h"
#include "core/zoom.h"
#include "data/dataset.h"
#include "engine/config.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "util/status.h"

namespace disc {

class ThreadPool;          // util/parallel.h
class NeighborhoodGraph;   // graph/neighborhood.h

/// Solution-quality numbers computed on demand (request.compute_quality),
/// directly from the dataset — they cost distance computations but no index
/// accesses.
struct QualityMetrics {
  /// Minimum pairwise distance within the solution (+inf below 2 members).
  double f_min = 0.0;
  /// Fraction of objects within the verification radius of the solution.
  double coverage = 0.0;
  /// Definition-1 verification: OK, or a description of the violation.
  /// DisC-family solutions verify independence + coverage; covering-only
  /// solutions (Greedy-C / Fast-C, multi-radius) verify coverage; local
  /// zooms verify coverage at the larger of the two radii (the region and
  /// its complement hold guarantees at different radii).
  Status verification;
};

/// A diversification request: which algorithm at which radius.
struct DiversifyRequest {
  Algorithm algorithm = Algorithm::kGreedy;
  double radius = 0.0;
  /// The §5.1 pruning rule (skip subtrees with no white objects). Cheaper,
  /// but leaves closest-black distances stale — a later Zoom recomputes
  /// them (see ZoomRequest::distances). Ignored by Greedy-C / Fast-C.
  bool pruned = true;
  /// Attach QualityMetrics to the response.
  bool compute_quality = false;
};

/// What Zoom may do about stale closest-black distances (§5.2) left behind
/// by a pruned run or a greedy zoom pass. Only zooming in reads them;
/// zooming out rebuilds them and ignores this policy.
enum class DistancePolicy {
  /// Recompute them first when needed (charged to the response's stats).
  kAuto,
  /// Fail with FailedPrecondition instead of paying the recomputation.
  kRequireExact,
};

/// An adaptive-radius request against the current solution. The direction
/// is inferred: radius below the session radius zooms in, above zooms out.
/// Setting `center` switches to local zooming (§3): only the center's
/// old-radius neighborhood is re-diversified, the rest of the solution is
/// kept — after which the session holds a mixed-radius solution and further
/// zooming requires a fresh Diversify.
struct ZoomRequest {
  double radius = 0.0;
  /// Greedy candidate selection (Greedy-Zoom-In / greedy second pass).
  bool greedy = true;
  /// First-pass selection order for zooming out.
  ZoomOutVariant zoom_out_variant = ZoomOutVariant::kGreedyMostRed;
  /// Local zooming around this object when set.
  std::optional<ObjectId> center;
  DistancePolicy distances = DistancePolicy::kAuto;
  bool compute_quality = false;
};

/// Weighted DisC (§8): a valid r-DisC subset biased toward heavy objects.
/// Runs on the dataset directly and leaves the session state untouched.
struct WeightedRequest {
  double radius = 0.0;
  /// One strictly positive weight per object.
  std::vector<double> weights;
  WeightedObjective objective = WeightedObjective::kWeightTimesCoverage;
  bool compute_quality = false;
};

/// Multi-radius DisC (§8): relevance shrinks an object's radius so relevant
/// regions are represented more densely. Leaves the session state untouched.
struct MultiRadiusRequest {
  double r_min = 0.0;
  double r_max = 0.0;
  /// One relevance in [0, 1] per object; 1 maps to r_min, 0 to r_max.
  std::vector<double> relevance;
  bool compute_quality = false;
};

/// What every request returns: the solution plus the work it cost. The
/// fields callers previously reassembled by hand from DiscResult, the tree's
/// stats counters, and eval/quality.h.
struct DiversifyResponse {
  /// Selected objects in selection order.
  std::vector<ObjectId> solution;
  /// Index work this request consumed (zero on cache hits).
  AccessStats stats;
  double wall_ms = 0.0;
  /// The radius the solution is valid at (r_max for multi-radius).
  double radius = 0.0;
  /// True when the solution came from the session cache; the tree state was
  /// restored from the cached snapshot, so zooming continues to work.
  bool from_cache = false;
  std::optional<QualityMetrics> quality;

  size_t size() const { return solution.size(); }
};

/// A point-in-time description of the engine's session state.
struct EngineSnapshot {
  size_t dataset_size = 0;
  size_t dim = 0;
  MetricKind metric = MetricKind::kEuclidean;
  BuildStrategy build_strategy = BuildStrategy::kInsertAtATime;
  /// Which neighbor engine computes N_r(p) (EngineConfig::neighbor). kExact
  /// is the historical tree-backed session engine; anything else means the
  /// engine runs in graph mode (tree_nodes/tree_height are 0, zoomable is
  /// always false).
  NeighborBackendKind backend = NeighborBackendKind::kExact;
  size_t tree_nodes = 0;
  size_t tree_height = 0;
  /// Tree colors encode a solution (i.e. some Diversify succeeded).
  bool has_solution = false;
  /// That solution can be zoomed (DisC family, not mixed-radius).
  bool zoomable = false;
  /// Why not, when has_solution && !zoomable.
  std::string zoom_blocker;
  Algorithm algorithm = Algorithm::kGreedy;
  double radius = 0.0;
  size_t solution_size = 0;
  /// Closest-black distances are exact for the current solution (§5.2).
  bool distances_exact = false;
  size_t cached_solutions = 0;
  size_t cached_count_radii = 0;
  /// Diversify requests served from the solution cache since construction
  /// (across sessions, like sessions_served). Exposed on the wire as the
  /// STATS `cache_hits` field so clients can see pooled-engine warm-cache
  /// reuse without diffing node-access totals.
  size_t cache_hits = 0;
  /// Algorithm executions this engine actually performed (Diversify misses,
  /// zoom passes, weighted / multi-radius runs). Cache hits and adopted
  /// sessions do not count — the serving layer's coalescing tests rely on
  /// this to prove N identical concurrent requests cost one computation.
  size_t computations = 0;
  /// Sessions installed via AdoptSession (a coalesced result fanned out by
  /// the serving layer's single-flight table). STATS `coalesced` on the
  /// wire.
  size_t adopted_sessions = 0;
  /// Worker threads the engine's parallel passes use (resolved from
  /// EngineConfig::threads; 1 = serial).
  size_t threads = 1;
  /// Sessions this engine has hosted: 1 after Create, +1 per NewSession.
  /// A server leasing pooled engines reports it in STATS so clients can see
  /// cache warm-up across leases.
  size_t sessions_served = 1;
  /// Index work consumed since construction (across all requests).
  AccessStats lifetime_stats;
};

/// The library façade. Owns dataset, metric, index, and session state; see
/// the file comment. Create once, issue requests, Reset() to start over
/// without rebuilding the index.
class DiscEngine {
 public:
  /// Resolves the dataset, constructs the metric, and builds the index.
  /// Fails with the dataset loader's error or the tree's build error.
  static Result<std::unique_ptr<DiscEngine>> Create(EngineConfig config);

  DiscEngine(const DiscEngine&) = delete;
  DiscEngine& operator=(const DiscEngine&) = delete;
  ~DiscEngine();

  /// Runs the requested algorithm, or restores the cached solution when an
  /// identical request (algorithm, radius, pruned) was served before and
  /// returns it with zero additional node accesses. On success the session
  /// state encodes this solution and Zoom may follow.
  Result<DiversifyResponse> Diversify(const DiversifyRequest& request);

  /// Adapts the current solution to a new radius (§3, §5.2) without
  /// recomputing from scratch. FailedPrecondition when no Diversify
  /// succeeded yet, when the current solution is covering-only
  /// (Greedy-C / Fast-C) or mixed-radius (after a local zoom), or when
  /// distances are stale and the request forbids recomputation.
  /// InvalidArgument when the radius is not positive or equals the session
  /// radius (nothing to adapt, local or global), or the local-zoom center
  /// is out of range.
  Result<DiversifyResponse> Zoom(const ZoomRequest& request);

  /// Weighted DisC (§8). Stateless: the session and cache are untouched.
  Result<DiversifyResponse> WeightedDiversify(const WeightedRequest& request);

  /// Multi-radius DisC (§8). Stateless like WeightedDiversify.
  Result<DiversifyResponse> MultiRadiusDiversify(
      const MultiRadiusRequest& request);

  /// Describes the current session state (cheap; no index work).
  EngineSnapshot Snapshot() const;

  /// Forgets the session: resets colors, drops the solution cache. The
  /// index and the per-radius neighborhood counts (color-independent) are
  /// kept, so the engine is immediately ready for the next session.
  void Reset();

  /// The leasing hook for servers that pool engines across sessions
  /// (server/session_manager.h): starts a fresh session — colors reset,
  /// zoom preconditions rearmed — while *keeping* the solution cache and the
  /// per-radius neighborhood counts. A new session repeating a previous
  /// session's Diversify is a cache hit with zero node accesses; cached
  /// color snapshots restore on hit, so zooming keeps working too.
  void NewSession();

  const Dataset& dataset() const { return dataset_; }
  const DistanceMetric& metric() const { return *metric_; }

 private:
  DiscEngine(Dataset dataset, std::unique_ptr<DistanceMetric> metric,
             MTreeOptions tree_options, size_t threads,
             NeighborBackendOptions backend_options);

  struct CacheKey {
    Algorithm algorithm;
    double radius;
    bool pruned;

    bool operator==(const CacheKey& other) const {
      return algorithm == other.algorithm && radius == other.radius &&
             pruned == other.pruned;
    }
  };

  struct CacheEntry {
    CacheKey key;
    DiversifyResponse response;
    MTree::ColorState state;
    bool distances_exact = false;
  };

  /// The solution currently encoded in the tree colors.
  struct SessionState {
    bool has_solution = false;
    bool zoomable = false;
    std::string zoom_blocker;
    Algorithm algorithm = Algorithm::kGreedy;
    double radius = 0.0;
    size_t solution_size = 0;
    bool distances_exact = false;
    /// While true, the tree state is byte-identical to the cache entry at
    /// `cache_key` (a Diversify just ran or was restored and no zoom has
    /// mutated the colors since), so improvements like a §5.2 distance
    /// recomputation can be written back to the entry.
    bool cache_key_valid = false;
    CacheKey cache_key{Algorithm::kGreedy, 0.0, true};
    /// Canonical request history that produced this solution: the Diversify
    /// parameters plus every zoom applied since, in order. Two engines over
    /// the same dataset with equal histories (and equal distances_exact)
    /// hold byte-identical session state — the serving layer keys its
    /// single-flight table on SessionFingerprint(), which is derived from
    /// this.
    std::string history;
  };

 public:
  /// A transferable snapshot of the whole session: the per-object color
  /// state plus the session descriptor and (when the tree state still
  /// matches a cache entry) that entry's response. Produced by the flight
  /// leader after a computation; adopting it puts a follower engine over
  /// the *same dataset* into the exact state the leader's computation left
  /// behind, so the follower's subsequent Zoom chain stays valid without
  /// re-running the algorithm. The nested private types keep the payload
  /// opaque: callers move capsules around, only DiscEngine reads them.
  struct SessionCapsule {
    MTree::ColorState state;
    SessionState session;
    bool has_cache_entry = false;
    DiversifyResponse cache_response;
    bool cache_distances_exact = false;
  };

  /// Snapshots the current session (colors, descriptor, the matching cache
  /// entry when one exists). Meaningful only after a successful Diversify
  /// or Zoom.
  SessionCapsule ExportSession() const;

  /// Installs a capsule exported by another engine over the same dataset:
  /// restores the colors, copies the session descriptor, and replicates the
  /// leader's cache entry so a repeated identical Diversify is an honest
  /// cache hit. InvalidArgument when the capsule's color state does not
  /// match this engine's dataset size.
  Status AdoptSession(const SessionCapsule& capsule);

  /// The serving layer's §5.2 radius-adaptation entry point: installs
  /// `seed` — a capsule exported after a DIVERSIFY over the same dataset —
  /// and immediately zooms it to `request.radius` through the normal Zoom
  /// path. Byte-identical (solution, radius, stats) to adopting the seed
  /// on a cold engine and calling Zoom there: AdoptSession restores the
  /// exact colors, session descriptor, and distances_exact bit, so the
  /// zoom — including any §5.2 stale-distance recomputation under
  /// DistancePolicy::kAuto — does exactly the work it would do anywhere
  /// else. Counts as an adopted session in Snapshot() (STATS `coalesced`).
  /// Fails with AdoptSession's or Zoom's error; the session state is then
  /// whatever the failing step left (callers fall back to a cold
  /// Diversify, which resets it).
  Result<DiversifyResponse> AdaptFrom(const SessionCapsule& seed,
                                      const ZoomRequest& request);

  /// True when Diversify(request) would be served from the solution cache
  /// (zero index work). The serving layer checks this before consulting its
  /// single-flight table so warm-engine repeats keep reporting
  /// from_cache=true instead of replaying a coalesced response.
  bool HasCachedDiversify(const DiversifyRequest& request) const;

  /// Canonical fingerprint of the session state: the request history plus
  /// the distances_exact bit (two equal-history engines can still diverge
  /// on whether a §5.2 recomputation was banked, which changes the stats a
  /// zoom-in reports). Empty when no solution is held — such sessions are
  /// never coalesced.
  std::string SessionFingerprint() const;

 private:

  /// Rejects non-finite or negative radii.
  static Status ValidateRadius(double radius);
  /// Greedy-C / Fast-C are never pruned; normalize the cache key.
  static bool EffectivePruned(const DiversifyRequest& request);

  /// Records that the tree colors now encode the solution a Diversify with
  /// `key` produced (directly or from cache).
  void SetSession(const CacheKey& key, size_t solution_size,
                  bool distances_exact);

  /// The engine's fan-out pool, created lazily on the first parallel pass
  /// (so idle pooled engines hold no parked worker threads). Null when
  /// threads_ == 1 — every pass then takes its original serial path.
  ThreadPool* pool();

  /// The non-exact-backend Diversify path: algorithms run on the
  /// neighborhood graph the backend builds (core/reference.h) instead of on
  /// tree colors. Serves the same solution cache (entries hold no
  /// ColorState) and leaves the session non-zoomable.
  Result<DiversifyResponse> DiversifyViaBackend(
      const DiversifyRequest& request);

  /// The backend-built G_{P,r} for `radius`, cached one radius at a time
  /// (the graph is the dominant memory cost; the solution cache covers
  /// radius revisits).
  Result<const NeighborhoodGraph*> GraphForRadius(double radius);

  /// Marks the just-set session non-zoomable: graph-mode runs leave no tree
  /// color state for the adaptive operations to read.
  void BlockZoomForGraphMode();

  CacheEntry* FindCached(const CacheKey& key);
  const CacheEntry* FindCached(const CacheKey& key) const;
  void InsertCache(CacheEntry entry);
  /// White-neighborhood counts for `radius`, computed on first use (charged
  /// to the tree's stats) and cached — they depend only on geometry.
  const std::vector<uint32_t>& CountsForRadius(double radius);

  QualityMetrics ComputeQuality(const std::vector<ObjectId>& solution,
                                double radius, bool covering_only) const;

  Dataset dataset_;
  std::unique_ptr<DistanceMetric> metric_;
  /// Index knobs (kept for Snapshot even when no tree exists).
  MTreeOptions tree_options_;
  /// The session index. Null in graph mode (backend_ set instead) — exactly
  /// one of tree_ / backend_ is non-null after Create.
  std::unique_ptr<MTree> tree_;
  NeighborBackendOptions backend_options_;
  std::unique_ptr<NeighborBackend> backend_;
  /// One-radius graph cache for DiversifyViaBackend.
  std::unique_ptr<NeighborhoodGraph> graph_cache_;
  double graph_cache_radius_ = -1.0;
  /// Resolved worker count (EngineConfig::threads, 0 -> hardware).
  size_t threads_ = 1;
  /// Backing storage for pool(); lazily created. The engine remains
  /// externally single-threaded — the pool is an internal fan-out for
  /// passes that only read the tree.
  std::unique_ptr<ThreadPool> pool_;

  SessionState session_;
  std::deque<CacheEntry> cache_;  // bounded FIFO, newest at the back
  std::map<double, std::vector<uint32_t>> counts_cache_;
  size_t sessions_served_ = 1;
  size_t cache_hits_ = 0;
  size_t computations_ = 0;
  size_t adopted_sessions_ = 0;
};

}  // namespace disc

#endif  // DISC_ENGINE_ENGINE_H_
