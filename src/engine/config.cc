#include "engine/config.h"

#include <string>
#include <utility>

#include "data/cameras.h"
#include "data/cities.h"
#include "data/generators.h"

namespace disc {

const char* DatasetSourceToString(DatasetSpec::Source source) {
  switch (source) {
    case DatasetSpec::Source::kUniform:
      return "uniform";
    case DatasetSpec::Source::kClustered:
      return "clustered";
    case DatasetSpec::Source::kCities:
      return "cities";
    case DatasetSpec::Source::kCameras:
      return "cameras";
    case DatasetSpec::Source::kCsv:
      return "csv";
    case DatasetSpec::Source::kProvided:
      return "provided";
  }
  return "unknown";
}

Result<DatasetSpec> ParseDatasetSpec(const std::string& text, size_t n,
                                     size_t dim, uint64_t seed) {
  if (text == "uniform") return DatasetSpec::Uniform(n, dim, seed);
  if (text == "clustered") return DatasetSpec::Clustered(n, dim, seed);
  if (text == "cities") return DatasetSpec::Cities();
  if (text == "cameras") return DatasetSpec::Cameras();
  if (text.rfind("csv:", 0) == 0) return DatasetSpec::Csv(text.substr(4));
  return Status::InvalidArgument(
      "unknown dataset '" + text +
      "' (want uniform|clustered|cities|cameras|csv:<path>)");
}

MetricKind DefaultMetricFor(DatasetSpec::Source source) {
  return source == DatasetSpec::Source::kCameras ? MetricKind::kHamming
                                                 : MetricKind::kEuclidean;
}

double DefaultRadiusFor(DatasetSpec::Source source) {
  switch (source) {
    case DatasetSpec::Source::kCities:
      return 0.01;
    case DatasetSpec::Source::kCameras:
      return 3.0;
    default:
      return 0.05;
  }
}

Result<Dataset> ResolveDataset(DatasetSpec spec) {
  switch (spec.source) {
    case DatasetSpec::Source::kUniform:
      return MakeUniformDataset(spec.n, spec.dim, spec.seed);
    case DatasetSpec::Source::kClustered:
      return MakeClusteredDataset(spec.n, spec.dim, spec.seed);
    case DatasetSpec::Source::kCities:
      return MakeCitiesDataset();
    case DatasetSpec::Source::kCameras:
      return MakeCamerasDataset();
    case DatasetSpec::Source::kCsv:
      return LoadPointsCsv(spec.csv_path);
    case DatasetSpec::Source::kProvided:
      if (spec.provided.empty()) {
        return Status::InvalidArgument("provided dataset is empty");
      }
      return std::move(spec.provided);
  }
  return Status::InvalidArgument("unknown dataset source");
}

}  // namespace disc
