#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/reference.h"
#include "eval/quality.h"
#include "graph/neighborhood.h"
#include "graph/properties.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace disc {

namespace {

/// Cached solutions per engine. Each entry snapshots the per-object colors
/// and closest-black distances (~9 bytes per object), so the bound keeps a
/// session's working set small while covering the common explore loop
/// (a handful of radii revisited repeatedly).
constexpr size_t kMaxCachedSolutions = 8;

/// Shortest round-trip decimal form, used for the canonical session history
/// (equal doubles must always render identically or equal sessions would
/// fingerprint differently).
std::string CanonicalDouble(double value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "?";
  return std::string(buf, ptr);
}

}  // namespace

DiscEngine::DiscEngine(Dataset dataset, std::unique_ptr<DistanceMetric> metric,
                       MTreeOptions tree_options, size_t threads,
                       NeighborBackendOptions backend_options)
    : dataset_(std::move(dataset)),
      metric_(std::move(metric)),
      tree_options_(tree_options),
      backend_options_(backend_options),
      threads_(threads == 0 ? DefaultThreads() : threads) {}

DiscEngine::~DiscEngine() = default;

ThreadPool* DiscEngine::pool() {
  // Lazy: a server may hold many idle pooled engines, and engines that
  // only ever serve cache hits should not park (threads - 1) worker
  // threads each. threads_ == 1 always returns null so every pass takes
  // its original serial path.
  if (threads_ > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
  return pool_.get();
}

Result<std::unique_ptr<DiscEngine>> DiscEngine::Create(EngineConfig config) {
  DISC_ASSIGN_OR_RETURN(Dataset dataset,
                        ResolveDataset(std::move(config.dataset)));
  if (config.neighbor.kind == NeighborBackendKind::kExact &&
      config.neighbor.max_exact_points > 0 &&
      dataset.size() > config.neighbor.max_exact_points) {
    return Status::InvalidArgument(
        "dataset of " + std::to_string(dataset.size()) +
        " points is above the exact-backend cap of " +
        std::to_string(config.neighbor.max_exact_points) +
        "; use the sharded, lsh, or lsh-sharded neighbor backend");
  }
  std::unique_ptr<DiscEngine> engine(
      new DiscEngine(std::move(dataset), MakeMetric(config.metric),
                     config.tree, config.threads, config.neighbor));
  if (config.neighbor.kind == NeighborBackendKind::kExact) {
    // The historical session engine: algorithms run against tree colors,
    // zooming works. Byte-identical to every release before backends existed.
    engine->tree_ =
        std::make_unique<MTree>(engine->dataset_, *engine->metric_,
                                config.tree);
    DISC_RETURN_NOT_OK(engine->tree_->Build(engine->pool()));
  } else {
    // Graph mode: the backend computes N_r(p); no tree is ever built (for
    // the sharded/LSH kinds the whole point is that one global index would
    // not fit or not scale).
    DISC_ASSIGN_OR_RETURN(
        engine->backend_,
        CreateNeighborBackend(engine->dataset_, *engine->metric_,
                              config.neighbor, engine->pool()));
  }
  return engine;
}

Status DiscEngine::ValidateRadius(double radius) {
  if (!std::isfinite(radius) || radius < 0) {
    return Status::InvalidArgument("radius must be finite and non-negative");
  }
  return Status::OK();
}

bool DiscEngine::EffectivePruned(const DiversifyRequest& request) {
  // Greedy-C / Fast-C never use the pruning rule (grey subtrees must stay
  // reachable); normalizing here keeps the cache key canonical.
  return IsDiscFamily(request.algorithm) ? request.pruned : false;
}

DiscEngine::CacheEntry* DiscEngine::FindCached(const CacheKey& key) {
  for (CacheEntry& entry : cache_) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

const DiscEngine::CacheEntry* DiscEngine::FindCached(
    const CacheKey& key) const {
  for (const CacheEntry& entry : cache_) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

bool DiscEngine::HasCachedDiversify(const DiversifyRequest& request) const {
  if (!ValidateRadius(request.radius).ok()) return false;
  const CacheKey key{request.algorithm, request.radius,
                     EffectivePruned(request)};
  return FindCached(key) != nullptr;
}

std::string DiscEngine::SessionFingerprint() const {
  if (!session_.has_solution) return "";
  return session_.history + (session_.distances_exact ? "|e1" : "|e0");
}

DiscEngine::SessionCapsule DiscEngine::ExportSession() const {
  SessionCapsule capsule;
  // Graph-mode engines have no colors; the capsule then carries only the
  // session descriptor and the cached response.
  if (tree_ != nullptr) capsule.state = tree_->SaveColorState();
  capsule.session = session_;
  if (session_.cache_key_valid) {
    if (const CacheEntry* entry = FindCached(session_.cache_key)) {
      capsule.has_cache_entry = true;
      capsule.cache_response = entry->response;
      capsule.cache_distances_exact = entry->distances_exact;
    }
  }
  return capsule;
}

Status DiscEngine::AdoptSession(const SessionCapsule& capsule) {
  if (tree_ != nullptr) {
    DISC_RETURN_NOT_OK(tree_->RestoreColorState(capsule.state));
  } else if (!capsule.state.colors.empty()) {
    // Pool keys segregate backends, so this only fires on caller error.
    return Status::InvalidArgument(
        "capsule carries tree color state but this engine runs the '" +
        std::string(backend_->name()) + "' neighbor backend in graph mode");
  }
  session_ = capsule.session;
  if (capsule.has_cache_entry) {
    CacheEntry entry;
    entry.key = capsule.session.cache_key;
    entry.response = capsule.cache_response;
    entry.state = capsule.state;
    entry.distances_exact = capsule.cache_distances_exact;
    InsertCache(std::move(entry));
  }
  ++adopted_sessions_;
  return Status::OK();
}

Result<DiversifyResponse> DiscEngine::AdaptFrom(const SessionCapsule& seed,
                                                const ZoomRequest& request) {
  DISC_RETURN_NOT_OK(AdoptSession(seed));
  return Zoom(request);
}

void DiscEngine::SetSession(const CacheKey& key, size_t solution_size,
                            bool distances_exact) {
  session_.has_solution = true;
  session_.zoomable = IsDiscFamily(key.algorithm);
  session_.zoom_blocker =
      session_.zoomable
          ? ""
          : std::string(AlgorithmToString(key.algorithm)) +
                " produces a covering-only (r-C diverse) solution; zooming "
                "requires an r-DisC solution (basic/greedy family)";
  session_.algorithm = key.algorithm;
  session_.radius = key.radius;
  session_.solution_size = solution_size;
  session_.distances_exact = distances_exact;
  session_.cache_key_valid = true;
  session_.cache_key = key;
  session_.history = std::string("d:") + AlgorithmToString(key.algorithm) +
                     ":" + CanonicalDouble(key.radius) +
                     (key.pruned ? ":p1" : ":p0");
}

void DiscEngine::InsertCache(CacheEntry entry) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->key == entry.key) {
      cache_.erase(it);
      break;
    }
  }
  cache_.push_back(std::move(entry));
  if (cache_.size() > kMaxCachedSolutions) cache_.pop_front();
}

const std::vector<uint32_t>& DiscEngine::CountsForRadius(double radius) {
  auto it = counts_cache_.find(radius);
  if (it == counts_cache_.end()) {
    std::vector<uint32_t> counts;
    // The heaviest engine pass (one range query per object); fans out
    // across the engine pool with counts and stats totals exactly equal to
    // the serial pass (see ComputeNeighborCountsPostBuild).
    tree_->ComputeNeighborCountsPostBuild(radius, &counts, pool());
    it = counts_cache_.emplace(radius, std::move(counts)).first;
  }
  return it->second;
}

QualityMetrics DiscEngine::ComputeQuality(
    const std::vector<ObjectId>& solution, double radius,
    bool covering_only) const {
  QualityMetrics quality;
  quality.f_min = FMin(dataset_, *metric_, solution);
  quality.coverage = CoverageFraction(dataset_, *metric_, radius, solution);
  quality.verification =
      covering_only ? VerifyCovering(dataset_, *metric_, radius, solution)
                    : VerifyDisCDiverse(dataset_, *metric_, radius, solution);
  return quality;
}

Result<DiversifyResponse> DiscEngine::Diversify(
    const DiversifyRequest& request) {
  DISC_RETURN_NOT_OK(ValidateRadius(request.radius));
  if (backend_ != nullptr) return DiversifyViaBackend(request);
  const bool disc_family = IsDiscFamily(request.algorithm);
  const CacheKey key{request.algorithm, request.radius,
                     EffectivePruned(request)};

  if (CacheEntry* entry = FindCached(key)) {
    Stopwatch watch;
    ++cache_hits_;
    DISC_RETURN_NOT_OK(tree_->RestoreColorState(entry->state));
    if (request.compute_quality && !entry->response.quality.has_value()) {
      entry->response.quality =
          ComputeQuality(entry->response.solution, request.radius,
                         /*covering_only=*/!disc_family);
    }
    SetSession(key, entry->response.solution.size(), entry->distances_exact);
    DiversifyResponse response = entry->response;
    response.from_cache = true;
    response.stats = AccessStats{};
    response.wall_ms = watch.ElapsedMillis();
    if (!request.compute_quality) response.quality.reset();
    return response;
  }

  Stopwatch watch;
  const AccessStats before = tree_->stats();
  AlgorithmRunOptions run_options;
  run_options.pruned = key.pruned;
  // Counts come from the cache (parallel inside CountsForRadius); the pool
  // additionally drives speculative candidate evaluation and the per-step
  // maintenance fan-outs inside the greedy loops. Solutions and stats are
  // byte-identical at any thread count (core/speculation.h), so the cache
  // key stays thread-independent.
  run_options.pool = pool();
  if (AlgorithmUsesNeighborCounts(request.algorithm)) {
    run_options.initial_counts = &CountsForRadius(request.radius);
  }
  DiscResult run =
      RunAlgorithm(tree_.get(), request.algorithm, request.radius,
                   run_options);
  ++computations_;

  DiversifyResponse response;
  response.solution = std::move(run.solution);
  response.stats = tree_->stats() - before;
  response.wall_ms = watch.ElapsedMillis();
  response.radius = request.radius;
  if (request.compute_quality) {
    response.quality = ComputeQuality(response.solution, request.radius,
                                      /*covering_only=*/!disc_family);
  }

  // Unpruned DisC runs visit every neighbor of every selected object, so
  // the closest-black distances they record are already exact (§5.2).
  const bool distances_exact = disc_family && !key.pruned;
  SetSession(key, response.solution.size(), distances_exact);
  CacheEntry entry;
  entry.key = key;
  entry.response = response;
  entry.state = tree_->SaveColorState();
  entry.distances_exact = distances_exact;
  InsertCache(std::move(entry));
  return response;
}

Result<const NeighborhoodGraph*> DiscEngine::GraphForRadius(double radius) {
  if (graph_cache_ != nullptr && graph_cache_radius_ == radius) {
    return static_cast<const NeighborhoodGraph*>(graph_cache_.get());
  }
  DISC_ASSIGN_OR_RETURN(NeighborhoodGraph graph,
                        NeighborhoodGraph::FromBackend(*backend_, radius,
                                                       pool()));
  graph_cache_ = std::make_unique<NeighborhoodGraph>(std::move(graph));
  graph_cache_radius_ = radius;
  return static_cast<const NeighborhoodGraph*>(graph_cache_.get());
}

void DiscEngine::BlockZoomForGraphMode() {
  session_.zoomable = false;
  session_.zoom_blocker =
      std::string("the '") + backend_->name() +
      "' neighbor backend runs algorithms on the neighborhood graph and "
      "leaves no tree color state; zooming requires the exact engine";
}

Result<DiversifyResponse> DiscEngine::DiversifyViaBackend(
    const DiversifyRequest& request) {
  const bool disc_family = IsDiscFamily(request.algorithm);
  const CacheKey key{request.algorithm, request.radius,
                     EffectivePruned(request)};

  if (CacheEntry* entry = FindCached(key)) {
    Stopwatch watch;
    ++cache_hits_;
    // Graph-mode entries carry no ColorState — there are no colors to
    // restore; the response alone is the whole session outcome.
    if (request.compute_quality && !entry->response.quality.has_value()) {
      entry->response.quality =
          ComputeQuality(entry->response.solution, request.radius,
                         /*covering_only=*/!disc_family);
    }
    SetSession(key, entry->response.solution.size(),
               /*distances_exact=*/false);
    BlockZoomForGraphMode();
    DiversifyResponse response = entry->response;
    response.from_cache = true;
    response.stats = AccessStats{};
    response.wall_ms = watch.ElapsedMillis();
    if (!request.compute_quality) response.quality.reset();
    return response;
  }

  Stopwatch watch;
  const AccessStats before = backend_->stats();
  DISC_ASSIGN_OR_RETURN(const NeighborhoodGraph* graph,
                        GraphForRadius(request.radius));
  std::vector<ObjectId> solution;
  switch (request.algorithm) {
    case Algorithm::kBasic: {
      // Candidates in id order (graph mode has no leaf chain to mirror);
      // any fixed order yields a valid maximal independent set.
      std::vector<ObjectId> order(dataset_.size());
      std::iota(order.begin(), order.end(), ObjectId{0});
      solution = ReferenceBasicDisc(*graph, order);
      break;
    }
    case Algorithm::kGreedy:
      solution = ReferenceGreedyDisc(*graph);
      break;
    case Algorithm::kGreedyC:
      solution = ReferenceGreedyC(*graph);
      break;
    default:
      return Status::Unimplemented(
          std::string("algorithm '") + AlgorithmToString(request.algorithm) +
          "' is index-bound; the '" + backend_->name() +
          "' neighbor backend serves the graph-mode algorithms only "
          "(basic, greedy, greedy-c)");
  }
  ++computations_;

  DiversifyResponse response;
  response.solution = std::move(solution);
  response.stats = backend_->stats() - before;
  response.wall_ms = watch.ElapsedMillis();
  response.radius = request.radius;
  if (request.compute_quality) {
    response.quality = ComputeQuality(response.solution, request.radius,
                                      /*covering_only=*/!disc_family);
  }

  SetSession(key, response.solution.size(), /*distances_exact=*/false);
  BlockZoomForGraphMode();
  CacheEntry entry;
  entry.key = key;
  entry.response = response;
  entry.distances_exact = false;
  InsertCache(std::move(entry));
  return response;
}

Result<DiversifyResponse> DiscEngine::Zoom(const ZoomRequest& request) {
  if (!session_.has_solution) {
    return Status::FailedPrecondition(
        "Zoom requires a prior successful Diversify: the tree colors do not "
        "encode a solution yet");
  }
  if (!session_.zoomable) {
    return Status::FailedPrecondition("cannot zoom: " + session_.zoom_blocker);
  }
  if (!std::isfinite(request.radius) || request.radius <= 0) {
    return Status::InvalidArgument("zoom radius must be finite and positive");
  }
  const bool local = request.center.has_value();
  if (local && *request.center >= dataset_.size()) {
    return Status::InvalidArgument(
        "local-zoom center " + std::to_string(*request.center) +
        " is out of range (dataset has " + std::to_string(dataset_.size()) +
        " objects)");
  }
  if (request.radius == session_.radius) {
    return Status::InvalidArgument(
        "new radius equals the current session radius " +
        std::to_string(session_.radius) + "; nothing to adapt");
  }

  Stopwatch watch;
  const AccessStats before = tree_->stats();
  // Only zooming in reads closest-black distances (§5.2); zooming out
  // rebuilds them from scratch. Stale distances come from pruned Diversify
  // runs and from the greedy zoom passes (see core/zoom.h).
  const bool reads_distances = request.radius < session_.radius;
  if (reads_distances && !session_.distances_exact) {
    if (request.distances == DistancePolicy::kRequireExact) {
      return Status::FailedPrecondition(
          "closest-black distances are stale (the current solution came "
          "from a pruned run or a greedy zoom pass) and zooming in reads "
          "them; use DistancePolicy::kAuto or rerun Diversify with "
          "pruned=false");
    }
    tree_->RecomputeClosestBlackDistances(session_.radius);
    session_.distances_exact = true;
    // The tree still holds exactly the cached Diversify state (no zoom has
    // mutated it yet), so bank the recomputed distances: later restores of
    // this entry zoom in for free instead of repaying the recomputation.
    if (session_.cache_key_valid) {
      if (CacheEntry* entry = FindCached(session_.cache_key)) {
        entry->state = tree_->SaveColorState();
        entry->distances_exact = true;
      }
    }
  }

  DiscResult run;
  if (local) {
    run = LocalZoom(tree_.get(), *request.center, session_.radius,
                    request.radius, request.greedy);
  } else if (request.radius < session_.radius) {
    // observe_all: the greedy pass's selection queries observe every
    // neighbor, leaving exact closest-black distances — a chained zoom-in
    // then skips RecomputeClosestBlackDistances entirely. Benchmarked
    // cheaper than the recompute path (bench_parallel_select.cc ZoomChain
    // rows: fewer node accesses and less wall time), so it is the engine
    // default; the selection sequence is unchanged either way.
    run = ZoomIn(tree_.get(), request.radius, request.greedy,
                 /*observe_all=*/request.greedy);
  } else {
    run = ZoomOut(tree_.get(), request.radius, request.zoom_out_variant);
  }
  ++computations_;

  DiversifyResponse response;
  response.solution = std::move(run.solution);
  response.stats = tree_->stats() - before;
  response.wall_ms = watch.ElapsedMillis();
  response.radius = request.radius;
  if (local) response.radius = std::max(session_.radius, request.radius);
  if (request.compute_quality) {
    // Local zooms leave a mixed-radius solution: the region holds its
    // guarantees at the new radius, the complement at the old one, so only
    // coverage at the larger radius is verifiable globally.
    response.quality = ComputeQuality(response.solution, response.radius,
                                      /*covering_only=*/local);
  }

  session_.solution_size = response.solution.size();
  session_.cache_key_valid = false;  // the zoom mutated the tree state
  // Extend the canonical history with this zoom; every parameter that can
  // change the resulting state or reported stats participates.
  session_.history += std::string("|z:") +
                      (local ? "l" : (reads_distances ? "i" : "o")) +
                      CanonicalDouble(request.radius) +
                      (request.greedy ? ":g1" : ":g0") + ":v" +
                      std::to_string(static_cast<int>(
                          request.zoom_out_variant)) +
                      (local ? ":c" + std::to_string(*request.center) : "");
  if (local) {
    session_.zoomable = false;
    session_.zoom_blocker =
        "a local zoom left a mixed-radius solution; run Diversify to start "
        "a new adaptation chain";
  } else {
    // Zoom-in passes always leave exact distances now: the non-greedy pass
    // observes every neighbor by construction, and the greedy pass runs
    // with observe_all (above). Greedy zoom-OUT variants still use pruned
    // white-only queries and leave upper bounds a later zoom-in must not
    // trust (core/zoom.h). `reads_distances` still holds the zoom
    // direction.
    const bool greedy_pass =
        !reads_distances &&
        request.zoom_out_variant != ZoomOutVariant::kArbitrary;
    session_.radius = request.radius;
    session_.distances_exact = !greedy_pass;
  }
  return response;
}

Result<DiversifyResponse> DiscEngine::WeightedDiversify(
    const WeightedRequest& request) {
  if (backend_ != nullptr) {
    return Status::FailedPrecondition(
        std::string("weighted DisC runs on the exact engine only; this "
                    "engine uses the '") +
        backend_->name() + "' neighbor backend");
  }
  Stopwatch watch;
  DISC_ASSIGN_OR_RETURN(
      std::vector<ObjectId> solution,
      GreedyWeightedDisc(dataset_, *metric_, request.radius, request.weights,
                         request.objective));
  ++computations_;
  DiversifyResponse response;
  response.solution = std::move(solution);
  response.wall_ms = watch.ElapsedMillis();
  response.radius = request.radius;
  if (request.compute_quality) {
    response.quality = ComputeQuality(response.solution, request.radius,
                                      /*covering_only=*/false);
  }
  return response;
}

Result<DiversifyResponse> DiscEngine::MultiRadiusDiversify(
    const MultiRadiusRequest& request) {
  if (backend_ != nullptr) {
    return Status::FailedPrecondition(
        std::string("multi-radius DisC runs on the exact engine only; this "
                    "engine uses the '") +
        backend_->name() + "' neighbor backend");
  }
  Stopwatch watch;
  DISC_ASSIGN_OR_RETURN(
      std::vector<double> radii,
      RelevanceRadii(request.relevance, request.r_min, request.r_max));
  DISC_ASSIGN_OR_RETURN(
      std::vector<ObjectId> solution,
      MultiRadiusDisc(dataset_, *metric_, radii, request.relevance));
  ++computations_;
  DiversifyResponse response;
  response.solution = std::move(solution);
  response.wall_ms = watch.ElapsedMillis();
  response.radius = request.r_max;
  if (request.compute_quality) {
    // Every object is covered within its own radius <= r_max; independence
    // follows the min-radius rule, which a single-radius verifier cannot
    // express, so only coverage is checked.
    response.quality = ComputeQuality(response.solution, request.r_max,
                                      /*covering_only=*/true);
  }
  return response;
}

EngineSnapshot DiscEngine::Snapshot() const {
  EngineSnapshot snapshot;
  snapshot.dataset_size = dataset_.size();
  snapshot.dim = dataset_.dim();
  snapshot.metric = metric_->kind();
  snapshot.build_strategy = tree_options_.build.strategy;
  snapshot.backend = backend_options_.kind;
  snapshot.tree_nodes = tree_ != nullptr ? tree_->num_nodes() : 0;
  snapshot.tree_height = tree_ != nullptr ? tree_->height() : 0;
  snapshot.has_solution = session_.has_solution;
  snapshot.zoomable = session_.zoomable;
  snapshot.zoom_blocker = session_.zoom_blocker;
  snapshot.algorithm = session_.algorithm;
  snapshot.radius = session_.radius;
  snapshot.solution_size = session_.solution_size;
  snapshot.distances_exact = session_.distances_exact;
  snapshot.cached_solutions = cache_.size();
  snapshot.cached_count_radii = counts_cache_.size();
  snapshot.cache_hits = cache_hits_;
  snapshot.computations = computations_;
  snapshot.adopted_sessions = adopted_sessions_;
  snapshot.threads = threads_;
  snapshot.sessions_served = sessions_served_;
  snapshot.lifetime_stats =
      tree_ != nullptr ? tree_->stats() : backend_->stats();
  return snapshot;
}

void DiscEngine::Reset() {
  if (tree_ != nullptr) tree_->ResetColors();
  session_ = SessionState{};
  cache_.clear();
}

void DiscEngine::NewSession() {
  if (tree_ != nullptr) tree_->ResetColors();
  session_ = SessionState{};
  ++sessions_served_;
}

}  // namespace disc
