// Engine configuration: where the dataset comes from, which metric compares
// its points, and how the M-tree index is constructed.
//
// A DatasetSpec is a *description* of a dataset (a generator family plus its
// knobs, a built-in catalog, a CSV path, or an already-materialized Dataset),
// so an EngineConfig is a plain value that can be parsed from CLI flags,
// logged, or shipped to a server before any data is loaded. ResolveDataset
// turns the description into points; DiscEngine::Create does that once and
// owns the result for the session's lifetime.

#ifndef DISC_ENGINE_CONFIG_H_
#define DISC_ENGINE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "data/dataset.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "neighbor/backend.h"
#include "util/status.h"

namespace disc {

/// Describes a dataset without materializing it.
struct DatasetSpec {
  enum class Source {
    kUniform,    // MakeUniformDataset(n, dim, seed)
    kClustered,  // MakeClusteredDataset(n, dim, seed)
    kCities,     // the synthetic Greek-cities stand-in (5922 points, 2-D)
    kCameras,    // the synthetic camera catalog (579 points, 7 categorical)
    kCsv,        // LoadPointsCsv(csv_path)
    kProvided,   // the `provided` Dataset, moved in by the caller
  };

  Source source = Source::kClustered;
  /// Generator knobs (kUniform / kClustered only).
  size_t n = 10000;
  size_t dim = 2;
  uint64_t seed = 42;
  /// kCsv only.
  std::string csv_path;
  /// kProvided only.
  Dataset provided;

  static DatasetSpec Uniform(size_t n, size_t dim, uint64_t seed) {
    DatasetSpec spec;
    spec.source = Source::kUniform;
    spec.n = n;
    spec.dim = dim;
    spec.seed = seed;
    return spec;
  }
  static DatasetSpec Clustered(size_t n, size_t dim, uint64_t seed) {
    DatasetSpec spec = Uniform(n, dim, seed);
    spec.source = Source::kClustered;
    return spec;
  }
  static DatasetSpec Cities() {
    DatasetSpec spec;
    spec.source = Source::kCities;
    return spec;
  }
  static DatasetSpec Cameras() {
    DatasetSpec spec;
    spec.source = Source::kCameras;
    return spec;
  }
  static DatasetSpec Csv(std::string path) {
    DatasetSpec spec;
    spec.source = Source::kCsv;
    spec.csv_path = std::move(path);
    return spec;
  }
  static DatasetSpec Provided(Dataset dataset) {
    DatasetSpec spec;
    spec.source = Source::kProvided;
    spec.provided = std::move(dataset);
    return spec;
  }
};

/// "uniform" / "clustered" / "cities" / "cameras" / "csv" / "provided".
const char* DatasetSourceToString(DatasetSpec::Source source);

/// Parses the CLI-style dataset names: "uniform", "clustered", "cities",
/// "cameras", or "csv:<path>". The generator knobs apply to the synthetic
/// sources and are ignored by the rest.
Result<DatasetSpec> ParseDatasetSpec(const std::string& text, size_t n,
                                     size_t dim, uint64_t seed);

/// The metric a dataset is conventionally compared under (Hamming for the
/// categorical cameras catalog, Euclidean for everything else).
MetricKind DefaultMetricFor(DatasetSpec::Source source);

/// A sensible starting radius per source, matching the paper's experiment
/// ranges: 0.01 for the dense cities map, 3 for Hamming over the cameras
/// catalog, 0.05 for the unit-box synthetic workloads.
double DefaultRadiusFor(DatasetSpec::Source source);

/// Materializes the dataset a spec describes. Takes the spec by value so a
/// kProvided dataset is moved, not copied. Fails with the loader's error for
/// kCsv and with InvalidArgument for an empty kProvided dataset.
Result<Dataset> ResolveDataset(DatasetSpec spec);

/// Everything DiscEngine::Create needs: the dataset description, the metric
/// family, and the index construction knobs (including
/// MTreeOptions::build.strategy).
struct EngineConfig {
  DatasetSpec dataset;
  MetricKind metric = MetricKind::kEuclidean;
  MTreeOptions tree;
  /// Worker threads for the engine's parallel read-only passes (the
  /// per-radius neighborhood-count fan-out; see util/parallel.h). 0 means
  /// one per hardware thread; 1 keeps every pass on the original serial
  /// code path. Results and reported stats totals are byte-identical for
  /// every value — threads only change wall time — so this knob is *not*
  /// part of an engine's pooling identity (server/session_manager.h).
  size_t threads = 0;
  /// Which neighbor engine computes N_r(p) (neighbor/backend.h). kExact
  /// keeps the historical M-tree session engine byte-for-byte; every other
  /// kind runs the engine in graph mode — algorithms execute on the
  /// neighborhood graph the backend builds, zooming is unavailable, and for
  /// the LSH kinds solutions are approximate. Unlike `threads`, this IS part
  /// of the pooling identity: approximate solutions must never be served
  /// from an exact engine's memo or vice versa.
  NeighborBackendOptions neighbor;
};

}  // namespace disc

#endif  // DISC_ENGINE_CONFIG_H_
