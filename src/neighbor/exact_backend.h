// ExactMTreeBackend: today's index-backed neighbor path behind the
// NeighborBackend interface — an owned M-tree, one range query per object.
//
// Results are exactly N_r(p) (the oracle every approximate backend is
// measured against); accounting is the tree's own node-access counting,
// redirected per query through MTree::ThreadStatsScope so concurrent
// batched builds charge private sinks.

#ifndef DISC_NEIGHBOR_EXACT_BACKEND_H_
#define DISC_NEIGHBOR_EXACT_BACKEND_H_

#include <memory>

#include "mtree/mtree.h"
#include "neighbor/backend.h"

namespace disc {

class ExactMTreeBackend final : public NeighborBackend {
 public:
  /// Builds the backend's tree (bulk-loaded by default — cheaper to
  /// construct and query-identical to insert-built). Fails when MTree::Build
  /// does (empty dataset).
  static Result<std::unique_ptr<ExactMTreeBackend>> Create(
      const Dataset& dataset, const DistanceMetric& metric,
      MTreeOptions options = {.node_capacity = 50,
                              .split_policy = SplitPolicy::MinOverlap(),
                              .random_seed = 42,
                              .build = {BuildStrategy::kBulkLoad}});

  NeighborBackendKind kind() const override {
    return NeighborBackendKind::kExact;
  }

  const MTree& tree() const { return *tree_; }

 protected:
  void DoRangeQuery(const Point& center, ObjectId exclude, double radius,
                    std::vector<ObjectId>* out,
                    AccessStats* sink) const override;

 private:
  ExactMTreeBackend(const Dataset& dataset, const DistanceMetric& metric,
                    std::unique_ptr<MTree> tree)
      : NeighborBackend(dataset, metric), tree_(std::move(tree)) {}

  std::unique_ptr<MTree> tree_;
};

}  // namespace disc

#endif  // DISC_NEIGHBOR_EXACT_BACKEND_H_
