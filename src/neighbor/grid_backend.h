// GridBackend: the uniform-grid accelerator behind the NeighborBackend
// interface. Exact — identical neighbor sets to the brute-force scan.
//
// Batched builds reuse the shared adjacency builders (neighbor/adjacency.h),
// paying the cell-map price once per radius. Point queries keep a lazily
// built per-radius cell index (immutable once built, guarded by a mutex on
// the lookup) and probe the 3^dim surrounding cells. When the grid does not
// apply (Hamming metric, dim > 3, tiny inputs) every path falls back to the
// exact O(n^2)/O(n) scans — the fallback CreateNeighborBackend's
// max_exact_points cap guards against at daemon scale.
//
// Accounting: each point query charges one range query, one node access per
// probed cell (or one for a brute fallback scan), and one distance
// computation per verified candidate. Batched grid builds charge n range
// queries, n * 3^dim cell probes, and the exact candidate-pair count.

#ifndef DISC_NEIGHBOR_GRID_BACKEND_H_
#define DISC_NEIGHBOR_GRID_BACKEND_H_

#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "neighbor/backend.h"

namespace disc {

class GridBackend final : public NeighborBackend {
 public:
  GridBackend(const Dataset& dataset, const DistanceMetric& metric)
      : NeighborBackend(dataset, metric) {}

  NeighborBackendKind kind() const override {
    return NeighborBackendKind::kGrid;
  }

  Status BuildNeighborhoods(double radius, ThreadPool* pool,
                            AdjacencyLists* adjacency,
                            size_t* num_edges) const override;

 protected:
  void DoRangeQuery(const Point& center, ObjectId exclude, double radius,
                    std::vector<ObjectId>* out,
                    AccessStats* sink) const override;

 private:
  struct CellIndex {
    std::unordered_map<uint64_t, std::vector<ObjectId>> cells;
  };

  /// Returns the cell index for this radius, building it on first use.
  /// The returned object is immutable; the mutex guards only the map.
  const CellIndex& EnsureIndex(double radius) const;

  mutable std::mutex mutex_;
  mutable std::map<double, std::unique_ptr<CellIndex>> indexes_;
};

}  // namespace disc

#endif  // DISC_NEIGHBOR_GRID_BACKEND_H_
