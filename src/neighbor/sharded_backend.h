// ShardedBackend: dataset partitioning across per-shard neighbor engines.
//
// The dataset splits into contiguous global-id ranges (a pure function of n
// and the configured shard count — never of the thread count). Each shard
// holds a copy of its slice as a local dataset plus an inner backend over
// it (an exact M-tree for kSharded, an LshBackend for kLshSharded), and the
// shards are constructed concurrently on the shared thread pool — this is
// what unsticks build time and per-index memory at million-point scale.
//
// A range query fans out to every shard IN ASCENDING SHARD ORDER, maps
// local ids back by adding the shard's base offset, and concatenates: since
// shard ranges are contiguous and each per-shard result is sorted, the
// concatenation is globally sorted with no merge step — the
// ordered-reduction contract applied to shards. Exact shards therefore
// reproduce the unsharded exact neighbor sets identically, and stats (which
// accumulate in shard order) are deterministic for every thread count.
// LSH shards share one hash family (same seed), so the sharded LSH graph is
// byte-identical to the unsharded LSH graph — bucket contents just split by
// shard.

#ifndef DISC_NEIGHBOR_SHARDED_BACKEND_H_
#define DISC_NEIGHBOR_SHARDED_BACKEND_H_

#include <memory>
#include <vector>

#include "neighbor/backend.h"

namespace disc {

class ShardedBackend final : public NeighborBackend {
 public:
  /// Builds the shards (concurrently when `pool` has more than one thread).
  /// options.kind selects the inner engine (kSharded -> exact M-trees,
  /// kLshSharded -> LSH with options.lsh); options.shards = 0 picks a
  /// deterministic default from n alone.
  static Result<std::unique_ptr<ShardedBackend>> Create(
      const Dataset& dataset, const DistanceMetric& metric,
      const NeighborBackendOptions& options, ThreadPool* pool = nullptr);

  NeighborBackendKind kind() const override { return kind_; }

  size_t num_shards() const { return shards_.size(); }

  /// The shard count `options.shards = 0` resolves to for a dataset of n
  /// points — exposed so cache keys and tests agree with construction.
  static size_t DefaultShardCount(size_t n);

 protected:
  void DoRangeQuery(const Point& center, ObjectId exclude, double radius,
                    std::vector<ObjectId>* out,
                    AccessStats* sink) const override;

 private:
  struct Shard {
    ObjectId begin = 0;  // global id of local id 0
    std::unique_ptr<Dataset> local;
    std::unique_ptr<NeighborBackend> backend;
  };

  ShardedBackend(const Dataset& dataset, const DistanceMetric& metric,
                 NeighborBackendKind kind, std::vector<Shard> shards)
      : NeighborBackend(dataset, metric),
        kind_(kind),
        shards_(std::move(shards)) {}

  const NeighborBackendKind kind_;
  std::vector<Shard> shards_;
};

}  // namespace disc

#endif  // DISC_NEIGHBOR_SHARDED_BACKEND_H_
