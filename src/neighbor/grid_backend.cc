#include "neighbor/grid_backend.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace disc {

Status GridBackend::BuildNeighborhoods(double radius, ThreadPool* pool,
                                       AdjacencyLists* adjacency,
                                       size_t* num_edges) const {
  const size_t n = size();
  adjacency->assign(n, {});
  size_t edges = 0;
  AccessStats batch;
  batch.range_queries = n;
  if (GridCompatible(metric_, dataset_.dim(), n) && radius > 0) {
    uint64_t distance_calls = 0;
    edges = BuildAdjacencyWithGrid(dataset_, metric_, radius, pool, adjacency,
                                   &distance_calls);
    const uint64_t num_offsets =
        static_cast<uint64_t>(std::pow(3.0, dataset_.dim()));
    batch.node_accesses = static_cast<uint64_t>(n) * num_offsets;
    batch.distance_computations = distance_calls;
  } else {
    edges = BuildAdjacencyBruteForce(dataset_, metric_, radius, pool,
                                     adjacency);
    batch.node_accesses = n;
    batch.distance_computations =
        n > 1 ? static_cast<uint64_t>(n) * (n - 1) / 2 : 0;
  }
  stats_ += batch;
  for (auto& list : *adjacency) std::sort(list.begin(), list.end());
  if (num_edges != nullptr) *num_edges = edges;
  return Status::OK();
}

const GridBackend::CellIndex& GridBackend::EnsureIndex(double radius) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = indexes_.find(radius);
  if (it != indexes_.end()) return *it->second;
  auto index = std::make_unique<CellIndex>();
  const size_t dim = dataset_.dim();
  std::vector<int64_t> cell(dim);
  index->cells.reserve(dataset_.size());
  for (ObjectId i = 0; i < dataset_.size(); ++i) {
    const Point& p = dataset_.point(i);
    for (size_t d = 0; d < dim; ++d) {
      cell[d] = static_cast<int64_t>(std::floor(p[d] / radius));
    }
    index->cells[PackGridCell(cell.data(), dim)].push_back(i);
  }
  return *indexes_.emplace(radius, std::move(index)).first->second;
}

void GridBackend::DoRangeQuery(const Point& center, ObjectId exclude,
                               double radius, std::vector<ObjectId>* out,
                               AccessStats* sink) const {
  sink->range_queries += 1;
  const size_t n = dataset_.size();
  if (!GridCompatible(metric_, dataset_.dim(), n) || radius <= 0) {
    // Exact fallback: a single full scan.
    sink->node_accesses += 1;
    for (ObjectId j = 0; j < n; ++j) {
      if (j == exclude) continue;
      ++sink->distance_computations;
      if (metric_.Distance(center, dataset_.point(j)) <= radius) {
        out->push_back(j);
      }
    }
    return;
  }

  const CellIndex& index = EnsureIndex(radius);
  const size_t dim = dataset_.dim();
  std::vector<int64_t> base(dim);
  std::vector<int64_t> probe(dim);
  for (size_t d = 0; d < dim; ++d) {
    base[d] = static_cast<int64_t>(std::floor(center[d] / radius));
  }
  const size_t num_offsets = static_cast<size_t>(std::pow(3.0, dim));
  for (size_t mask = 0; mask < num_offsets; ++mask) {
    size_t rem = mask;
    for (size_t d = 0; d < dim; ++d) {
      probe[d] = base[d] + static_cast<int64_t>(rem % 3) - 1;
      rem /= 3;
    }
    ++sink->node_accesses;
    auto it = index.cells.find(PackGridCell(probe.data(), dim));
    if (it == index.cells.end()) continue;
    for (ObjectId j : it->second) {
      if (j == exclude) continue;
      ++sink->distance_computations;
      if (metric_.Distance(center, dataset_.point(j)) <= radius) {
        out->push_back(j);
      }
    }
  }
}

}  // namespace disc
