// Shared adjacency builders for the r-neighborhood computation.
//
// These free functions are the two M-tree-free build paths that
// graph/neighborhood.h historically owned as private methods: the exact
// O(n^2) pairwise scan and the uniform-grid accelerator. They live in the
// neighbor layer so both NeighborhoodGraph (the graph-layer facade) and the
// pluggable neighbor backends (neighbor/backend.h) can share one
// implementation — the builders are the ground truth every other backend is
// measured against, so there must be exactly one copy of them.
//
// Both builders follow the util/parallel.h determinism contract: with a
// pool, the object range splits into chunks by a pure function of
// (0, n, grain), per-chunk edge buffers merge in ascending chunk order, and
// the appended adjacency entries are byte-identical to the serial loop for
// every thread count. Appended neighbor lists are NOT sorted — callers sort
// once at the end, exactly as NeighborhoodGraph always has.

#ifndef DISC_NEIGHBOR_ADJACENCY_H_
#define DISC_NEIGHBOR_ADJACENCY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"

namespace disc {

class ThreadPool;  // util/parallel.h

/// Adjacency-list shape shared by NeighborhoodGraph and the neighbor
/// backends: entry v holds N_r(v) as object ids, excluding v itself.
using AdjacencyLists = std::vector<std::vector<ObjectId>>;

/// Whether the uniform-grid accelerator applies: it requires that
/// dist(p, q) <= r implies every coordinate difference is <= r (true for
/// Euclidean / Manhattan / Chebyshev, not Hamming), pays off only for large
/// inputs, and enumerates 3^dim cells per point, so dimensionality is capped
/// at 3.
bool GridCompatible(const DistanceMetric& metric, size_t dim, size_t n);

/// Packs up to 3 grid-cell coordinates (21 bits each, offset to stay
/// positive) into one hash key — the cell scheme shared by the grid builder
/// below and GridBackend's per-radius point-query index.
uint64_t PackGridCell(const int64_t* cell, size_t dim);

/// Exact O(n^2) pairwise scan: one distance computation per unordered pair;
/// each edge (i, j), i < j, is appended to both endpoints' lists in the
/// serial (i asc, j asc) order. `adjacency` must already hold dataset.size()
/// (possibly non-empty) lists. Returns the number of undirected edges added.
size_t BuildAdjacencyBruteForce(const Dataset& dataset,
                                const DistanceMetric& metric, double radius,
                                ThreadPool* pool, AdjacencyLists* adjacency);

/// Uniform-grid accelerated scan (requires GridCompatible and radius > 0):
/// hashes points into cells of side r and compares only same-or-adjacent
/// cell pairs — still exactly one distance computation per unordered
/// candidate pair, and the same append order and return value contract as
/// BuildAdjacencyBruteForce. Produces the identical edge set. When
/// `distance_computations` is non-null it receives the number of metric
/// evaluations performed (the candidate-pair count), accumulated in chunk
/// order so the total is thread-count independent.
size_t BuildAdjacencyWithGrid(const Dataset& dataset,
                              const DistanceMetric& metric, double radius,
                              ThreadPool* pool, AdjacencyLists* adjacency,
                              uint64_t* distance_computations = nullptr);

}  // namespace disc

#endif  // DISC_NEIGHBOR_ADJACENCY_H_
