// LshBackend: multi-probe locality-sensitive hashing over Minkowski metrics.
//
// The approximation layer the paper's NP-hardness result (§3) motivates:
// the exact r-neighborhood computation is what binds time and memory past a
// few tens of thousands of points, so this backend trades bounded recall
// for near-linear builds. The scheme is the classic p-stable one (Datar et
// al. 2004) with multi-probe extensions (Lv et al. 2007):
//
//   * Per table t of `tables`: `hashes` random Gaussian directions a_i and
//     offsets b_i in [0, w); h_i(x) = floor((a_i . x + b_i) / w) with bucket
//     width w = width_factor * r. A point's bucket is the tuple of its
//     `hashes` slot indexes, mixed into one 64-bit key.
//   * A query probes its home bucket plus `probes` perturbed buckets
//     (single-projection +/-1 shifts in fixed order), collects candidates
//     across all tables, and verifies each with an EXACT metric distance.
//
// Verification makes reported sets a subset of the true N_r(p) — no false
// positives, so "recall against the exact oracle" is the one quality number
// (measured in src/eval/neighbor_eval.h, gated in CI). Everything is
// deterministic: directions and offsets come from util/Random seeded by
// LshOptions::seed, so equal seeds yield equal graphs on every platform.
//
// The per-radius hash index is built lazily on first use (bucket width
// depends on r), immutable afterwards; concurrent queries are safe.
// Accounting: one range query per query, one node access per probed bucket,
// one distance computation per verified candidate.

#ifndef DISC_NEIGHBOR_LSH_BACKEND_H_
#define DISC_NEIGHBOR_LSH_BACKEND_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "neighbor/backend.h"

namespace disc {

class LshBackend final : public NeighborBackend {
 public:
  LshBackend(const Dataset& dataset, const DistanceMetric& metric,
             LshOptions options)
      : NeighborBackend(dataset, metric), options_(options) {}

  NeighborBackendKind kind() const override { return NeighborBackendKind::kLsh; }

  const LshOptions& options() const { return options_; }

  /// Default fan-out build, except the radius index is built once up front
  /// so workers never contend on the lazy-construction lock.
  Status BuildNeighborhoods(double radius, ThreadPool* pool,
                            AdjacencyLists* adjacency,
                            size_t* num_edges) const override;

 protected:
  void DoRangeQuery(const Point& center, ObjectId exclude, double radius,
                    std::vector<ObjectId>* out,
                    AccessStats* sink) const override;

 private:
  struct Table {
    /// hashes x dim Gaussian projection directions, then hashes offsets.
    std::vector<std::vector<double>> directions;
    std::vector<double> offsets;
    std::unordered_map<uint64_t, std::vector<ObjectId>> buckets;
  };
  struct Index {
    double width = 0;
    std::vector<Table> tables;
  };

  /// Returns the index for this radius, building it on first use. The
  /// returned object is immutable; the shared mutex guards only the map.
  const Index& EnsureIndex(double radius) const;

  const LshOptions options_;
  mutable std::shared_mutex mutex_;
  mutable std::map<double, std::unique_ptr<Index>> indexes_;
};

}  // namespace disc

#endif  // DISC_NEIGHBOR_LSH_BACKEND_H_
