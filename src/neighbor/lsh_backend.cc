#include "neighbor/lsh_backend.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>

#include "util/random.h"

namespace disc {

namespace {

// Mixes a tuple of slot indexes into one 64-bit bucket key (FNV-1a over the
// slot words). Distinct tuples may collide; collisions only add candidates,
// which verification filters out, so correctness is unaffected.
uint64_t BucketKey(const std::vector<int64_t>& slots) {
  uint64_t key = 1469598103934665603ull;
  for (int64_t slot : slots) {
    key ^= static_cast<uint64_t>(slot);
    key *= 1099511628211ull;
  }
  return key;
}

}  // namespace

const LshBackend::Index& LshBackend::EnsureIndex(double radius) const {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = indexes_.find(radius);
    if (it != indexes_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = indexes_.find(radius);
  if (it != indexes_.end()) return *it->second;

  auto index = std::make_unique<Index>();
  index->width = options_.width_factor * radius;
  const size_t dim = dataset_.dim();
  const size_t hashes = std::max<size_t>(1, options_.hashes);
  const size_t tables = std::max<size_t>(1, options_.tables);
  // One seeded stream drawn in a fixed order: all quantities — and therefore
  // the whole graph — are pure functions of (seed, dim, radius).
  Random rng(options_.seed);
  index->tables.resize(tables);
  for (Table& table : index->tables) {
    table.directions.resize(hashes);
    table.offsets.resize(hashes);
    for (size_t h = 0; h < hashes; ++h) {
      table.directions[h].resize(dim);
      for (size_t d = 0; d < dim; ++d) {
        table.directions[h][d] = rng.Gaussian();
      }
    }
    for (size_t h = 0; h < hashes; ++h) {
      table.offsets[h] = rng.Uniform01() * index->width;
    }
  }

  std::vector<int64_t> slots(hashes);
  for (Table& table : index->tables) {
    table.buckets.reserve(dataset_.size());
    for (ObjectId i = 0; i < dataset_.size(); ++i) {
      const Point& p = dataset_.point(i);
      for (size_t h = 0; h < hashes; ++h) {
        double dot = table.offsets[h];
        const std::vector<double>& a = table.directions[h];
        for (size_t d = 0; d < dim; ++d) dot += a[d] * p[d];
        slots[h] = static_cast<int64_t>(std::floor(dot / index->width));
      }
      table.buckets[BucketKey(slots)].push_back(i);
    }
  }
  return *indexes_.emplace(radius, std::move(index)).first->second;
}

Status LshBackend::BuildNeighborhoods(double radius, ThreadPool* pool,
                                      AdjacencyLists* adjacency,
                                      size_t* num_edges) const {
  if (radius > 0) EnsureIndex(radius);  // build once, before the fan-out
  return NeighborBackend::BuildNeighborhoods(radius, pool, adjacency,
                                             num_edges);
}

void LshBackend::DoRangeQuery(const Point& center, ObjectId exclude,
                              double radius, std::vector<ObjectId>* out,
                              AccessStats* sink) const {
  sink->range_queries += 1;
  const size_t n = dataset_.size();
  if (radius <= 0) {
    // Degenerate radius: hashing needs a positive bucket width, so fall
    // back to one exact scan (still a subset — in fact the full truth).
    sink->node_accesses += 1;
    for (ObjectId j = 0; j < n; ++j) {
      if (j == exclude) continue;
      ++sink->distance_computations;
      if (metric_.Distance(center, dataset_.point(j)) <= radius) {
        out->push_back(j);
      }
    }
    return;
  }

  const Index& index = EnsureIndex(radius);
  const size_t dim = dataset_.dim();
  const size_t hashes = index.tables.front().offsets.size();
  // A +/-1 shift of each projection exhausts the useful single-step
  // perturbations, so the probe count caps at 2 * hashes.
  const size_t probes = std::min(options_.probes, 2 * hashes);

  std::vector<int64_t> slots(hashes);
  std::vector<ObjectId> candidates;
  auto probe_bucket = [&](const Table& table, uint64_t key) {
    ++sink->node_accesses;
    auto it = table.buckets.find(key);
    if (it == table.buckets.end()) return;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  };

  for (const Table& table : index.tables) {
    for (size_t h = 0; h < hashes; ++h) {
      double dot = table.offsets[h];
      const std::vector<double>& a = table.directions[h];
      for (size_t d = 0; d < dim; ++d) dot += a[d] * center[d];
      slots[h] = static_cast<int64_t>(std::floor(dot / index.width));
    }
    probe_bucket(table, BucketKey(slots));
    for (size_t p = 0; p < probes; ++p) {
      const size_t h = p / 2;
      const int64_t delta = (p % 2 == 0) ? 1 : -1;
      slots[h] += delta;
      probe_bucket(table, BucketKey(slots));
      slots[h] -= delta;
    }
  }

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (ObjectId j : candidates) {
    if (j == exclude) continue;
    ++sink->distance_computations;
    if (metric_.Distance(center, dataset_.point(j)) <= radius) {
      out->push_back(j);
    }
  }
}

}  // namespace disc
