// Pluggable neighbor backends: the r-neighborhood computation as a service.
//
// Every DisC pass is dominated by computing N_r(p) (§4–§6 of the paper), and
// until this layer existed the only providers were the exact paths wired
// directly into NeighborhoodGraph: the O(n^2) scan, the uniform grid, and
// one M-tree range query per object. All three bind memory or time at a few
// tens of thousands of points. The paper's own NP-hardness result (§3)
// makes principled approximation the honest way past that ceiling, so this
// layer defines one interface — range query at radius r plus a batched
// neighborhood build, with accounting compatible with MTree::AccessStats —
// and four engines behind it:
//
//   * ExactMTreeBackend  — an owned M-tree, one range query per object.
//   * GridBackend        — the uniform-grid accelerator (exact; batched
//                          builds only pay the grid price once).
//   * LshBackend         — multi-probe locality-sensitive hashing over
//                          Minkowski metrics: candidates from hash buckets,
//                          verified with exact distances, so reported
//                          neighbor sets are always a SUBSET of the true
//                          N_r(p) (no false positives; recall < 1 is the
//                          only deviation). Deterministically seeded.
//   * ShardedBackend     — partitions the dataset into contiguous id ranges,
//                          builds a per-shard inner backend (exact or LSH)
//                          concurrently on the shared pool, and merges
//                          per-shard results in ascending shard order — the
//                          ordered-reduction contract again, so exact shards
//                          reproduce the unsharded neighbor sets exactly.
//
// Backends are immutable once constructed (LSH builds its per-radius hash
// index lazily under a lock; it is read-only afterwards), so batched builds
// may fan queries out across a thread pool. Accounting follows the M-tree's
// convention: every query charges node accesses (bucket probes for LSH),
// distance computations, and one range query to a caller-supplied sink or,
// when none is given, to the backend's own running stats().

#ifndef DISC_NEIGHBOR_BACKEND_H_
#define DISC_NEIGHBOR_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "neighbor/adjacency.h"
#include "util/status.h"

namespace disc {

class ThreadPool;  // util/parallel.h

/// The registered neighbor engines. kExact is the default everywhere and
/// preserves historical behavior exactly; kLshSharded is the configuration
/// that opens million-point workloads.
enum class NeighborBackendKind {
  kExact,       // one M-tree range query per object (exact)
  kGrid,        // uniform-grid accelerator (exact; falls back to brute force)
  kLsh,         // multi-probe LSH (approximate: subset of true neighbors)
  kSharded,     // sharded exact M-trees, merged in shard order (exact)
  kLshSharded,  // sharded LSH (approximate)
};

/// "exact" / "grid" / "lsh" / "sharded" / "lsh-sharded".
const char* NeighborBackendKindToString(NeighborBackendKind kind);

/// Parses the names above; anything else is InvalidArgument listing them.
Result<NeighborBackendKind> ParseNeighborBackendKind(const std::string& name);

/// Multi-probe LSH tuning. The defaults are the documented configuration the
/// CI quality gate holds to recall >= 0.9 against the exact oracle
/// (bench/bench_neighbor_backends.cc).
struct LshOptions {
  /// Independent hash tables; each is an AND of `hashes` projections.
  size_t tables = 6;
  /// Concatenated p-stable projections per table (bucket = their AND).
  size_t hashes = 4;
  /// Additional perturbed buckets probed per table beyond the home bucket
  /// (single-projection +/-1 shifts, in fixed order).
  size_t probes = 8;
  /// Bucket width as a multiple of the query radius: w = width_factor * r.
  double width_factor = 4.0;
  /// Seed for the projection directions and offsets (util/Random); equal
  /// seeds yield equal hash families and therefore equal graphs.
  uint64_t seed = 42;
};

/// Declarative backend selection, carried by EngineConfig and parseable from
/// the --neighbor-backend= flags and the OPEN protocol field.
struct NeighborBackendOptions {
  NeighborBackendKind kind = NeighborBackendKind::kExact;
  LshOptions lsh;
  /// Shard count for the sharded kinds; 0 picks a deterministic default
  /// that never depends on the thread count (results must not either).
  size_t shards = 0;
  /// Guardrail: CreateNeighborBackend refuses exact-family backends (exact,
  /// grid) over datasets larger than this, instead of letting an O(n^2)
  /// fallback or an oversized index take the process down. 0 = unlimited.
  /// The sharded and LSH kinds are exempt — they are the supported way to
  /// exceed the cap.
  size_t max_exact_points = 0;
};

/// True for the kinds whose neighbor sets equal the exact N_r(p) for every
/// object (everything except the LSH family).
bool NeighborBackendIsExact(NeighborBackendKind kind);

/// A stable identity string for engine pooling and cache keys: the kind name
/// plus, for approximate kinds, every knob that changes results
/// (e.g. "lsh:t6:h4:p8:w4:s42"). Exact kinds map to their plain name.
std::string NeighborBackendCacheKey(const NeighborBackendOptions& options);

/// The neighbor-computation interface. Implementations are thread-safe for
/// concurrent queries after construction; the dataset and metric must
/// outlive the backend.
class NeighborBackend {
 public:
  NeighborBackend(const Dataset& dataset, const DistanceMetric& metric)
      : dataset_(dataset), metric_(metric) {}
  virtual ~NeighborBackend() = default;

  NeighborBackend(const NeighborBackend&) = delete;
  NeighborBackend& operator=(const NeighborBackend&) = delete;

  virtual NeighborBackendKind kind() const = 0;
  const char* name() const { return NeighborBackendKindToString(kind()); }
  bool exact() const { return NeighborBackendIsExact(kind()); }

  const Dataset& dataset() const { return dataset_; }
  const DistanceMetric& metric() const { return metric_; }
  size_t size() const { return dataset_.size(); }

  /// N_r(center): ids at distance <= radius from the stored object `center`,
  /// excluding center itself, sorted ascending. Accounting goes to `sink`
  /// when given, else to stats(). Thread-safe; concurrent callers must pass
  /// private sinks (the same discipline as MTree::ThreadStatsScope).
  void RangeQueryAround(ObjectId center, double radius,
                        std::vector<ObjectId>* out,
                        AccessStats* sink = nullptr) const;

  /// All ids at distance <= radius from an arbitrary point (nothing
  /// excluded), sorted ascending — the fan-out entry point ShardedBackend
  /// uses against shards that do not hold the query object. Same accounting
  /// and thread-safety contract as RangeQueryAround.
  void RangeQuery(const Point& center, double radius,
                  std::vector<ObjectId>* out,
                  AccessStats* sink = nullptr) const;

  /// Batched build of the full adjacency structure for one radius:
  /// `adjacency` is resized to size() and entry v receives N_r(v) sorted
  /// ascending; `num_edges` receives the undirected edge count. For
  /// approximate backends the result is symmetrized (i lists j iff j lists
  /// i) so it is a well-formed graph. The default implementation fans
  /// RangeQueryAround over the pool under the ordered-reduction contract
  /// with per-chunk stat sinks, so both the lists and the stats totals are
  /// byte-identical to the serial loop at any thread count; backends with a
  /// cheaper batch path (the grid) override it.
  virtual Status BuildNeighborhoods(double radius, ThreadPool* pool,
                                    AdjacencyLists* adjacency,
                                    size_t* num_edges) const;

  /// Running totals of all accounting not redirected to a sink.
  const AccessStats& stats() const { return stats_; }
  void ResetStats() const { stats_ = AccessStats{}; }

 protected:
  /// The one method implementations provide: append every id at distance
  /// <= radius from `center` (any order) to `out`, skipping `exclude`
  /// (kInvalidObject = skip nothing; otherwise `center` is that object's
  /// stored point), and charge ALL accounting to `sink` (never null here).
  /// The public wrappers sort and route stats.
  virtual void DoRangeQuery(const Point& center, ObjectId exclude,
                            double radius, std::vector<ObjectId>* out,
                            AccessStats* sink) const = 0;

  const Dataset& dataset_;
  const DistanceMetric& metric_;
  mutable AccessStats stats_;
};

/// Constructs the backend `options` describes over (dataset, metric).
/// Returns InvalidArgument for LSH kinds over the Hamming metric (no
/// p-stable projection for unordered categories — use exact/sharded), and
/// for exact-family kinds over datasets above options.max_exact_points.
/// `pool` parallelizes construction (per-shard builds); it is not retained.
Result<std::unique_ptr<NeighborBackend>> CreateNeighborBackend(
    const Dataset& dataset, const DistanceMetric& metric,
    const NeighborBackendOptions& options, ThreadPool* pool = nullptr);

}  // namespace disc

#endif  // DISC_NEIGHBOR_BACKEND_H_
