#include "neighbor/backend.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "neighbor/exact_backend.h"
#include "neighbor/grid_backend.h"
#include "neighbor/lsh_backend.h"
#include "neighbor/sharded_backend.h"
#include "util/parallel.h"

namespace disc {

namespace {

// Makes every adjacency list symmetric: whenever i lists j but j does not
// list i, j gains i. Lists must be sorted ascending on entry and stay sorted
// on exit. Approximate backends need this — a hash probe from i can find j
// while the probe from j misses i — and a symmetric union only ever ADDS
// true neighbors (every reported id is distance-verified), so recall can
// only improve. Returns the directed entry count after repair.
size_t SymmetrizeAdjacency(AdjacencyLists* adjacency) {
  std::vector<std::pair<ObjectId, ObjectId>> missing;  // (to, add)
  for (ObjectId i = 0; i < adjacency->size(); ++i) {
    for (ObjectId j : (*adjacency)[i]) {
      const auto& back = (*adjacency)[j];
      if (!std::binary_search(back.begin(), back.end(), i)) {
        missing.emplace_back(j, i);
      }
    }
  }
  for (const auto& [to, add] : missing) (*adjacency)[to].push_back(add);
  size_t directed = 0;
  for (auto& list : *adjacency) {
    std::sort(list.begin(), list.end());
    directed += list.size();
  }
  return directed;
}

}  // namespace

const char* NeighborBackendKindToString(NeighborBackendKind kind) {
  switch (kind) {
    case NeighborBackendKind::kExact:
      return "exact";
    case NeighborBackendKind::kGrid:
      return "grid";
    case NeighborBackendKind::kLsh:
      return "lsh";
    case NeighborBackendKind::kSharded:
      return "sharded";
    case NeighborBackendKind::kLshSharded:
      return "lsh-sharded";
  }
  return "unknown";
}

Result<NeighborBackendKind> ParseNeighborBackendKind(const std::string& name) {
  if (name == "exact") return NeighborBackendKind::kExact;
  if (name == "grid") return NeighborBackendKind::kGrid;
  if (name == "lsh") return NeighborBackendKind::kLsh;
  if (name == "sharded") return NeighborBackendKind::kSharded;
  if (name == "lsh-sharded") return NeighborBackendKind::kLshSharded;
  return Status::InvalidArgument(
      "unknown neighbor backend '" + name +
      "' (want exact, grid, lsh, sharded, or lsh-sharded)");
}

bool NeighborBackendIsExact(NeighborBackendKind kind) {
  return kind != NeighborBackendKind::kLsh &&
         kind != NeighborBackendKind::kLshSharded;
}

std::string NeighborBackendCacheKey(const NeighborBackendOptions& options) {
  std::string key = NeighborBackendKindToString(options.kind);
  const bool sharded = options.kind == NeighborBackendKind::kSharded ||
                       options.kind == NeighborBackendKind::kLshSharded;
  const bool lsh = options.kind == NeighborBackendKind::kLsh ||
                   options.kind == NeighborBackendKind::kLshSharded;
  if (lsh) {
    char knobs[96];
    std::snprintf(knobs, sizeof(knobs), ":t%zu:h%zu:p%zu:w%g:s%llu",
                  options.lsh.tables, options.lsh.hashes, options.lsh.probes,
                  options.lsh.width_factor,
                  static_cast<unsigned long long>(options.lsh.seed));
    key += knobs;
  }
  if (sharded && options.shards != 0) {
    key += ":n" + std::to_string(options.shards);
  }
  return key;
}

void NeighborBackend::RangeQueryAround(ObjectId center, double radius,
                                       std::vector<ObjectId>* out,
                                       AccessStats* sink) const {
  out->clear();
  AccessStats* target = sink != nullptr ? sink : &stats_;
  DoRangeQuery(dataset_.point(center), center, radius, out, target);
  std::sort(out->begin(), out->end());
}

void NeighborBackend::RangeQuery(const Point& center, double radius,
                                 std::vector<ObjectId>* out,
                                 AccessStats* sink) const {
  out->clear();
  AccessStats* target = sink != nullptr ? sink : &stats_;
  DoRangeQuery(center, kInvalidObject, radius, out, target);
  std::sort(out->begin(), out->end());
}

Status NeighborBackend::BuildNeighborhoods(double radius, ThreadPool* pool,
                                           AdjacencyLists* adjacency,
                                           size_t* num_edges) const {
  const size_t n = size();
  adjacency->assign(n, {});
  size_t directed = 0;
  if (pool == nullptr || pool->threads() <= 1) {
    AccessStats local;
    for (ObjectId i = 0; i < n; ++i) {
      RangeQueryAround(i, radius, &(*adjacency)[i], &local);
      directed += (*adjacency)[i].size();
    }
    stats_ += local;
  } else {
    // Adjacency rows are disjoint per object, so chunks write them in
    // place; accounting goes to per-chunk sinks summed back in chunk order
    // (exact integer totals, same as serial).
    struct ChunkResult {
      AccessStats stats;
      size_t directed_edges = 0;
    };
    const size_t grain = RecommendedGrain(n, pool->threads());
    ParallelOrderedReduce<ChunkResult>(
        pool, 0, n, grain,
        [&](size_t chunk_begin, size_t chunk_end) {
          ChunkResult result;
          for (size_t i = chunk_begin; i < chunk_end; ++i) {
            RangeQueryAround(static_cast<ObjectId>(i), radius,
                             &(*adjacency)[i], &result.stats);
            result.directed_edges += (*adjacency)[i].size();
          }
          return result;
        },
        [&](ChunkResult& result) {
          stats_ += result.stats;
          directed += result.directed_edges;
        });
  }
  if (!exact()) directed = SymmetrizeAdjacency(adjacency);
  if (num_edges != nullptr) *num_edges = directed / 2;
  return Status::OK();
}

Result<std::unique_ptr<NeighborBackend>> CreateNeighborBackend(
    const Dataset& dataset, const DistanceMetric& metric,
    const NeighborBackendOptions& options, ThreadPool* pool) {
  const size_t n = dataset.size();
  const bool capped = options.max_exact_points > 0;
  switch (options.kind) {
    case NeighborBackendKind::kExact: {
      if (capped && n > options.max_exact_points) {
        return Status::InvalidArgument(
            "dataset has " + std::to_string(n) +
            " points, above the exact-backend cap of " +
            std::to_string(options.max_exact_points) +
            "; use the sharded, lsh, or lsh-sharded neighbor backend");
      }
      auto backend = ExactMTreeBackend::Create(dataset, metric);
      if (!backend.ok()) return backend.status();
      return std::unique_ptr<NeighborBackend>(std::move(backend).value());
    }
    case NeighborBackendKind::kGrid: {
      // When the grid does not apply, every batched build degrades to the
      // O(n^2) scan — exactly the silent-fallback OOM the cap guards.
      if (capped && n > options.max_exact_points &&
          !GridCompatible(metric, dataset.dim(), n)) {
        return Status::InvalidArgument(
            "grid backend would fall back to the O(n^2) scan (" +
            std::string(metric.name()) + " metric, dim " +
            std::to_string(dataset.dim()) + ") over " + std::to_string(n) +
            " points, above the cap of " +
            std::to_string(options.max_exact_points) +
            "; use the sharded, lsh, or lsh-sharded neighbor backend");
      }
      return std::unique_ptr<NeighborBackend>(
          std::make_unique<GridBackend>(dataset, metric));
    }
    case NeighborBackendKind::kLsh: {
      if (metric.kind() == MetricKind::kHamming) {
        return Status::InvalidArgument(
            "lsh neighbor backend does not support the hamming metric "
            "(no p-stable projection for unordered categories); use exact "
            "or sharded");
      }
      return std::unique_ptr<NeighborBackend>(
          std::make_unique<LshBackend>(dataset, metric, options.lsh));
    }
    case NeighborBackendKind::kSharded:
    case NeighborBackendKind::kLshSharded: {
      if (options.kind == NeighborBackendKind::kLshSharded &&
          metric.kind() == MetricKind::kHamming) {
        return Status::InvalidArgument(
            "lsh-sharded neighbor backend does not support the hamming "
            "metric (no p-stable projection for unordered categories); use "
            "exact or sharded");
      }
      auto backend = ShardedBackend::Create(dataset, metric, options, pool);
      if (!backend.ok()) return backend.status();
      return std::unique_ptr<NeighborBackend>(std::move(backend).value());
    }
  }
  return Status::InvalidArgument("unknown neighbor backend kind");
}

}  // namespace disc
