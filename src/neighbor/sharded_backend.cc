#include "neighbor/sharded_backend.h"

#include <algorithm>
#include <utility>

#include "neighbor/exact_backend.h"
#include "neighbor/lsh_backend.h"
#include "util/parallel.h"

namespace disc {

size_t ShardedBackend::DefaultShardCount(size_t n) {
  // Purely a function of n so results and accounting never depend on the
  // machine: enough shards to matter at scale, no pointless splitting of
  // small inputs.
  if (n >= 262144) return 16;
  if (n >= 32768) return 8;
  if (n >= 4096) return 4;
  return 2;
}

Result<std::unique_ptr<ShardedBackend>> ShardedBackend::Create(
    const Dataset& dataset, const DistanceMetric& metric,
    const NeighborBackendOptions& options, ThreadPool* pool) {
  const size_t n = dataset.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot shard an empty dataset");
  }
  size_t count = options.shards != 0 ? options.shards : DefaultShardCount(n);
  count = std::min(count, n);  // at least one point per shard

  // Contiguous ranges via the same arithmetic as util/parallel.h chunking:
  // ceil-divided grain, last shard takes the remainder.
  const size_t grain = (n + count - 1) / count;
  std::vector<Shard> shards;
  for (size_t begin = 0; begin < n; begin += grain) {
    Shard shard;
    shard.begin = static_cast<ObjectId>(begin);
    shard.local = std::make_unique<Dataset>(dataset.dim());
    const size_t end = std::min(begin + grain, n);
    for (size_t i = begin; i < end; ++i) {
      DISC_RETURN_NOT_OK(shard.local->Add(dataset.point(i)));
    }
    shards.push_back(std::move(shard));
  }

  // Inner builds are independent (each touches only its own slice), so they
  // fan out across the pool; per-shard statuses are checked afterwards in
  // shard order.
  std::vector<Status> statuses(shards.size());
  ParallelFor(pool, 0, shards.size(), 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      Shard& shard = shards[s];
      if (options.kind == NeighborBackendKind::kLshSharded) {
        // One shared hash family (same seed): the sharded graph is
        // byte-identical to the unsharded LshBackend's.
        shard.backend = std::make_unique<LshBackend>(*shard.local, metric,
                                                     options.lsh);
      } else {
        auto built = ExactMTreeBackend::Create(*shard.local, metric);
        if (!built.ok()) {
          statuses[s] = built.status();
          continue;
        }
        shard.backend = std::move(built).value();
      }
    }
  });
  for (const Status& status : statuses) DISC_RETURN_NOT_OK(status);

  const NeighborBackendKind kind =
      options.kind == NeighborBackendKind::kLshSharded
          ? NeighborBackendKind::kLshSharded
          : NeighborBackendKind::kSharded;
  return std::unique_ptr<ShardedBackend>(
      new ShardedBackend(dataset, metric, kind, std::move(shards)));
}

void ShardedBackend::DoRangeQuery(const Point& center, ObjectId exclude,
                                  double radius, std::vector<ObjectId>* out,
                                  AccessStats* sink) const {
  // Ascending shard order + contiguous ranges + sorted per-shard results =
  // globally sorted concatenation; stats accumulate in the same order.
  std::vector<ObjectId> local;
  for (const Shard& shard : shards_) {
    const size_t shard_size = shard.local->size();
    const bool holds_exclude =
        exclude != kInvalidObject && exclude >= shard.begin &&
        exclude < shard.begin + shard_size;
    local.clear();
    if (holds_exclude) {
      shard.backend->RangeQueryAround(exclude - shard.begin, radius, &local,
                                      sink);
    } else {
      shard.backend->RangeQuery(center, radius, &local, sink);
    }
    // The per-query range_queries charge stays 1 for the whole fan-out;
    // subtract the inner queries' own increments.
    sink->range_queries -= 1;
    for (ObjectId id : local) out->push_back(id + shard.begin);
  }
  sink->range_queries += 1;
}

}  // namespace disc
