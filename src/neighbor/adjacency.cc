#include "neighbor/adjacency.h"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace disc {

namespace {

using EdgeList = std::vector<std::pair<ObjectId, ObjectId>>;

// Appends (i, j) pairs (i < j) to both endpoints' adjacency lists.
size_t MergeEdges(const EdgeList& edges, AdjacencyLists* adjacency) {
  for (const auto& [i, j] : edges) {
    (*adjacency)[i].push_back(j);
    (*adjacency)[j].push_back(i);
  }
  return edges.size();
}

}  // namespace

bool GridCompatible(const DistanceMetric& metric, size_t dim, size_t n) {
  if (metric.kind() == MetricKind::kHamming) return false;
  // The grid pays off for large low-dimensional inputs; cell enumeration is
  // 3^dim per point, so cap the dimensionality.
  return dim >= 1 && dim <= 3 && n >= 256;
}

uint64_t PackGridCell(const int64_t* cell, size_t dim) {
  // Pack up to 3 cell coordinates (21 bits each, offset to stay positive).
  uint64_t key = 0;
  for (size_t d = 0; d < dim; ++d) {
    int64_t c = cell[d] + (1 << 20);
    key = (key << 21) | static_cast<uint64_t>(c & ((1 << 21) - 1));
  }
  return key;
}

size_t BuildAdjacencyBruteForce(const Dataset& dataset,
                                const DistanceMetric& metric, double radius,
                                ThreadPool* pool, AdjacencyLists* adjacency) {
  const size_t n = dataset.size();
  size_t num_edges = 0;
  if (pool == nullptr || pool->threads() <= 1) {
    // One distance computation per unordered pair: j starts above i and the
    // edge is recorded at both endpoints (the regression test in
    // tests/neighborhood_test.cc pins the call count to n(n-1)/2).
    for (ObjectId i = 0; i < n; ++i) {
      for (ObjectId j = i + 1; j < n; ++j) {
        if (metric.Distance(dataset.point(i), dataset.point(j)) <= radius) {
          (*adjacency)[i].push_back(j);
          (*adjacency)[j].push_back(i);
          ++num_edges;
        }
      }
    }
    return num_edges;
  }

  // Chunks of rows collect (i, j) pairs into private buffers; merging in
  // ascending chunk order reproduces the serial (i asc, j asc) edge
  // sequence exactly, so the graph is byte-identical for any thread count.
  const size_t grain = RecommendedGrain(n, pool->threads());
  ParallelOrderedReduce<EdgeList>(
      pool, 0, n, grain,
      [&](size_t chunk_begin, size_t chunk_end) {
        EdgeList edges;
        for (size_t i = chunk_begin; i < chunk_end; ++i) {
          const Point& p = dataset.point(i);
          for (size_t j = i + 1; j < n; ++j) {
            if (metric.Distance(p, dataset.point(j)) <= radius) {
              edges.emplace_back(static_cast<ObjectId>(i),
                                 static_cast<ObjectId>(j));
            }
          }
        }
        return edges;
      },
      [&](EdgeList& edges) { num_edges += MergeEdges(edges, adjacency); });
  return num_edges;
}

size_t BuildAdjacencyWithGrid(const Dataset& dataset,
                              const DistanceMetric& metric, double radius,
                              ThreadPool* pool, AdjacencyLists* adjacency,
                              uint64_t* distance_computations) {
  const size_t n = dataset.size();
  const size_t dim = dataset.dim();
  size_t num_edges = 0;
  uint64_t distance_calls = 0;

  // Hash points into cells of side r; any neighbor pair lies in the same or
  // an adjacent cell along every axis.
  std::vector<int64_t> scratch(dim);
  auto cell_key = [&](const Point& p) {
    for (size_t d = 0; d < dim; ++d) {
      scratch[d] = static_cast<int64_t>(std::floor(p[d] / radius));
    }
    return PackGridCell(scratch.data(), dim);
  };

  std::unordered_map<uint64_t, std::vector<ObjectId>> cells;
  cells.reserve(n);
  for (ObjectId i = 0; i < n; ++i) {
    cells[cell_key(dataset.point(i))].push_back(i);
  }

  // Enumerate each point's 3^dim neighboring cells; the cell map is shared
  // read-only once populated. One distance computation per unordered
  // candidate pair (the j <= i skip dedupes the two enumerations that see
  // the pair). `count` accumulates the candidate-pair count per chunk, so
  // the reported distance-computation total is thread-count independent.
  const size_t num_offsets = static_cast<size_t>(std::pow(3.0, dim));
  auto scan_rows = [&](size_t row_begin, size_t row_end, uint64_t* count,
                       auto&& emit) {
    std::vector<int64_t> base(dim);
    std::vector<int64_t> probe(dim);
    for (size_t i = row_begin; i < row_end; ++i) {
      const Point& p = dataset.point(i);
      for (size_t d = 0; d < dim; ++d) {
        base[d] = static_cast<int64_t>(std::floor(p[d] / radius));
      }
      for (size_t mask = 0; mask < num_offsets; ++mask) {
        size_t rem = mask;
        for (size_t d = 0; d < dim; ++d) {
          probe[d] = base[d] + static_cast<int64_t>(rem % 3) - 1;
          rem /= 3;
        }
        auto it = cells.find(PackGridCell(probe.data(), dim));
        if (it == cells.end()) continue;
        for (ObjectId j : it->second) {
          if (j <= i) continue;  // each unordered pair once
          ++*count;
          if (metric.Distance(p, dataset.point(j)) <= radius) {
            emit(static_cast<ObjectId>(i), j);
          }
        }
      }
    }
  };

  if (pool == nullptr || pool->threads() <= 1) {
    // Serial: stream edges straight into the adjacency lists (no O(E)
    // staging buffer).
    scan_rows(0, n, &distance_calls, [&](ObjectId i, ObjectId j) {
      (*adjacency)[i].push_back(j);
      (*adjacency)[j].push_back(i);
      ++num_edges;
    });
    if (distance_computations != nullptr) {
      *distance_computations = distance_calls;
    }
    return num_edges;
  }

  struct ChunkEdges {
    EdgeList edges;
    uint64_t distance_calls = 0;
  };
  const size_t grain = RecommendedGrain(n, pool->threads());
  ParallelOrderedReduce<ChunkEdges>(
      pool, 0, n, grain,
      [&](size_t chunk_begin, size_t chunk_end) {
        ChunkEdges chunk;
        scan_rows(chunk_begin, chunk_end, &chunk.distance_calls,
                  [&](ObjectId i, ObjectId j) {
                    chunk.edges.emplace_back(i, j);
                  });
        return chunk;
      },
      [&](ChunkEdges& chunk) {
        num_edges += MergeEdges(chunk.edges, adjacency);
        distance_calls += chunk.distance_calls;
      });
  if (distance_computations != nullptr) {
    *distance_computations = distance_calls;
  }
  return num_edges;
}

}  // namespace disc
