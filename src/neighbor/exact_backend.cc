#include "neighbor/exact_backend.h"

#include <utility>
#include <vector>

namespace disc {

Result<std::unique_ptr<ExactMTreeBackend>> ExactMTreeBackend::Create(
    const Dataset& dataset, const DistanceMetric& metric,
    MTreeOptions options) {
  auto tree = std::make_unique<MTree>(dataset, metric, options);
  DISC_RETURN_NOT_OK(tree->Build());
  // Construction costs stay out of the query accounting.
  tree->ResetStats();
  return std::unique_ptr<ExactMTreeBackend>(
      new ExactMTreeBackend(dataset, metric, std::move(tree)));
}

void ExactMTreeBackend::DoRangeQuery(const Point& center, ObjectId exclude,
                                     double radius,
                                     std::vector<ObjectId>* out,
                                     AccessStats* sink) const {
  MTree::ThreadStatsScope scope(*tree_, sink);
  std::vector<Neighbor> found;
  if (exclude != kInvalidObject) {
    tree_->RangeQueryAround(exclude, radius, QueryFilter::kAll,
                            /*pruned=*/false, &found);
  } else {
    tree_->RangeQuery(center, radius, QueryFilter::kAll, /*pruned=*/false,
                      &found);
  }
  out->reserve(out->size() + found.size());
  for (const Neighbor& nb : found) out->push_back(nb.id);
}

}  // namespace disc
