// Bulk loading: builds the whole M-tree at once instead of inserting objects
// one at a time, in the style of Ciaccia & Patella's BulkLoading algorithm.
//
// Phase 1 clusters the objects into leaf-sized groups by sampled-recursive
// partitioning: sample k seeds, assign every object to its nearest seed, and
// recurse into groups still larger than the node capacity. Phase 2 turns the
// groups into leaves (pivot = group seed, covering radius = farthest member)
// and then assembles the internal levels bottom-up by clustering the pivots
// of the level below, so every level satisfies the same covering-radius and
// parent-distance invariants the insert path maintains (MTree::Validate
// checks both builds against the identical rules).
//
// Compared with insert-at-a-time the bulk path performs no node splits and
// no per-object root-to-leaf descents, which makes construction cheaper, and
// the seeded clustering yields tighter balls, which makes downstream range
// queries cheaper too (measured in bench_ablation_mtree).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mtree/mtree.h"
#include "mtree/mtree_internal.h"
#include "util/parallel.h"

namespace disc {

namespace {

// One object assigned to a cluster, with its distance to the cluster seed
// (reused as the leaf entry's parent_dist, so assignment distances are never
// recomputed).
struct Member {
  ObjectId id;
  double dist_to_seed;
};

// A group of at most node_capacity objects clustered around `seed` (which is
// itself a member, at distance 0).
struct Cluster {
  ObjectId seed;
  std::vector<Member> members;
};

// Sampled-recursive partitioner. Works on plain object ids, so the same
// instance clusters dataset objects into leaves and node pivots into
// internal levels.
//
// Parallelism: the nearest-seed assignment — the n*k distance computations
// that dominate the build — fans out across the pool. Seed sampling stays on
// the calling thread (it is the sole consumer of the random state, and its
// draw order must not depend on scheduling), each assignment chunk runs
// under a private stats sink, and chunk results merge in ascending order, so
// clusters, the random stream, and stats totals are byte-identical to the
// serial partitioner at any thread count.
class SeedPartitioner {
 public:
  using DistFn = double (*)(const MTree&, ObjectId, ObjectId);

  SeedPartitioner(const MTree& tree, DistFn dist, size_t max_group,
                  uint64_t* rng, ThreadPool* pool)
      : tree_(tree), dist_(dist), max_group_(max_group), rng_(rng),
        pool_(pool) {}

  std::vector<Cluster> Partition(std::vector<ObjectId> ids) {
    std::vector<Cluster> out;
    Recurse(std::move(ids), &out);
    return out;
  }

 private:
  void Recurse(std::vector<ObjectId> ids, std::vector<Cluster>* out) {
    const size_t n = ids.size();
    if (n <= max_group_) {
      EmitChunks(ids, out);
      return;
    }

    // Sample k distinct seeds with a partial Fisher-Yates shuffle. k is the
    // number of max_group_-sized groups the ids would ideally form, but
    // capped low: assignment costs n*k distances per recursion step, so a
    // small fanout with one extra recursion level is far cheaper than
    // matching the final fanout in one step (n*F*log_F(n) vs n*n/cap).
    constexpr size_t kMaxSeeds = 8;
    const size_t ideal = (n + max_group_ - 1) / max_group_;
    const size_t k =
        std::min({max_group_, kMaxSeeds, std::max<size_t>(2, ideal)});
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextRandom(rng_) % (n - i));
      std::swap(ids[i], ids[j]);
    }

    // Assign every id to its nearest seed (ties toward the earlier seed).
    std::vector<std::vector<Member>> groups(k);
    if (pool_ == nullptr || pool_->threads() <= 1) {
      for (ObjectId id : ids) {
        size_t best = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (size_t s = 0; s < k; ++s) {
          double d = dist_(tree_, id, ids[s]);
          if (d < best_dist) {
            best_dist = d;
            best = s;
          }
        }
        groups[best].push_back(Member{id, best_dist});
      }
    } else {
      // Per-id seed choices are independent; compute them on the workers
      // under private stats sinks, then append to the groups (and sum the
      // sinks) in ascending chunk order — exactly the serial loop's result.
      struct Choice {
        std::vector<std::pair<size_t, double>> best;  // (seed index, dist)
        AccessStats stats;
      };
      const size_t grain = RecommendedGrain(n, pool_->threads());
      size_t next = 0;  // consume sees chunks in order: ids[next] advances
      ParallelOrderedReduce<Choice>(
          pool_, 0, n, grain,
          [&](size_t chunk_begin, size_t chunk_end) {
            Choice choice;
            MTree::ThreadStatsScope scope(tree_, &choice.stats);
            choice.best.reserve(chunk_end - chunk_begin);
            for (size_t i = chunk_begin; i < chunk_end; ++i) {
              size_t best = 0;
              double best_dist = std::numeric_limits<double>::infinity();
              for (size_t s = 0; s < k; ++s) {
                double d = dist_(tree_, ids[i], ids[s]);
                if (d < best_dist) {
                  best_dist = d;
                  best = s;
                }
              }
              choice.best.emplace_back(best, best_dist);
            }
            return choice;
          },
          [&](Choice& choice) {
            tree_.stats() += choice.stats;
            for (const auto& [best, dist] : choice.best) {
              groups[best].push_back(Member{ids[next++], dist});
            }
          });
    }

    for (size_t s = 0; s < k; ++s) {
      if (groups[s].empty()) continue;
      if (groups[s].size() == n) {
        // Degenerate geometry (e.g. all points coincide): assignment made no
        // progress, so split positionally instead of spatially.
        EmitChunks(ids, out);
        return;
      }
      if (groups[s].size() <= max_group_) {
        out->push_back(Cluster{ids[s], std::move(groups[s])});
      } else {
        std::vector<ObjectId> sub;
        sub.reserve(groups[s].size());
        for (const Member& m : groups[s]) sub.push_back(m.id);
        Recurse(std::move(sub), out);
      }
    }
  }

  // Fallback that always makes progress: consecutive runs of at most
  // max_group_ ids, each seeded by its first element.
  void EmitChunks(const std::vector<ObjectId>& ids,
                  std::vector<Cluster>* out) {
    for (size_t begin = 0; begin < ids.size(); begin += max_group_) {
      const size_t end = std::min(ids.size(), begin + max_group_);
      Cluster cluster;
      cluster.seed = ids[begin];
      cluster.members.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        cluster.members.push_back(
            Member{ids[i], dist_(tree_, ids[i], cluster.seed)});
      }
      out->push_back(std::move(cluster));
    }
  }

  const MTree& tree_;
  DistFn dist_;
  size_t max_group_;
  uint64_t* rng_;
  ThreadPool* pool_;
};

double TreeDistance(const MTree& tree, ObjectId a, ObjectId b) {
  return tree.Distance(a, b);
}

}  // namespace

Status MTree::BulkLoad(ThreadPool* pool) {
  DISC_RETURN_NOT_OK(CheckBuildPreconditions());
  InitObjectState();
  const size_t n = dataset_.size();
  const size_t capacity = options_.node_capacity;

  if (n <= capacity) {
    // Everything fits in one leaf, which doubles as the root (pivot-less,
    // infinite radius — the same degenerate shape the insert path produces).
    root_ = std::make_unique<Node>(/*leaf=*/true);
    first_leaf_ = root_.get();
    num_nodes_ = 1;
    ++stats_.node_accesses;
    root_->objects.reserve(n);
    for (ObjectId id = 0; id < n; ++id) {
      root_->objects.push_back(LeafEntry{id, 0.0});
      leaf_of_[id] = root_.get();
    }
    root_->white_count = static_cast<uint32_t>(n);
    built_ = true;
    ResetColors();
    return Status::OK();
  }

  SeedPartitioner partitioner(*this, &TreeDistance, capacity, &rng_state_,
                              pool);

  // ---- Phase 1: cluster objects into leaf-sized groups ----
  std::vector<ObjectId> ids(n);
  for (ObjectId id = 0; id < n; ++id) ids[id] = id;
  std::vector<Cluster> clusters = partitioner.Partition(std::move(ids));

  // ---- Phase 2a: materialize the leaf level (and the leaf chain) ----
  // Each cluster becomes one leaf, built independently on the workers (the
  // clusters partition the objects, so the leaf_of_ writes are disjoint);
  // the chunk-ordered merge then threads the leaf chain and the counters in
  // cluster order, identical to the serial loop.
  std::vector<std::unique_ptr<Node>> level;
  level.reserve(clusters.size());
  Node* prev_leaf = nullptr;
  const size_t leaf_grain =
      pool == nullptr ? clusters.size()
                      : RecommendedGrain(clusters.size(), pool->threads());
  ParallelOrderedReduce<std::vector<std::unique_ptr<Node>>>(
      pool, 0, clusters.size(), leaf_grain,
      [&](size_t chunk_begin, size_t chunk_end) {
        std::vector<std::unique_ptr<Node>> built;
        built.reserve(chunk_end - chunk_begin);
        for (size_t c = chunk_begin; c < chunk_end; ++c) {
          Cluster& cluster = clusters[c];
          auto leaf = std::make_unique<Node>(/*leaf=*/true);
          leaf->pivot = cluster.seed;
          double radius = 0.0;
          leaf->objects.reserve(cluster.members.size());
          for (const Member& m : cluster.members) {
            leaf->objects.push_back(LeafEntry{m.id, m.dist_to_seed});
            leaf_of_[m.id] = leaf.get();
            radius = std::max(radius, m.dist_to_seed);
          }
          leaf->radius = radius;
          leaf->white_count = static_cast<uint32_t>(cluster.members.size());
          built.push_back(std::move(leaf));
        }
        return built;
      },
      [&](std::vector<std::unique_ptr<Node>>& built) {
        for (std::unique_ptr<Node>& leaf : built) {
          ++num_nodes_;
          ++stats_.node_accesses;  // the new leaf is written
          leaf->prev_leaf = prev_leaf;
          if (prev_leaf != nullptr) {
            prev_leaf->next_leaf = leaf.get();
          } else {
            first_leaf_ = leaf.get();
          }
          prev_leaf = leaf.get();
          level.push_back(std::move(leaf));
        }
      });

  // ---- Phase 2b: assemble internal levels bottom-up ----
  // Each pass clusters the current level's pivots and wraps every cluster in
  // a parent node whose covering radius bounds its children via the triangle
  // inequality (parent_dist + child radius).
  while (level.size() > capacity) {
    std::unordered_map<ObjectId, size_t> index_of_pivot;
    index_of_pivot.reserve(level.size());
    std::vector<ObjectId> pivots;
    pivots.reserve(level.size());
    for (size_t i = 0; i < level.size(); ++i) {
      index_of_pivot.emplace(level[i]->pivot, i);
      pivots.push_back(level[i]->pivot);
    }

    std::vector<Cluster> groups = partitioner.Partition(std::move(pivots));
    if (groups.size() >= level.size()) {
      // All-singleton clustering (pathological ties) would never converge;
      // group the nodes positionally instead.
      groups.clear();
      for (size_t begin = 0; begin < level.size(); begin += capacity) {
        const size_t end = std::min(level.size(), begin + capacity);
        Cluster group;
        group.seed = level[begin]->pivot;
        for (size_t i = begin; i < end; ++i) {
          group.members.push_back(
              Member{level[i]->pivot, Distance(level[i]->pivot, group.seed)});
        }
        groups.push_back(std::move(group));
      }
    }

    std::vector<std::unique_ptr<Node>> next_level;
    next_level.reserve(groups.size());
    for (Cluster& group : groups) {
      auto parent = std::make_unique<Node>(/*leaf=*/false);
      ++num_nodes_;
      ++stats_.node_accesses;  // the new internal node is written
      parent->pivot = group.seed;
      double radius = 0.0;
      parent->children.reserve(group.members.size());
      for (const Member& m : group.members) {
        std::unique_ptr<Node>& child = level[index_of_pivot.at(m.id)];
        radius = std::max(radius, m.dist_to_seed + child->radius);
        parent->white_count += child->white_count;
        child->parent = parent.get();
        parent->children.push_back(RoutingEntry{
            child->pivot, child->radius, m.dist_to_seed, std::move(child)});
      }
      parent->radius = radius;
      next_level.push_back(std::move(parent));
    }
    level = std::move(next_level);
  }

  // ---- Phase 2c: the root adopts the surviving top level ----
  root_ = std::make_unique<Node>(/*leaf=*/false);
  ++num_nodes_;
  ++stats_.node_accesses;  // the root is written
  root_->children.reserve(level.size());
  for (std::unique_ptr<Node>& child : level) {
    root_->white_count += child->white_count;
    child->parent = root_.get();
    root_->children.push_back(
        RoutingEntry{child->pivot, child->radius, 0.0, std::move(child)});
  }

  built_ = true;
  ResetColors();
  return Status::OK();
}

}  // namespace disc
