#include "mtree/mtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "mtree/mtree_internal.h"
#include "util/parallel.h"

namespace disc {

namespace {

// The active per-thread stats redirect (MTree::ThreadStatsScope). Keyed by
// tree so a thread touching several trees only redirects the scoped one.
thread_local const MTree* tls_stats_tree = nullptr;
thread_local AccessStats* tls_stats_sink = nullptr;

}  // namespace

MTree::ThreadStatsScope::ThreadStatsScope(const MTree& tree, AccessStats* sink)
    : prev_tree_(tls_stats_tree), prev_sink_(tls_stats_sink) {
  tls_stats_tree = &tree;
  tls_stats_sink = sink;
}

MTree::ThreadStatsScope::~ThreadStatsScope() {
  tls_stats_tree = prev_tree_;
  tls_stats_sink = prev_sink_;
}

AccessStats& MTree::LiveStats() const {
  return tls_stats_tree == this ? *tls_stats_sink : stats_;
}

MTree::MTree(const Dataset& dataset, const DistanceMetric& metric,
             MTreeOptions options)
    : dataset_(dataset),
      metric_(metric),
      options_(options),
      rng_state_(options.random_seed ^ 0x9e3779b97f4a7c15ULL) {}

MTree::~MTree() = default;

double MTree::Distance(ObjectId a, ObjectId b) const {
  ++LiveStats().distance_computations;
  return metric_.Distance(dataset_.point(a), dataset_.point(b));
}

double MTree::DistanceToPoint(const Point& q, ObjectId b) const {
  ++LiveStats().distance_computations;
  return metric_.Distance(q, dataset_.point(b));
}

const char* BuildStrategyToString(BuildStrategy strategy) {
  switch (strategy) {
    case BuildStrategy::kInsertAtATime:
      return "insert";
    case BuildStrategy::kBulkLoad:
      return "bulk";
  }
  return "unknown";
}

Status MTree::Build(ThreadPool* pool) {
  if (options_.build.strategy == BuildStrategy::kBulkLoad) {
    return BulkLoad(pool);
  }
  DISC_RETURN_NOT_OK(CheckBuildPreconditions());
  for (ObjectId id = 0; id < dataset_.size(); ++id) {
    Insert(id);
  }
  built_ = true;
  ResetColors();
  return Status::OK();
}

Status MTree::BuildWithNeighborCounts(double radius,
                                      std::vector<uint32_t>* counts,
                                      ThreadPool* pool) {
  DISC_RETURN_NOT_OK(CheckBuildPreconditions());
  if (radius < 0) {
    return Status::InvalidArgument("radius must be non-negative");
  }
  if (options_.build.strategy == BuildStrategy::kBulkLoad) {
    // The bulk loader has no insert loop to fold the counting into; build
    // first, then count with one range query per object. The counts are
    // identical to the insert path's (both are exact neighborhood sizes).
    DISC_RETURN_NOT_OK(BulkLoad(pool));
    ComputeNeighborCountsPostBuild(radius, counts, pool);
    return Status::OK();
  }
  counts->assign(dataset_.size(), 0);
  std::vector<Neighbor> found;
  for (ObjectId id = 0; id < dataset_.size(); ++id) {
    if (root_ != nullptr) {
      // Query the partial tree before inserting: every already-present
      // neighbor contributes 1 to the new object's count and gains 1 itself.
      // The tree is mid-construction by design, so the built_ precondition
      // does not apply here.
      found.clear();
      RangeQueryUnchecked(dataset_.point(id), radius, QueryFilter::kAll,
                          /*pruned=*/false, &found);
      (*counts)[id] = static_cast<uint32_t>(found.size());
      for (const Neighbor& nb : found) ++(*counts)[nb.id];
    }
    Insert(id);
  }
  built_ = true;
  ResetColors();
  return Status::OK();
}

void MTree::ComputeNeighborCountsPostBuild(double radius,
                                           std::vector<uint32_t>* counts,
                                           ThreadPool* pool) {
  assert(built_);
  counts->assign(dataset_.size(), 0);
  if (pool == nullptr || pool->threads() <= 1) {
    std::vector<Neighbor> found;
    for (ObjectId id = 0; id < dataset_.size(); ++id) {
      found.clear();
      RangeQueryAround(id, radius, QueryFilter::kAll, /*pruned=*/false,
                       &found);
      (*counts)[id] = static_cast<uint32_t>(found.size());
    }
    return;
  }

  // Each chunk queries under a private stats sink and writes its own slice
  // of `counts`; sinks are summed back into stats_ in chunk order, so counts
  // and totals are exactly the serial pass's (integer sums are exact in any
  // order; the fixed chunk order keeps the contract byte-for-byte).
  const size_t n = dataset_.size();
  const size_t grain = RecommendedGrain(n, pool->threads());
  ParallelOrderedReduce<AccessStats>(
      pool, 0, n, grain,
      [&](size_t chunk_begin, size_t chunk_end) {
        AccessStats local;
        ThreadStatsScope scope(*this, &local);
        std::vector<Neighbor> found;
        for (size_t id = chunk_begin; id < chunk_end; ++id) {
          found.clear();
          RangeQueryAround(static_cast<ObjectId>(id), radius,
                           QueryFilter::kAll, /*pruned=*/false, &found);
          (*counts)[id] = static_cast<uint32_t>(found.size());
        }
        return local;
      },
      [&](AccessStats& local) { stats_ += local; });
}

Status MTree::CheckBuildPreconditions() const {
  if (built_ || root_ != nullptr) {
    return Status::FailedPrecondition("tree already built");
  }
  if (options_.node_capacity < 2) {
    return Status::InvalidArgument("node capacity must be at least 2, got " +
                                   std::to_string(options_.node_capacity));
  }
  if (dataset_.empty()) {
    return Status::InvalidArgument(
        "cannot build an M-tree over an empty dataset");
  }
  return Status::OK();
}

void MTree::InitObjectState() {
  leaf_of_.assign(dataset_.size(), nullptr);
  colors_.assign(dataset_.size(), Color::kWhite);
  closest_black_dist_.assign(dataset_.size(),
                             std::numeric_limits<double>::infinity());
  total_white_ = dataset_.size();
}

void MTree::Insert(ObjectId id) {
  const Point& p = dataset_.point(id);
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
    first_leaf_ = root_.get();
    num_nodes_ = 1;
    InitObjectState();
  }

  Node* node = root_.get();
  ++LiveStats().node_accesses;
  while (!node->is_leaf) {
    // Choose the child needing the least covering-radius enlargement,
    // preferring children that already contain the point.
    size_t best = 0;
    double best_inside = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_dist = 0.0;
    bool found_inside = false;
    for (size_t i = 0; i < node->children.size(); ++i) {
      RoutingEntry& entry = node->children[i];
      double d = DistanceToPoint(p, entry.pivot);
      if (d <= entry.radius) {
        if (!found_inside || d < best_inside) {
          found_inside = true;
          best_inside = d;
          best = i;
          best_dist = d;
        }
      } else if (!found_inside) {
        double enlarge = d - entry.radius;
        if (enlarge < best_enlarge) {
          best_enlarge = enlarge;
          best = i;
          best_dist = d;
        }
      }
    }
    RoutingEntry& chosen = node->children[best];
    if (best_dist > chosen.radius) {
      chosen.radius = best_dist;
      chosen.child->radius = best_dist;
    }
    node = chosen.child.get();
    ++LiveStats().node_accesses;
  }

  double parent_dist =
      node->pivot == kInvalidObject ? 0.0 : DistanceToPoint(p, node->pivot);
  node->objects.push_back(LeafEntry{id, parent_dist});
  leaf_of_[id] = node;
  AdjustWhiteCount(node, +1);

  if (node->objects.size() > options_.node_capacity) {
    SplitNode(node);
  }
}

void MTree::AdjustWhiteCount(Node* leaf, int delta) {
  for (Node* n = leaf; n != nullptr; n = n->parent) {
    n->white_count = static_cast<uint32_t>(
        static_cast<int64_t>(n->white_count) + delta);
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

void MTree::RangeQuery(const Point& center, double radius, QueryFilter filter,
                       bool pruned, std::vector<Neighbor>* out) const {
  assert(built_);
  RangeQueryUnchecked(center, radius, filter, pruned, out);
}

void MTree::RangeQueryUnchecked(const Point& center, double radius,
                                QueryFilter filter, bool pruned,
                                std::vector<Neighbor>* out) const {
  ++LiveStats().range_queries;
  RangeSearchNode(root_.get(), center, radius,
                  std::numeric_limits<double>::quiet_NaN(), filter, pruned,
                  kInvalidObject, out);
}

void MTree::RangeQueryAround(ObjectId center, double radius,
                             QueryFilter filter, bool pruned,
                             std::vector<Neighbor>* out) const {
  assert(built_);
  ++LiveStats().range_queries;
  RangeSearchNode(root_.get(), dataset_.point(center), radius,
                  std::numeric_limits<double>::quiet_NaN(), filter, pruned,
                  center, out);
}

// Speculation bookkeeping for the *Speculative query flavors: the trace
// being recorded plus the assume_black simulation (the candidate's leaf-to-
// root ancestor path, empty when no assumption applies — the candidate was
// not white, or the query has no assume_black flavor).
struct MTree::SpecState {
  QueryTrace* trace = nullptr;
  std::vector<const Node*> black_path;
};

uint32_t MTree::EffectiveWhiteCount(const Node* node,
                                    const SpecState* spec) const {
  uint32_t wc = node->white_count;
  if (spec != nullptr && wc > 0) {
    for (const Node* p : spec->black_path) {
      if (p == node) return wc - 1;
    }
  }
  return wc;
}

void MTree::RangeSearchNode(const Node* node, const Point& center,
                            double radius, double dist_center_to_node_pivot,
                            QueryFilter filter, bool pruned, ObjectId exclude,
                            std::vector<Neighbor>* out, SpecState* spec) const {
  ++LiveStats().node_accesses;
  const bool have_parent_dist = !std::isnan(dist_center_to_node_pivot);
  if (node->is_leaf) {
    for (const LeafEntry& entry : node->objects) {
      if (entry.object == exclude) continue;
      const bool white_gated = filter == QueryFilter::kWhiteOnly;
      if (white_gated && colors_[entry.object] != Color::kWhite) continue;
      // Triangle-inequality shortcut via the precomputed parent distance.
      // Objects it skips never cost a distance computation whatever their
      // color, so only objects surviving it go into the trace.
      if (have_parent_dist &&
          std::fabs(dist_center_to_node_pivot - entry.parent_dist) > radius) {
        continue;
      }
      if (white_gated && spec != nullptr) {
        spec->trace->whites.push_back(entry.object);
      }
      double d = DistanceToPoint(center, entry.object);
      if (d <= radius) out->push_back(Neighbor{entry.object, d});
    }
    return;
  }
  for (const RoutingEntry& entry : node->children) {
    bool white_gated = false;
    if (pruned) {
      const uint32_t wc = spec == nullptr
                              ? entry.child->white_count
                              : EffectiveWhiteCount(entry.child.get(), spec);
      if (wc == 0) continue;
      white_gated = true;
    }
    if (have_parent_dist &&
        std::fabs(dist_center_to_node_pivot - entry.parent_dist) >
            radius + entry.radius) {
      continue;
    }
    // Past the geometric shortcut the pivot distance is computed
    // unconditionally, so a white-gated child that loses its last white
    // object invalidates the speculation (the plain query would skip the
    // computation). Shortcut-skipped children cost nothing either way.
    if (white_gated && spec != nullptr) {
      spec->trace->nodes.push_back(entry.child.get());
    }
    double d = DistanceToPoint(center, entry.pivot);
    if (d <= radius + entry.radius) {
      RangeSearchNode(entry.child.get(), center, radius, d, filter, pruned,
                      exclude, out, spec);
    }
  }
}

void MTree::LeafMatesWithin(ObjectId center, double radius,
                            std::vector<Neighbor>* out) const {
  assert(built_);
  const Node* leaf = leaf_of_[center];
  ++LiveStats().node_accesses;
  const Point& q = dataset_.point(center);
  for (const LeafEntry& entry : leaf->objects) {
    if (entry.object == center) continue;
    double d = DistanceToPoint(q, entry.object);
    if (d <= radius) out->push_back(Neighbor{entry.object, d});
  }
}

void MTree::RangeQueryBottomUp(ObjectId center, double radius,
                               QueryFilter filter, bool pruned,
                               bool stop_at_grey,
                               std::vector<Neighbor>* out) const {
  assert(built_);
  ++LiveStats().range_queries;
  const Point& q = dataset_.point(center);

  // Search the object's own leaf first, then climb: at every ancestor,
  // search the sibling subtrees that intersect the query ball. Climbing to
  // the root makes this exactly equivalent to the top-down query; with
  // stop_at_grey (Fast-C), the climb ends at the first all-grey ancestor,
  // deliberately accepting that whites in distant leaves are missed (§5.1).
  Node* node = leaf_of_[center];
  double d_node = node->pivot == kInvalidObject
                      ? std::numeric_limits<double>::quiet_NaN()
                      : DistanceToPoint(q, node->pivot);
  RangeSearchNode(node, q, radius, d_node, filter, pruned, center, out);

  while (node->parent != nullptr) {
    Node* parent = node->parent;
    // parent->white_count == 0 means the whole climbed-into subtree is grey.
    if (stop_at_grey && parent->white_count == 0) break;
    ++LiveStats().node_accesses;  // reading the parent's entries
    for (const RoutingEntry& entry : parent->children) {
      if (entry.child.get() == node) continue;  // already covered below
      if (pruned && entry.child->white_count == 0) continue;
      double d = DistanceToPoint(q, entry.pivot);
      if (d <= radius + entry.radius) {
        RangeSearchNode(entry.child.get(), q, radius, d, filter, pruned,
                        center, out);
      }
    }
    node = parent;
  }
}

// ---------------------------------------------------------------------------
// Speculative queries
// ---------------------------------------------------------------------------

void MTree::RangeQueryAroundSpeculative(ObjectId center, double radius,
                                        QueryFilter filter, bool pruned,
                                        bool assume_black,
                                        std::vector<Neighbor>* out,
                                        QueryTrace* trace) const {
  assert(built_);
  ++LiveStats().range_queries;
  SpecState spec;
  spec.trace = trace;
  if (assume_black && colors_[center] == Color::kWhite) {
    for (const Node* n = leaf_of_[center]; n != nullptr; n = n->parent) {
      spec.black_path.push_back(n);
    }
  }
  RangeSearchNode(root_.get(), dataset_.point(center), radius,
                  std::numeric_limits<double>::quiet_NaN(), filter, pruned,
                  center, out, &spec);
}

void MTree::RangeQueryBottomUpSpeculative(ObjectId center, double radius,
                                          QueryFilter filter, bool pruned,
                                          bool stop_at_grey,
                                          std::vector<Neighbor>* out,
                                          QueryTrace* trace) const {
  assert(built_);
  ++LiveStats().range_queries;
  const Point& q = dataset_.point(center);
  SpecState spec;
  spec.trace = trace;

  Node* node = leaf_of_[center];
  double d_node = node->pivot == kInvalidObject
                      ? std::numeric_limits<double>::quiet_NaN()
                      : DistanceToPoint(q, node->pivot);
  RangeSearchNode(node, q, radius, d_node, filter, pruned, center, out, &spec);

  while (node->parent != nullptr) {
    Node* parent = node->parent;
    if (stop_at_grey) {
      // A break here needs no trace entry: the counter can only fall
      // further, so the plain query would break too. A climb-past is a
      // commitment the validation must re-check.
      if (parent->white_count == 0) break;
      trace->nodes.push_back(parent);
    }
    ++LiveStats().node_accesses;  // reading the parent's entries
    for (const RoutingEntry& entry : parent->children) {
      if (entry.child.get() == node) continue;  // already covered below
      if (pruned) {
        if (entry.child->white_count == 0) continue;
        // No geometric shortcut on this path — the pivot distance is
        // computed right away, so the gate goes straight into the trace.
        trace->nodes.push_back(entry.child.get());
      }
      double d = DistanceToPoint(q, entry.pivot);
      if (d <= radius + entry.radius) {
        RangeSearchNode(entry.child.get(), q, radius, d, filter, pruned,
                        center, out, &spec);
      }
    }
    node = parent;
  }
}

bool MTree::SpeculationValid(const QueryTrace& trace) const {
  for (const Node* node : trace.nodes) {
    if (node->white_count == 0) return false;
  }
  for (ObjectId id : trace.whites) {
    if (colors_[id] != Color::kWhite) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Colors & zooming support
// ---------------------------------------------------------------------------

MTree::ColorState MTree::SaveColorState() const {
  assert(built_);
  return ColorState{colors_, closest_black_dist_};
}

Status MTree::RestoreColorState(const ColorState& state) {
  assert(built_);
  if (state.colors.size() != dataset_.size() ||
      state.closest_black_dist.size() != dataset_.size()) {
    return Status::InvalidArgument(
        "color state size does not match the dataset (" +
        std::to_string(state.colors.size()) + " colors, " +
        std::to_string(state.closest_black_dist.size()) + " distances, " +
        std::to_string(dataset_.size()) + " objects)");
  }
  colors_ = state.colors;
  closest_black_dist_ = state.closest_black_dist;
  total_white_ = 0;
  for (Color c : colors_) {
    if (c == Color::kWhite) ++total_white_;
  }
  RecomputeWhiteCounts(root_.get());
  return Status::OK();
}

void MTree::ResetColors() {
  assert(built_);
  colors_.assign(dataset_.size(), Color::kWhite);
  total_white_ = dataset_.size();
  ResetClosestBlackDistances();
  RecomputeWhiteCounts(root_.get());
}

uint32_t MTree::RecomputeWhiteCounts(Node* node) {
  if (node->is_leaf) {
    uint32_t count = 0;
    for (const LeafEntry& entry : node->objects) {
      if (colors_[entry.object] == Color::kWhite) ++count;
    }
    node->white_count = count;
    return count;
  }
  uint32_t count = 0;
  for (RoutingEntry& entry : node->children) {
    count += RecomputeWhiteCounts(entry.child.get());
  }
  node->white_count = count;
  return count;
}

void MTree::SetColor(ObjectId id, Color color) {
  Color old = colors_[id];
  if (old == color) return;
  colors_[id] = color;
  bool was_white = old == Color::kWhite;
  bool is_white = color == Color::kWhite;
  if (was_white && !is_white) {
    AdjustWhiteCount(leaf_of_[id], -1);
    --total_white_;
  } else if (!was_white && is_white) {
    AdjustWhiteCount(leaf_of_[id], +1);
    ++total_white_;
  }
}

std::vector<ObjectId> MTree::ObjectsWithColor(Color color) const {
  std::vector<ObjectId> result;
  for (ObjectId id = 0; id < colors_.size(); ++id) {
    if (colors_[id] == color) result.push_back(id);
  }
  return result;
}

void MTree::ObserveBlackNeighbor(ObjectId id, double dist) {
  if (dist < closest_black_dist_[id]) closest_black_dist_[id] = dist;
}

void MTree::ClearClosestBlackDistance(ObjectId id) {
  closest_black_dist_[id] = std::numeric_limits<double>::infinity();
}

void MTree::ResetClosestBlackDistances() {
  closest_black_dist_.assign(dataset_.size(),
                             std::numeric_limits<double>::infinity());
}

void MTree::RecomputeClosestBlackDistances(double radius) {
  assert(built_);
  ResetClosestBlackDistances();
  std::vector<Neighbor> found;
  for (ObjectId id = 0; id < colors_.size(); ++id) {
    if (colors_[id] != Color::kBlack) continue;
    found.clear();
    RangeQueryAround(id, radius, QueryFilter::kAll, /*pruned=*/false, &found);
    for (const Neighbor& nb : found) ObserveBlackNeighbor(nb.id, nb.dist);
  }
}

// ---------------------------------------------------------------------------
// Traversal
// ---------------------------------------------------------------------------

std::vector<ObjectId> MTree::LeafOrder() const {
  assert(built_);
  std::vector<ObjectId> order;
  order.reserve(dataset_.size());
  for (const Node* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next_leaf) {
    for (const LeafEntry& entry : leaf->objects) {
      order.push_back(entry.object);
    }
  }
  return order;
}

void MTree::ScanLeaves(bool skip_grey_leaves,
                       const std::function<void(ObjectId)>& fn) const {
  assert(built_);
  for (const Node* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next_leaf) {
    if (skip_grey_leaves && leaf->white_count == 0) continue;
    ++LiveStats().node_accesses;
    for (const LeafEntry& entry : leaf->objects) {
      fn(entry.object);
    }
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t MTree::num_leaves() const {
  size_t count = 0;
  for (const Node* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next_leaf) {
    ++count;
  }
  return count;
}

size_t MTree::height() const {
  if (root_ == nullptr) return 0;
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().child.get();
    ++h;
  }
  return h;
}

uint64_t MTree::PointQueryAccesses(const Point& q) const {
  // Visits every node whose covering ball contains q (no early exit), which
  // is what the fat-factor of Traina et al. measures: an overlap-free tree
  // visits exactly one node per level.
  uint64_t accesses = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++accesses;
    if (node->is_leaf) continue;
    for (const RoutingEntry& entry : node->children) {
      double d = metric_.Distance(q, dataset_.point(entry.pivot));
      if (d <= entry.radius) stack.push_back(entry.child.get());
    }
  }
  return accesses;
}

double MTree::FatFactor() const {
  assert(built_);
  const size_t n = dataset_.size();
  const size_t h = height();
  const size_t m = num_nodes_;
  if (m <= h) return 0.0;
  uint64_t total = 0;
  for (ObjectId id = 0; id < n; ++id) {
    total += PointQueryAccesses(dataset_.point(id));
  }
  double z = static_cast<double>(total);
  return (z - static_cast<double>(n) * h) /
         (static_cast<double>(n) * static_cast<double>(m - h));
}

// ---------------------------------------------------------------------------
// Validation (tests)
// ---------------------------------------------------------------------------

Status MTree::Validate() const {
  if (!built_) return Status::FailedPrecondition("tree not built");

  // Uniform leaf depth.
  size_t leaf_depth = height();

  size_t node_count = 0;
  DISC_RETURN_NOT_OK(ValidateNode(root_.get(), 1, leaf_depth, &node_count));
  if (node_count != num_nodes_) {
    return Status::Corruption("node counter records " +
                              std::to_string(num_nodes_) + " nodes, tree has " +
                              std::to_string(node_count));
  }

  // Leaf chain covers every object exactly once.
  std::vector<char> seen(dataset_.size(), 0);
  size_t chained = 0;
  const Node* prev = nullptr;
  for (const Node* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next_leaf) {
    if (leaf->prev_leaf != prev) {
      return Status::Corruption("leaf chain prev pointer broken");
    }
    prev = leaf;
    for (const LeafEntry& entry : leaf->objects) {
      if (entry.object >= dataset_.size() || seen[entry.object]) {
        return Status::Corruption("leaf chain enumerates object " +
                                  std::to_string(entry.object) + " twice");
      }
      seen[entry.object] = 1;
      ++chained;
      if (leaf_of_[entry.object] != leaf) {
        return Status::Corruption("leaf_of map stale for object " +
                                  std::to_string(entry.object));
      }
    }
  }
  if (chained != dataset_.size()) {
    return Status::Corruption("leaf chain holds " + std::to_string(chained) +
                              " of " + std::to_string(dataset_.size()) +
                              " objects");
  }

  // White counters match colors.
  size_t whites = 0;
  for (Color c : colors_) {
    if (c == Color::kWhite) ++whites;
  }
  if (whites != total_white_) {
    return Status::Corruption("total white counter out of sync");
  }
  if (root_->white_count != whites) {
    return Status::Corruption("root white counter out of sync");
  }
  return Status::OK();
}

Status MTree::ValidateContainment(const Node* node, ObjectId pivot,
                                  double radius) const {
  if (node->is_leaf) {
    for (const LeafEntry& entry : node->objects) {
      double d = metric_.Distance(dataset_.point(entry.object),
                                  dataset_.point(pivot));
      if (d > radius + 1e-9) {
        return Status::Corruption("object " + std::to_string(entry.object) +
                                  " escapes covering radius of pivot " +
                                  std::to_string(pivot));
      }
    }
    return Status::OK();
  }
  for (const RoutingEntry& entry : node->children) {
    DISC_RETURN_NOT_OK(ValidateContainment(entry.child.get(), pivot, radius));
  }
  return Status::OK();
}

Status MTree::ValidateNode(const Node* node, size_t depth, size_t leaf_depth,
                           size_t* node_count) const {
  ++*node_count;
  const size_t entries = node->size();
  if (node != root_.get() && entries == 0) {
    return Status::Corruption("non-root node is empty");
  }
  if (entries > options_.node_capacity) {
    return Status::Corruption("node exceeds capacity");
  }
  if (node->is_leaf) {
    if (depth != leaf_depth) {
      return Status::Corruption("leaf at depth " + std::to_string(depth) +
                                ", expected " + std::to_string(leaf_depth));
    }
    uint32_t whites = 0;
    for (const LeafEntry& entry : node->objects) {
      if (colors_[entry.object] == Color::kWhite) ++whites;
      if (node->pivot != kInvalidObject) {
        double d = metric_.Distance(dataset_.point(entry.object),
                                    dataset_.point(node->pivot));
        if (std::fabs(d - entry.parent_dist) > 1e-9) {
          return Status::Corruption("leaf entry parent_dist incorrect");
        }
        if (d > node->radius + 1e-9) {
          return Status::Corruption("object outside leaf covering radius");
        }
      }
    }
    if (whites != node->white_count) {
      return Status::Corruption("leaf white counter out of sync");
    }
    return Status::OK();
  }

  uint32_t white_sum = 0;
  for (const RoutingEntry& entry : node->children) {
    const Node* child = entry.child.get();
    if (child->parent != node) {
      return Status::Corruption("child parent pointer broken");
    }
    if (child->pivot != entry.pivot) {
      return Status::Corruption("child pivot mirror out of sync");
    }
    if (std::fabs(child->radius - entry.radius) > 1e-12) {
      return Status::Corruption("child radius mirror out of sync");
    }
    if (node->pivot != kInvalidObject) {
      double d = metric_.Distance(dataset_.point(entry.pivot),
                                  dataset_.point(node->pivot));
      if (std::fabs(d - entry.parent_dist) > 1e-9) {
        return Status::Corruption("routing entry parent_dist incorrect");
      }
    }
    // Covering property: every object stored below the child lies within the
    // child's covering radius. (Child *balls* need not nest inside parent
    // balls — insertion enlarges radii only along the descent path — so only
    // object containment is an invariant.)
    DISC_RETURN_NOT_OK(ValidateContainment(child, entry.pivot, entry.radius));
    white_sum += child->white_count;
    DISC_RETURN_NOT_OK(ValidateNode(child, depth + 1, leaf_depth, node_count));
  }
  if (white_sum != node->white_count) {
    return Status::Corruption("internal white counter out of sync");
  }
  return Status::OK();
}

}  // namespace disc
