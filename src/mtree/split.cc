// Node splitting: promote two pivots, partition the overflowing node's
// entries between them, and wire the two new nodes into the parent
// (recursively splitting the parent on overflow). The promote/partition
// policy combinations reproduce the fat-factor spectrum of Figure 10.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "mtree/mtree.h"
#include "mtree/mtree_internal.h"

namespace disc {

void MTree::SplitNode(Node* node) {
  const bool is_leaf = node->is_leaf;
  const size_t count = node->size();
  assert(count > options_.node_capacity);
  ++stats_.node_accesses;  // the overflowing node is rewritten

  // Collect the ids the entries are centered on (objects for leaves, child
  // pivots for internal nodes).
  std::vector<ObjectId> ids(count);
  if (is_leaf) {
    for (size_t i = 0; i < count; ++i) ids[i] = node->objects[i].object;
  } else {
    for (size_t i = 0; i < count; ++i) ids[i] = node->children[i].pivot;
  }

  // ---- Promote ----
  ObjectId pivot_a = kInvalidObject, pivot_b = kInvalidObject;
  switch (options_.split_policy.promote) {
    case PromotePolicy::kKeepParent: {
      // Keep the node's existing pivot; promote the entry farthest from it.
      // A freshly split root has no pivot: fall back to the first entry.
      pivot_a = node->pivot != kInvalidObject ? node->pivot : ids[0];
      double best = -1.0;
      for (ObjectId id : ids) {
        if (id == pivot_a) continue;
        double d = Distance(pivot_a, id);
        if (d > best) {
          best = d;
          pivot_b = id;
        }
      }
      break;
    }
    case PromotePolicy::kMaxDistance: {
      double best = -1.0;
      for (size_t i = 0; i < count; ++i) {
        for (size_t j = i + 1; j < count; ++j) {
          double d = Distance(ids[i], ids[j]);
          if (d > best) {
            best = d;
            pivot_a = ids[i];
            pivot_b = ids[j];
          }
        }
      }
      break;
    }
    case PromotePolicy::kRandom: {
      size_t i = static_cast<size_t>(NextRandom(&rng_state_) % count);
      size_t j = static_cast<size_t>(NextRandom(&rng_state_) % (count - 1));
      if (j >= i) ++j;
      pivot_a = ids[i];
      pivot_b = ids[j];
      break;
    }
  }
  assert(pivot_a != kInvalidObject && pivot_b != kInvalidObject);
  assert(pivot_a != pivot_b);

  // ---- Partition ----
  // Distances from every entry's center to both pivots.
  std::vector<double> da(count), db(count);
  for (size_t i = 0; i < count; ++i) {
    da[i] = Distance(ids[i], pivot_a);
    db[i] = Distance(ids[i], pivot_b);
  }

  std::vector<char> to_a(count, 0);
  switch (options_.split_policy.partition) {
    case PartitionPolicy::kClosestPivot: {
      size_t size_a = 0, size_b = 0;
      for (size_t i = 0; i < count; ++i) {
        bool a_side;
        if (da[i] != db[i]) {
          a_side = da[i] < db[i];
        } else {
          a_side = size_a <= size_b;  // deterministic tie-break
        }
        to_a[i] = a_side;
        (a_side ? size_a : size_b)++;
      }
      // Minimum-fill guarantee (standard M-tree utilization bound): without
      // it, the keep-parent policy produces chronically underfilled siblings
      // and ~25% more nodes, which dominates query cost at large radii.
      // Top up the small side with the entries whose pivot-distance margin
      // is smallest (they fit the small side's ball almost as well).
      const size_t min_fill = std::max<size_t>(1, count / 3);
      while (std::min(size_a, size_b) < min_fill) {
        const bool fill_a = size_a < size_b;
        size_t best = count;  // invalid
        double best_margin = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < count; ++i) {
          if (to_a[i] == fill_a) continue;
          double margin = fill_a ? da[i] - db[i] : db[i] - da[i];
          if (margin < best_margin) {
            best_margin = margin;
            best = i;
          }
        }
        to_a[best] = fill_a;
        (fill_a ? size_a : size_b)++;
        (fill_a ? size_b : size_a)--;
      }
      break;
    }
    case PartitionPolicy::kBalanced: {
      // Sort by how much closer the entry is to pivot A, then give the first
      // half to A — equal fanout regardless of geometry.
      std::vector<size_t> order(count);
      for (size_t i = 0; i < count; ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return (da[x] - db[x]) < (da[y] - db[y]);
      });
      for (size_t k = 0; k < count; ++k) {
        to_a[order[k]] = k < (count + 1) / 2;
      }
      break;
    }
  }

  // ---- Rebuild the two nodes ----
  // `node` is reused for side A (it keeps its slot in the parent and, for
  // leaves, its place in the leaf chain); `sibling` is fresh for side B.
  auto sibling = std::make_unique<Node>(is_leaf);
  Node* sib = sibling.get();
  ++num_nodes_;
  ++stats_.node_accesses;  // the new sibling is written

  double radius_a = 0.0, radius_b = 0.0;
  if (is_leaf) {
    std::vector<LeafEntry> entries = std::move(node->objects);
    node->objects.clear();
    uint32_t white_a = 0, white_b = 0;
    for (size_t i = 0; i < count; ++i) {
      Node* target = to_a[i] ? node : sib;
      double pd = to_a[i] ? da[i] : db[i];
      target->objects.push_back(LeafEntry{entries[i].object, pd});
      leaf_of_[entries[i].object] = target;
      bool white =
          colors_.empty() || colors_[entries[i].object] == Color::kWhite;
      if (white) (to_a[i] ? white_a : white_b)++;
      (to_a[i] ? radius_a : radius_b) =
          std::max(to_a[i] ? radius_a : radius_b, pd);
    }
    node->white_count = white_a;
    sib->white_count = white_b;
    // Splice the sibling into the leaf chain right after `node`.
    sib->next_leaf = node->next_leaf;
    sib->prev_leaf = node;
    if (node->next_leaf != nullptr) node->next_leaf->prev_leaf = sib;
    node->next_leaf = sib;
  } else {
    std::vector<RoutingEntry> entries = std::move(node->children);
    node->children.clear();
    uint32_t white_a = 0, white_b = 0;
    for (size_t i = 0; i < count; ++i) {
      Node* target = to_a[i] ? node : sib;
      double pd = to_a[i] ? da[i] : db[i];
      double reach = pd + entries[i].radius;  // upper bound via triangle ineq.
      (to_a[i] ? radius_a : radius_b) =
          std::max(to_a[i] ? radius_a : radius_b, reach);
      (to_a[i] ? white_a : white_b) += entries[i].child->white_count;
      entries[i].parent_dist = pd;
      entries[i].child->parent = target;
      target->children.push_back(std::move(entries[i]));
    }
    node->white_count = white_a;
    sib->white_count = white_b;
  }

  node->pivot = pivot_a;
  node->radius = radius_a;
  sib->pivot = pivot_b;
  sib->radius = radius_b;

  // ---- Wire into the parent ----
  if (node == root_.get()) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    ++num_nodes_;
    ++stats_.node_accesses;  // the new root is written
    new_root->white_count = node->white_count + sib->white_count;
    std::unique_ptr<Node> old_root = std::move(root_);
    old_root->parent = new_root.get();
    sib->parent = new_root.get();
    new_root->children.push_back(
        RoutingEntry{pivot_a, radius_a, 0.0, std::move(old_root)});
    new_root->children.push_back(
        RoutingEntry{pivot_b, radius_b, 0.0, std::move(sibling)});
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  ++stats_.node_accesses;  // the parent is rewritten
  sib->parent = parent;
  size_t slot = 0;
  while (slot < parent->children.size() &&
         parent->children[slot].child.get() != node) {
    ++slot;
  }
  assert(slot < parent->children.size());

  RoutingEntry& entry_a = parent->children[slot];
  entry_a.pivot = pivot_a;
  entry_a.radius = radius_a;
  entry_a.parent_dist =
      parent->pivot == kInvalidObject ? 0.0 : Distance(pivot_a, parent->pivot);

  RoutingEntry entry_b;
  entry_b.pivot = pivot_b;
  entry_b.radius = radius_b;
  entry_b.parent_dist =
      parent->pivot == kInvalidObject ? 0.0 : Distance(pivot_b, parent->pivot);
  entry_b.child = std::move(sibling);
  parent->children.insert(parent->children.begin() + slot + 1,
                          std::move(entry_b));

  if (parent->children.size() > options_.node_capacity) {
    SplitNode(parent);
  }
}

}  // namespace disc
