// Internal node layout of the M-tree, shared by mtree.cc and split.cc.
// Not part of the public API.

#ifndef DISC_MTREE_MTREE_INTERNAL_H_
#define DISC_MTREE_MTREE_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "mtree/mtree.h"

namespace disc {

/// xorshift64: deterministic stream shared by PromotePolicy::kRandom and the
/// bulk loader's seed sampling. Both consume MTree::rng_state_, so a tree's
/// shape is a pure function of (dataset, options).
inline uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

/// Internal-node entry: routes to a child subtree whose objects all lie
/// within `radius` of `pivot`.
struct MTree::RoutingEntry {
  ObjectId pivot = kInvalidObject;
  double radius = 0.0;       // covering radius of the subtree
  double parent_dist = 0.0;  // d(pivot, owning node's pivot); 0 at the root
  std::unique_ptr<Node> child;
};

/// Leaf entry: one indexed object.
struct MTree::LeafEntry {
  ObjectId object = kInvalidObject;
  double parent_dist = 0.0;  // d(object, owning leaf's pivot)
};

struct MTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}

  bool is_leaf;
  Node* parent = nullptr;

  /// The object this node is centered on (the pivot of the routing entry
  /// pointing at it). kInvalidObject for the root.
  ObjectId pivot = kInvalidObject;
  /// Mirror of the parent routing entry's covering radius (+inf at the root);
  /// kept on the node so bottom-up climbs need not search the parent.
  double radius = std::numeric_limits<double>::infinity();

  std::vector<RoutingEntry> children;  // internal nodes only
  std::vector<LeafEntry> objects;      // leaf nodes only

  // Leaf chain (§5: "we link together all leaf nodes").
  Node* next_leaf = nullptr;
  Node* prev_leaf = nullptr;

  /// Leaf: number of white objects stored here. Internal: sum over children.
  /// Zero means the subtree is "grey" in the sense of the §5.1 pruning rule.
  uint32_t white_count = 0;

  size_t size() const { return is_leaf ? objects.size() : children.size(); }
};

}  // namespace disc

#endif  // DISC_MTREE_MTREE_INTERNAL_H_
