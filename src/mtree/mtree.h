// M-tree: a balanced metric-space index (Ciaccia et al.; Zezula et al. 2006),
// implemented as described in §5 of the DisC paper.
//
// The tree partitions space around pivot objects with covering-radius balls.
// Two construction paths are provided — classic insert-at-a-time and a
// sampled-recursive bulk load (Ciaccia–Patella), selected via
// MTreeOptions::build — and this implementation adds everything the DisC
// algorithms of the paper need:
//  * leaf chaining for single left-to-right traversals (Basic-DisC locality),
//  * node-access accounting (the paper's primary cost metric),
//  * range queries in top-down and bottom-up flavors,
//  * object colors (white/grey/black/red) with per-node white counters so the
//    §5.1 pruning rule ("skip subtrees with no white objects") is O(1),
//  * closest-black-neighbor distances per object (the §5.2 zooming rule),
//  * white-neighborhood-size computation during build or as a post pass,
//  * four node-splitting policies spanning the fat-factor range of Figure 10,
//  * the fat-factor measure of tree quality (Traina et al.).

#ifndef DISC_MTREE_MTREE_H_
#define DISC_MTREE_MTREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/color.h"
#include "data/dataset.h"
#include "metric/metric.h"
#include "util/status.h"

namespace disc {

class ThreadPool;  // util/parallel.h

/// How two new pivots are chosen when a node overflows (§5 "promote").
enum class PromotePolicy {
  /// Keep the overflowed node's pivot and promote the entry farthest from it.
  /// The paper's lowest-overlap choice ("MinOverlap").
  kKeepParent,
  /// Promote the two entries with the greatest pairwise distance.
  kMaxDistance,
  /// Promote two pseudo-randomly chosen entries (deterministic per tree).
  kRandom,
};

/// How the remaining entries are assigned to the two new nodes ("partition").
enum class PartitionPolicy {
  /// Each entry goes to the closer pivot.
  kClosestPivot,
  /// Entries are balanced: sorted by distance difference, half to each side.
  kBalanced,
};

/// A complete splitting policy. The four combinations used in Figure 10, from
/// lowest to highest fat-factor: MinOverlap(), MaxDistanceSplit(),
/// BalancedSplit(), RandomSplit().
struct SplitPolicy {
  PromotePolicy promote = PromotePolicy::kKeepParent;
  PartitionPolicy partition = PartitionPolicy::kClosestPivot;

  static SplitPolicy MinOverlap() {
    return {PromotePolicy::kKeepParent, PartitionPolicy::kClosestPivot};
  }
  static SplitPolicy MaxDistanceSplit() {
    return {PromotePolicy::kMaxDistance, PartitionPolicy::kClosestPivot};
  }
  static SplitPolicy BalancedSplit() {
    return {PromotePolicy::kMaxDistance, PartitionPolicy::kBalanced};
  }
  static SplitPolicy RandomSplit() {
    return {PromotePolicy::kRandom, PartitionPolicy::kBalanced};
  }
};

/// How the tree is constructed from the dataset.
enum class BuildStrategy {
  /// Insert every object one at a time, splitting nodes on overflow (the
  /// classic M-tree algorithm; what the paper's experiments use).
  kInsertAtATime,
  /// Sampled-recursive bulk load in the style of Ciaccia & Patella's
  /// BulkLoading algorithm: cluster objects around sampled seeds into
  /// leaf-sized groups, then assemble the internal levels bottom-up.
  /// Produces a better-clustered tree with fewer distance computations and
  /// no split churn; measured in bench_ablation_mtree.
  kBulkLoad,
};

/// "insert" / "bulk".
const char* BuildStrategyToString(BuildStrategy strategy);

/// Construction-path knobs, separate from the structural SplitPolicy knobs
/// so call sites can flip strategies without touching anything else.
struct BuildOptions {
  BuildStrategy strategy = BuildStrategy::kInsertAtATime;
};

/// Tree construction parameters.
struct MTreeOptions {
  /// Maximum entries per node; the paper sweeps 25-100 with default 50.
  size_t node_capacity = 50;
  SplitPolicy split_policy = SplitPolicy::MinOverlap();
  /// Seed for PromotePolicy::kRandom and BuildStrategy::kBulkLoad sampling.
  uint64_t random_seed = 42;
  /// Construction path; Build() and BuildWithNeighborCounts() dispatch on
  /// this, so NeighborhoodGraph, Greedy-DisC, and zoom callers pick up the
  /// bulk loader by changing options only.
  BuildOptions build;
};

/// Cost accounting. Node accesses are the paper's primary metric; distance
/// computations are tracked as secondary context.
struct AccessStats {
  uint64_t node_accesses = 0;
  uint64_t range_queries = 0;
  uint64_t distance_computations = 0;

  AccessStats operator-(const AccessStats& other) const {
    return {node_accesses - other.node_accesses,
            range_queries - other.range_queries,
            distance_computations - other.distance_computations};
  }

  AccessStats& operator+=(const AccessStats& other) {
    node_accesses += other.node_accesses;
    range_queries += other.range_queries;
    distance_computations += other.distance_computations;
    return *this;
  }

  bool operator==(const AccessStats& other) const {
    return node_accesses == other.node_accesses &&
           range_queries == other.range_queries &&
           distance_computations == other.distance_computations;
  }
};

/// A neighbor returned by a range query: object id plus its distance to the
/// query center (callers need the distance for closest-black bookkeeping).
struct Neighbor {
  ObjectId id;
  double dist;
};

/// Which objects a range query reports (it always descends geometrically;
/// the white filter additionally enables the grey-subtree pruning rule).
enum class QueryFilter {
  kAll,        // report every object in the ball
  kWhiteOnly,  // report only white objects
};

/// The M-tree index over a Dataset. The dataset and metric must outlive the
/// tree. Objects are identified by their dense dataset index.
class MTree {
 public:
  MTree(const Dataset& dataset, const DistanceMetric& metric,
        MTreeOptions options = {});
  ~MTree();

  MTree(const MTree&) = delete;
  MTree& operator=(const MTree&) = delete;

  /// Builds the tree with the strategy selected in options().build.
  /// Returns InvalidArgument for capacity < 2 or an empty dataset.
  /// `pool` parallelizes the bulk-load path (see BulkLoad); the
  /// insert-at-a-time path is inherently sequential and ignores it.
  Status Build(ThreadPool* pool = nullptr);

  /// Bulk-loads the tree regardless of the configured strategy: objects are
  /// recursively clustered around randomly sampled seeds into leaf-sized
  /// groups (Ciaccia–Patella BulkLoading), and the internal levels are then
  /// assembled bottom-up with covering-radius and parent-distance invariants
  /// intact. The resulting tree answers every query identically to an
  /// insert-built tree (exact index, different shape); it is cheaper to
  /// build and typically better clustered. Same preconditions as Build().
  ///
  /// With a pool of more than one thread the distance-dominated passes fan
  /// out: the nearest-seed assignment of every clustering step and the
  /// per-cluster leaf builds run on the workers, while seed sampling (the
  /// only consumer of the random state) stays on the calling thread in the
  /// serial recursion order. The decomposition is a pure function of the
  /// input (util/parallel.h) and results are committed in chunk order, so
  /// the resulting tree — shape, leaf chain, node count, stats() — is
  /// byte-identical to the single-threaded build at any thread count.
  Status BulkLoad(ThreadPool* pool = nullptr);

  /// Build() plus white-neighborhood-size computation. Under the
  /// insert-at-a-time strategy the counts are folded into the insert loop
  /// (§5.1): before inserting p_i a range query over the partial tree
  /// initializes count[p_i] and increments counts of already-present
  /// neighbors — cheaper than a post-build pass (ablation in bench/). Under
  /// the bulk-load strategy the tree is built first and a counting pass
  /// follows; the counts are identical either way. `pool` parallelizes the
  /// bulk path only (build and counting pass; see BulkLoad).
  Status BuildWithNeighborCounts(double radius, std::vector<uint32_t>* counts,
                                 ThreadPool* pool = nullptr);

  /// Computes all white-neighborhood sizes with one range query per object
  /// over the complete tree (the baseline the build-time variant beats).
  /// With a pool of more than one thread the object range is fanned out
  /// across per-thread read-only range queries (the tree structure is
  /// immutable after build); each worker accounts its accesses to a private
  /// AccessStats (see ThreadStatsScope) and the sinks are summed into
  /// stats() in chunk order, so both the counts and the stats totals are
  /// exactly the serial pass's. A null pool (or threads() <= 1) runs the
  /// original serial loop.
  void ComputeNeighborCountsPostBuild(double radius,
                                      std::vector<uint32_t>* counts,
                                      ThreadPool* pool = nullptr);

  // -- Queries ---------------------------------------------------------

  /// Top-down range query around an arbitrary point.
  /// With QueryFilter::kWhiteOnly and pruned=true, subtrees containing no
  /// white objects are skipped (the §5.1 pruning rule).
  void RangeQuery(const Point& center, double radius, QueryFilter filter,
                  bool pruned, std::vector<Neighbor>* out) const;

  /// Same, centered at a stored object; the object itself is excluded,
  /// matching N_r(p_i) in the paper.
  void RangeQueryAround(ObjectId center, double radius, QueryFilter filter,
                        bool pruned, std::vector<Neighbor>* out) const;

  /// Degenerate bottom-up query that inspects only the leaf holding
  /// `center` (one node access): returns the leaf-mates within `radius`.
  /// Fast-C uses this for approximate neighborhood-count maintenance —
  /// thanks to M-tree locality, an object's leaf-mates are the candidates
  /// most likely affected when it is covered.
  void LeafMatesWithin(ObjectId center, double radius,
                       std::vector<Neighbor>* out) const;

  /// Bottom-up range query (§5): starts at the leaf holding `center` and
  /// climbs toward the root, searching intersecting sibling subtrees at each
  /// ancestor. With stop_at_grey=false this returns exactly what the
  /// top-down query returns. With stop_at_grey (Fast-C), climbing stops at
  /// the first ancestor containing no white objects, possibly missing
  /// neighbors in distant leaves — by design (§5.1).
  void RangeQueryBottomUp(ObjectId center, double radius, QueryFilter filter,
                          bool pruned, bool stop_at_grey,
                          std::vector<Neighbor>* out) const;

  // -- Speculative queries (core/speculation.h) --------------------------

  struct Node;  // opaque outside mtree.cc; trace entries point at live nodes

  /// Everything a range query's outcome depends on besides the immutable
  /// tree geometry: the children it descended into *because* their white
  /// counter was positive, and the leaf objects whose distance it computed
  /// *because* they were white. During a greedy forward pass colors only
  /// move away from white (and white counters only decrease), so a trace
  /// recorded against an earlier color snapshot stays checkable forever:
  /// SpeculationValid() compares it against the current state.
  struct QueryTrace {
    std::vector<const Node*> nodes;  // descended only because white_count > 0
    std::vector<ObjectId> whites;    // distance computed only because white
  };

  /// RangeQueryAround plus a trace of every color-dependent decision. With
  /// `assume_black`, the query behaves exactly as if `center` had already
  /// been recolored black (its contribution is subtracted from the white
  /// counter of each of its ancestors) — mirroring Greedy-DisC, which
  /// blackens the selected object *before* its neighborhood query. If
  /// SpeculationValid(trace) still holds later, `out` and the charged
  /// AccessStats are byte-identical to running the plain query at that
  /// later moment (with `center` black when assume_black was set).
  void RangeQueryAroundSpeculative(ObjectId center, double radius,
                                   QueryFilter filter, bool pruned,
                                   bool assume_black,
                                   std::vector<Neighbor>* out,
                                   QueryTrace* trace) const;

  /// RangeQueryBottomUp plus the same trace; the grey-stopping climb
  /// decisions are traced too. No assume_black flavor: the coverage-greedy
  /// callers query before recoloring the candidate.
  void RangeQueryBottomUpSpeculative(ObjectId center, double radius,
                                     QueryFilter filter, bool pruned,
                                     bool stop_at_grey,
                                     std::vector<Neighbor>* out,
                                     QueryTrace* trace) const;

  /// True while every decision the trace records would be taken the same
  /// way against the current colors: all recorded nodes still hold white
  /// objects and all recorded objects are still white. Sound only under the
  /// forward-pass color monotonicity described at QueryTrace.
  bool SpeculationValid(const QueryTrace& trace) const;

  // -- Colors (shared state with the DisC algorithms) -------------------

  /// The per-object session state a diversification run leaves behind:
  /// colors plus closest-black-neighbor distances. Saving and restoring it
  /// brings the tree back to exactly a previous run's end state, so adaptive
  /// operations (core/zoom.h) can continue from a cached solution without
  /// re-running the algorithm (the engine layer's session cache).
  struct ColorState {
    std::vector<Color> colors;
    std::vector<double> closest_black_dist;
  };

  /// Captures the current colors and closest-black distances.
  ColorState SaveColorState() const;

  /// Restores a previously saved state, rebuilding the per-node white
  /// counters. Returns InvalidArgument when the state's size does not match
  /// the dataset.
  Status RestoreColorState(const ColorState& state);

  /// Resets every object to white and clears closest-black distances.
  void ResetColors();

  Color color(ObjectId id) const { return colors_[id]; }
  /// Sets an object's color, maintaining per-node white counters.
  void SetColor(ObjectId id, Color color);
  /// Number of objects currently white.
  size_t white_count() const { return total_white_; }
  /// Objects with the given color, in id order.
  std::vector<ObjectId> ObjectsWithColor(Color color) const;

  // -- Zooming support (§5.2) -------------------------------------------

  /// Distance from `id` to its closest known black object (+inf when none).
  double closest_black_dist(ObjectId id) const {
    return closest_black_dist_[id];
  }
  /// Lowers the recorded closest-black distance (never raises it).
  void ObserveBlackNeighbor(ObjectId id, double dist);
  /// Forgets one object's closest-black distance (sets it to +inf); local
  /// zooming uses this when a region's old observations become stale.
  void ClearClosestBlackDistance(ObjectId id);
  /// Clears all closest-black distances to +inf.
  void ResetClosestBlackDistances();
  /// Post-processing pass required when the pruning rule was active during
  /// construction: re-runs an unpruned range query around every black object
  /// so closest-black distances are exact (§5.2).
  void RecomputeClosestBlackDistances(double radius);

  // -- Traversal ---------------------------------------------------------

  /// Objects in leaf-chain (left-to-right) order. Does not count accesses.
  std::vector<ObjectId> LeafOrder() const;

  /// Calls `fn(id)` for every object in leaf order, counting one node access
  /// per visited leaf; when skip_grey_leaves is set, leaves without white
  /// objects are skipped without being accessed (§5.1 visualization of
  /// Basic-DisC).
  void ScanLeaves(bool skip_grey_leaves,
                  const std::function<void(ObjectId)>& fn) const;

  // -- Introspection & stats ---------------------------------------------

  const Dataset& dataset() const { return dataset_; }
  const DistanceMetric& metric() const { return metric_; }
  const MTreeOptions& options() const { return options_; }

  /// Distance between two stored objects (counted as a distance computation).
  double Distance(ObjectId a, ObjectId b) const;

  AccessStats& stats() const { return stats_; }
  void ResetStats() const { stats_ = AccessStats{}; }

  /// Adds a batch of externally accounted accesses to the calling thread's
  /// live counters (ThreadStatsScope-aware, like every per-access
  /// increment). The speculation layer publishes a committed evaluation's
  /// privately-sunk cost through this.
  void ChargeStats(const AccessStats& delta) const { LiveStats() += delta; }

  /// RAII redirect: while alive, every access this *thread* charges against
  /// this tree lands in `sink` instead of stats(). The enabling primitive
  /// for parallel read-only query fan-outs (ComputeNeighborCountsPostBuild
  /// with a pool, the index-backed NeighborhoodGraph): each worker queries
  /// under its own sink, and the caller sums the sinks into stats()
  /// afterwards in deterministic order — totals stay exactly the serial
  /// totals without the counters racing. Scopes nest (restores the previous
  /// redirect); other threads are unaffected.
  class ThreadStatsScope {
   public:
    ThreadStatsScope(const MTree& tree, AccessStats* sink);
    ~ThreadStatsScope();

    ThreadStatsScope(const ThreadStatsScope&) = delete;
    ThreadStatsScope& operator=(const ThreadStatsScope&) = delete;

   private:
    const MTree* prev_tree_;
    AccessStats* prev_sink_;
  };

  size_t num_nodes() const { return num_nodes_; }
  size_t num_leaves() const;
  size_t height() const;
  size_t size() const { return dataset_.size(); }

  /// Fat-factor f(T) in [0,1] (Traina et al., eq. of §6): 0 = no overlap.
  /// Runs a full point query per stored object; does not disturb stats().
  double FatFactor() const;

  /// Checks every structural invariant (entry counts, covering radii,
  /// parent distances, leaf chain, white counters, object->leaf map).
  /// Intended for tests; returns the first violation found.
  Status Validate() const;

 private:
  struct RoutingEntry;
  struct LeafEntry;
  // Speculation bookkeeping threaded through RangeSearchNode: the trace to
  // fill plus the assume_black ancestor path (mtree.cc).
  struct SpecState;

  Status CheckBuildPreconditions() const;
  /// The AccessStats the calling thread currently charges: the
  /// ThreadStatsScope sink when one is active for this tree, else stats_.
  AccessStats& LiveStats() const;
  // (Re)initializes the per-object arrays (leaf map, colors, closest-black
  // distances) for a build over the full dataset.
  void InitObjectState();
  void Insert(ObjectId id);
  void SplitNode(Node* node);
  // RangeQuery without the built_ precondition, for querying the partial
  // tree during BuildWithNeighborCounts.
  void RangeQueryUnchecked(const Point& center, double radius,
                           QueryFilter filter, bool pruned,
                           std::vector<Neighbor>* out) const;
  void RangeSearchNode(const Node* node, const Point& center, double radius,
                       double dist_center_to_node_pivot, QueryFilter filter,
                       bool pruned, ObjectId exclude, std::vector<Neighbor>* out,
                       SpecState* spec = nullptr) const;
  /// A child's white counter as the speculative query must see it: the
  /// actual counter, minus one on the assume_black candidate's ancestor
  /// path. Equals node->white_count when spec carries no assumption.
  uint32_t EffectiveWhiteCount(const Node* node, const SpecState* spec) const;
  void AdjustWhiteCount(Node* leaf, int delta);
  uint32_t RecomputeWhiteCounts(Node* node);
  double DistanceToPoint(const Point& q, ObjectId b) const;
  uint64_t PointQueryAccesses(const Point& q) const;
  Status ValidateNode(const Node* node, size_t depth, size_t leaf_depth,
                      size_t* node_count) const;
  Status ValidateContainment(const Node* node, ObjectId pivot,
                             double radius) const;

  const Dataset& dataset_;
  const DistanceMetric& metric_;
  MTreeOptions options_;

  std::unique_ptr<Node> root_;
  std::vector<Node*> leaf_of_;  // object id -> leaf containing it
  Node* first_leaf_ = nullptr;  // leftmost leaf of the chain

  std::vector<Color> colors_;
  std::vector<double> closest_black_dist_;
  size_t total_white_ = 0;

  size_t num_nodes_ = 0;
  mutable AccessStats stats_;
  uint64_t rng_state_;
  bool built_ = false;
};

}  // namespace disc

#endif  // DISC_MTREE_MTREE_H_
