// An indexed binary max-heap over dense integer ids.
//
// This is the priority structure the paper calls L': Greedy-DisC repeatedly
// extracts the object with the largest white neighborhood and must also
// decrement the priorities of arbitrary objects as their neighbors turn grey.
// The heap therefore supports O(log n) update-by-id via a position map.
//
// Determinism: ties in priority are broken toward the smaller id, so every
// algorithm built on this heap produces identical output on every run and
// platform. This also lets the brute-force reference implementations in
// tests predict the exact same solutions.

#ifndef DISC_UTIL_INDEXED_HEAP_H_
#define DISC_UTIL_INDEXED_HEAP_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace disc {

/// Max-heap keyed by (priority desc, id asc) supporting update/remove by id.
/// Ids must be < the capacity passed at construction and each id may be
/// present at most once.
class IndexedMaxHeap {
 public:
  static constexpr size_t kNotPresent = static_cast<size_t>(-1);

  /// Creates a heap able to hold ids in [0, capacity).
  explicit IndexedMaxHeap(size_t capacity)
      : pos_(capacity, kNotPresent) {}

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  bool contains(size_t id) const {
    return id < pos_.size() && pos_[id] != kNotPresent;
  }

  /// Priority of a contained id.
  int64_t priority(size_t id) const {
    assert(contains(id));
    return heap_[pos_[id]].priority;
  }

  /// Inserts id with the given priority. Id must not already be present.
  void Push(size_t id, int64_t priority) {
    assert(id < pos_.size());
    assert(!contains(id));
    heap_.push_back(Entry{priority, id});
    pos_[id] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }

  /// Id with the largest (priority, then smallest id). Heap must be non-empty.
  size_t Top() const {
    assert(!empty());
    return heap_[0].id;
  }

  int64_t TopPriority() const {
    assert(!empty());
    return heap_[0].priority;
  }

  /// Removes and returns the top id.
  size_t PopTop() {
    size_t id = Top();
    RemoveAt(0);
    return id;
  }

  /// Removes an arbitrary contained id.
  void Remove(size_t id) {
    assert(contains(id));
    RemoveAt(pos_[id]);
  }

  /// Sets the priority of a contained id (up or down).
  void Update(size_t id, int64_t priority) {
    assert(contains(id));
    size_t i = pos_[id];
    int64_t old = heap_[i].priority;
    heap_[i].priority = priority;
    if (priority > old) {
      SiftUp(i);
    } else if (priority < old) {
      SiftDown(i);
    }
  }

  /// Adds `delta` (possibly negative) to the priority of a contained id.
  void Adjust(size_t id, int64_t delta) {
    Update(id, priority(id) + delta);
  }

  /// Removes all elements; capacity is unchanged.
  void Clear() {
    for (const Entry& e : heap_) pos_[e.id] = kNotPresent;
    heap_.clear();
  }

  /// The ids of the k largest entries in pop order ((priority desc, id asc)),
  /// without mutating the heap. TopK(k)[0] == Top(), and popping the heap k
  /// times yields exactly this sequence (absent interleaved updates). Runs a
  /// frontier search over the implicit heap array: O(k log k), independent of
  /// size(). Returns fewer than k ids when size() < k.
  std::vector<size_t> TopK(size_t k) const {
    std::vector<size_t> out;
    if (k == 0 || heap_.empty()) return out;
    out.reserve(k < heap_.size() ? k : heap_.size());
    // Frontier of heap-array indices ordered by Before(); the root dominates
    // everything, and each extracted index exposes only its two children.
    std::vector<size_t> frontier;
    auto after = [this](size_t a, size_t b) {  // min-ordering for pop_heap
      return Before(heap_[b], heap_[a]);
    };
    frontier.push_back(0);
    while (!frontier.empty() && out.size() < k) {
      std::pop_heap(frontier.begin(), frontier.end(), after);
      const size_t i = frontier.back();
      frontier.pop_back();
      out.push_back(heap_[i].id);
      for (size_t child : {2 * i + 1, 2 * i + 2}) {
        if (child < heap_.size()) {
          frontier.push_back(child);
          std::push_heap(frontier.begin(), frontier.end(), after);
        }
      }
    }
    return out;
  }

 private:
  struct Entry {
    int64_t priority;
    size_t id;
  };

  // True when a should be above b in the max-heap.
  static bool Before(const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.id < b.id;
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!Before(heap_[i], heap_[parent])) break;
      SwapEntries(i, parent);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    for (;;) {
      size_t best = i;
      size_t left = 2 * i + 1, right = 2 * i + 2;
      if (left < n && Before(heap_[left], heap_[best])) best = left;
      if (right < n && Before(heap_[right], heap_[best])) best = right;
      if (best == i) break;
      SwapEntries(i, best);
      i = best;
    }
  }

  void SwapEntries(size_t i, size_t j) {
    std::swap(heap_[i], heap_[j]);
    pos_[heap_[i].id] = i;
    pos_[heap_[j].id] = j;
  }

  void RemoveAt(size_t i) {
    pos_[heap_[i].id] = kNotPresent;
    if (i + 1 != heap_.size()) {
      heap_[i] = heap_.back();
      pos_[heap_[i].id] = i;
      heap_.pop_back();
      // The moved element may need to travel either direction.
      SiftUp(i);
      SiftDown(i);
    } else {
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::vector<size_t> pos_;
};

}  // namespace disc

#endif  // DISC_UTIL_INDEXED_HEAP_H_
