#include "util/parallel.h"

#include <algorithm>
#include <cstddef>

namespace disc {

size_t DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t threads) : threads_(std::max<size_t>(1, threads)) {
  workers_.reserve(threads_ - 1);
  for (size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::Run(size_t count, const std::function<void(size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty()) {  // threads_ == 1: plain serial loop
    for (size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    busy_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  Drain();  // the calling thread participates
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return busy_workers_ == 0; });
    task_ = nullptr;
  }
}

void ThreadPool::Drain() {
  while (true) {
    const size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count_) return;
    (*task_)(index);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    lock.unlock();
    Drain();
    lock.lock();
    if (--busy_workers_ == 0) done_cv_.notify_all();
  }
}

size_t NumChunks(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return 0;
  const size_t n = end - begin;
  const size_t g = std::max<size_t>(1, grain);
  return (n + g - 1) / g;
}

ChunkRange Chunk(size_t begin, size_t end, size_t grain, size_t index) {
  const size_t g = std::max<size_t>(1, grain);
  ChunkRange range;
  range.begin = std::min(end, begin + index * g);
  range.end = std::min(end, range.begin + g);
  return range;
}

size_t RecommendedGrain(size_t n, size_t threads) {
  const size_t workers = std::max<size_t>(1, threads);
  const size_t grain = n / (workers * 8);
  return std::clamp<size_t>(grain, 1, 1024);
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  const size_t chunks = NumChunks(begin, end, grain);
  if (pool == nullptr || pool->threads() <= 1 || chunks <= 1) {
    for (size_t c = 0; c < chunks; ++c) {
      ChunkRange range = Chunk(begin, end, grain, c);
      body(range.begin, range.end);
    }
    return;
  }
  pool->Run(chunks, [&](size_t c) {
    ChunkRange range = Chunk(begin, end, grain, c);
    body(range.begin, range.end);
  });
}

}  // namespace disc
