#include "util/status.h"

#include <string>

namespace disc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kBusy:
      return "Busy";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace disc
