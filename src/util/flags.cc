#include "util/flags.h"

#include <charconv>
#include <system_error>

namespace disc {

Result<std::map<std::string, std::string>> ParseFlagArgs(
    int argc, char** argv, const std::vector<std::string>& known) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected argument: " + arg);
    }
    size_t eq = arg.find('=');
    std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    bool is_known = false;
    for (const std::string& candidate : known) {
      if (key == candidate) {
        is_known = true;
        break;
      }
    }
    if (!is_known) {
      return Status::InvalidArgument("unknown flag '--" + key + "'");
    }
    flags[key] = eq == std::string::npos ? "true" : arg.substr(eq + 1);
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

namespace {

template <typename T>
Result<T> ParseNumeric(const std::map<std::string, std::string>& flags,
                       const std::string& key, T fallback,
                       const char* expected) {
  auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const std::string& text = it->second;
  T value{};
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("--" + key + "=" + text + " is not " +
                                   expected);
  }
  return value;
}

}  // namespace

Result<uint64_t> FlagUint(const std::map<std::string, std::string>& flags,
                          const std::string& key, uint64_t fallback) {
  return ParseNumeric<uint64_t>(flags, key, fallback,
                                "a non-negative integer");
}

Result<int> FlagInt(const std::map<std::string, std::string>& flags,
                    const std::string& key, int fallback) {
  return ParseNumeric<int>(flags, key, fallback, "an integer");
}

Result<double> FlagDouble(const std::map<std::string, std::string>& flags,
                          const std::string& key, double fallback) {
  return ParseNumeric<double>(flags, key, fallback, "a number");
}

}  // namespace disc
