// Deterministic pseudo-random number generation.
//
// Every generator in this library takes an explicit seed; there is no use of
// std::random_device anywhere, so all datasets, algorithms, and experiments
// are reproducible run-to-run and machine-to-machine (we rely on the fixed
// xoshiro256** stream rather than unspecified std::distribution internals).

#ifndef DISC_UTIL_RANDOM_H_
#define DISC_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace disc {

/// A small, fast, deterministic PRNG (xoshiro256**). The raw 64-bit stream
/// and every derived quantity are stable across platforms and compilers.
class Random {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Random(uint64_t seed);

  /// Next raw 64 bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal (mean 0, stddev 1) via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of `v` using this stream.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace disc

#endif  // DISC_UTIL_RANDOM_H_
