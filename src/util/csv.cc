#include "util/csv.h"

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace disc {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open file for reading: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(SplitCsvLine(line));
  }
  return rows;
}

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open file for writing: " + path);
  }
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok()) return;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (NeedsQuoting(fields[i]) ? QuoteField(fields[i]) : fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::Close() {
  if (out_.is_open()) out_.close();
}

}  // namespace disc
