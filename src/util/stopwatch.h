// Wall-clock stopwatch used by benchmarks and examples for coarse timings.
// The paper's primary cost metric is M-tree node accesses (hardware
// independent); wall-clock numbers are reported as secondary context only.

#ifndef DISC_UTIL_STOPWATCH_H_
#define DISC_UTIL_STOPWATCH_H_

#include <chrono>

namespace disc {

/// Measures elapsed wall-clock time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since start.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace disc

#endif  // DISC_UTIL_STOPWATCH_H_
