// Status / Result error-handling primitives (RocksDB / Arrow idiom).
//
// Library code never throws across its public boundary; fallible operations
// return a Status (or a Result<T> when they also produce a value). Callers
// check ok() and propagate with DISC_RETURN_NOT_OK.

#ifndef DISC_UTIL_STATUS_H_
#define DISC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace disc {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kOutOfRange,
  kCorruption,
  kUnimplemented,
  /// The operation was refused by admission control (overload); retrying
  /// after a backoff is expected to succeed. The serving layer maps this to
  /// the wire-level BUSY error.
  kBusy,
};

/// Returns a short human-readable name for a status code,
/// e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the OK path
/// (no allocation); error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Holds either a T (when status().ok()) or an
/// error Status. Accessing the value of an errored Result aborts in debug
/// builds and is undefined in release builds, matching assert semantics.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from an error status. `status.ok()` is a bug.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define DISC_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::disc::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define DISC_ASSIGN_OR_RETURN(lhs, expr)      \
  auto DISC_CONCAT_(_res_, __LINE__) = (expr);                         \
  if (!DISC_CONCAT_(_res_, __LINE__).ok())                             \
    return DISC_CONCAT_(_res_, __LINE__).status();                     \
  lhs = std::move(DISC_CONCAT_(_res_, __LINE__)).value()

#define DISC_CONCAT_IMPL_(a, b) a##b
#define DISC_CONCAT_(a, b) DISC_CONCAT_IMPL_(a, b)

}  // namespace disc

#endif  // DISC_UTIL_STATUS_H_
