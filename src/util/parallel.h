// A small fixed-size thread pool and deterministic data-parallel loops.
//
// Every DisC hot pass dominated by the r-neighborhood computation —
// NeighborhoodGraph construction, the engine's per-radius neighborhood
// counts, Greedy-DisC's initial counting pass, the session manager's engine
// warm-up — is an embarrassingly parallel fan-out over read-only state.
// This header provides the one threading primitive those passes share,
// built around a determinism contract:
//
//   * Work is split into chunks by a pure function of (begin, end, grain) —
//     never of the thread count — so the decomposition is identical for 1,
//     4, or 64 threads.
//   * Chunks execute on arbitrary workers, but reductions consume per-chunk
//     results in ascending chunk order on the calling thread
//     (ParallelOrderedReduce), so order-sensitive merges (floating-point
//     sums, list appends) are byte-identical to the serial loop.
//
// Callers gate on `pool == nullptr || pool->threads() <= 1` and keep their
// original serial loop on that path, so single-threaded behavior is the
// exact pre-pool code.

#ifndef DISC_UTIL_PARALLEL_H_
#define DISC_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace disc {

/// Worker count when the caller does not specify one: the hardware
/// concurrency, and at least 1 (std::thread::hardware_concurrency may
/// return 0 on exotic platforms).
size_t DefaultThreads();

/// A fixed-size pool of `threads` workers (the calling thread counts as one,
/// so `threads - 1` std::threads are spawned; `threads <= 1` spawns none and
/// Run degenerates to a serial loop). Workers persist across Run calls —
/// construction cost is paid once per pool, not per pass.
///
/// Thread safety: Run may be called from any thread, but calls are
/// serialized internally (one fan-out at a time per pool). The pool must
/// outlive every Run call; destruction joins all workers.
class ThreadPool {
 public:
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t threads() const { return threads_; }

  /// Runs task(index) exactly once for every index in [0, count),
  /// distributing indexes dynamically across the workers plus the calling
  /// thread, and returns when all of them finished. Tasks must not throw.
  void Run(size_t count, const std::function<void(size_t)>& task);

 private:
  void WorkerLoop();
  /// Claims and executes task indexes until none remain.
  void Drain();

  const size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex run_mutex_;  // serializes concurrent Run calls

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  // bumped once per Run; wakes the workers
  size_t busy_workers_ = 0;  // workers still draining this generation
  bool stopping_ = false;

  const std::function<void(size_t)>* task_ = nullptr;
  size_t count_ = 0;
  std::atomic<size_t> next_{0};
};

/// A contiguous half-open index range.
struct ChunkRange {
  size_t begin = 0;
  size_t end = 0;
};

/// Number of chunks [begin, end) decomposes into at the given grain: 0 for
/// an empty range, otherwise ceil((end - begin) / grain). Grain 0 is
/// treated as 1. A pure function of its arguments — the thread count never
/// participates, which is what makes ordered reductions deterministic.
size_t NumChunks(size_t begin, size_t end, size_t grain);

/// The `index`-th chunk of the decomposition NumChunks describes.
ChunkRange Chunk(size_t begin, size_t end, size_t grain, size_t index);

/// A grain that yields roughly 8 chunks per worker (dynamic distribution
/// then absorbs per-chunk work imbalance), clamped to [1, 1024].
size_t RecommendedGrain(size_t n, size_t threads);

/// Runs body(chunk_begin, chunk_end) for every chunk of [begin, end).
/// With a null pool or one thread the chunks run serially in ascending
/// order on the calling thread; otherwise they are distributed across the
/// pool. Chunks must be independent (no ordering guarantee while parallel).
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// The ordered-reduction primitive: produce(chunk_begin, chunk_end) runs
/// per chunk (in parallel when the pool has more than one thread), then
/// consume(result) runs on the calling thread in ascending chunk order —
/// the same order the serial loop would produce. Reductions that are
/// order-sensitive (floating-point accumulation, appending to a shared
/// vector, summing per-thread AccessStats into a tree) therefore give
/// byte-identical results for every thread count.
template <typename T>
void ParallelOrderedReduce(ThreadPool* pool, size_t begin, size_t end,
                           size_t grain,
                           const std::function<T(size_t, size_t)>& produce,
                           const std::function<void(T&)>& consume) {
  const size_t chunks = NumChunks(begin, end, grain);
  if (pool == nullptr || pool->threads() <= 1 || chunks <= 1) {
    for (size_t c = 0; c < chunks; ++c) {
      ChunkRange range = Chunk(begin, end, grain, c);
      T result = produce(range.begin, range.end);
      consume(result);
    }
    return;
  }
  std::vector<T> results(chunks);
  pool->Run(chunks, [&](size_t c) {
    ChunkRange range = Chunk(begin, end, grain, c);
    results[c] = produce(range.begin, range.end);
  });
  for (T& result : results) consume(result);
}

}  // namespace disc

#endif  // DISC_UTIL_PARALLEL_H_
