#include "util/random.h"

#include <cassert>
#include <cmath>
#include <cstdint>

namespace disc {

namespace {

// splitmix64: expands a single seed into well-distributed state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Random::Uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

uint64_t Random::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Random::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0, 1] so the log is finite.
  double u1 = 1.0 - Uniform01();
  double u2 = Uniform01();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

}  // namespace disc
