// Minimal CSV reading/writing used by the dataset loaders, examples, and the
// benchmark harness (each bench also emits a machine-readable CSV next to its
// console table so figures can be re-plotted).

#ifndef DISC_UTIL_CSV_H_
#define DISC_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace disc {

/// Splits one CSV line on commas. Handles double-quoted fields containing
/// commas and escaped quotes (""), which is all our data files need.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Reads a whole CSV file into rows of fields. Empty lines are skipped.
Result<std::vector<std::vector<std::string>>> ReadCsv(const std::string& path);

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check status() before use.
  explicit CsvWriter(const std::string& path);

  /// Status of the underlying stream (IOError when the open failed).
  const Status& status() const { return status_; }

  /// Writes one row; fields containing commas/quotes/newlines are quoted.
  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes. Further writes are invalid.
  void Close();

 private:
  std::ofstream out_;
  Status status_;
};

}  // namespace disc

#endif  // DISC_UTIL_CSV_H_
