// Minimal --key=value flag parsing shared by the binaries (disc_cli,
// disc_serve, disc_client). One vocabulary-checked pass from argv to a
// string map, plus strict numeric accessors — "--port=48l7" is an error,
// never a silent zero.

#ifndef DISC_UTIL_FLAGS_H_
#define DISC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace disc {

/// Parses argv into {key: value}. Every argument must look like --key or
/// --key=value and the key must be in `known`; otherwise InvalidArgument
/// with the same "unknown flag '--x'" / "unexpected argument: x" wording
/// the CLIs have always printed (callers append their usage text). A bare
/// --key stores "true".
Result<std::map<std::string, std::string>> ParseFlagArgs(
    int argc, char** argv, const std::vector<std::string>& known);

/// The flag's value, or `fallback` when absent.
std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback);

/// Strict full-consumption numeric accessors: absent key -> fallback,
/// malformed value -> InvalidArgument naming the flag.
Result<uint64_t> FlagUint(const std::map<std::string, std::string>& flags,
                          const std::string& key, uint64_t fallback);
Result<int> FlagInt(const std::map<std::string, std::string>& flags,
                    const std::string& key, int fallback);
Result<double> FlagDouble(const std::map<std::string, std::string>& flags,
                          const std::string& key, double fallback);

}  // namespace disc

#endif  // DISC_UTIL_FLAGS_H_
