#include "baselines/kmedoids.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/random.h"

namespace disc {

Result<KMedoidsResult> KMedoids(const Dataset& dataset,
                                const DistanceMetric& metric, size_t k,
                                const KMedoidsOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (k == 0 || k > dataset.size()) {
    return Status::InvalidArgument("k must be in [1, dataset size]");
  }
  const size_t n = dataset.size();
  Random rng(options.seed);

  // k-means++-style seeding: each next seed is sampled proportionally to its
  // squared distance from the current seed set.
  std::vector<ObjectId> medoids;
  std::vector<double> dist_to_set(n, std::numeric_limits<double>::infinity());
  medoids.push_back(static_cast<ObjectId>(rng.UniformInt(n)));
  while (medoids.size() < k) {
    const Point& last = dataset.point(medoids.back());
    double total = 0.0;
    for (ObjectId i = 0; i < n; ++i) {
      double d = metric.Distance(dataset.point(i), last);
      if (d < dist_to_set[i]) dist_to_set[i] = d;
      total += dist_to_set[i] * dist_to_set[i];
    }
    if (total <= 0) {
      // All remaining objects coincide with a seed; fill with unused ids.
      std::vector<char> used(n, 0);
      for (ObjectId m : medoids) used[m] = 1;
      for (ObjectId i = 0; i < n && medoids.size() < k; ++i) {
        if (!used[i]) medoids.push_back(i);
      }
      break;
    }
    double target = rng.Uniform(0.0, total);
    ObjectId chosen = 0;
    for (ObjectId i = 0; i < n; ++i) {
      target -= dist_to_set[i] * dist_to_set[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    medoids.push_back(chosen);
  }

  KMedoidsResult result;
  result.medoids = std::move(medoids);
  result.assignment.assign(n, 0);

  std::vector<std::vector<ObjectId>> clusters(k);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // Assign.
    for (auto& c : clusters) c.clear();
    for (ObjectId i = 0; i < n; ++i) {
      uint32_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (uint32_t m = 0; m < k; ++m) {
        double d = metric.Distance(dataset.point(i),
                                   dataset.point(result.medoids[m]));
        if (d < best_d) {
          best_d = d;
          best = m;
        }
      }
      result.assignment[i] = best;
      clusters[best].push_back(i);
    }
    // Update: the medoid of each cluster is its member with the smallest
    // total distance to the rest of the cluster.
    bool changed = false;
    for (uint32_t m = 0; m < k; ++m) {
      const auto& cluster = clusters[m];
      if (cluster.empty()) continue;
      ObjectId best = result.medoids[m];
      double best_cost = std::numeric_limits<double>::infinity();
      for (ObjectId candidate : cluster) {
        double cost = 0.0;
        for (ObjectId other : cluster) {
          cost += metric.Distance(dataset.point(candidate),
                                  dataset.point(other));
        }
        if (cost < best_cost) {
          best_cost = cost;
          best = candidate;
        }
      }
      if (best != result.medoids[m]) {
        result.medoids[m] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Final objective.
  double total = 0.0;
  for (ObjectId i = 0; i < n; ++i) {
    total += metric.Distance(
        dataset.point(i), dataset.point(result.medoids[result.assignment[i]]));
  }
  result.mean_distance = total / static_cast<double>(n);
  return result;
}

}  // namespace disc
