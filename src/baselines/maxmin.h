// Greedy MaxMin diversification baseline (§4): selects k objects maximizing
// f_Min = min_{p_i != p_j in S} dist(p_i, p_j). The classic farthest-point
// (Gonzalez) greedy achieves a 2-approximation and is the heuristic the
// paper compares against in Figure 6 and Lemma 7.

#ifndef DISC_BASELINES_MAXMIN_H_
#define DISC_BASELINES_MAXMIN_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"
#include "util/status.h"

namespace disc {

/// Farthest-point greedy: starts from `start` (default: object 0) and
/// repeatedly adds the object whose distance to the current selection is
/// largest (ties toward the smaller id). Returns InvalidArgument when
/// k exceeds the dataset size or the dataset is empty.
Result<std::vector<ObjectId>> GreedyMaxMin(const Dataset& dataset,
                                           const DistanceMetric& metric,
                                           size_t k, ObjectId start = 0);

}  // namespace disc

#endif  // DISC_BASELINES_MAXMIN_H_
