// Greedy MaxSum diversification baseline (§4): selects k objects maximizing
// f_Sum = sum of pairwise distances within S. The greedy incrementally adds
// the object with the largest total distance to the current selection —
// the standard heuristic the paper cites ([10], [26]); it gravitates to the
// outskirts of the dataset, which is exactly the behavior Figure 6 contrasts
// DisC against.

#ifndef DISC_BASELINES_MAXSUM_H_
#define DISC_BASELINES_MAXSUM_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"
#include "util/status.h"

namespace disc {

/// Greedy f_Sum maximization: seeds with the farthest pair found from
/// object 0 (double sweep), then adds argmax_i sum_{s in S} dist(i, s)
/// (ties toward the smaller id) until |S| = k.
Result<std::vector<ObjectId>> GreedyMaxSum(const Dataset& dataset,
                                           const DistanceMetric& metric,
                                           size_t k);

}  // namespace disc

#endif  // DISC_BASELINES_MAXSUM_H_
