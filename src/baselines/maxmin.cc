#include "baselines/maxmin.h"

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace disc {

Result<std::vector<ObjectId>> GreedyMaxMin(const Dataset& dataset,
                                           const DistanceMetric& metric,
                                           size_t k, ObjectId start) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (k > dataset.size()) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds dataset size " +
                                   std::to_string(dataset.size()));
  }
  if (start >= dataset.size()) {
    return Status::InvalidArgument("start object out of range");
  }
  const size_t n = dataset.size();
  std::vector<ObjectId> solution;
  if (k == 0) return solution;

  // dist_to_set[i] = distance from i to its nearest selected object.
  std::vector<double> dist_to_set(n, std::numeric_limits<double>::infinity());
  ObjectId next = start;
  for (size_t round = 0; round < k; ++round) {
    solution.push_back(next);
    const Point& added = dataset.point(next);
    ObjectId farthest = kInvalidObject;
    double farthest_dist = -1.0;
    for (ObjectId i = 0; i < n; ++i) {
      double d = metric.Distance(dataset.point(i), added);
      if (d < dist_to_set[i]) dist_to_set[i] = d;
      if (dist_to_set[i] > farthest_dist) {
        farthest_dist = dist_to_set[i];
        farthest = i;
      }
    }
    next = farthest;
  }
  return solution;
}

}  // namespace disc
