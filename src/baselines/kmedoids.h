// k-medoids clustering baseline (§4): minimizes the mean distance from each
// object to its closest selected medoid. The paper uses it as the
// "representative subset" comparison in Figure 6 (central points, outliers
// ignored). Implemented as Voronoi iteration (assign to nearest medoid,
// recompute each cluster's medoid) with k-means++-style seeding, which is
// the standard scalable PAM alternative.

#ifndef DISC_BASELINES_KMEDOIDS_H_
#define DISC_BASELINES_KMEDOIDS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "metric/metric.h"
#include "util/status.h"

namespace disc {

struct KMedoidsOptions {
  size_t max_iterations = 20;
  uint64_t seed = 1234;
};

struct KMedoidsResult {
  std::vector<ObjectId> medoids;
  /// assignment[i] = index into `medoids` of object i's cluster.
  std::vector<uint32_t> assignment;
  /// Final objective: mean distance to the assigned medoid.
  double mean_distance = 0.0;
  size_t iterations = 0;
};

/// Runs k-medoids; deterministic for a fixed options.seed.
Result<KMedoidsResult> KMedoids(const Dataset& dataset,
                                const DistanceMetric& metric, size_t k,
                                const KMedoidsOptions& options = {});

}  // namespace disc

#endif  // DISC_BASELINES_KMEDOIDS_H_
