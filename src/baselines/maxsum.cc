#include "baselines/maxsum.h"

#include <cstddef>
#include <string>
#include <vector>

namespace disc {

Result<std::vector<ObjectId>> GreedyMaxSum(const Dataset& dataset,
                                           const DistanceMetric& metric,
                                           size_t k) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (k > dataset.size()) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds dataset size " +
                                   std::to_string(dataset.size()));
  }
  const size_t n = dataset.size();
  std::vector<ObjectId> solution;
  if (k == 0) return solution;

  // sum_to_set[i] = total distance from i to the current selection.
  std::vector<double> sum_to_set(n, 0.0);
  std::vector<char> selected(n, 0);

  // Seed: farthest object from 0, mirroring the double-sweep diameter probe.
  ObjectId seed = 0;
  double best = -1.0;
  for (ObjectId i = 0; i < n; ++i) {
    double d = metric.Distance(dataset.point(0), dataset.point(i));
    if (d > best) {
      best = d;
      seed = i;
    }
  }

  ObjectId next = seed;
  for (size_t round = 0; round < k; ++round) {
    solution.push_back(next);
    selected[next] = 1;
    const Point& added = dataset.point(next);
    ObjectId arg = kInvalidObject;
    double arg_sum = -1.0;
    for (ObjectId i = 0; i < n; ++i) {
      sum_to_set[i] += metric.Distance(dataset.point(i), added);
      if (!selected[i] && sum_to_set[i] > arg_sum) {
        arg_sum = sum_to_set[i];
        arg = i;
      }
    }
    next = arg;
  }
  return solution;
}

}  // namespace disc
