// Point: a fixed-dimension vector of coordinates.
//
// Numeric datasets store real coordinates (normalized to [0,1] per the
// paper's setup); categorical datasets (e.g. Cameras) store integer category
// codes in the same representation and are compared with Hamming distance.

#ifndef DISC_METRIC_POINT_H_
#define DISC_METRIC_POINT_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace disc {

/// Dense index of an object within its Dataset; doubles as the vertex id in
/// graph representations and the object id inside the M-tree.
using ObjectId = uint32_t;

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObject = static_cast<ObjectId>(-1);

/// An immutable-ish coordinate vector. Kept deliberately simple: the library
/// operates on datasets of at most a few tens of thousands of points in at
/// most ~10 dimensions, so a vector<double> per point is both clear and fast
/// enough; all hot loops access coordinates through data() anyway.
class Point {
 public:
  Point() = default;
  explicit Point(std::vector<double> coords) : coords_(std::move(coords)) {}
  Point(std::initializer_list<double> coords) : coords_(coords) {}

  size_t dim() const { return coords_.size(); }
  double operator[](size_t i) const { return coords_[i]; }
  double& operator[](size_t i) { return coords_[i]; }
  const double* data() const { return coords_.data(); }
  const std::vector<double>& coords() const { return coords_; }

  bool operator==(const Point& other) const = default;

  /// "(x0, x1, ...)" with 6 significant digits, for logs and examples.
  std::string ToString() const;

 private:
  std::vector<double> coords_;
};

}  // namespace disc

#endif  // DISC_METRIC_POINT_H_
