#include "metric/metric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>

namespace disc {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kEuclidean:
      return "euclidean";
    case MetricKind::kManhattan:
      return "manhattan";
    case MetricKind::kChebyshev:
      return "chebyshev";
    case MetricKind::kHamming:
      return "hamming";
  }
  return "unknown";
}

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  assert(a.dim() == b.dim());
  const double* pa = a.data();
  const double* pb = b.data();
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    double d = pa[i] - pb[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double ManhattanMetric::Distance(const Point& a, const Point& b) const {
  assert(a.dim() == b.dim());
  const double* pa = a.data();
  const double* pb = b.data();
  double sum = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    sum += std::fabs(pa[i] - pb[i]);
  }
  return sum;
}

double ChebyshevMetric::Distance(const Point& a, const Point& b) const {
  assert(a.dim() == b.dim());
  const double* pa = a.data();
  const double* pb = b.data();
  double best = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    best = std::max(best, std::fabs(pa[i] - pb[i]));
  }
  return best;
}

double HammingMetric::Distance(const Point& a, const Point& b) const {
  assert(a.dim() == b.dim());
  const double* pa = a.data();
  const double* pb = b.data();
  double count = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    if (pa[i] != pb[i]) count += 1.0;
  }
  return count;
}

std::unique_ptr<DistanceMetric> MakeMetric(MetricKind kind) {
  switch (kind) {
    case MetricKind::kEuclidean:
      return std::make_unique<EuclideanMetric>();
    case MetricKind::kManhattan:
      return std::make_unique<ManhattanMetric>();
    case MetricKind::kChebyshev:
      return std::make_unique<ChebyshevMetric>();
    case MetricKind::kHamming:
      return std::make_unique<HammingMetric>();
  }
  return nullptr;
}

Result<MetricKind> ParseMetricKind(const std::string& name) {
  if (name == "euclidean") return MetricKind::kEuclidean;
  if (name == "manhattan") return MetricKind::kManhattan;
  if (name == "chebyshev") return MetricKind::kChebyshev;
  if (name == "hamming") return MetricKind::kHamming;
  return Status::InvalidArgument("unknown metric: " + name);
}

}  // namespace disc
