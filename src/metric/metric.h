// Distance metrics over Points.
//
// The paper uses Euclidean distance for numeric datasets (Uniform, Clustered,
// Cities) and Hamming distance for the categorical Cameras dataset, and
// derives theoretical bounds for Euclidean and Manhattan distances in 2-D.
// All metrics here satisfy the metric axioms (identity, symmetry, triangle
// inequality), which the M-tree requires for correct pruning.

#ifndef DISC_METRIC_METRIC_H_
#define DISC_METRIC_METRIC_H_

#include <memory>
#include <string>

#include "metric/point.h"
#include "util/status.h"

namespace disc {

/// Known metric families, used for factory construction and for selecting
/// the matching theoretical bounds (see core/bounds.h).
enum class MetricKind {
  kEuclidean,
  kManhattan,
  kChebyshev,
  kHamming,
};

/// Returns e.g. "euclidean" for kEuclidean.
const char* MetricKindToString(MetricKind kind);

/// Abstract distance function. Implementations must be metrics in the
/// mathematical sense; the M-tree's covering-radius pruning is unsound
/// otherwise.
class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  /// Distance between two points of equal dimension.
  virtual double Distance(const Point& a, const Point& b) const = 0;

  /// The family this metric belongs to.
  virtual MetricKind kind() const = 0;

  /// Human-readable name.
  std::string name() const { return MetricKindToString(kind()); }
};

/// L2 distance.
class EuclideanMetric final : public DistanceMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  MetricKind kind() const override { return MetricKind::kEuclidean; }
};

/// L1 distance.
class ManhattanMetric final : public DistanceMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  MetricKind kind() const override { return MetricKind::kManhattan; }
};

/// L-infinity distance.
class ChebyshevMetric final : public DistanceMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  MetricKind kind() const override { return MetricKind::kChebyshev; }
};

/// Number of coordinates on which the two points differ. Coordinates are
/// compared exactly, which is correct for the integer category codes used by
/// categorical datasets.
class HammingMetric final : public DistanceMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  MetricKind kind() const override { return MetricKind::kHamming; }
};

/// Constructs a metric of the given family.
std::unique_ptr<DistanceMetric> MakeMetric(MetricKind kind);

/// Parses "euclidean" / "manhattan" / "chebyshev" / "hamming".
Result<MetricKind> ParseMetricKind(const std::string& name);

}  // namespace disc

#endif  // DISC_METRIC_METRIC_H_
