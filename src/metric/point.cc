#include "metric/point.h"

#include <cstddef>
#include <cstdio>
#include <string>

namespace disc {

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (size_t i = 0; i < coords_.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.6g", coords_[i]);
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace disc
