// SessionManager: shards concurrent client sessions across DiscEngine
// instances.
//
// DiscEngine is single-session by design (engine/engine.h): its solution
// cache, color state, and zoom preconditions assume one caller. The manager
// provides the server's concurrency model on top of that invariant:
//
//  * every connection leases an engine for *exclusive* use — two sessions
//    never share a live engine, so the tree's color state cannot race;
//  * engines are pooled by (dataset, metric, build strategy): when a lease
//    ends the engine goes idle instead of being destroyed, and the next
//    OPEN with the same key reuses it after DiscEngine::NewSession() — the
//    index, the per-radius neighborhood counts, and the solution cache stay
//    warm, so a repeated DIVERSIFY at the same radius costs zero node
//    accesses even across sessions;
//  * concurrent OPENs of the same key each get their own engine (the pool
//    may hold several per key), so sharding never serializes clients;
//  * idle engines beyond `max_idle_engines` are evicted least-recently-
//    released first (an index plus caches is the unit of memory here).
//
// Thread safety: Acquire/Release are safe from any thread. Engine
// construction (dataset load + index build) runs outside the manager lock,
// so a slow OPEN never blocks other sessions.

#ifndef DISC_SERVER_SESSION_MANAGER_H_
#define DISC_SERVER_SESSION_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/config.h"
#include "engine/engine.h"
#include "util/status.h"

namespace disc {

/// Canonical pool key for an EngineConfig: dataset identity (source plus
/// the generator knobs or CSV path), metric, and build strategy. Two
/// configs with equal, non-empty keys produce interchangeable engines.
/// Returns "" for configs with no canonical identity — kProvided datasets
/// (two provided datasets are not interchangeable just because their
/// metric matches) — and such engines are never pooled: the manager
/// destroys them when their lease ends. Note the key deliberately covers
/// only `MTreeOptions::build.strategy`; configs that hand-tune other tree
/// knobs should use their own manager (the wire protocol cannot produce
/// them).
std::string EnginePoolKey(const EngineConfig& config);

class SessionManager;

/// An exclusive engine lease. Movable, not copyable; returns the engine to
/// the manager's idle pool on destruction (RAII) or explicit Release().
class EngineLease {
 public:
  EngineLease() = default;
  EngineLease(EngineLease&& other) noexcept { *this = std::move(other); }
  EngineLease& operator=(EngineLease&& other) noexcept;
  ~EngineLease() { Release(); }

  EngineLease(const EngineLease&) = delete;
  EngineLease& operator=(const EngineLease&) = delete;

  bool valid() const { return engine_ != nullptr; }
  DiscEngine& engine() { return *engine_; }
  const std::string& key() const { return key_; }
  /// True when Acquire reused a pooled engine (warm caches).
  bool reused() const { return reused_; }

  /// Returns the engine to the pool now. No-op on an empty lease.
  void Release();

 private:
  friend class SessionManager;
  EngineLease(SessionManager* manager, std::string key,
              std::unique_ptr<DiscEngine> engine, bool reused)
      : manager_(manager),
        key_(std::move(key)),
        engine_(std::move(engine)),
        reused_(reused) {}

  SessionManager* manager_ = nullptr;
  std::string key_;
  std::unique_ptr<DiscEngine> engine_;
  bool reused_ = false;
};

/// The outcome of one coalesced computation: the serialized response line
/// the leader produced (fanned out to every waiter verbatim, so coalesced
/// responses are byte-identical to the leader's direct engine call) plus
/// the leader's exported session state. `capsule` is null when the
/// computation failed — identical requests get the identical error line,
/// but there is no session state to adopt.
struct FlightOutcome {
  std::string response;
  std::shared_ptr<DiscEngine::SessionCapsule> capsule;
  /// Radius-aware memoization metadata (§5.2 serving-side adaptation):
  /// when `adapt_family` is non-empty, this outcome is a successful *pure*
  /// DIVERSIFY (no zoom applied) of a zoomable DisC-family solution, and
  /// its capsule may seed an adapted answer for a request in the same
  /// family at a *different* radius. The family string covers pool key,
  /// algorithm, and pruning — everything but the radius — so two outcomes
  /// in one family differ only by the radius recorded here. Left empty for
  /// errors, ZOOM outcomes, adapted outcomes, and covering-only
  /// algorithms.
  std::string adapt_family;
  double radius = 0.0;
};

/// Invoked exactly once per follower, on the leader's thread, after the
/// computation completes (outside the manager lock — adopting a capsule is
/// an O(n) engine call).
using FlightWaiter = std::function<void(const FlightOutcome&)>;

/// What JoinFlight decided for the caller.
enum class FlightJoin {
  /// No flight existed: the caller runs the computation and MUST call
  /// FinishFlight (even on failure), or followers would wait forever.
  kLeader,
  /// A flight is in progress; the waiter was registered.
  kFollower,
  /// A completed flight's outcome was memoized; it was copied out and the
  /// waiter dropped.
  kCached,
};

/// Counters for observability and tests (a consistent snapshot).
struct SessionManagerStats {
  size_t leases_acquired = 0;
  size_t leases_released = 0;
  size_t pool_hits = 0;
  size_t engines_created = 0;
  size_t engines_evicted = 0;
  size_t idle_engines = 0;
  /// Single-flight table: computations led, waiters attached to an
  /// in-progress flight, requests served from the memoized-outcome cache,
  /// and the cache's current size.
  size_t flights_led = 0;
  size_t flights_coalesced = 0;
  size_t flights_memoized = 0;
  size_t cached_results = 0;
  /// Requests served by adapting a memoized outcome at a different radius
  /// (FindAdaptableSeed hits).
  size_t flights_adapted = 0;
  /// Requests that registered as adapt-followers of an *in-flight* leader
  /// in the same family at a different radius (JoinAdaptFollower hits):
  /// proactive §5.2 adaptation — the queued flight adopts the leader's
  /// capsule on completion instead of recomputing cold.
  size_t flights_adapt_followed = 0;
};

class SessionManager {
 public:
  /// `max_idle_engines` bounds the idle pool (leased engines are not
  /// counted); 0 disables pooling entirely. `max_cached_results` bounds the
  /// memoized-outcome cache of completed flights (LRU; 0 disables
  /// memoization).
  explicit SessionManager(size_t max_idle_engines,
                          size_t max_cached_results = 32)
      : max_idle_engines_(max_idle_engines),
        max_cached_results_(max_cached_results) {}

  /// Leases an engine for `config`: a pooled idle engine with the same key
  /// (restarted via DiscEngine::NewSession) when available, otherwise a
  /// freshly built one. Fails with DiscEngine::Create's error.
  Result<EngineLease> Acquire(const EngineConfig& config);

  /// Warm-up: builds one engine per config *concurrently* (a temporary
  /// util/parallel.h pool of min(`threads`, configs) workers; 0 means one
  /// per hardware thread) and parks them in the idle pool, so the first
  /// OPEN of a hot dataset leases a warm engine instead of paying dataset
  /// load + index build — and a list of hot datasets warms in the time of
  /// the slowest build rather than the sum. Unpoolable configs (empty
  /// EnginePoolKey) are skipped. Returns the first build error (engines
  /// that did build are kept either way); idle-pool eviction applies as
  /// usual, so warming more configs than `max_idle_engines` keeps only the
  /// most recently finished.
  Status Prewarm(const std::vector<EngineConfig>& configs, size_t threads);

  /// Single-flight table (the coalescing seam): registers interest in the
  /// computation identified by `key` (an opaque string covering pool key,
  /// command, canonical parameters, and — for ZOOM — the session
  /// fingerprint; equal keys MUST imply byte-identical responses).
  /// Returns kLeader when the caller should run the computation, kFollower
  /// when `waiter` was attached to an in-progress flight, or kCached when a
  /// memoized outcome was copied into `*cached` (waiter dropped).
  ///
  /// A caller that becomes leader of a DIVERSIFY whose outcome could seed
  /// §5.2 radius adaptation passes the plan's `adapt_family` and radius:
  /// the in-progress flight is then *advertised* to JoinAdaptFollower, so a
  /// compatible request at another radius can ride this computation instead
  /// of starting its own. Followers' family arguments are ignored (the
  /// leader already advertised).
  FlightJoin JoinFlight(const std::string& key, FlightWaiter waiter,
                        FlightOutcome* cached,
                        const std::string& adapt_family = "",
                        double radius = 0.0);

  /// Completes the flight `key`: removes the flight and (when `memoize`)
  /// inserts the outcome into the LRU memo under one lock, then invokes
  /// every registered waiter outside it. Leaders must call this exactly
  /// once, on success or failure.
  void FinishFlight(const std::string& key, FlightOutcome outcome,
                    bool memoize);

  /// Radius-aware memo lookup (the §5.2 widening of coalescing beyond
  /// byte-identical keys): finds the memoized outcome in `family` whose
  /// radius is closest to `radius` — but never equal; equal-radius reuse is
  /// the exact single-flight/memo path — preferring the most recently
  /// finished on ties. On a hit, copies the outcome into `*seed`, reports
  /// its radius in `*seed_radius`, touches the LRU entry, and counts
  /// `flights_adapted`. The caller adopts the seed's capsule and runs the
  /// engine's zoom adaptation toward its own radius (DiscEngine::AdaptFrom).
  bool FindAdaptableSeed(const std::string& family, double radius,
                         FlightOutcome* seed, double* seed_radius);

  /// Proactive §5.2 adaptation across requests: when a flight advertising
  /// `family` (see JoinFlight) is in progress at a radius other than
  /// `radius`, attaches `waiter` to it and returns true — the caller then
  /// does NOT run its own computation; on the leader's completion the
  /// waiter receives the leader's outcome and (when it is a seedable cold
  /// solve: non-empty outcome.adapt_family, non-null capsule) adapts its
  /// capsule to the caller's radius via DiscEngine::AdaptFrom, falling back
  /// to a cold computation otherwise. Among several in-flight candidates
  /// the closest radius wins, most recently led on ties — mirroring
  /// FindAdaptableSeed over the memo. Counts flights_adapt_followed.
  /// Returns false (waiter dropped) when no compatible flight is in
  /// progress.
  bool JoinAdaptFollower(const std::string& family, double radius,
                         FlightWaiter waiter);

  /// Withdraws the flight `key` from JoinAdaptFollower matching. A leader
  /// calls this the moment it decides its outcome will NOT be a seedable
  /// cold solve — it found a seed itself (memo or in-flight) and will
  /// produce an *adapted* outcome — so a would-be adapt-follower prefers a
  /// genuinely cold flight (or the memo) over chaining onto an adapted one
  /// and falling back cold. No-op when the flight already finished.
  void RetractAdaptFlight(const std::string& key);

  SessionManagerStats stats() const;

 private:
  friend class EngineLease;

  struct IdleEngine {
    std::string key;
    std::unique_ptr<DiscEngine> engine;
  };

  /// Called by EngineLease: counts the release and returns the engine to
  /// the idle pool. Prewarm parks engines via ReturnToPool directly (those
  /// engines were never leased, so parking them is not a release).
  void ReleaseLease(std::string key, std::unique_ptr<DiscEngine> engine);

  /// Returns the engine to the idle pool, evicting the least-recently-
  /// released engine beyond the cap.
  void ReturnToPool(std::string key, std::unique_ptr<DiscEngine> engine);

  const size_t max_idle_engines_;
  const size_t max_cached_results_;

  struct Flight {
    std::vector<FlightWaiter> waiters;
    /// Advertised by the leader (JoinFlight's trailing arguments): the
    /// radius-compatibility family and radius of a DIVERSIFY whose outcome
    /// may seed adaptation, so JoinAdaptFollower can find this flight while
    /// it is still in the air. Empty family = not adaptable-from.
    std::string adapt_family;
    double radius = 0.0;
    /// Monotonic lead order; breaks JoinAdaptFollower distance ties toward
    /// the most recently led flight (mirroring the memo's LRU tie-break).
    uint64_t seq = 0;
  };
  struct CachedResult {
    std::string key;
    FlightOutcome outcome;
  };

  mutable std::mutex mutex_;
  /// Most recently released at the front; evict from the back.
  std::list<IdleEngine> idle_;
  /// In-progress computations keyed by flight key.
  std::unordered_map<std::string, Flight> flights_;
  uint64_t next_flight_seq_ = 0;
  /// Completed-flight outcomes, most recently finished at the front.
  std::list<CachedResult> results_;
  SessionManagerStats stats_;
};

}  // namespace disc

#endif  // DISC_SERVER_SESSION_MANAGER_H_
