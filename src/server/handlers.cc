#include "server/handlers.h"

#include <string>
#include <utility>

#include "core/disc_algorithms.h"

namespace disc {

namespace {

/// The coalescing key for a DIVERSIFY. Greedy-C / Fast-C ignore the pruned
/// flag, so it is normalized out (mirroring the engine's cache key) — the
/// same request text must never lead two flights.
std::string DiversifyFlightKey(const std::string& pool_key,
                               const DiversifyRequest& request, bool adapt) {
  if (pool_key.empty()) return "";
  const bool covering = request.algorithm == Algorithm::kGreedyC ||
                        request.algorithm == Algorithm::kFastC;
  const bool pruned = covering ? false : request.pruned;
  std::string key = pool_key;
  key += "|D|";
  key += AlgorithmToString(request.algorithm);
  key += "|";
  key += FormatJsonDouble(request.radius);
  key += pruned ? "|p1" : "|p0";
  key += request.compute_quality ? "|q1" : "|q0";
  // Adapt-eligible requests may be answered with an adapted line
  // ("adapted":true, different stats); plain requests never may. The two
  // populations coalesce among themselves but must not share a flight.
  if (adapt) key += "|a1";
  return key;
}

/// The radius-compatibility family for a DIVERSIFY (ComputePlan's
/// adapt_family): the flight key minus radius, quality, and the adapt
/// marker. Empty for covering-only algorithms — their solutions are not
/// zoomable, so they can neither seed nor receive adaptation.
std::string AdaptFamilyKey(const std::string& pool_key,
                           const DiversifyRequest& request) {
  if (pool_key.empty() || !IsDiscFamily(request.algorithm)) return "";
  std::string key = pool_key;
  key += "|DF|";
  key += AlgorithmToString(request.algorithm);
  key += request.pruned ? "|p1" : "|p0";
  return key;
}

/// The coalescing key for a ZOOM: everything the zoom result depends on —
/// the session state (fingerprint) plus every request knob. `fingerprint`
/// must be non-empty (the caller checks).
std::string ZoomFlightKey(const std::string& pool_key,
                          const std::string& fingerprint,
                          const ZoomRequest& request) {
  if (pool_key.empty()) return "";
  std::string key = pool_key;
  key += "|Z|";
  key += fingerprint;
  key += "|";
  key += FormatJsonDouble(request.radius);
  key += request.greedy ? "|g1" : "|g0";
  key += "|v" + std::to_string(static_cast<int>(request.zoom_out_variant));
  if (request.center.has_value()) {
    key += "|c" + std::to_string(*request.center);
  }
  key += request.distances == DistancePolicy::kRequireExact ? "|de" : "|da";
  key += request.compute_quality ? "|q1" : "|q0";
  return key;
}

}  // namespace

std::string ExecuteOpen(const CommandContext& ctx, const Request& request,
                        EngineLease* lease) {
  const char* cmd = VerbToString(Verb::kOpen);
  Result<OpenParams> params = DecodeOpen(request);
  if (!params.ok()) return SerializeError(cmd, params.status());
  params->config.threads = ctx.engine_threads;
  if (!params->backend_specified) {
    params->config.neighbor.kind = ctx.default_backend;
  }
  params->config.neighbor.max_exact_points = ctx.max_exact_points;
  Result<EngineLease> acquired = ctx.manager->Acquire(params->config);
  if (!acquired.ok()) return SerializeError(cmd, acquired.status());
  *lease = std::move(acquired).value();
  return SerializeOpen(lease->engine().Snapshot(), params->dataset_text,
                       lease->reused());
}

Result<ComputePlan> PlanCompute(const Request& request, EngineLease& lease) {
  ComputePlan plan;
  plan.verb = request.verb;
  if (request.verb == Verb::kDiversify) {
    DISC_ASSIGN_OR_RETURN(plan.diversify, DecodeDiversify(request));
    DISC_ASSIGN_OR_RETURN(plan.adapt, DecodeDiversifyAdapt(request));
    // An engine that can answer from its own solution cache serves the
    // request locally (zero index work, honest from_cache): replaying a
    // coalesced from_cache=false line would misreport the work done — and
    // a cache hit beats adaptation, so adapt is moot there too.
    if (!lease.engine().HasCachedDiversify(plan.diversify)) {
      plan.adapt_family = AdaptFamilyKey(lease.key(), plan.diversify);
      // Graph-mode engines (any non-exact backend) hold no tree color
      // state, so their outcomes can neither seed nor receive §5.2 radius
      // adaptation; they still coalesce by exact flight key.
      if (lease.engine().Snapshot().backend != NeighborBackendKind::kExact) {
        plan.adapt_family.clear();
      }
      if (plan.adapt_family.empty()) plan.adapt = false;
      plan.flight_key =
          DiversifyFlightKey(lease.key(), plan.diversify, plan.adapt);
    } else {
      plan.adapt = false;
    }
    return plan;
  }
  DISC_ASSIGN_OR_RETURN(plan.zoom, DecodeZoom(request));
  const std::string fingerprint = lease.engine().SessionFingerprint();
  if (!fingerprint.empty()) {
    plan.flight_key = ZoomFlightKey(lease.key(), fingerprint, plan.zoom);
  }
  return plan;
}

ComputeResult RunCompute(const ComputePlan& plan, DiscEngine& engine) {
  ComputeResult result;
  if (plan.verb == Verb::kDiversify && plan.seed != nullptr) {
    // §5.2 radius adaptation: adopt the seed capsule and zoom to the
    // requested radius with the canonical deterministic knobs (greedy,
    // greedy-a, distances=auto — DecodeZoom's defaults), re-applying this
    // request's own quality flag. Byte-identical to running the same chain
    // cold — the engine contract AdaptFrom documents.
    ZoomRequest zoom;
    zoom.radius = plan.diversify.radius;
    zoom.compute_quality = plan.diversify.compute_quality;
    Result<DiversifyResponse> adapted = engine.AdaptFrom(*plan.seed, zoom);
    if (adapted.ok()) {
      result.response = SerializeAdaptedResponse(*adapted, plan.seed_radius);
      result.ok = true;
      return result;
    }
    // Seed unusable (e.g. it cannot zoom to this radius): fall through to
    // an honest cold computation — Diversify resets the session state the
    // failed adoption left behind.
  }
  Result<DiversifyResponse> response =
      plan.verb == Verb::kDiversify ? engine.Diversify(plan.diversify)
                                    : engine.Zoom(plan.zoom);
  if (!response.ok()) {
    result.response =
        SerializeError(VerbToString(plan.verb), response.status());
    return result;
  }
  result.response = SerializeDiversifyResponse(plan.verb, *response);
  result.ok = true;
  result.seedable =
      plan.verb == Verb::kDiversify && !plan.adapt_family.empty();
  return result;
}

bool DispatchFastPath(const CommandContext& ctx, const Request& request,
                      EngineLease* lease, std::string* response) {
  (void)ctx;
  const char* cmd = VerbToString(request.verb);
  switch (request.verb) {
    case Verb::kOpen: {
      if (lease->valid()) {
        *response = SerializeError(
            cmd, Status::FailedPrecondition(
                     "a session is already open on this connection; CLOSE "
                     "it first"));
        return true;
      }
      return false;
    }
    case Verb::kDiversify:
    case Verb::kZoom: {
      if (!lease->valid()) {
        *response = SerializeError(
            cmd, Status::FailedPrecondition("no session open; OPEN first"));
        return true;
      }
      return false;
    }
    case Verb::kStats: {
      if (!lease->valid()) {
        *response = SerializeError(
            cmd, Status::FailedPrecondition("no session open; OPEN first"));
        return true;
      }
      *response = SerializeSnapshot(lease->engine().Snapshot());
      return true;
    }
    case Verb::kClose: {
      if (!lease->valid()) {
        *response =
            SerializeError(cmd, Status::FailedPrecondition("no session open"));
        return true;
      }
      lease->Release();
      *response = SerializeClose();
      return true;
    }
    case Verb::kBatch: {
      // The transports intercept BATCH at framing time; one reaching
      // per-command dispatch is a batch inside a batch (or a caller
      // bypassing framing).
      *response = SerializeError(
          cmd, Status::InvalidArgument(
                   "BATCH is a framing envelope and cannot be nested"));
      return true;
    }
  }
  *response = SerializeError(cmd, Status::InvalidArgument("unhandled verb"));
  return true;
}

std::string DispatchCommand(const CommandContext& ctx, const Request& request,
                            EngineLease* lease) {
  std::string response;
  if (DispatchFastPath(ctx, request, lease, &response)) return response;
  if (request.verb == Verb::kOpen) return ExecuteOpen(ctx, request, lease);
  Result<ComputePlan> plan = PlanCompute(request, *lease);
  if (!plan.ok()) {
    return SerializeError(VerbToString(request.verb), plan.status());
  }
  return RunCompute(*plan, lease->engine()).response;
}

std::string ExecuteLine(const CommandContext& ctx, const std::string& line,
                        EngineLease* lease) {
  Result<Request> request = ParseRequest(line);
  if (!request.ok()) return SerializeError("?", request.status());
  return DispatchCommand(ctx, *request, lease);
}

}  // namespace disc
