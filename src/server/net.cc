#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

namespace disc {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddress(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Result<int> ListenTcp(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  DISC_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ListenPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& host, int port) {
  DISC_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  return fd;
}

void CloseSocket(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Result<std::string> LineChannel::ReadLine() {
  // Protocol lines are tiny; a peer streaming data with no newline must
  // not grow the buffer without bound (it would be a trivial memory DoS
  // against the daemon).
  constexpr size_t kMaxLineBytes = 1 << 20;
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > kMaxLineBytes) {
      return Status::IOError("line exceeds " +
                             std::to_string(kMaxLineBytes) +
                             " bytes without a newline");
    }
    char chunk[4096];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) {
      return Status::NotFound("connection closed by peer");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
}

Status LineChannel::WriteLine(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t wrote = ::send(fd_, framed.data() + sent, framed.size() - sent,
                           MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

Result<LineClient> LineClient::Connect(const std::string& host, int port) {
  DISC_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  return LineClient(fd);
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    CloseSocket(&fd_);
    fd_ = other.fd_;
    channel_ = std::move(other.channel_);
    other.fd_ = -1;
  }
  return *this;
}

Result<std::string> LineClient::Roundtrip(const std::string& line) {
  DISC_RETURN_NOT_OK(SendLine(line));
  return RecvLine();
}

Result<HttpClient> HttpClient::Connect(const std::string& host, int port) {
  DISC_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  return HttpClient(fd);
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    CloseSocket(&fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<HttpResponse> HttpClient::Post(const std::string& path,
                                      const std::string& body,
                                      const std::string& extra_headers) {
  std::string request = "POST " + path +
                        " HTTP/1.1\r\nHost: disc\r\nContent-Type: "
                        "text/plain\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n" + extra_headers +
                        "\r\n" + body;
  return Roundtrip(request);
}

Result<HttpResponse> HttpClient::Get(const std::string& path) {
  return Roundtrip("GET " + path + " HTTP/1.1\r\nHost: disc\r\n\r\n");
}

Result<HttpResponse> HttpClient::Roundtrip(const std::string& request_text) {
  size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t wrote = ::send(fd_, request_text.data() + sent,
                                 request_text.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(wrote);
  }

  constexpr size_t kMaxResponseBytes = 8 << 20;
  HttpResponse response;
  // Head: everything through the blank line.
  size_t head_end = std::string::npos;
  size_t term_len = 0;
  while (true) {
    head_end = buffer_.find("\r\n\r\n");
    term_len = 4;
    if (head_end == std::string::npos) {
      head_end = buffer_.find("\n\n");
      term_len = 2;
    }
    if (head_end != std::string::npos) break;
    if (buffer_.size() > kMaxResponseBytes) {
      return Status::IOError("HTTP response head exceeds limit");
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) return Status::NotFound("connection closed by peer");
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
  response.head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + term_len);

  // Status line: "HTTP/1.1 200 OK".
  const size_t sp = response.head.find(' ');
  if (sp == std::string::npos ||
      response.head.rfind("HTTP/1.", 0) != 0) {
    return Status::IOError("malformed HTTP status line");
  }
  response.status = std::atoi(response.head.c_str() + sp + 1);

  // Content-Length (the daemon always sends one; 100 Continue interims —
  // which have no body — are skipped).
  if (response.status == 100) return Roundtrip("");
  size_t content_length = 0;
  bool have_length = false;
  size_t pos = response.head.find('\n');
  while (pos != std::string::npos && pos + 1 < response.head.size()) {
    size_t eol = response.head.find('\n', pos + 1);
    std::string line = response.head.substr(
        pos + 1,
        (eol == std::string::npos ? response.head.size() : eol) - pos - 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      }
      if (name == "content-length") {
        content_length =
            static_cast<size_t>(std::atoll(line.c_str() + colon + 1));
        have_length = true;
      }
    }
    pos = eol;
  }
  if (!have_length) {
    return Status::IOError("HTTP response without Content-Length");
  }
  if (content_length > kMaxResponseBytes) {
    return Status::IOError("HTTP response body exceeds limit");
  }

  while (buffer_.size() < content_length) {
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) return Status::NotFound("connection closed mid-body");
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    buffer_.append(chunk, static_cast<size_t>(got));
  }
  response.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  return response;
}

}  // namespace disc
