// The disc_serve wire protocol: newline-delimited commands in, one JSON
// object per line out.
//
// A client session is a sequence of text lines over one TCP connection:
//
//   OPEN dataset=clustered n=1000 dim=2 seed=42 metric=euclidean build=bulk
//   DIVERSIFY r=0.05 algo=greedy
//   ZOOM to=0.025
//   STATS
//   CLOSE
//
// Each command is a verb followed by key=value arguments separated by
// whitespace (so values — including csv:<path> dataset specs — cannot
// contain spaces). Verbs are case-insensitive; keys are not. Unknown verbs
// and unknown keys are rejected, mirroring disc_cli's strict flag handling.
//
// Every command produces exactly one response line: a JSON object with
// "ok" first and "cmd" echoing the verb, then either the result fields or
// an "error"/"code" pair. Solutions serialize as "solution":[id,...] in
// selection order, so two runs of the same deterministic algorithm compare
// byte-identically (the server end-to-end test relies on this).
//
// This header also hosts the server-side decoding of parsed requests into
// the engine's request structs (DecodeOpen/DecodeDiversify/DecodeZoom) and
// the JSON serializers for responses — everything about the wire format in
// one place, so a future transport (HTTP, batching) reuses it unchanged.

#ifndef DISC_SERVER_PROTOCOL_H_
#define DISC_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/config.h"
#include "engine/engine.h"
#include "util/status.h"

namespace disc {

/// The five session commands plus the BATCH framing envelope. kClose both
/// answers and ends the lease; a client dropping the connection is an
/// implicit CLOSE. kBatch is not a session command: it frames the next n
/// command lines as one request unit (the transports intercept it before
/// per-command dispatch; a BATCH line reaching single-command execution —
/// e.g. nested inside another batch — is an error).
enum class Verb {
  kOpen,
  kDiversify,
  kZoom,
  kStats,
  kClose,
  kBatch,
};

/// "OPEN" / "DIVERSIFY" / "ZOOM" / "STATS" / "CLOSE" / "BATCH".
const char* VerbToString(Verb verb);

/// A parsed command line: the verb plus its key=value arguments. Keys are
/// validated against the verb's vocabulary at parse time, values only when
/// decoded into a typed request.
struct Request {
  Verb verb = Verb::kStats;
  std::map<std::string, std::string> args;
};

/// Parses one command line. InvalidArgument on an empty line, an unknown
/// verb, a malformed token (no '='), a duplicate key, an unknown key for
/// the verb, or a missing required key (OPEN dataset=, DIVERSIFY r=,
/// ZOOM to=).
Result<Request> ParseRequest(const std::string& line);

/// A decoded OPEN: the engine configuration plus the canonical dataset text
/// used for pool keying and response echoing.
struct OpenParams {
  EngineConfig config;
  std::string dataset_text;
  /// True when the client sent backend= explicitly. When false the serving
  /// layer applies its operator default (disc_serve --neighbor-backend=)
  /// before acquiring the lease.
  bool backend_specified = false;
};

/// OPEN's default generator knobs, shared by DecodeOpen and by disc_serve's
/// --prewarm parsing — the two must agree or a prewarmed engine's pool key
/// would never match a default-argument OPEN.
inline constexpr uint64_t kDefaultOpenN = 10000;
inline constexpr uint64_t kDefaultOpenDim = 2;
inline constexpr uint64_t kDefaultOpenSeed = 42;

/// OPEN -> EngineConfig. Defaults mirror disc_cli: n=10000 dim=2 seed=42,
/// metric defaults per dataset (DefaultMetricFor), build=insert.
Result<OpenParams> DecodeOpen(const Request& request);

/// DIVERSIFY -> DiversifyRequest. algo defaults to greedy, pruned to true,
/// quality to false.
Result<DiversifyRequest> DecodeDiversify(const Request& request);

/// DIVERSIFY adapt= (default false): whether the serving layer may answer
/// this request by *adapting* a compatible memoized outcome at a different
/// radius (the paper's §5.2 zoom path) instead of computing cold. Not part
/// of DiversifyRequest — the engine never sees it; the serving planner
/// (server/handlers.h) decodes it separately. Purely an allowance: with no
/// compatible outcome available the request computes cold, and the
/// blocking transport always computes cold.
Result<bool> DecodeDiversifyAdapt(const Request& request);

/// ZOOM -> ZoomRequest. greedy defaults to true, variant to greedy-a
/// (kGreedyMostRed), distances to auto; center switches to local zooming.
Result<ZoomRequest> DecodeZoom(const Request& request);

/// Commands one BATCH envelope may frame (DoS bound: a batch consumes one
/// admission slot, so its compute work must stay bounded; larger workloads
/// pipeline multiple batches).
inline constexpr size_t kMaxBatchCommands = 64;

/// BATCH n= -> the framed command count. InvalidArgument when n is 0 or
/// exceeds kMaxBatchCommands.
Result<size_t> DecodeBatchSize(const Request& request);

/// Parses a JSON array of strings — the POST /batch request body, each
/// element one protocol command line. Strict about shape (top-level array,
/// string elements, standard escapes; \uXXXX only for ASCII code points —
/// command lines are ASCII) but tolerant of whitespace. InvalidArgument on
/// anything else.
Result<std::vector<std::string>> ParseJsonStringArray(const std::string& text);

/// Minimal JSON-object builder for one response line. Fields keep insertion
/// order; no nesting beyond the flat object plus integer arrays (all the
/// protocol needs). Doubles serialize shortest-round-trip via
/// std::to_chars, so equal doubles always serialize identically.
class JsonWriter {
 public:
  JsonWriter& Field(const std::string& key, const std::string& value);
  JsonWriter& Field(const std::string& key, const char* value);
  JsonWriter& Field(const std::string& key, bool value);
  JsonWriter& Field(const std::string& key, uint64_t value);
  JsonWriter& Field(const std::string& key, double value);
  /// Appends a preformatted JSON value (array, number) verbatim.
  JsonWriter& RawField(const std::string& key, const std::string& json);

  /// The complete object, e.g. {"ok":true,"cmd":"STATS"}.
  std::string Finish() const;

 private:
  std::string body_;
};

/// Backslash-escapes quotes, backslashes, and control characters.
std::string JsonEscape(const std::string& text);

/// Shortest round-trip decimal form ("0.05", not "0.050000..."); non-finite
/// values serialize as null (JSON has no literal for them).
std::string FormatJsonDouble(double value);

/// "[1,5,9]" in selection order — the byte-comparable core of a response.
std::string SerializeSolution(const std::vector<ObjectId>& solution);

/// The success line for DIVERSIFY / ZOOM. `include_wall_ms` exists so tests
/// can render an expected response without the one machine-dependent field.
std::string SerializeDiversifyResponse(Verb verb,
                                       const DiversifyResponse& response,
                                       bool include_wall_ms = true);

/// The success line for a DIVERSIFY served through §5.2 radius adaptation:
/// identical to SerializeDiversifyResponse(kDiversify, ...) except that
/// "adapted":true and "seed_radius":<r of the memoized seed> follow
/// from_cache, telling the client which cached radius the answer was
/// adapted from. Everything after those two fields — solution, stats —
/// is byte-identical to adopting the seed cold and zooming (the contract
/// tests pin).
std::string SerializeAdaptedResponse(const DiversifyResponse& response,
                                     double seed_radius,
                                     bool include_wall_ms = true);

/// The success line for OPEN: dataset/metric/index echo plus whether the
/// lease reused a pooled engine (warm caches).
std::string SerializeOpen(const EngineSnapshot& snapshot,
                          const std::string& dataset_text, bool reused);

/// The success line for STATS: the full EngineSnapshot.
std::string SerializeSnapshot(const EngineSnapshot& snapshot);

/// The success line for CLOSE.
std::string SerializeClose();

/// An error line: {"ok":false,"cmd":...,"code":...,"error":...}. `cmd` is
/// the verb text when the line parsed, or "?" when it did not.
std::string SerializeError(const std::string& cmd, const Status& status);

}  // namespace disc

#endif  // DISC_SERVER_PROTOCOL_H_
