// The batch planner/executor behind the BATCH envelope and POST /batch.
//
// A batch is an ordered list of protocol command lines executed as one
// request unit on one connection: exactly one response line per command,
// in command order, with per-command error isolation — a malformed or
// failing command yields its error line without aborting its siblings.
// The contract the server tests pin: a batch's response lines are
// byte-identical to issuing the same commands sequentially on the same
// connection of the same transport.
//
// Behind that surface sits a planner (the coalescing variant): DIVERSIFY
// commands are grouped by adapt family (pool key + algorithm + pruning —
// handlers.h's ComputePlan::adapt_family), and each family pays for at
// most ONE cold solve per batch. The family's first adapt-eligible command
// executes cold (its outcome is memoized and retained as the family
// anchor); every later family member at another radius is served through
// DiscEngine::AdaptFrom — adopt the nearest-radius seed, zoom to the
// requested radius — which the engine guarantees byte-identical to running
// that chain cold. Seed selection mirrors the per-command path exactly
// (SessionManager::FindAdaptableSeed: nearest radius, most recent on
// ties), so the same commands produce the same bytes batched or not; the
// retained in-batch anchors additionally guarantee the one-cold-solve
// property even when the manager's memo LRU evicts under pressure.
//
// Cold solves inside a batch still flow through the session manager's
// single-flight table: they memoize, advertise their family, and fan out
// to concurrent same-key requests from other connections. A batch never
// *waits* on another connection's flight, though — parking the worker that
// executes the batch could deadlock a fully loaded pool — it computes on
// its own engine instead (byte-identical by the flight-key contract).

#ifndef DISC_SERVER_BATCH_H_
#define DISC_SERVER_BATCH_H_

#include <string>
#include <vector>

#include "server/handlers.h"

namespace disc {

/// Executes a batch's command lines in order against the connection state
/// `lease` (mutated in place: an OPEN installs into it, a CLOSE releases
/// it) and returns exactly one response line per command. `coalesce`
/// selects the transport semantics: true for the event loop (planner +
/// single-flight table + §5.2 adaptation, matching its per-command path),
/// false for the blocking transport (plain sequential dispatch, always
/// cold, matching ITS per-command path). Never throws: a command whose
/// execution throws is answered with the same internal-error line the
/// transports' per-command exception barriers produce, and its siblings
/// still run.
std::vector<std::string> ExecuteBatch(const CommandContext& ctx,
                                      const std::vector<std::string>& lines,
                                      EngineLease* lease, bool coalesce);

}  // namespace disc

#endif  // DISC_SERVER_BATCH_H_
