// DiscServer: the long-lived disc_serve daemon core.
//
// Two transports share one protocol and one session model:
//
//  * kEventLoop (default): a single epoll-driven loop thread owns every
//    connection (non-blocking sockets, per-connection read/write buffers)
//    and hands engine work — OPEN builds plus DIVERSIFY/ZOOM
//    computations — to a fixed pool of compute workers. Identical
//    concurrent computations are *coalesced* through the session manager's
//    single-flight table: one leader computes, every follower receives the
//    byte-identical response line and adopts the leader's session state.
//    DIVERSIFY adapt=true widens this radius-aware: a memoized compatible
//    outcome at another radius seeds the answer through the engine's §5.2
//    zoom adaptation (docs/PROTOCOL.md). Admission control bounds the work
//    the loop will queue (max_pending / max_inflight); excess requests are
//    answered with a BUSY error line instead of growing an unbounded
//    backlog. The loop also speaks HTTP/1.1 (server/http.h), auto-detected
//    per connection: one POST per command, same JSON per response body,
//    BUSY as 503 + Retry-After.
//
//  * kBlocking: the original accept/worker transport — one worker thread
//    per live connection, blocking reads, no coalescing. Kept as the
//    baseline the throughput bench compares against, and as the simplest
//    possible reference implementation of the protocol.
//
// Concurrency model in one sentence: sessions are sharded across engines,
// an engine is never shared while leased, and all cross-thread state lives
// in the session manager (pool + single-flight table) or the transport's
// own mutex-guarded queues.
//
// The server runs entirely in background threads: Start() returns once the
// socket is listening, and Shutdown() (or destruction) stops accepting,
// drains in-flight work, and joins every thread. Tests run it in-process;
// disc_serve.cc wraps it in a binary.

#ifndef DISC_SERVER_SERVER_H_
#define DISC_SERVER_SERVER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/config.h"

#include "server/session_manager.h"
#include "util/status.h"

namespace disc {

/// Which transport Start() builds.
enum class ServeLoop {
  kEventLoop,
  kBlocking,
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port().
  int port = 0;
  /// kEventLoop: compute worker threads (connection count is unbounded by
  /// threads). kBlocking: worker threads == maximum concurrent client
  /// connections; further connections queue in the accept backlog.
  size_t workers = 4;
  /// Idle engines kept warm by the session manager (LRU beyond this).
  size_t max_idle_engines = 8;
  /// EngineConfig::threads for every engine this server builds (each
  /// leased engine fans its read-only passes out across its own pool).
  /// 0 = one per hardware thread; 1 = serial engines. Results are
  /// byte-identical either way, so this never affects protocol output.
  size_t engine_threads = 0;
  /// Engines to pre-build into the idle pool before Start() returns
  /// (SessionManager::Prewarm): the first OPEN of a hot dataset then
  /// leases a warm engine instead of paying the index build. The builds
  /// run concurrently, so warm-up costs max(build), not sum.
  std::vector<EngineConfig> prewarm;
  /// Which transport to run.
  ServeLoop loop = ServeLoop::kEventLoop;
  /// kEventLoop admission control: compute jobs (OPEN builds and leader
  /// DIVERSIFY/ZOOM computations) the loop will hold beyond the ones
  /// currently executing. A request arriving with max_inflight executing
  /// and max_pending queued is answered with a BUSY error line. Followers
  /// joining an in-flight computation are exempt — they consume no compute
  /// slot.
  size_t max_pending = 64;
  /// kEventLoop: computations allowed to execute concurrently; 0 means
  /// `workers` (one per worker thread).
  size_t max_inflight = 0;
  /// The neighbor backend applied to OPENs that carry no backend= key
  /// (disc_serve --neighbor-backend=). Part of the pool key off the
  /// default: exact and approximate engines never share memoized results.
  NeighborBackendKind default_backend = NeighborBackendKind::kExact;
  /// Guardrail for the exact-family backends (exact, grid without its
  /// accelerator): an OPEN whose dataset exceeds this many points is
  /// refused with InvalidArgument instead of building an index / falling
  /// back to an O(n^2) scan that could take the daemon down. The sharded
  /// and LSH backends are exempt — they are the supported way past the
  /// cap. 0 = unlimited (disc_serve --max-exact-points=).
  size_t max_exact_points = 262144;
};

/// Transport-level counters (the session manager has its own stats).
struct ServerStats {
  size_t connections_accepted = 0;
  /// Requests refused by admission control with a BUSY error line.
  size_t busy_rejections = 0;
  /// Responses fanned out from another connection's computation (flight
  /// followers plus memoized-outcome hits).
  size_t coalesced_responses = 0;
  size_t active_connections = 0;
  /// Requests framed over the HTTP transport (event loop only; the
  /// blocking transport is line-protocol only).
  size_t http_requests = 0;
};

class DiscServer {
 public:
  /// Binds, listens, prewarms, and spawns the transport chosen by
  /// `options.loop`. Fails with the socket error (e.g. a taken port).
  static Result<std::unique_ptr<DiscServer>> Start(ServerOptions options);

  DiscServer(const DiscServer&) = delete;
  DiscServer& operator=(const DiscServer&) = delete;

  virtual ~DiscServer() = default;

  /// The bound port (resolves port 0).
  int port() const { return port_; }

  /// Stops accepting, drains or disconnects in-flight clients, joins all
  /// threads. Idempotent.
  virtual void Shutdown() = 0;

  /// Pool observability (used by tests and the daemon's exit log).
  SessionManagerStats manager_stats() const { return manager_.stats(); }

  /// Transport observability.
  virtual ServerStats server_stats() const = 0;

 protected:
  explicit DiscServer(ServerOptions options)
      : options_(std::move(options)),
        manager_(options_.max_idle_engines) {}

  /// Binds + listens and runs the configured prewarm; shared by both
  /// transports' Start paths.
  Status Listen();

  ServerOptions options_;
  SessionManager manager_;

  int listen_fd_ = -1;
  int port_ = 0;
};

namespace internal {
/// Per-transport factories behind DiscServer::Start; exposed so the bench
/// can force a transport regardless of option defaults.
Result<std::unique_ptr<DiscServer>> StartBlockingServer(ServerOptions options);
Result<std::unique_ptr<DiscServer>> StartEventLoopServer(
    ServerOptions options);
}  // namespace internal

}  // namespace disc

#endif  // DISC_SERVER_SERVER_H_
