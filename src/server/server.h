// DiscServer: the long-lived disc_serve daemon core.
//
// A blocking accept loop feeds accepted connections to a fixed pool of
// worker threads; each worker speaks the line protocol (server/protocol.h)
// with one client at a time and holds at most one exclusive EngineLease
// (server/session_manager.h) for it. Concurrency model in one sentence:
// sessions are sharded across engines, an engine is never shared while
// leased, and the only cross-thread state is the session manager's pool
// and the accept queue, both mutex-guarded.
//
// The server runs entirely in background threads: Start() returns once the
// socket is listening, and Shutdown() (or destruction) stops accepting,
// unblocks in-flight reads, and joins every thread. Tests run it
// in-process; disc_serve.cc wraps it in a binary.

#ifndef DISC_SERVER_SERVER_H_
#define DISC_SERVER_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "engine/config.h"

#include "server/session_manager.h"
#include "util/status.h"

namespace disc {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port().
  int port = 0;
  /// Worker threads == maximum concurrent client connections; further
  /// connections queue in the accept backlog until a worker frees up.
  size_t workers = 4;
  /// Idle engines kept warm by the session manager (LRU beyond this).
  size_t max_idle_engines = 8;
  /// EngineConfig::threads for every engine this server builds (each
  /// leased engine fans its read-only passes out across its own pool).
  /// 0 = one per hardware thread; 1 = serial engines. Results are
  /// byte-identical either way, so this never affects protocol output.
  size_t engine_threads = 0;
  /// Engines to pre-build into the idle pool before Start() returns
  /// (SessionManager::Prewarm): the first OPEN of a hot dataset then
  /// leases a warm engine instead of paying the index build. The builds
  /// run concurrently, so warm-up costs max(build), not sum.
  std::vector<EngineConfig> prewarm;
};

class DiscServer {
 public:
  /// Binds, listens, and spawns the accept loop plus the worker pool.
  /// Fails with the socket error (e.g. a taken port).
  static Result<std::unique_ptr<DiscServer>> Start(ServerOptions options);

  DiscServer(const DiscServer&) = delete;
  DiscServer& operator=(const DiscServer&) = delete;

  ~DiscServer() { Shutdown(); }

  /// The bound port (resolves port 0).
  int port() const { return port_; }

  /// Stops accepting, disconnects in-flight clients, joins all threads.
  /// Idempotent.
  void Shutdown();

  /// Pool observability (used by tests and the daemon's exit log).
  SessionManagerStats manager_stats() const { return manager_.stats(); }

 private:
  explicit DiscServer(ServerOptions options)
      : options_(std::move(options)),
        manager_(options_.max_idle_engines) {}

  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  /// Processes one command line; returns the response line. May acquire or
  /// release `*lease` (OPEN / CLOSE).
  std::string HandleLine(const std::string& line, EngineLease* lease);

  ServerOptions options_;
  SessionManager manager_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
  std::unordered_set<int> active_;  // fds currently inside a worker
  bool stopping_ = false;
};

}  // namespace disc

#endif  // DISC_SERVER_SERVER_H_
