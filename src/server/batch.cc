#include "server/batch.h"

#include <cmath>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace disc {

namespace {

/// A cold DisC-family DIVERSIFY solve retained for the rest of the batch:
/// the family anchor(s) later family members adapt from when the manager's
/// memo cannot seed them (e.g. LRU eviction mid-batch).
struct BatchSeed {
  std::shared_ptr<DiscEngine::SessionCapsule> capsule;
  double radius = 0.0;
};

/// Nearest-radius seed among the batch's retained cold solves for
/// `family`, never at an equal radius; later entries win ties (most
/// recently solved) — the same selection rule FindAdaptableSeed applies to
/// the memo, so the two sources can substitute for each other byte-for-
/// byte.
const BatchSeed* NearestBatchSeed(
    const std::map<std::string, std::vector<BatchSeed>>& seeds,
    const std::string& family, double radius) {
  auto it = seeds.find(family);
  if (it == seeds.end()) return nullptr;
  const BatchSeed* best = nullptr;
  for (const BatchSeed& seed : it->second) {
    if (seed.radius == radius) continue;
    if (best == nullptr || std::abs(seed.radius - radius) <=
                               std::abs(best->radius - radius)) {
      best = &seed;
    }
  }
  return best;
}

/// The planner's seed selection for an adapt-eligible DIVERSIFY about to
/// compute, memo first: in sequential execution every earlier cold solve
/// of this family was memoized before this command ran, so consulting the
/// memo here reproduces the per-command bytes AND the per-command
/// flights_adapted accounting. The retained in-batch anchors only catch
/// what the LRU already evicted.
void SelectSeed(const CommandContext& ctx, ComputePlan* plan,
                const std::map<std::string, std::vector<BatchSeed>>&
                    batch_seeds) {
  if (!plan->adapt || plan->seed != nullptr) return;
  FlightOutcome seed;
  double seed_radius = 0.0;
  if (ctx.manager->FindAdaptableSeed(plan->adapt_family,
                                     plan->diversify.radius, &seed,
                                     &seed_radius)) {
    plan->seed = std::move(seed.capsule);
    plan->seed_radius = seed_radius;
    return;
  }
  if (const BatchSeed* anchor = NearestBatchSeed(
          batch_seeds, plan->adapt_family, plan->diversify.radius)) {
    plan->seed = anchor->capsule;
    plan->seed_radius = anchor->radius;
  }
}

/// One coalescing-path compute (DIVERSIFY/ZOOM with preconditions already
/// checked): the planner's seed selection plus the single-flight dance a
/// per-command leader performs, minus the waiting — see the header on why
/// a batch never parks behind another connection's flight.
std::string ExecutePlannedCompute(
    const CommandContext& ctx, ComputePlan plan, DiscEngine& engine,
    std::map<std::string, std::vector<BatchSeed>>* batch_seeds) {
  if (plan.flight_key.empty()) {
    // Not coalescable (own-cache hit or unpoolable engine; such plans are
    // never adapt-eligible): same direct path as a per-command request.
    return RunCompute(plan, engine).response;
  }
  FlightOutcome cached;
  // The family advertisement is optimistic — the leader may yet find a
  // seed and produce a (non-seedable) adapted outcome, in which case any
  // adapt-follower that joined meanwhile falls back to a cold compute.
  const FlightJoin join = ctx.manager->JoinFlight(
      plan.flight_key, [](const FlightOutcome&) {}, &cached,
      plan.adapt_family, plan.diversify.radius);
  switch (join) {
    case FlightJoin::kCached: {
      if (cached.capsule != nullptr) {
        const Status adopted = engine.AdoptSession(*cached.capsule);
        if (!adopted.ok()) {
          return SerializeError(VerbToString(plan.verb), adopted);
        }
      }
      return cached.response;
    }
    case FlightJoin::kFollower: {
      // Another connection is computing this key right now. Waiting would
      // park this worker (deadlock with a saturated pool), so compute on
      // our own engine — equal flight keys guarantee identical bytes. The
      // no-op waiter registered above fires later and touches nothing.
      SelectSeed(ctx, &plan, *batch_seeds);
      return RunCompute(plan, engine).response;
    }
    case FlightJoin::kLeader: {
      SelectSeed(ctx, &plan, *batch_seeds);
      if (plan.seed != nullptr) {
        // The outcome will be adapted, hence non-seedable: withdraw the
        // optimistic advertisement so no adapt-follower chains onto it.
        ctx.manager->RetractAdaptFlight(plan.flight_key);
      }
      ComputeResult result;
      FlightOutcome outcome;
      try {
        result = RunCompute(plan, engine);
        outcome.response = result.response;
        if (result.ok) {
          outcome.capsule = std::make_shared<DiscEngine::SessionCapsule>(
              engine.ExportSession());
          if (result.seedable) {
            outcome.adapt_family = plan.adapt_family;
            outcome.radius = plan.diversify.radius;
          }
        }
      } catch (...) {
        // Keep the flight honest: followers get released with the same
        // error line the per-command barrier would produce; the rethrow is
        // caught by ExecuteBatch's per-command isolation.
        outcome = FlightOutcome{};
        outcome.response = SerializeError(
            VerbToString(plan.verb),
            Status::IOError("internal error during batch compute"));
        ctx.manager->FinishFlight(plan.flight_key, std::move(outcome),
                                  /*memoize=*/false);
        throw;
      }
      ctx.manager->FinishFlight(plan.flight_key, outcome,
                                /*memoize=*/result.ok);
      if (result.seedable) {
        (*batch_seeds)[plan.adapt_family].push_back(
            BatchSeed{outcome.capsule, plan.diversify.radius});
      }
      return result.response;
    }
  }
  return SerializeError(VerbToString(plan.verb),
                        Status::InvalidArgument("unhandled flight join"));
}

}  // namespace

std::vector<std::string> ExecuteBatch(const CommandContext& ctx,
                                      const std::vector<std::string>& lines,
                                      EngineLease* lease, bool coalesce) {
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  // Cold DisC-family solves this batch produced, by family: the planner's
  // anchors. Retained until the batch ends so every later family member
  // can adapt even if the memo LRU turned over.
  std::map<std::string, std::vector<BatchSeed>> batch_seeds;
  for (const std::string& line : lines) {
    std::string response;
    try {
      Result<Request> request = ParseRequest(line);
      if (!request.ok()) {
        // Includes blank lines: unlike the streaming transports (which
        // skip them without answering), a batch owes one response per
        // slot, so an empty command is answered with its parse error.
        response = SerializeError("?", request.status());
      } else if (!coalesce) {
        response = DispatchCommand(ctx, *request, lease);
      } else if (DispatchFastPath(ctx, *request, lease, &response)) {
        // Precondition failure, STATS, CLOSE, or nested BATCH: answered.
      } else if (request->verb == Verb::kOpen) {
        response = ExecuteOpen(ctx, *request, lease);
      } else {
        Result<ComputePlan> plan = PlanCompute(*request, *lease);
        if (!plan.ok()) {
          response = SerializeError(VerbToString(request->verb),
                                    plan.status());
        } else {
          response = ExecutePlannedCompute(ctx, std::move(*plan),
                                           lease->engine(), &batch_seeds);
        }
      }
    } catch (const std::exception& e) {
      // Per-command isolation: the same barrier line the transports emit,
      // then on to the next command.
      response = SerializeError(
          "?", Status::IOError(std::string("internal error: ") + e.what()));
    }
    responses.push_back(std::move(response));
  }
  return responses;
}

}  // namespace disc
