#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "server/net.h"
#include "server/protocol.h"

namespace disc {

Result<std::unique_ptr<DiscServer>> DiscServer::Start(ServerOptions options) {
  if (options.workers == 0) {
    return Status::InvalidArgument("workers must be positive");
  }
  std::unique_ptr<DiscServer> server(new DiscServer(std::move(options)));
  DISC_ASSIGN_OR_RETURN(server->listen_fd_,
                        ListenTcp(server->options_.host,
                                  server->options_.port));
  DISC_ASSIGN_OR_RETURN(server->port_, ListenPort(server->listen_fd_));
  // Pre-build the configured hot engines into the idle pool before serving;
  // the builds overlap on a temporary pool instead of serializing on each
  // dataset's first OPEN. Build concurrency is deliberately NOT tied to
  // engine_threads (a knob for per-request passes): warm-up is a one-shot
  // startup burst, so it always uses the hardware (threads=0) even when
  // the operator wants serial engines. A prewarm failure is a startup
  // error: the operator asked for those datasets by name.
  if (!server->options_.prewarm.empty()) {
    std::vector<EngineConfig> prewarm = server->options_.prewarm;
    for (EngineConfig& config : prewarm) {
      config.threads = server->options_.engine_threads;
    }
    DISC_RETURN_NOT_OK(server->manager_.Prewarm(prewarm, /*threads=*/0));
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  server->workers_.reserve(server->options_.workers);
  for (size_t i = 0; i < server->options_.workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

void DiscServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Unblock the accept loop and every in-flight recv; the fds are closed
    // by whichever loop owns them once it observes stopping_.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (int fd : active_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  CloseSocket(&listen_fd_);
  for (int fd : pending_) ::close(fd);  // accepted but never served
  pending_.clear();
}

void DiscServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
      if (fd < 0) continue;  // transient accept error
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void DiscServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;
      fd = pending_.front();
      pending_.pop_front();
      active_.insert(fd);
    }
    HandleConnection(fd);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      active_.erase(fd);
    }
    ::close(fd);
  }
}

void DiscServer::HandleConnection(int fd) {
  LineChannel channel(fd);
  EngineLease lease;  // released (engine pooled) when the connection ends
  while (true) {
    Result<std::string> line = channel.ReadLine();
    if (!line.ok()) return;  // EOF or socket error: implicit CLOSE
    // Skip blank lines so `printf '...\n\n'`-style drivers are harmless.
    if (line->find_first_not_of(" \t") == std::string::npos) continue;
    std::string response;
    try {
      response = HandleLine(*line, &lease);
    } catch (const std::exception& e) {
      // The library is Status-based and should never throw; this barrier
      // keeps a stray exception (e.g. bad_alloc under memory pressure)
      // from escaping the worker thread and terminating the daemon.
      response = SerializeError(
          "?", Status::IOError(std::string("internal error: ") + e.what()));
    }
    if (!channel.WriteLine(response).ok()) return;
  }
}

std::string DiscServer::HandleLine(const std::string& line,
                                   EngineLease* lease) {
  Result<Request> request = ParseRequest(line);
  if (!request.ok()) return SerializeError("?", request.status());
  const char* cmd = VerbToString(request->verb);

  switch (request->verb) {
    case Verb::kOpen: {
      if (lease->valid()) {
        return SerializeError(
            cmd, Status::FailedPrecondition(
                     "a session is already open on this connection; CLOSE "
                     "it first"));
      }
      Result<OpenParams> params = DecodeOpen(*request);
      if (!params.ok()) return SerializeError(cmd, params.status());
      // The thread knob is the operator's, not the client's: it changes
      // wall time only (results are byte-identical), so it is applied
      // uniformly and stays out of the wire vocabulary and the pool key.
      params->config.threads = options_.engine_threads;
      Result<EngineLease> acquired = manager_.Acquire(params->config);
      if (!acquired.ok()) return SerializeError(cmd, acquired.status());
      *lease = std::move(acquired).value();
      return SerializeOpen(lease->engine().Snapshot(), params->dataset_text,
                           lease->reused());
    }
    case Verb::kDiversify: {
      if (!lease->valid()) {
        return SerializeError(
            cmd, Status::FailedPrecondition("no session open; OPEN first"));
      }
      Result<DiversifyRequest> decoded = DecodeDiversify(*request);
      if (!decoded.ok()) return SerializeError(cmd, decoded.status());
      Result<DiversifyResponse> response =
          lease->engine().Diversify(*decoded);
      if (!response.ok()) return SerializeError(cmd, response.status());
      return SerializeDiversifyResponse(Verb::kDiversify, *response);
    }
    case Verb::kZoom: {
      if (!lease->valid()) {
        return SerializeError(
            cmd, Status::FailedPrecondition("no session open; OPEN first"));
      }
      Result<ZoomRequest> decoded = DecodeZoom(*request);
      if (!decoded.ok()) return SerializeError(cmd, decoded.status());
      Result<DiversifyResponse> response = lease->engine().Zoom(*decoded);
      if (!response.ok()) return SerializeError(cmd, response.status());
      return SerializeDiversifyResponse(Verb::kZoom, *response);
    }
    case Verb::kStats: {
      if (!lease->valid()) {
        return SerializeError(
            cmd, Status::FailedPrecondition("no session open; OPEN first"));
      }
      return SerializeSnapshot(lease->engine().Snapshot());
    }
    case Verb::kClose: {
      if (!lease->valid()) {
        return SerializeError(
            cmd, Status::FailedPrecondition("no session open"));
      }
      lease->Release();
      return SerializeClose();
    }
  }
  return SerializeError(cmd, Status::InvalidArgument("unhandled verb"));
}

}  // namespace disc
