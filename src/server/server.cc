// DiscServer::Start dispatch, the shared Listen() path, and the blocking
// transport. The event-loop transport lives in event_server.cc.

#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "server/batch.h"
#include "server/handlers.h"
#include "server/net.h"
#include "server/protocol.h"

namespace disc {

Result<std::unique_ptr<DiscServer>> DiscServer::Start(ServerOptions options) {
  if (options.workers == 0) {
    return Status::InvalidArgument("workers must be positive");
  }
  return options.loop == ServeLoop::kBlocking
             ? internal::StartBlockingServer(std::move(options))
             : internal::StartEventLoopServer(std::move(options));
}

Status DiscServer::Listen() {
  DISC_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.host, options_.port));
  DISC_ASSIGN_OR_RETURN(port_, ListenPort(listen_fd_));
  // Pre-build the configured hot engines into the idle pool before serving;
  // the builds overlap on a temporary pool instead of serializing on each
  // dataset's first OPEN. Build concurrency is deliberately NOT tied to
  // engine_threads (a knob for per-request passes): warm-up is a one-shot
  // startup burst, so it always uses the hardware (threads=0) even when
  // the operator wants serial engines. A prewarm failure is a startup
  // error: the operator asked for those datasets by name.
  if (!options_.prewarm.empty()) {
    std::vector<EngineConfig> prewarm = options_.prewarm;
    for (EngineConfig& config : prewarm) {
      config.threads = options_.engine_threads;
      // Same backend defaulting as ExecuteOpen, or the prewarmed pool key
      // would never match a default-argument OPEN.
      if (config.neighbor.kind == NeighborBackendKind::kExact) {
        config.neighbor.kind = options_.default_backend;
      }
      config.neighbor.max_exact_points = options_.max_exact_points;
    }
    DISC_RETURN_NOT_OK(manager_.Prewarm(prewarm, /*threads=*/0));
  }
  return Status::OK();
}

namespace internal {
namespace {

/// True when the line's first token is the BATCH envelope verb.
bool IsBatchEnvelope(const std::string& line) {
  const size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) return false;
  size_t end = line.find_first_of(" \t", begin);
  if (end == std::string::npos) end = line.size();
  return line.compare(begin, end - begin, "BATCH") == 0;
}

/// Blocking-transport BATCH: reads the n framed lines off the channel and
/// executes them as one unit through server/batch.h — with coalesce=false,
/// a plain sequential dispatch, because this transport never coalesces
/// per-command either. A bad envelope answers ONE error line under cmd
/// "BATCH" and skips no input (the frame never started). Returns false
/// when the connection should end (EOF mid-frame or a write error).
bool HandleBatchFrame(LineChannel& channel, const CommandContext& ctx,
                      const std::string& envelope, EngineLease* lease) {
  const Result<Request> request = ParseRequest(envelope);
  const Result<size_t> n = request.ok()
                               ? DecodeBatchSize(*request)
                               : Result<size_t>(request.status());
  if (!n.ok()) {
    return channel.WriteLine(SerializeError("BATCH", n.status())).ok();
  }
  std::vector<std::string> lines;
  lines.reserve(*n);
  for (size_t i = 0; i < *n; ++i) {
    Result<std::string> line = channel.ReadLine();
    if (!line.ok()) return false;  // EOF mid-frame: drop the batch
    lines.push_back(std::move(*line));
  }
  for (const std::string& response :
       ExecuteBatch(ctx, lines, lease, /*coalesce=*/false)) {
    if (!channel.WriteLine(response).ok()) return false;
  }
  return true;
}

/// The original transport: a blocking accept loop feeds accepted
/// connections to a fixed pool of worker threads; each worker speaks the
/// line protocol with one client at a time and holds at most one exclusive
/// EngineLease for it. No coalescing, no admission control — the accept
/// backlog is the only queue. Kept as the throughput-bench baseline and
/// the simplest reference implementation of the protocol.
class BlockingServer final : public DiscServer {
 public:
  explicit BlockingServer(ServerOptions options)
      : DiscServer(std::move(options)) {}

  ~BlockingServer() override { Shutdown(); }

  Status Run() {
    DISC_RETURN_NOT_OK(Listen());
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    workers_.reserve(options_.workers);
    for (size_t i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    return Status::OK();
  }

  void Shutdown() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
      // Unblock the accept loop and every in-flight recv; the fds are
      // closed by whichever loop owns them once it observes stopping_.
      if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
      for (int fd : active_) ::shutdown(fd, SHUT_RDWR);
    }
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    CloseSocket(&listen_fd_);
    for (int fd : pending_) ::close(fd);  // accepted but never served
    pending_.clear();
  }

  ServerStats server_stats() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    ServerStats stats = stats_;
    stats.active_connections = active_.size();
    return stats;
  }

 private:
  void AcceptLoop() {
    while (true) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
          if (fd >= 0) ::close(fd);
          return;
        }
        if (fd < 0) continue;  // transient accept error
        ++stats_.connections_accepted;
        pending_.push_back(fd);
      }
      queue_cv_.notify_one();
    }
  }

  void WorkerLoop() {
    while (true) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_cv_.wait(lock,
                       [this] { return stopping_ || !pending_.empty(); });
        if (stopping_) return;
        fd = pending_.front();
        pending_.pop_front();
        active_.insert(fd);
      }
      HandleConnection(fd);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        active_.erase(fd);
      }
      ::close(fd);
    }
  }

  void HandleConnection(int fd) {
    LineChannel channel(fd);
    const CommandContext ctx{&manager_, options_.engine_threads,
                             options_.default_backend,
                             options_.max_exact_points};
    EngineLease lease;  // released (engine pooled) when the connection ends
    while (true) {
      Result<std::string> line = channel.ReadLine();
      if (!line.ok()) return;  // EOF or socket error: implicit CLOSE
      // Skip blank lines so `printf '...\n\n'`-style drivers are harmless.
      if (line->find_first_not_of(" \t") == std::string::npos) continue;
      if (IsBatchEnvelope(*line)) {
        if (!HandleBatchFrame(channel, ctx, *line, &lease)) return;
        continue;
      }
      std::string response;
      try {
        response = ExecuteLine(ctx, *line, &lease);
      } catch (const std::exception& e) {
        // The library is Status-based and should never throw; this barrier
        // keeps a stray exception (e.g. bad_alloc under memory pressure)
        // from escaping the worker thread and terminating the daemon.
        response = SerializeError(
            "?", Status::IOError(std::string("internal error: ") + e.what()));
      }
      if (!channel.WriteLine(response).ok()) return;
    }
  }

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;         // accepted fds awaiting a worker
  std::unordered_set<int> active_;  // fds currently inside a worker
  ServerStats stats_;
  bool stopping_ = false;
};

}  // namespace

Result<std::unique_ptr<DiscServer>> StartBlockingServer(
    ServerOptions options) {
  auto server = std::make_unique<BlockingServer>(std::move(options));
  DISC_RETURN_NOT_OK(server->Run());
  return std::unique_ptr<DiscServer>(std::move(server));
}

}  // namespace internal

}  // namespace disc
