// disc_serve — the long-lived diversification daemon.
//
// Listens on a TCP port and speaks the newline-delimited protocol of
// server/protocol.h: each connection is one interactive session (OPEN,
// then DIVERSIFY / ZOOM / STATS, then CLOSE), sharded across pooled
// DiscEngine instances by server/session_manager.h. The event-loop
// transport additionally auto-detects HTTP/1.1 per connection — one POST
// per command (POST /diversify with "r=0.1" as the body), the protocol's
// JSON line as the response body — see docs/PROTOCOL.md.
//
// Usage:
//   disc_serve [--host=127.0.0.1] [--port=4817] [--workers=4]
//              [--max-engines=8] [--threads=0] [--prewarm=<ds>[,<ds>...]]
//              [--loop=event|blocking] [--max-pending=64]
//              [--max-inflight=0]
//              [--neighbor-backend=exact|grid|lsh|sharded|lsh-sharded]
//              [--max-exact-points=262144] [--help]
//
// --port=0 picks an ephemeral port. The daemon prints exactly one line
//   disc_serve listening on <host>:<port>
// to stdout once it accepts connections (tests parse it), then runs until
// SIGINT or SIGTERM, exiting gracefully (in-flight requests finish).

#include <signal.h>  // sigset_t, pthread_sigmask, sigwait (POSIX)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "server/protocol.h"  // kDefaultOpenN/Dim/Seed
#include "server/server.h"
#include "util/flags.h"

namespace {

using namespace disc;

constexpr const char* kUsage =
    "usage: disc_serve [--host=<ipv4>] [--port=<port>] [--workers=<count>]\n"
    "                  [--max-engines=<count>] [--threads=<count>]\n"
    "                  [--prewarm=<dataset>[,<dataset>...]]\n"
    "                  [--loop=event|blocking] [--max-pending=<count>]\n"
    "                  [--max-inflight=<count>]\n"
    "                  [--neighbor-backend=exact|grid|lsh|sharded|"
    "lsh-sharded]\n"
    "                  [--max-exact-points=<count>] [--help]\n"
    "\n"
    "--neighbor-backend: default neighbor engine for OPENs that carry no\n"
    "           backend= key. 'exact' (default) is the historical M-tree\n"
    "           session engine; the others run in graph mode (no ZOOM) —\n"
    "           'lsh' / 'lsh-sharded' are approximate and open\n"
    "           million-point workloads.\n"
    "--max-exact-points: refuse exact-family OPENs (exact, grid without\n"
    "           its accelerator) above this many points instead of risking\n"
    "           an O(n^2) scan (0 = unlimited; default 262144). The\n"
    "           sharded/lsh backends are exempt.\n"
    "--threads: engine worker threads for parallel read-only passes\n"
    "           (0 = one per hardware thread, 1 = serial; results are\n"
    "           byte-identical either way).\n"
    "--prewarm: comma-separated dataset names (the OPEN dataset= values,\n"
    "           default n/dim/seed/metric) whose engines are pre-built\n"
    "           concurrently into the idle pool before serving starts.\n"
    "--loop:    transport: 'event' (default) is the epoll event loop with\n"
    "           request coalescing, admission control, and per-connection\n"
    "           HTTP/1.1 auto-detection (POST /open, /diversify, /zoom,\n"
    "           /close; GET or POST /stats; see docs/PROTOCOL.md);\n"
    "           'blocking' is the thread-per-connection baseline\n"
    "           (line protocol only).\n"
    "--max-pending:  event loop only: compute requests queued beyond the\n"
    "           executing ones before new requests get a BUSY error.\n"
    "--max-inflight: event loop only: computations executing concurrently\n"
    "           (0 = one per worker thread).\n"
    "\n"
    "Line protocol (one command per line, one JSON response per line):\n"
    "  OPEN dataset=uniform|clustered|cities|cameras|csv:<path>\n"
    "       [n=<count>] [dim=<dims>] [seed=<seed>]\n"
    "       [metric=euclidean|manhattan|chebyshev|hamming]\n"
    "       [build=insert|bulk]\n"
    "       [backend=exact|grid|lsh|sharded|lsh-sharded]\n"
    "  DIVERSIFY r=<radius> [algo=basic|greedy|greedy-white|lazy-grey|\n"
    "            lazy-white|greedy-c|fast-c] [pruned=<bool>]\n"
    "            [quality=<bool>] [adapt=<bool>]\n"
    "            (adapt: event loop only — allow serving from a memoized\n"
    "            solution at another radius via zoom adaptation)\n"
    "  ZOOM to=<radius> [greedy=<bool>] [variant=arbitrary|greedy-a|\n"
    "       greedy-b|greedy-c] [center=<id>] [distances=auto|exact]\n"
    "       [quality=<bool>]\n"
    "  STATS\n"
    "  CLOSE\n"
    "  BATCH n=<k>   (envelope: the next k lines execute as one unit —\n"
    "       k responses in order, per-command error isolation; the event\n"
    "       loop plans one cold solve per adapt family and adapts the\n"
    "       rest. HTTP: POST /batch with a JSON array of command "
    "strings)\n";

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = ParseFlagArgs(
      argc, argv,
      {"host", "port", "workers", "max-engines", "threads", "prewarm",
       "loop", "max-pending", "max-inflight", "neighbor-backend",
       "max-exact-points", "help"});
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().message().c_str(),
                 kUsage);
    return 2;
  }
  const auto& flags = *flags_or;
  if (flags.count("help")) {
    std::printf("%s", kUsage);
    return 0;
  }

  ServerOptions options;
  auto port = FlagInt(flags, "port", 4817);
  auto workers = FlagUint(flags, "workers", options.workers);
  auto max_engines = FlagUint(flags, "max-engines",
                              options.max_idle_engines);
  auto threads = FlagUint(flags, "threads", options.engine_threads);
  auto max_pending = FlagUint(flags, "max-pending", options.max_pending);
  auto max_inflight = FlagUint(flags, "max-inflight", options.max_inflight);
  auto max_exact = FlagUint(flags, "max-exact-points",
                            options.max_exact_points);
  for (const Status& status :
       {port.status(), workers.status(), max_engines.status(),
        threads.status(), max_pending.status(), max_inflight.status(),
        max_exact.status()}) {
    if (!status.ok()) Fail(status.ToString());
  }
  options.host = FlagOr(flags, "host", options.host);
  options.port = *port;
  options.workers = *workers;
  options.max_idle_engines = *max_engines;
  options.engine_threads = *threads;
  options.max_pending = *max_pending;
  options.max_inflight = *max_inflight;
  options.max_exact_points = *max_exact;
  if (flags.count("neighbor-backend")) {
    auto backend = ParseNeighborBackendKind(flags.at("neighbor-backend"));
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n%s", backend.status().message().c_str(),
                   kUsage);
      return 2;
    }
    options.default_backend = *backend;
  }
  const std::string loop = FlagOr(flags, "loop", "event");
  if (loop == "event") {
    options.loop = ServeLoop::kEventLoop;
  } else if (loop == "blocking") {
    options.loop = ServeLoop::kBlocking;
  } else {
    Fail("--loop must be 'event' or 'blocking', got '" + loop + "'");
  }

  // --prewarm=cities,clustered: each name is an OPEN dataset= value with
  // the protocol's default knobs (n=10000 dim=2 seed=42, default metric).
  std::string prewarm_list = FlagOr(flags, "prewarm", "");
  for (size_t pos = 0; pos < prewarm_list.size();) {
    size_t comma = prewarm_list.find(',', pos);
    if (comma == std::string::npos) comma = prewarm_list.size();
    std::string name = prewarm_list.substr(pos, comma - pos);
    pos = comma + 1;
    if (name.empty()) continue;
    EngineConfig config;
    // Same knob defaults as DecodeOpen, so the prewarmed pool key matches
    // a default-argument OPEN of the same dataset.
    auto spec =
        ParseDatasetSpec(name, kDefaultOpenN, kDefaultOpenDim,
                         kDefaultOpenSeed);
    if (!spec.ok()) Fail("--prewarm: " + spec.status().ToString());
    config.dataset = std::move(spec).value();
    config.metric = DefaultMetricFor(config.dataset.source);
    options.prewarm.push_back(std::move(config));
  }

  // Block the shutdown signals before Start so every server thread
  // inherits the mask and delivery funnels into the sigwait below — no
  // check-then-pause window where a signal could be lost.
  sigset_t stop_signals;
  sigemptyset(&stop_signals);
  sigaddset(&stop_signals, SIGINT);
  sigaddset(&stop_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  const std::string host = options.host;
  auto server_or = DiscServer::Start(std::move(options));
  if (!server_or.ok()) Fail(server_or.status().ToString());
  std::unique_ptr<DiscServer> server = std::move(server_or).value();

  std::printf("disc_serve listening on %s:%d\n", host.c_str(),
              server->port());
  std::fflush(stdout);

  // The server runs in its own threads; park the main thread until
  // SIGINT/SIGTERM arrives (queued signals are consumed atomically).
  int signal_number = 0;
  sigwait(&stop_signals, &signal_number);

  SessionManagerStats stats = server->manager_stats();
  ServerStats transport = server->server_stats();
  server->Shutdown();
  std::fprintf(stderr,
               "disc_serve exiting: %zu leases (%zu pool hits), "
               "%zu engines built, %zu evicted; %zu connections, "
               "%zu coalesced responses, %zu busy rejections\n",
               stats.leases_acquired, stats.pool_hits, stats.engines_created,
               stats.engines_evicted, transport.connections_accepted,
               transport.coalesced_responses, transport.busy_rejections);
  return 0;
}
