#include "server/protocol.h"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "core/disc_algorithms.h"
#include "core/zoom.h"
#include "metric/metric.h"
#include "mtree/mtree.h"

namespace disc {

namespace {

struct VerbInfo {
  Verb verb;
  const char* name;
  /// Keys this verb accepts, nullptr-terminated.
  const char* keys[8];
  /// Key that must be present, or nullptr.
  const char* required;
};

constexpr VerbInfo kVerbs[] = {
    {Verb::kOpen,
     "OPEN",
     {"dataset", "metric", "build", "n", "dim", "seed", "backend", nullptr},
     "dataset"},
    {Verb::kDiversify,
     "DIVERSIFY",
     {"r", "algo", "pruned", "quality", "adapt", nullptr},
     "r"},
    {Verb::kZoom,
     "ZOOM",
     {"to", "greedy", "variant", "center", "distances", "quality", nullptr},
     "to"},
    {Verb::kStats, "STATS", {nullptr}, nullptr},
    {Verb::kClose, "CLOSE", {nullptr}, nullptr},
    {Verb::kBatch, "BATCH", {"n", nullptr}, "n"},
};

const VerbInfo* FindVerb(const std::string& upper) {
  for (const VerbInfo& info : kVerbs) {
    if (upper == info.name) return &info;
  }
  return nullptr;
}

bool VerbAccepts(const VerbInfo& info, const std::string& key) {
  for (const char* const* k = info.keys; *k != nullptr; ++k) {
    if (key == *k) return true;
  }
  return false;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

Result<double> ParseDoubleArg(const std::string& key,
                              const std::string& text) {
  double value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(key + "=" + text + " is not a number");
  }
  return value;
}

Result<uint64_t> ParseUintArg(const std::string& key,
                              const std::string& text) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(key + "=" + text +
                                   " is not a non-negative integer");
  }
  return value;
}

Result<bool> ParseBoolArg(const std::string& key, const std::string& text) {
  if (text == "true" || text == "1") return true;
  if (text == "false" || text == "0") return false;
  return Status::InvalidArgument(key + "=" + text +
                                 " is not a boolean (want true|false|1|0)");
}

const std::string* FindArg(const Request& request, const char* key) {
  auto it = request.args.find(key);
  return it == request.args.end() ? nullptr : &it->second;
}

}  // namespace

const char* VerbToString(Verb verb) {
  for (const VerbInfo& info : kVerbs) {
    if (info.verb == verb) return info.name;
  }
  return "?";
}

Result<Request> ParseRequest(const std::string& line) {
  std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty command line");
  }
  std::string verb_text = tokens[0];
  for (char& c : verb_text) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  const VerbInfo* info = FindVerb(verb_text);
  if (info == nullptr) {
    return Status::InvalidArgument(
        "unknown command '" + tokens[0] +
        "' (want OPEN|DIVERSIFY|ZOOM|STATS|CLOSE|BATCH)");
  }

  Request request;
  request.verb = info->verb;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed argument '" + token +
                                     "' (want key=value)");
    }
    std::string key = token.substr(0, eq);
    if (!VerbAccepts(*info, key)) {
      return Status::InvalidArgument("unknown key '" + key + "' for " +
                                     info->name);
    }
    if (request.args.count(key) != 0) {
      return Status::InvalidArgument("duplicate key '" + key + "'");
    }
    request.args[key] = token.substr(eq + 1);
  }
  if (info->required != nullptr &&
      request.args.count(info->required) == 0) {
    return Status::InvalidArgument(std::string(info->name) + " requires " +
                                   info->required + "=...");
  }
  return request;
}

Result<OpenParams> DecodeOpen(const Request& request) {
  uint64_t n = kDefaultOpenN;
  uint64_t dim = kDefaultOpenDim;
  uint64_t seed = kDefaultOpenSeed;
  if (const std::string* text = FindArg(request, "n")) {
    DISC_ASSIGN_OR_RETURN(n, ParseUintArg("n", *text));
  }
  if (const std::string* text = FindArg(request, "dim")) {
    DISC_ASSIGN_OR_RETURN(dim, ParseUintArg("dim", *text));
  }
  if (const std::string* text = FindArg(request, "seed")) {
    DISC_ASSIGN_OR_RETURN(seed, ParseUintArg("seed", *text));
  }
  if (n == 0 || dim == 0) {
    return Status::InvalidArgument("n and dim must be positive");
  }
  // One OPEN must not be able to take the daemon down: an enormous n*dim
  // would throw bad_alloc inside a worker thread while materializing the
  // dataset. The cap is far above every supported workload (the library
  // targets tens of thousands of points; see ROADMAP.md).
  constexpr uint64_t kMaxCells = uint64_t{1} << 26;  // 64M doubles = 512 MB
  if (n > kMaxCells / dim) {
    return Status::InvalidArgument(
        "n*dim = " + std::to_string(n) + "*" + std::to_string(dim) +
        " exceeds the serving limit of " + std::to_string(kMaxCells) +
        " coordinates");
  }

  OpenParams params;
  params.dataset_text = *FindArg(request, "dataset");
  DISC_ASSIGN_OR_RETURN(
      params.config.dataset,
      ParseDatasetSpec(params.dataset_text, n, dim, seed));

  params.config.metric = DefaultMetricFor(params.config.dataset.source);
  if (const std::string* text = FindArg(request, "metric")) {
    DISC_ASSIGN_OR_RETURN(params.config.metric, ParseMetricKind(*text));
  }

  if (const std::string* text = FindArg(request, "build")) {
    if (*text == "bulk") {
      params.config.tree.build.strategy = BuildStrategy::kBulkLoad;
    } else if (*text != "insert") {
      return Status::InvalidArgument("unknown build strategy '" + *text +
                                     "' (want insert or bulk)");
    }
  }

  if (const std::string* text = FindArg(request, "backend")) {
    DISC_ASSIGN_OR_RETURN(params.config.neighbor.kind,
                          ParseNeighborBackendKind(*text));
    params.backend_specified = true;
  }
  return params;
}

Result<DiversifyRequest> DecodeDiversify(const Request& request) {
  DiversifyRequest decoded;
  DISC_ASSIGN_OR_RETURN(decoded.radius,
                        ParseDoubleArg("r", *FindArg(request, "r")));
  if (const std::string* text = FindArg(request, "algo")) {
    DISC_ASSIGN_OR_RETURN(decoded.algorithm, ParseAlgorithm(*text));
  }
  if (const std::string* text = FindArg(request, "pruned")) {
    DISC_ASSIGN_OR_RETURN(decoded.pruned, ParseBoolArg("pruned", *text));
  }
  if (const std::string* text = FindArg(request, "quality")) {
    DISC_ASSIGN_OR_RETURN(decoded.compute_quality,
                          ParseBoolArg("quality", *text));
  }
  return decoded;
}

Result<bool> DecodeDiversifyAdapt(const Request& request) {
  if (const std::string* text = FindArg(request, "adapt")) {
    return ParseBoolArg("adapt", *text);
  }
  return false;
}

Result<ZoomRequest> DecodeZoom(const Request& request) {
  ZoomRequest decoded;
  DISC_ASSIGN_OR_RETURN(decoded.radius,
                        ParseDoubleArg("to", *FindArg(request, "to")));
  if (const std::string* text = FindArg(request, "greedy")) {
    DISC_ASSIGN_OR_RETURN(decoded.greedy, ParseBoolArg("greedy", *text));
  }
  if (const std::string* text = FindArg(request, "variant")) {
    // The names ZoomOutVariantToString produces (core/zoom.h).
    if (*text == "arbitrary") {
      decoded.zoom_out_variant = ZoomOutVariant::kArbitrary;
    } else if (*text == "greedy-a") {
      decoded.zoom_out_variant = ZoomOutVariant::kGreedyMostRed;
    } else if (*text == "greedy-b") {
      decoded.zoom_out_variant = ZoomOutVariant::kGreedyFewestRed;
    } else if (*text == "greedy-c") {
      decoded.zoom_out_variant = ZoomOutVariant::kGreedyMostWhite;
    } else {
      return Status::InvalidArgument(
          "unknown zoom-out variant '" + *text +
          "' (want arbitrary|greedy-a|greedy-b|greedy-c)");
    }
  }
  if (const std::string* text = FindArg(request, "center")) {
    DISC_ASSIGN_OR_RETURN(uint64_t center, ParseUintArg("center", *text));
    if (center > UINT32_MAX) {
      return Status::InvalidArgument("center=" + *text + " is out of range");
    }
    decoded.center = static_cast<ObjectId>(center);
  }
  if (const std::string* text = FindArg(request, "distances")) {
    if (*text == "auto") {
      decoded.distances = DistancePolicy::kAuto;
    } else if (*text == "exact") {
      decoded.distances = DistancePolicy::kRequireExact;
    } else {
      return Status::InvalidArgument("unknown distances policy '" + *text +
                                     "' (want auto|exact)");
    }
  }
  if (const std::string* text = FindArg(request, "quality")) {
    DISC_ASSIGN_OR_RETURN(decoded.compute_quality,
                          ParseBoolArg("quality", *text));
  }
  return decoded;
}

Result<size_t> DecodeBatchSize(const Request& request) {
  DISC_ASSIGN_OR_RETURN(uint64_t n, ParseUintArg("n", *FindArg(request, "n")));
  if (n == 0) {
    return Status::InvalidArgument("BATCH n must be positive");
  }
  if (n > kMaxBatchCommands) {
    return Status::InvalidArgument(
        "BATCH n=" + std::to_string(n) + " exceeds the limit of " +
        std::to_string(kMaxBatchCommands) +
        " commands per batch (pipeline multiple batches instead)");
  }
  return static_cast<size_t>(n);
}

Result<std::vector<std::string>> ParseJsonStringArray(
    const std::string& text) {
  size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  };
  skip_ws();
  if (pos >= text.size() || text[pos] != '[') {
    return Status::InvalidArgument(
        "batch body must be a JSON array of command strings");
  }
  ++pos;
  std::vector<std::string> elements;
  skip_ws();
  if (pos < text.size() && text[pos] == ']') {
    ++pos;
  } else {
    while (true) {
      skip_ws();
      if (pos >= text.size() || text[pos] != '"') {
        return Status::InvalidArgument(
            "batch array elements must be JSON strings");
      }
      ++pos;
      std::string element;
      while (true) {
        if (pos >= text.size()) {
          return Status::InvalidArgument("unterminated JSON string");
        }
        const char c = text[pos++];
        if (c == '"') break;
        if (c != '\\') {
          if (static_cast<unsigned char>(c) < 0x20) {
            return Status::InvalidArgument(
                "unescaped control character in JSON string");
          }
          element += c;
          continue;
        }
        if (pos >= text.size()) {
          return Status::InvalidArgument("unterminated JSON escape");
        }
        const char esc = text[pos++];
        switch (esc) {
          case '"': element += '"'; break;
          case '\\': element += '\\'; break;
          case '/': element += '/'; break;
          case 'b': element += '\b'; break;
          case 'f': element += '\f'; break;
          case 'n': element += '\n'; break;
          case 'r': element += '\r'; break;
          case 't': element += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) {
              return Status::InvalidArgument("truncated \\u escape");
            }
            unsigned code = 0;
            const auto [end, ec] = std::from_chars(
                text.data() + pos, text.data() + pos + 4, code, /*base=*/16);
            if (ec != std::errc() || end != text.data() + pos + 4) {
              return Status::InvalidArgument("malformed \\u escape");
            }
            // Command lines are ASCII; decoding multi-byte code points would
            // only smuggle bytes ParseRequest rejects anyway.
            if (code > 0x7F) {
              return Status::InvalidArgument(
                  "non-ASCII \\u escapes are not supported");
            }
            pos += 4;
            element += static_cast<char>(code);
            break;
          }
          default:
            return Status::InvalidArgument("unknown JSON escape");
        }
      }
      elements.push_back(std::move(element));
      skip_ws();
      if (pos >= text.size()) {
        return Status::InvalidArgument("unterminated JSON array");
      }
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        break;
      }
      return Status::InvalidArgument("malformed JSON array");
    }
  }
  skip_ws();
  if (pos != text.size()) {
    return Status::InvalidArgument("trailing bytes after JSON array");
  }
  return elements;
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          escaped += buf;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string FormatJsonDouble(double value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) return "null";
  std::string text(buf, ptr);
  // JSON has no inf/nan literals.
  if (text.find("inf") != std::string::npos ||
      text.find("nan") != std::string::npos) {
    return "null";
  }
  return text;
}

JsonWriter& JsonWriter::RawField(const std::string& key,
                                 const std::string& json) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\":";
  body_ += json;
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key,
                              const std::string& value) {
  // Built piecewise: `"\"" + JsonEscape(...) + "\""` trips a GCC 12
  // -Wrestrict false positive (bug 105651) when inlined.
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  quoted += JsonEscape(value);
  quoted += '"';
  return RawField(key, quoted);
}

JsonWriter& JsonWriter::Field(const std::string& key, const char* value) {
  return Field(key, std::string(value));
}

JsonWriter& JsonWriter::Field(const std::string& key, bool value) {
  return RawField(key, value ? "true" : "false");
}

JsonWriter& JsonWriter::Field(const std::string& key, uint64_t value) {
  return RawField(key, std::to_string(value));
}

JsonWriter& JsonWriter::Field(const std::string& key, double value) {
  return RawField(key, FormatJsonDouble(value));
}

std::string JsonWriter::Finish() const { return "{" + body_ + "}"; }

std::string SerializeSolution(const std::vector<ObjectId>& solution) {
  std::string json = "[";
  for (size_t i = 0; i < solution.size(); ++i) {
    if (i > 0) json += ',';
    json += std::to_string(solution[i]);
  }
  json += ']';
  return json;
}

namespace {

void AppendQuality(JsonWriter* writer, const QualityMetrics& quality) {
  writer->Field("f_min", quality.f_min);
  writer->Field("coverage", quality.coverage);
  writer->Field("verified", quality.verification.ok()
                                ? "OK"
                                : quality.verification.ToString());
}

}  // namespace

namespace {

std::string SerializeDiversifyLike(Verb verb,
                                   const DiversifyResponse& response,
                                   bool include_wall_ms,
                                   const double* seed_radius) {
  JsonWriter writer;
  writer.Field("ok", true);
  writer.Field("cmd", VerbToString(verb));
  writer.Field("size", static_cast<uint64_t>(response.solution.size()));
  writer.Field("radius", response.radius);
  writer.Field("from_cache", response.from_cache);
  if (seed_radius != nullptr) {
    writer.Field("adapted", true);
    writer.Field("seed_radius", *seed_radius);
  }
  writer.Field("node_accesses", response.stats.node_accesses);
  writer.Field("range_queries", response.stats.range_queries);
  writer.Field("distance_computations", response.stats.distance_computations);
  if (response.quality.has_value()) AppendQuality(&writer, *response.quality);
  writer.RawField("solution", SerializeSolution(response.solution));
  // Last, so everything before it compares byte-identically across the wire
  // and a direct engine call (the one machine-dependent field).
  if (include_wall_ms) writer.Field("wall_ms", response.wall_ms);
  return writer.Finish();
}

}  // namespace

std::string SerializeDiversifyResponse(Verb verb,
                                       const DiversifyResponse& response,
                                       bool include_wall_ms) {
  return SerializeDiversifyLike(verb, response, include_wall_ms, nullptr);
}

std::string SerializeAdaptedResponse(const DiversifyResponse& response,
                                     double seed_radius,
                                     bool include_wall_ms) {
  return SerializeDiversifyLike(Verb::kDiversify, response, include_wall_ms,
                                &seed_radius);
}

std::string SerializeOpen(const EngineSnapshot& snapshot,
                          const std::string& dataset_text, bool reused) {
  JsonWriter writer;
  writer.Field("ok", true);
  writer.Field("cmd", VerbToString(Verb::kOpen));
  writer.Field("dataset", dataset_text);
  writer.Field("n", static_cast<uint64_t>(snapshot.dataset_size));
  writer.Field("dim", static_cast<uint64_t>(snapshot.dim));
  writer.Field("metric", MetricKindToString(snapshot.metric));
  writer.Field("build", BuildStrategyToString(snapshot.build_strategy));
  // Emitted only off the default so every pre-backend transcript stays
  // byte-identical.
  if (snapshot.backend != NeighborBackendKind::kExact) {
    writer.Field("backend", NeighborBackendKindToString(snapshot.backend));
  }
  writer.Field("reused", reused);
  writer.Field("sessions_served",
               static_cast<uint64_t>(snapshot.sessions_served));
  return writer.Finish();
}

std::string SerializeSnapshot(const EngineSnapshot& snapshot) {
  JsonWriter writer;
  writer.Field("ok", true);
  writer.Field("cmd", VerbToString(Verb::kStats));
  writer.Field("dataset_size", static_cast<uint64_t>(snapshot.dataset_size));
  writer.Field("dim", static_cast<uint64_t>(snapshot.dim));
  writer.Field("metric", MetricKindToString(snapshot.metric));
  writer.Field("build", BuildStrategyToString(snapshot.build_strategy));
  if (snapshot.backend != NeighborBackendKind::kExact) {
    writer.Field("backend", NeighborBackendKindToString(snapshot.backend));
  }
  writer.Field("tree_nodes", static_cast<uint64_t>(snapshot.tree_nodes));
  writer.Field("tree_height", static_cast<uint64_t>(snapshot.tree_height));
  writer.Field("has_solution", snapshot.has_solution);
  writer.Field("zoomable", snapshot.zoomable);
  if (!snapshot.zoom_blocker.empty()) {
    writer.Field("zoom_blocker", snapshot.zoom_blocker);
  }
  if (snapshot.has_solution) {
    writer.Field("algorithm", AlgorithmToString(snapshot.algorithm));
    writer.Field("radius", snapshot.radius);
    writer.Field("solution_size",
                 static_cast<uint64_t>(snapshot.solution_size));
    writer.Field("distances_exact", snapshot.distances_exact);
  }
  writer.Field("cached_solutions",
               static_cast<uint64_t>(snapshot.cached_solutions));
  writer.Field("cached_count_radii",
               static_cast<uint64_t>(snapshot.cached_count_radii));
  writer.Field("cache_hits", static_cast<uint64_t>(snapshot.cache_hits));
  writer.Field("computations", static_cast<uint64_t>(snapshot.computations));
  writer.Field("coalesced", static_cast<uint64_t>(snapshot.adopted_sessions));
  writer.Field("sessions_served",
               static_cast<uint64_t>(snapshot.sessions_served));
  writer.Field("node_accesses", snapshot.lifetime_stats.node_accesses);
  writer.Field("range_queries", snapshot.lifetime_stats.range_queries);
  writer.Field("distance_computations",
               snapshot.lifetime_stats.distance_computations);
  return writer.Finish();
}

std::string SerializeClose() {
  JsonWriter writer;
  writer.Field("ok", true);
  writer.Field("cmd", VerbToString(Verb::kClose));
  return writer.Finish();
}

std::string SerializeError(const std::string& cmd, const Status& status) {
  JsonWriter writer;
  writer.Field("ok", false);
  writer.Field("cmd", cmd);
  writer.Field("code", StatusCodeToString(status.code()));
  writer.Field("error", status.message());
  return writer.Finish();
}

}  // namespace disc
