// Minimal, dependency-free HTTP/1.1 support for the disc_serve event loop.
//
// The HTTP transport is a *framing* layer, nothing more: each request maps
// onto exactly one protocol command line (server/protocol.h) and each
// response body is exactly the one JSON line (plus its trailing newline)
// the line protocol would have produced — so the two transports cannot
// drift, and a bench can byte-compare an HTTP body against a direct engine
// call. One keep-alive connection is one session, mirroring the line
// protocol's connection-is-a-session model (OPEN leases an engine to the
// connection; dropping it is an implicit CLOSE).
//
// Mapping (docs/PROTOCOL.md is the normative spec):
//   POST /open       body: "dataset=clustered n=500 ..."   -> OPEN ...
//   POST /diversify  body: "r=0.05 algo=greedy"            -> DIVERSIFY ...
//   POST /zoom       body: "to=0.025"                      -> ZOOM ...
//   POST /stats      (GET also accepted; read-only)        -> STATS
//   POST /close                                            -> CLOSE
//
// POST /batch is the exception to one-request-one-command: its body is a
// JSON array of command strings and its 200 response body is one protocol
// line per command, in order (the event loop frames it into a batch unit
// directly — see server/batch.h — so it never flows through the
// one-command mapping below). Envelope-level failures answer a single
// error line under cmd "BATCH" with the usual status mapping.
//
// The HTTP status code is derived from the response line itself
// (HttpStatusForProtocolLine): "ok":true is 200, a Busy rejection is 503
// with a Retry-After header, InvalidArgument is 400, FailedPrecondition is
// 409, NotFound is 404 — the JSON body stays authoritative either way.
//
// The parser is incremental (feed it the connection's read buffer whenever
// bytes arrive) and hardened the same way the line transport is: a bounded
// head, a bounded body (Content-Length or chunked), and a hard error state
// after any malformed input — the caller answers 400 and closes.

#ifndef DISC_SERVER_HTTP_H_
#define DISC_SERVER_HTTP_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace disc {

/// Request line + headers may not exceed this (DoS bound, like the line
/// transport's 1 MiB line cap — heads are far smaller than bodies).
inline constexpr size_t kMaxHttpHeadBytes = 64 << 10;
/// Decoded body bytes per request (Content-Length or summed chunks); the
/// same bound as the line transport's maximum command line.
inline constexpr size_t kMaxHttpBodyBytes = 1 << 20;

/// One parsed request. `keep_alive` resolves the Connection header against
/// the version's default (HTTP/1.1 persists, HTTP/1.0 closes).
struct HttpRequest {
  std::string method;
  std::string target;
  bool keep_alive = true;
  std::string body;
};

/// Incremental request parser for one connection. Call Consume with the
/// connection's read buffer whenever bytes arrive; it removes the bytes it
/// consumed. Returns kRequest once per complete request (pipelined
/// requests: keep calling), kNeedMore when the buffer ran dry mid-request,
/// and kError after malformed input — the parser then stays failed (the
/// connection cannot be resynchronized) and error() describes why.
class HttpParser {
 public:
  enum class Step { kNeedMore, kRequest, kError };

  Step Consume(std::string* buffer, HttpRequest* request);

  /// Why the parser failed (meaningful after kError).
  const Status& error() const { return error_; }

  /// True once per request that carried "Expect: 100-continue" and whose
  /// body has not completed yet — the caller should emit the interim
  /// "HTTP/1.1 100 Continue" response so the client sends the body.
  bool TakeExpectContinue();

 private:
  enum class State {
    kHead,
    kBody,
    kChunkSize,
    kChunkData,
    kChunkDataEnd,
    kChunkTrailer,
    kFailed,
  };

  Step Fail(Status status);
  /// Parses the request line + headers out of `head` (terminator already
  /// stripped) into current_; decides the body state.
  Status ParseHead(const std::string& head);
  Step Emit(HttpRequest* request);

  State state_ = State::kHead;
  HttpRequest current_;
  /// kBody: Content-Length bytes still owed. kChunkData: bytes left in the
  /// current chunk.
  size_t body_remaining_ = 0;
  bool chunked_ = false;
  bool expect_continue_ = false;
  Status error_;
};

/// A complete response: status line, Content-Type/Content-Length/Connection
/// headers (plus Retry-After when `retry_after_seconds` > 0), and `body`.
std::string WriteHttpResponse(int status_code, const std::string& body,
                              bool keep_alive, int retry_after_seconds = 0);

/// The HTTP status for a serialized protocol response line: 200 for
/// "ok":true, otherwise mapped from the line's "code" field (Busy -> 503,
/// InvalidArgument -> 400, NotFound -> 404, FailedPrecondition -> 409,
/// Unimplemented -> 501, anything else -> 500).
int HttpStatusForProtocolLine(const std::string& line);

/// "OK", "Bad Request", ... for the codes this server emits.
const char* HttpReasonPhrase(int status_code);

/// Maps a parsed request onto its protocol command line ("OPEN ...").
/// NotFound for an unknown path (-> 404), InvalidArgument for a method the
/// endpoint does not accept (POST everywhere, GET additionally on /stats).
/// Newlines and carriage returns in the body become spaces — the body is
/// the command's whitespace-separated key=value argument list.
Result<std::string> HttpRequestToCommandLine(const HttpRequest& request);

}  // namespace disc

#endif  // DISC_SERVER_HTTP_H_
