#include "server/session_manager.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "metric/metric.h"
#include "mtree/mtree.h"
#include "util/parallel.h"

namespace disc {

std::string EnginePoolKey(const EngineConfig& config) {
  const DatasetSpec& spec = config.dataset;
  std::string key = DatasetSourceToString(spec.source);
  switch (spec.source) {
    case DatasetSpec::Source::kUniform:
    case DatasetSpec::Source::kClustered:
      key += ":n=" + std::to_string(spec.n) + ",dim=" +
             std::to_string(spec.dim) + ",seed=" + std::to_string(spec.seed);
      break;
    case DatasetSpec::Source::kCsv:
      key += ":" + spec.csv_path;
      break;
    case DatasetSpec::Source::kProvided:
      // A caller-materialized dataset has no canonical identity the pool
      // could match on; never reuse an engine built over one.
      return "";
    default:
      break;
  }
  key += "|";
  key += MetricKindToString(config.metric);
  key += "|";
  key += BuildStrategyToString(config.tree.build.strategy);
  // The backend is part of the identity only off the default, so every
  // pre-backend pool key is unchanged. Approximate engines must never be
  // matched with exact ones (their memoized solutions differ), hence the
  // full knob-carrying cache key, not just the kind name.
  if (config.neighbor.kind != NeighborBackendKind::kExact) {
    key += "|";
    key += NeighborBackendCacheKey(config.neighbor);
  }
  return key;
}

EngineLease& EngineLease::operator=(EngineLease&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    key_ = std::move(other.key_);
    engine_ = std::move(other.engine_);
    reused_ = other.reused_;
    other.manager_ = nullptr;
    other.engine_ = nullptr;
    other.reused_ = false;
  }
  return *this;
}

void EngineLease::Release() {
  if (engine_ != nullptr && manager_ != nullptr) {
    manager_->ReleaseLease(std::move(key_), std::move(engine_));
  }
  engine_ = nullptr;
  manager_ = nullptr;
}

Result<EngineLease> SessionManager::Acquire(const EngineConfig& config) {
  std::string key = EnginePoolKey(config);
  std::unique_ptr<DiscEngine> pooled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = idle_.begin(); !key.empty() && it != idle_.end(); ++it) {
      if (it->key == key) {
        pooled = std::move(it->engine);
        idle_.erase(it);
        ++stats_.pool_hits;
        stats_.idle_engines = idle_.size();
        break;
      }
    }
    // Counted only when a lease is actually handed out: a refused OPEN
    // (bad config, guardrail cap) must leave the acquire/release balance
    // intact — tests assert leases_released == leases_acquired.
    if (pooled != nullptr) ++stats_.leases_acquired;
  }
  if (pooled != nullptr) {
    // NewSession (an O(n) color reset) runs outside the manager-wide
    // critical section; the engine is already exclusively ours.
    pooled->NewSession();
    return EngineLease(this, std::move(key), std::move(pooled),
                       /*reused=*/true);
  }

  // Miss: build a fresh engine outside the lock (dataset load + index
  // build can take seconds and must not serialize other sessions).
  DISC_ASSIGN_OR_RETURN(std::unique_ptr<DiscEngine> engine,
                        DiscEngine::Create(config));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.engines_created;
    ++stats_.leases_acquired;
  }
  return EngineLease(this, std::move(key), std::move(engine),
                     /*reused=*/false);
}

Status SessionManager::Prewarm(const std::vector<EngineConfig>& configs,
                               size_t threads) {
  if (configs.empty()) return Status::OK();
  // One engine build per task; every build runs on its own worker, so a
  // list of hot datasets warms in max(build time), not sum. Each slot is
  // written by exactly one task — results are collected after the pool
  // joins (no locking needed). Engines with threads > 1 additionally
  // parallelize their own bulk load on their own internal pools; that
  // nesting is safe because each engine's pool is a separate instance from
  // this prewarm pool (ThreadPool::Run only serializes per pool), and
  // harmless to determinism because the built tree is byte-identical at
  // any thread count (MTree::BulkLoad).
  std::vector<std::optional<Result<std::unique_ptr<DiscEngine>>>> built(
      configs.size());
  const size_t resolved = threads == 0 ? DefaultThreads() : threads;
  ThreadPool pool(std::min(resolved, configs.size()));
  pool.Run(configs.size(), [&](size_t i) {
    if (EnginePoolKey(configs[i]).empty()) return;  // unpoolable: skip
    built[i].emplace(DiscEngine::Create(configs[i]));
  });

  Status first_error = Status::OK();
  for (size_t i = 0; i < configs.size(); ++i) {
    if (!built[i].has_value()) continue;  // unpoolable, skipped above
    if (!built[i]->ok()) {
      if (first_error.ok()) first_error = built[i]->status();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.engines_created;
    }
    ReturnToPool(EnginePoolKey(configs[i]), std::move(*built[i]).value());
  }
  return first_error;
}

FlightJoin SessionManager::JoinFlight(const std::string& key,
                                      FlightWaiter waiter,
                                      FlightOutcome* cached,
                                      const std::string& adapt_family,
                                      double radius) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = results_.begin(); it != results_.end(); ++it) {
    if (it->key == key) {
      *cached = it->outcome;
      results_.splice(results_.begin(), results_, it);  // LRU touch
      ++stats_.flights_memoized;
      return FlightJoin::kCached;
    }
  }
  auto [it, inserted] = flights_.try_emplace(key);
  if (inserted) {
    // Advertise the in-progress computation to JoinAdaptFollower: a
    // compatible request at another radius can ride it instead of leading
    // its own cold solve.
    it->second.adapt_family = adapt_family;
    it->second.radius = radius;
    it->second.seq = next_flight_seq_++;
    ++stats_.flights_led;
    return FlightJoin::kLeader;
  }
  it->second.waiters.push_back(std::move(waiter));
  ++stats_.flights_coalesced;
  return FlightJoin::kFollower;
}

bool SessionManager::JoinAdaptFollower(const std::string& family,
                                       double radius, FlightWaiter waiter) {
  if (family.empty()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto best = flights_.end();
  for (auto it = flights_.begin(); it != flights_.end(); ++it) {
    const Flight& flight = it->second;
    if (flight.adapt_family != family) continue;
    // Equal-radius flights coalesce through the exact flight key (or, off
    // by a non-family knob like quality, must not pretend to zoom to the
    // same radius) — same rule as FindAdaptableSeed over the memo.
    if (flight.radius == radius) continue;
    if (best == flights_.end()) {
      best = it;
      continue;
    }
    const double delta = std::abs(flight.radius - radius);
    const double best_delta = std::abs(best->second.radius - radius);
    // Closest radius wins; ties go to the most recently led flight.
    if (delta < best_delta ||
        (delta == best_delta && flight.seq > best->second.seq)) {
      best = it;
    }
  }
  if (best == flights_.end()) return false;
  best->second.waiters.push_back(std::move(waiter));
  ++stats_.flights_adapt_followed;
  return true;
}

void SessionManager::RetractAdaptFlight(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flights_.find(key);
  if (it != flights_.end()) it->second.adapt_family.clear();
}

void SessionManager::FinishFlight(const std::string& key,
                                  FlightOutcome outcome, bool memoize) {
  std::vector<FlightWaiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      waiters = std::move(it->second.waiters);
      flights_.erase(it);
    }
    if (memoize && max_cached_results_ > 0) {
      // kCached is only returned for keys with no in-progress flight, so a
      // duplicate entry cannot arise from racing leaders of the same key —
      // but be defensive and keep at most one outcome per key.
      for (auto rit = results_.begin(); rit != results_.end(); ++rit) {
        if (rit->key == key) {
          results_.erase(rit);
          break;
        }
      }
      results_.push_front(CachedResult{key, outcome});
      if (results_.size() > max_cached_results_) results_.pop_back();
      stats_.cached_results = results_.size();
    }
  }
  // Waiter callbacks adopt session capsules (O(n) engine work) and write
  // responses; never run them under the manager lock.
  for (FlightWaiter& waiter : waiters) waiter(outcome);
}

bool SessionManager::FindAdaptableSeed(const std::string& family,
                                       double radius, FlightOutcome* seed,
                                       double* seed_radius) {
  if (family.empty()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto best = results_.end();
  for (auto it = results_.begin(); it != results_.end(); ++it) {
    if (it->outcome.adapt_family != family) continue;
    if (it->outcome.capsule == nullptr) continue;
    if (it->outcome.radius == radius) continue;
    // Strict < keeps the first (most recently finished) match on ties.
    if (best == results_.end() ||
        std::abs(it->outcome.radius - radius) <
            std::abs(best->outcome.radius - radius)) {
      best = it;
    }
  }
  if (best == results_.end()) return false;
  *seed = best->outcome;
  *seed_radius = best->outcome.radius;
  results_.splice(results_.begin(), results_, best);
  ++stats_.flights_adapted;
  return true;
}

void SessionManager::ReleaseLease(std::string key,
                                  std::unique_ptr<DiscEngine> engine) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.leases_released;
  }
  ReturnToPool(std::move(key), std::move(engine));
}

void SessionManager::ReturnToPool(std::string key,
                                  std::unique_ptr<DiscEngine> engine) {
  std::unique_ptr<DiscEngine> evicted;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_idle_engines_ == 0 || key.empty()) {  // empty key: unpoolable
      stats_.idle_engines = idle_.size();
      ++stats_.engines_evicted;
      evicted = std::move(engine);
    } else {
      idle_.push_front(IdleEngine{std::move(key), std::move(engine)});
      if (idle_.size() > max_idle_engines_) {
        evicted = std::move(idle_.back().engine);
        idle_.pop_back();
        ++stats_.engines_evicted;
      }
      stats_.idle_engines = idle_.size();
    }
  }
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace disc
