// Shared per-verb execution for the two DiscServer transports.
//
// The blocking transport consumes ExecuteLine wholesale (parse, dispatch,
// run, serialize — one call per request line). The event loop needs the
// pieces individually so it can thread the single-flight table between
// them: PlanCompute derives a request's coalescing key *before* any engine
// work, and RunCompute is what a flight leader executes on a worker
// thread. Keeping both transports on these functions is what guarantees a
// coalesced response is byte-identical to the blocking server's answer for
// the same request.

#ifndef DISC_SERVER_HANDLERS_H_
#define DISC_SERVER_HANDLERS_H_

#include <cstddef>
#include <memory>
#include <string>

#include "server/protocol.h"
#include "server/session_manager.h"

namespace disc {

/// Dependencies a verb handler needs, independent of transport.
struct CommandContext {
  SessionManager* manager = nullptr;
  /// ServerOptions::engine_threads, applied to every engine an OPEN builds
  /// (the knob is the operator's, not the client's: it changes wall time
  /// only, so it stays out of the wire vocabulary and the pool key).
  size_t engine_threads = 0;
  /// ServerOptions::default_backend: the neighbor backend applied when the
  /// client's OPEN carries no backend= key. Unlike engine_threads this
  /// changes results, so it IS in the wire vocabulary and the pool key.
  NeighborBackendKind default_backend = NeighborBackendKind::kExact;
  /// ServerOptions::max_exact_points, stamped onto every OPEN-built config:
  /// exact-family backends over larger datasets are refused with
  /// InvalidArgument instead of risking an O(n^2) scan or an oversized
  /// index taking the daemon down. 0 = unlimited.
  size_t max_exact_points = 0;
};

/// OPEN: decodes, applies the operator thread knob, acquires a lease. On
/// success installs the lease into `*lease` and returns the OPEN response
/// line; on failure returns the error line and leaves `*lease` untouched.
/// The caller is responsible for the already-open precondition.
std::string ExecuteOpen(const CommandContext& ctx, const Request& request,
                        EngineLease* lease);

/// A decoded DIVERSIFY or ZOOM plus its single-flight identity.
struct ComputePlan {
  Verb verb = Verb::kDiversify;
  DiversifyRequest diversify;
  ZoomRequest zoom;
  /// Canonical coalescing key: pool key + verb + canonical parameters
  /// (+ the session fingerprint for ZOOM, whose result depends on the
  /// state the session is in). Equal keys imply interchangeable response
  /// lines. Empty when the request must not be coalesced: an unpoolable
  /// engine, a DIVERSIFY this engine can answer from its own solution
  /// cache (kept local so from_cache stays honest), or a ZOOM with no
  /// zoomable session to fingerprint. Requests that allow adaptation get a
  /// distinct key suffix — an adapted response line differs from a cold
  /// one, so the two populations must never share a flight.
  std::string flight_key;
  /// True when the client allowed §5.2 radius adaptation (DIVERSIFY
  /// adapt=true) and this request is eligible (coalescable, DisC-family).
  bool adapt = false;
  /// The request's radius-compatibility family: flight key minus radius
  /// (pool key + algorithm + pruning; quality excluded — it changes the
  /// response line but not the session state a seed capsule carries, and
  /// RunCompute re-applies the request's own quality flag). Non-empty for
  /// every coalescable DisC-family DIVERSIFY — it marks the outcome as a
  /// future adaptation seed even when this client did not ask to adapt.
  std::string adapt_family;
  /// Filled by the event loop when the session manager holds an adaptable
  /// outcome: RunCompute then adopts the capsule and zooms to the request
  /// radius (DiscEngine::AdaptFrom) instead of computing cold.
  std::shared_ptr<DiscEngine::SessionCapsule> seed;
  double seed_radius = 0.0;
};

/// Decodes a DIVERSIFY/ZOOM request and derives its flight key against the
/// session `lease` currently holds. Fails with the decoder's error. The
/// caller is responsible for the session-open precondition.
Result<ComputePlan> PlanCompute(const Request& request, EngineLease& lease);

/// What a computation produced: the full response line (success or error)
/// and whether the engine call succeeded — when true, the engine's session
/// now encodes the result and ExportSession() is meaningful.
struct ComputeResult {
  std::string response;
  bool ok = false;
  /// True when the result is a successful *cold* DIVERSIFY of a zoomable
  /// DisC-family solution: the exported capsule may seed radius adaptation
  /// (the flight's outcome should carry the plan's adapt_family).
  bool seedable = false;
};

/// Runs the planned computation on `engine` and serializes the outcome.
ComputeResult RunCompute(const ComputePlan& plan, DiscEngine& engine);

/// The synchronous half of per-command dispatch, shared verbatim by the
/// line, HTTP, and batch paths: answers every command that needs no engine
/// job — precondition failures (OPEN with a session open, compute/STATS/
/// CLOSE without one), STATS, CLOSE, and a stray BATCH envelope reaching
/// single-command execution — and returns true with `*response` set.
/// Returns false (response untouched) exactly when the command is an OPEN
/// or a DIVERSIFY/ZOOM whose preconditions hold: the caller runs
/// ExecuteOpen or PlanCompute+RunCompute, inline or on a worker.
bool DispatchFastPath(const CommandContext& ctx, const Request& request,
                      EngineLease* lease, std::string* response);

/// The complete per-command request->handler->response pipeline with no
/// coalescing: DispatchFastPath, else ExecuteOpen / PlanCompute+RunCompute
/// inline. The single entry point the blocking transport and the batch
/// executor's sequential path consume; the event loop composes
/// DispatchFastPath with its own job dispatch instead.
std::string DispatchCommand(const CommandContext& ctx, const Request& request,
                            EngineLease* lease);

/// ParseRequest + DispatchCommand: the complete request path for one raw
/// line. Used by the blocking transport wholesale.
std::string ExecuteLine(const CommandContext& ctx, const std::string& line,
                        EngineLease* lease);

}  // namespace disc

#endif  // DISC_SERVER_HANDLERS_H_
