// The epoll event-loop transport (ServeLoop::kEventLoop).
//
// One loop thread owns every connection: non-blocking sockets registered
// edge-triggered, a per-connection read buffer split into protocol lines,
// and a per-connection write buffer flushed opportunistically. Engine
// work — OPEN builds and DIVERSIFY/ZOOM computations — never runs on the
// loop thread; it is dispatched as jobs to a fixed pool of compute
// workers, whose results come back through a completion queue drained when
// the worker signals an eventfd.
//
// State ownership (the rule everything here follows): a Conn and its
// EngineLease belong to the loop thread, EXCEPT while `busy` is set — then
// exactly one worker (or one flight waiter) may touch the leased engine,
// and the loop thread touches neither engine nor lease until the
// completion arrives. A connection is therefore never destroyed while
// busy; teardown marks it dead and the completion handler finishes the
// job. This is also why a conn processes at most one command at a time:
// pipelined lines queue in order and the next one starts only after the
// previous completion.
//
// Coalescing: a DIVERSIFY/ZOOM whose flight key (server/handlers.h) is
// already in the session manager's single-flight table attaches a waiter
// instead of dispatching a job. The leader computes once, exports a
// session capsule, and FinishFlight fans the byte-identical response line
// to every waiter; each waiter adopts the capsule into its own engine so
// its subsequent zoom chain stays valid. Completed flights are memoized in
// the manager, so a request arriving just after the flight finished still
// coalesces instead of recomputing.
//
// Backpressure, outermost first:
//  * admission control: at most max_inflight executing + max_pending
//    queued jobs; beyond that a request is answered with a BUSY error
//    line (flight followers and capsule adoptions are exempt — they
//    consume no compute slot);
//  * pipelining cap: a connection with kMaxQueuedLines parsed-but-
//    unserved lines stops being read — bytes back up into the kernel
//    buffer and TCP flow control stalls the client until we catch up;
//  * read cap: kMaxLineBytes without a newline tears the connection down
//    (same memory-DoS rule as the blocking transport's LineChannel);
//  * write cap: a client that never reads accumulates responses until
//    kMaxOutBytes, then is torn down.
//
// HTTP: the loop also speaks HTTP/1.1 (server/http.h), auto-detected per
// connection from the first bytes (a method prefix like "POST " selects
// HTTP; anything else is the line protocol). HTTP is pure framing: each
// request maps onto one protocol command line that flows through the SAME
// pending-line queue, handlers, and single-flight table as the line
// protocol, and each response body is exactly the JSON line (+ newline)
// the line protocol would emit, wrapped with a status derived from the
// line itself (BUSY -> 503 + Retry-After). One keep-alive connection is
// one session; "Connection: close" (or HTTP/1.0) answers and then closes.
// A malformed request gets a mapped error response and the connection is
// closed — HTTP framing cannot be resynchronized after garbage.
//
// Radius-aware coalescing (§5.2): a DIVERSIFY with adapt=true whose flight
// leads consults the session manager's radius-aware memo
// (FindAdaptableSeed) — a memoized DIVERSIFY outcome in the same family
// (pool key + algorithm + pruning) at a different radius seeds the
// computation: the leader adopts the seed's capsule and zooms to the
// requested radius (DiscEngine::AdaptFrom), byte-identical to running that
// chain cold. Successful cold DisC-family DIVERSIFY outcomes carry their
// family + radius into the memo so later compatible requests can adapt.
//
// Proactive adaptation across requests: a DIVERSIFY that leads its flight
// but misses the memo additionally checks the in-flight table — a flight
// in the same family at a different radius, advertised at JoinFlight time,
// takes it on as an adapt-follower (SessionManager::JoinAdaptFollower).
// The request then runs nothing: when that leader completes, the waiter
// adapts the leader's capsule to the requested radius on the leader's
// thread and finishes the request's own flight, so the whole family pays
// for one cold solve even when its members are all airborne at once.
//
// BATCH: "BATCH n=<k>" frames the next k lines as one request unit
// (POST /batch with a JSON string-array body is the HTTP equivalent). The
// frame becomes one job under one admission slot; a worker executes it
// through server/batch.h's planner (one cold solve per adapt family, the
// rest adapted) and the completion carries k response lines written in
// command order — as a 200-status joined body over HTTP. Envelope-level
// failures (bad n, busy admission, malformed JSON) answer a single error
// line under cmd "BATCH".
//
// Shutdown drains: accepting stops, idle connections close immediately,
// queued and executing jobs run to completion, their responses are
// flushed (bounded by kDrainDeadline for clients that will not read), and
// only then do the loop and the workers join.

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/batch.h"
#include "server/handlers.h"
#include "server/http.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"

namespace disc {
namespace internal {
namespace {

/// Same no-newline memory cap as LineChannel.
constexpr size_t kMaxLineBytes = 1 << 20;
/// Parsed lines a connection may have waiting before reads pause.
constexpr size_t kMaxQueuedLines = 128;
/// Unflushed response bytes before a never-reading client is torn down.
constexpr size_t kMaxOutBytes = 4 << 20;
/// How long Shutdown keeps polling to flush final responses.
constexpr std::chrono::seconds kDrainDeadline(5);

/// epoll user-data ids for the two non-connection descriptors.
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

class EventLoopServer final : public DiscServer {
 public:
  explicit EventLoopServer(ServerOptions options)
      : DiscServer(std::move(options)),
        max_inflight_(options_.max_inflight == 0 ? options_.workers
                                                 : options_.max_inflight) {}

  ~EventLoopServer() override { Shutdown(); }

  Status Run() {
    DISC_RETURN_NOT_OK(Listen());
    DISC_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) return Status::IOError("epoll_create1 failed");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) return Status::IOError("eventfd failed");
    AddToEpoll(listen_fd_, kListenId, EPOLLIN);
    AddToEpoll(wake_fd_, kWakeId, EPOLLIN);
    loop_thread_ = std::thread([this] { LoopThread(); });
    workers_.reserve(options_.workers);
    for (size_t i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    return Status::OK();
  }

  void Shutdown() override {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_.store(true);
    Wake();
    if (loop_thread_.joinable()) loop_thread_.join();
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      workers_stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    CloseSocket(&listen_fd_);
    CloseSocket(&wake_fd_);
    CloseSocket(&epoll_fd_);
  }

  ServerStats server_stats() const override {
    ServerStats stats;
    stats.connections_accepted = connections_accepted_.load();
    stats.busy_rejections = busy_rejections_.load();
    stats.coalesced_responses = coalesced_responses_.load();
    stats.active_connections = active_connections_.load();
    stats.http_requests = http_requests_.load();
    return stats;
  }

 private:
  /// Which wire framing a connection speaks, decided once from its first
  /// bytes and fixed for the connection's lifetime.
  enum class Proto { kUnknown, kLine, kHttp };

  /// One parsed-but-unserved command. For HTTP, `keep_alive` is the
  /// request's resolved Connection semantics, and `prefailed` marks an
  /// entry whose `line` already holds the serialized error response (a
  /// framing or endpoint-mapping failure that never reaches HandleLine).
  /// `is_batch` marks a complete BATCH envelope (line protocol) or a
  /// POST /batch (HTTP): `batch` holds its command lines and `line` is
  /// unused — the unit is answered with one response line per command.
  struct Pending {
    std::string line;
    std::vector<std::string> batch;
    bool is_batch = false;
    bool keep_alive = true;
    bool prefailed = false;
  };

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::string in;   // raw bytes awaiting a newline / HTTP framing
    std::string out;  // serialized responses awaiting the socket
    std::deque<Pending> lines;
    Proto proto = Proto::kUnknown;
    HttpParser http;  // used only once proto == kHttp
    /// Connection semantics of the request currently being served (set
    /// when its Pending is popped; stable until the next pop because a
    /// conn serves one command at a time). Line protocol ignores it.
    bool cur_keep_alive = true;
    EngineLease lease;
    /// A job or flight waiter for this conn is outstanding; the loop
    /// thread must not touch the lease or destroy the conn.
    bool busy = false;
    /// EOF (or drain) observed: finish the queued lines, flush, close.
    bool no_more_input = false;
    /// Reads paused by the pipelining cap; resume when lines drain.
    bool read_paused = false;
    /// Torn down; destroy as soon as !busy.
    bool dead = false;
    /// EPOLLOUT currently registered.
    bool want_write = false;
    /// Line-protocol BATCH framing: while batch_expect > 0, arriving lines
    /// are collected into batch_lines instead of becoming individual
    /// Pendings; the frame closes into one is_batch Pending when full. EOF
    /// mid-frame drops the incomplete batch (like a partial line).
    size_t batch_expect = 0;
    std::vector<std::string> batch_lines;
  };

  struct Job {
    enum class Kind { kOpen, kCompute, kLeader, kAdopt, kBatch };
    Kind kind = Kind::kCompute;
    uint64_t conn_id = 0;
    Request request;                // kOpen
    ComputePlan plan;               // kCompute / kLeader
    DiscEngine* engine = nullptr;   // kCompute / kLeader / kAdopt
    std::string flight_key;         // kLeader
    FlightOutcome outcome;          // kAdopt
    std::vector<std::string> batch;  // kBatch: the command lines
    /// kBatch: the connection's lease, mutated in place (OPEN installs,
    /// CLOSE releases). The pointer is stable: Conns are heap-allocated
    /// and never destroyed while busy.
    EngineLease* lease = nullptr;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string response;
    std::vector<std::string> batch;  // is_batch: one line per command
    EngineLease lease;       // valid => install (a successful OPEN)
    bool is_batch = false;
    bool coalesced = false;  // produced by another connection's flight
    bool counts = false;     // consumed an admission slot
  };

  // ---- loop thread ----

  void LoopThread() {
    std::chrono::steady_clock::time_point drain_deadline{};
    bool draining = false;
    epoll_event events[64];
    while (true) {
      if (!draining && stop_requested_.load()) {
        draining = true;
        drain_deadline = std::chrono::steady_clock::now() + kDrainDeadline;
        BeginDrain();
      }
      if (draining && conns_.empty()) return;
      if (draining &&
          std::chrono::steady_clock::now() >= drain_deadline) {
        // Busy conns must wait for their worker (the engine is in use);
        // everything else — clients that will not read their last
        // response — is forcibly dropped.
        std::vector<uint64_t> drop;
        for (auto& [id, conn] : conns_) {
          if (!conn->busy) drop.push_back(id);
        }
        for (uint64_t id : drop) Destroy(id);
        if (conns_.empty()) return;
      }
      const int timeout_ms = draining ? 50 : -1;
      const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // unrecoverable poll error; Shutdown still joins us
      }
      for (int i = 0; i < n; ++i) {
        const uint64_t id = events[i].data.u64;
        if (id == kListenId) {
          if (!draining) AcceptAll();
        } else if (id == kWakeId) {
          DrainWakeFd();
        } else {
          OnConnEvent(id, events[i].events);
        }
      }
      ProcessCompletions(draining);
    }
  }

  void AcceptAll() {
    while (true) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        // EAGAIN (drained) or a resource error (e.g. EMFILE): either way
        // stop here — the listen fd is level-triggered, so a still-pending
        // connection refires the event.
        return;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id_++;
      AddToEpoll(fd, conn->id, EPOLLIN | EPOLLRDHUP | EPOLLET);
      connections_accepted_.fetch_add(1);
      const uint64_t id = conn->id;
      conns_.emplace(id, std::move(conn));
      active_connections_.store(conns_.size());
    }
  }

  void DrainWakeFd() {
    uint64_t value = 0;
    while (::read(wake_fd_, &value, sizeof(value)) > 0) {
    }
  }

  void OnConnEvent(uint64_t id, uint32_t events) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn* conn = it->second.get();
    if (events & EPOLLERR) Teardown(conn);
    if (!conn->dead && (events & EPOLLOUT)) FlushOut(conn);
    if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) {
      Pump(conn);  // ends in MaybeDestroy
      return;
    }
    MaybeDestroy(conn);
  }

  /// Read -> split -> process until the conn blocks on the socket, a job,
  /// the pipelining cap, or death. The only place (besides completions)
  /// that advances a connection's protocol state.
  void Pump(Conn* conn) {
    while (!conn->dead) {
      if (!conn->no_more_input && !conn->read_paused) DrainSocket(conn);
      if (conn->dead) break;
      ProcessLines(conn);
      if (conn->dead || conn->busy) break;
      if (conn->read_paused && conn->lines.size() < kMaxQueuedLines / 2) {
        // Room again: re-drain now — edge-triggered epoll will not refire
        // for bytes that arrived while reads were paused.
        conn->read_paused = false;
        continue;
      }
      break;
    }
    MaybeDestroy(conn);
  }

  /// recv until EAGAIN/EOF/pause, framing complete commands.
  void DrainSocket(Conn* conn) {
    // Frame leftovers first: HTTP ingestion can stop mid-buffer at the
    // pipelining cap, and those bytes would otherwise wait for the next
    // recv that may never come.
    if (!conn->in.empty() && conn->proto != Proto::kUnknown) {
      IngestInput(conn);
      if (conn->dead || conn->read_paused || conn->no_more_input) return;
    }
    char chunk[4096];
    while (!conn->dead && !conn->no_more_input) {
      const ssize_t got = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (got > 0) {
        conn->in.append(chunk, static_cast<size_t>(got));
        IngestInput(conn);
        if (conn->read_paused) return;
        continue;
      }
      if (got == 0) {
        // EOF: the lines already received still get answers (matching the
        // blocking transport); the partial tail, if any, is dropped.
        conn->no_more_input = true;
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      Teardown(conn);
      return;
    }
  }

  /// Frames whatever the read buffer holds according to the connection's
  /// protocol, detecting it first if this is the start of the stream.
  void IngestInput(Conn* conn) {
    if (conn->proto == Proto::kUnknown) DetectProto(conn);
    if (conn->proto == Proto::kHttp) {
      IngestHttp(conn);
    } else if (conn->proto == Proto::kLine) {
      SplitLines(conn);
    }
    // Still kUnknown: the bytes so far are a proper prefix of an HTTP
    // method ("POS") — wait for more; the ambiguity resolves within the
    // longest method token.
  }

  /// First-bytes protocol detection: an HTTP method + space selects HTTP,
  /// anything that cannot become one is the line protocol.
  void DetectProto(Conn* conn) {
    static constexpr const char* kMethods[] = {
        "GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS ", "PATCH "};
    if (conn->in.empty()) return;
    bool ambiguous = false;
    for (const char* method : kMethods) {
      const size_t len = std::char_traits<char>::length(method);
      const size_t prefix = std::min(conn->in.size(), len);
      if (conn->in.compare(0, prefix, method, prefix) != 0) continue;
      if (conn->in.size() >= len) {
        conn->proto = Proto::kHttp;
        return;
      }
      ambiguous = true;  // e.g. "POS": could still become "POST "
    }
    if (!ambiguous) conn->proto = Proto::kLine;
  }

  /// Consumes complete HTTP requests into the pending queue. Each becomes
  /// either a protocol command line or a prefailed error entry; a framing
  /// error queues its error response and stops all further reading (the
  /// stream cannot be resynchronized).
  void IngestHttp(Conn* conn) {
    while (!conn->dead) {
      HttpRequest request;
      const HttpParser::Step step = conn->http.Consume(&conn->in, &request);
      if (conn->http.TakeExpectContinue()) {
        // Interim response so Expect: 100-continue clients send the body.
        conn->out += "HTTP/1.1 100 Continue\r\n\r\n";
        FlushOut(conn);
        if (conn->dead) return;
      }
      switch (step) {
        case HttpParser::Step::kRequest: {
          http_requests_.fetch_add(1);
          Pending pending;
          pending.keep_alive = request.keep_alive;
          if (request.target == "/batch") {
            MakeHttpBatchPending(request, &pending);
          } else {
            Result<std::string> line = HttpRequestToCommandLine(request);
            if (line.ok()) {
              pending.line = std::move(*line);
            } else {
              pending.prefailed = true;
              pending.line = SerializeError("?", line.status());
            }
          }
          conn->lines.push_back(std::move(pending));
          if (conn->lines.size() >= kMaxQueuedLines) {
            conn->read_paused = true;
            return;
          }
          continue;
        }
        case HttpParser::Step::kError: {
          Pending pending;
          pending.prefailed = true;
          pending.keep_alive = false;
          pending.line = SerializeError("?", conn->http.error());
          conn->lines.push_back(std::move(pending));
          conn->no_more_input = true;  // DrainSocket stops reading
          conn->in.clear();
          return;
        }
        case HttpParser::Step::kNeedMore:
          return;
      }
    }
  }

  /// POST /batch: the JSON string-array body becomes the batch's command
  /// lines. Envelope-level failures (wrong method, malformed JSON, size
  /// out of bounds) are answered with ONE error line under cmd "BATCH" —
  /// mapped to a 4xx status by HttpStatusForProtocolLine like any other
  /// error line; per-command failures stay in the 200 body.
  static void MakeHttpBatchPending(const HttpRequest& request,
                                   Pending* pending) {
    if (request.method != "POST") {
      pending->prefailed = true;
      pending->line = SerializeError(
          "BATCH", Status::InvalidArgument("/batch requires POST"));
      return;
    }
    Result<std::vector<std::string>> lines =
        ParseJsonStringArray(request.body);
    if (!lines.ok()) {
      pending->prefailed = true;
      pending->line = SerializeError("BATCH", lines.status());
      return;
    }
    if (lines->empty() || lines->size() > kMaxBatchCommands) {
      pending->prefailed = true;
      pending->line = SerializeError(
          "BATCH",
          Status::InvalidArgument(
              "/batch body must contain between 1 and " +
              std::to_string(kMaxBatchCommands) + " commands, got " +
              std::to_string(lines->size())));
      return;
    }
    pending->is_batch = true;
    pending->batch = std::move(*lines);
  }

  /// Moves complete lines out of the read buffer; tears down on the
  /// no-newline memory cap.
  void SplitLines(Conn* conn) {
    size_t start = 0;
    while (true) {
      const size_t newline = conn->in.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = conn->in.substr(start, newline - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      AddLine(conn, std::move(line));
      start = newline + 1;
      if (conn->lines.size() >= kMaxQueuedLines) {
        conn->read_paused = true;
      }
    }
    conn->in.erase(0, start);
    if (conn->in.size() > kMaxLineBytes) Teardown(conn);
  }

  /// True when the line's first token is the BATCH envelope verb.
  static bool IsBatchEnvelope(const std::string& line) {
    const size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) return false;
    size_t end = line.find_first_of(" \t", begin);
    if (end == std::string::npos) end = line.size();
    return line.compare(begin, end - begin, "BATCH") == 0;
  }

  /// Routes one complete line: into an open BATCH frame, as a new BATCH
  /// envelope, or as an ordinary pending command.
  void AddLine(Conn* conn, std::string line) {
    if (conn->batch_expect > 0) {
      // Inside a frame every line is a slot — including blank ones, which
      // a batch answers with their parse error instead of skipping (the
      // envelope owes exactly n responses).
      conn->batch_lines.push_back(std::move(line));
      if (conn->batch_lines.size() == conn->batch_expect) {
        Pending pending;
        pending.is_batch = true;
        pending.batch = std::move(conn->batch_lines);
        conn->batch_lines.clear();
        conn->batch_expect = 0;
        conn->lines.push_back(std::move(pending));
      }
      return;
    }
    if (IsBatchEnvelope(line)) {
      // BATCH n=<k> frames the next k lines. A bad envelope never starts
      // the frame, so no per-command responses are owed: it is answered
      // with ONE error line under cmd "BATCH".
      const Result<Request> request = ParseRequest(line);
      const Result<size_t> n = request.ok()
                                   ? DecodeBatchSize(*request)
                                   : Result<size_t>(request.status());
      if (!n.ok()) {
        Pending pending;
        pending.prefailed = true;
        pending.line = SerializeError("BATCH", n.status());
        conn->lines.push_back(std::move(pending));
        return;
      }
      conn->batch_expect = *n;
      conn->batch_lines.reserve(*n);
      return;
    }
    Pending pending;
    pending.line = std::move(line);
    conn->lines.push_back(std::move(pending));
  }

  void ProcessLines(Conn* conn) {
    while (!conn->busy && !conn->dead && !conn->lines.empty()) {
      Pending pending = std::move(conn->lines.front());
      conn->lines.pop_front();
      conn->cur_keep_alive = pending.keep_alive;
      if (pending.prefailed) {
        // The error response was serialized at framing time; it only
        // waited here so responses stay in request order.
        Respond(conn, pending.line);
        continue;
      }
      if (pending.is_batch) {
        HandleBatch(conn, std::move(pending.batch));
        continue;  // BUSY answered, or busy set — the loop guard breaks
      }
      const std::string line = std::move(pending.line);
      // Skip blank lines so `printf '...\n\n'`-style drivers are harmless.
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      try {
        HandleLine(conn, line);
      } catch (const std::exception& e) {
        // Same barrier as the blocking transport: a stray exception must
        // not take down the loop thread (and with it the whole daemon).
        Respond(conn, SerializeError("?", Status::IOError(
                                              std::string("internal error: ") +
                                              e.what())));
      }
    }
  }

  void HandleLine(Conn* conn, const std::string& line) {
    Result<Request> request = ParseRequest(line);
    if (!request.ok()) {
      Respond(conn, SerializeError("?", request.status()));
      return;
    }
    const char* cmd = VerbToString(request->verb);
    switch (request->verb) {
      case Verb::kOpen: {
        if (conn->lease.valid()) {
          Respond(conn,
                  SerializeError(
                      cmd, Status::FailedPrecondition(
                               "a session is already open on this "
                               "connection; CLOSE it first")));
          return;
        }
        if (!Admit()) {
          RejectBusy(conn, cmd);
          return;
        }
        Job job;
        job.kind = Job::Kind::kOpen;
        job.conn_id = conn->id;
        job.request = std::move(*request);
        Dispatch(conn, std::move(job));
        return;
      }
      case Verb::kDiversify:
      case Verb::kZoom: {
        if (!conn->lease.valid()) {
          Respond(conn, SerializeError(cmd, Status::FailedPrecondition(
                                                "no session open; OPEN "
                                                "first")));
          return;
        }
        Result<ComputePlan> plan = PlanCompute(*request, conn->lease);
        if (!plan.ok()) {
          Respond(conn, SerializeError(cmd, plan.status()));
          return;
        }
        DispatchCompute(conn, std::move(*plan));
        return;
      }
      case Verb::kStats: {
        // Cheap and engine-read-only; the conn is not busy, so the loop
        // thread is the only toucher of this engine right now.
        if (!conn->lease.valid()) {
          Respond(conn, SerializeError(cmd, Status::FailedPrecondition(
                                                "no session open; OPEN "
                                                "first")));
          return;
        }
        Respond(conn, SerializeSnapshot(conn->lease.engine().Snapshot()));
        return;
      }
      case Verb::kClose: {
        if (!conn->lease.valid()) {
          Respond(conn, SerializeError(
                            cmd, Status::FailedPrecondition(
                                     "no session open")));
          return;
        }
        conn->lease.Release();
        Respond(conn, SerializeClose());
        return;
      }
      case Verb::kBatch: {
        // Unreachable in practice — AddLine intercepts BATCH envelopes
        // before they become pending commands — but mirror the shared
        // pipeline's nested-BATCH answer for robustness.
        Respond(conn, SerializeError(
                          cmd, Status::InvalidArgument(
                                   "BATCH is a framing envelope and "
                                   "cannot be nested")));
        return;
      }
    }
    Respond(conn, SerializeError(cmd, Status::InvalidArgument(
                                          "unhandled verb")));
  }

  /// Dispatches a complete batch as ONE job: the envelope buys one
  /// admission slot however many commands it carries (the amortization a
  /// batch exists for), and refusal is envelope-level — a single BUSY line
  /// under cmd "BATCH", since none of the commands started. The worker
  /// runs server/batch.h's planner-backed executor against the conn's
  /// lease; the `busy` flag makes that worker the lease's only toucher.
  void HandleBatch(Conn* conn, std::vector<std::string> lines) {
    if (!Admit()) {
      RejectBusy(conn, "BATCH");
      return;
    }
    Job job;
    job.kind = Job::Kind::kBatch;
    job.conn_id = conn->id;
    job.batch = std::move(lines);
    job.lease = &conn->lease;
    Dispatch(conn, std::move(job));
  }

  void DispatchCompute(Conn* conn, ComputePlan plan) {
    DiscEngine* engine = &conn->lease.engine();
    const char* cmd = VerbToString(plan.verb);
    if (plan.flight_key.empty()) {
      // Not coalescable (own-cache hit or unpoolable engine): a plain
      // compute job, still subject to admission.
      if (!Admit()) {
        RejectBusy(conn, cmd);
        return;
      }
      Job job;
      job.kind = Job::Kind::kCompute;
      job.conn_id = conn->id;
      job.plan = std::move(plan);
      job.engine = engine;
      Dispatch(conn, std::move(job));
      return;
    }
    // Mark busy BEFORE JoinFlight: a follower's waiter may fire from the
    // leader's thread at any moment after registration, and it touches
    // this conn's engine.
    conn->busy = true;
    FlightOutcome cached;
    const uint64_t conn_id = conn->id;
    const Verb verb = plan.verb;
    // The trailing arguments advertise this flight to JoinAdaptFollower
    // (meaningful only if we lead; empty family for ZOOM and non-DisC
    // plans). Optimistic: if the leader itself finds a seed below, it
    // retracts the advertisement — its outcome will be adapted, hence not
    // seedable.
    const FlightJoin join = manager_.JoinFlight(
        plan.flight_key,
        [this, conn_id, engine, verb](const FlightOutcome& outcome) {
          AdoptAndComplete(conn_id, engine, verb, outcome);
        },
        &cached, plan.adapt_family, plan.diversify.radius);
    switch (join) {
      case FlightJoin::kLeader: {
        if (!Admit()) {
          // The flight exists but its computation was refused: finish it
          // with the BUSY line so any follower that squeezed in gets the
          // same answer instead of waiting forever.
          conn->busy = false;
          const std::string busy = BusyLine(cmd);
          FlightOutcome refused;
          refused.response = busy;
          manager_.FinishFlight(plan.flight_key, std::move(refused),
                                /*memoize=*/false);
          busy_rejections_.fetch_add(1);
          Respond(conn, busy);
          return;
        }
        if (plan.adapt) {
          // Radius-aware coalescing (§5.2): a memoized DIVERSIFY in the
          // same family at a different radius seeds this computation —
          // the leader will adopt its capsule and zoom instead of
          // computing cold.
          FlightOutcome seed;
          double seed_radius = 0.0;
          if (manager_.FindAdaptableSeed(plan.adapt_family,
                                         plan.diversify.radius, &seed,
                                         &seed_radius)) {
            plan.seed = std::move(seed.capsule);
            plan.seed_radius = seed_radius;
            manager_.RetractAdaptFlight(plan.flight_key);
          } else if (manager_.JoinAdaptFollower(
                         plan.adapt_family, plan.diversify.radius,
                         [this, conn_id, engine,
                          plan](const FlightOutcome& outcome) {
                           AdaptFollowerComplete(conn_id, engine, plan,
                                                 outcome);
                         })) {
            // Proactive §5.2 adaptation ACROSS requests: a flight in the
            // same family at another radius is in the air right now. We
            // stay the leader of OUR flight (same-key requests keep
            // coalescing onto us) but run nothing: when that leader
            // finishes, AdaptFollowerComplete — on its thread, exempt
            // from admission like any follower — adapts its capsule to
            // our radius and finishes our flight. Our own advertisement
            // is retracted for the same reason as the memo-seed path.
            manager_.RetractAdaptFlight(plan.flight_key);
            return;  // conn stays busy until the waiter's completion
          }
        }
        Job job;
        job.kind = Job::Kind::kLeader;
        job.conn_id = conn->id;
        job.flight_key = std::move(plan.flight_key);
        job.plan = std::move(plan);
        job.engine = engine;
        conn->busy = false;  // Dispatch re-marks it
        Dispatch(conn, std::move(job));
        return;
      }
      case FlightJoin::kFollower:
        // Nothing to do: the waiter owns the rest.
        return;
      case FlightJoin::kCached: {
        // Adoption is O(n); run it on a worker like everything else that
        // touches an engine. Exempt from admission — no computation.
        Job job;
        job.kind = Job::Kind::kAdopt;
        job.conn_id = conn->id;
        job.plan.verb = verb;
        job.engine = engine;
        job.outcome = std::move(cached);
        conn->busy = false;  // Dispatch re-marks it
        Dispatch(conn, std::move(job));
        return;
      }
    }
  }

  /// Admission check: executing + queued jobs against the configured
  /// budget. Loop-thread only.
  bool Admit() {
    return jobs_in_system_ < max_inflight_ + options_.max_pending;
  }

  std::string BusyLine(const char* cmd) {
    return SerializeError(
        cmd, Status::Busy("server overloaded (admission queue full); "
                          "retry later"));
  }

  void RejectBusy(Conn* conn, const char* cmd) {
    busy_rejections_.fetch_add(1);
    Respond(conn, BusyLine(cmd));
  }

  void Dispatch(Conn* conn, Job job) {
    conn->busy = true;
    ++jobs_in_system_;
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      jobs_.push_back(std::move(job));
    }
    work_cv_.notify_one();
  }

  void ProcessCompletions(bool draining) {
    std::deque<Completion> done;
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      done.swap(completions_);
    }
    for (Completion& completion : done) {
      if (completion.counts && jobs_in_system_ > 0) --jobs_in_system_;
      auto it = conns_.find(completion.conn_id);
      if (it == conns_.end()) continue;  // force-dropped during drain
      Conn* conn = it->second.get();
      conn->busy = false;
      if (completion.lease.valid()) {
        conn->lease = std::move(completion.lease);
      }
      if (completion.coalesced) coalesced_responses_.fetch_add(1);
      if (conn->dead) {
        Destroy(conn->id);
        continue;
      }
      if (completion.is_batch) {
        RespondBatch(conn, completion.batch);
      } else {
        Respond(conn, completion.response);
      }
      if (draining) {
        conn->no_more_input = true;
        conn->lines.clear();
      }
      if (conn->dead) {
        MaybeDestroy(conn);
      } else {
        Pump(conn);
      }
    }
  }

  void BeginDrain() {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    std::vector<uint64_t> idle;
    for (auto& [id, conn] : conns_) {
      conn->no_more_input = true;
      conn->lines.clear();
      if (!conn->busy && conn->out.empty()) idle.push_back(id);
    }
    for (uint64_t id : idle) Destroy(id);
  }

  // ---- writing ----

  void Respond(Conn* conn, const std::string& line) {
    if (conn->proto == Proto::kHttp) {
      // The body is exactly the protocol line + newline; the status is
      // derived from the line itself, so HTTP clients see proper codes
      // (Busy -> 503 with Retry-After) while the JSON stays authoritative.
      const int status = HttpStatusForProtocolLine(line);
      conn->out += WriteHttpResponse(status, line + "\n",
                                     conn->cur_keep_alive,
                                     status == 503 ? 1 : 0);
      if (!conn->cur_keep_alive) {
        // This response ends the connection: drop unserved pipelined
        // requests and close once the write buffer flushes.
        conn->no_more_input = true;
        conn->lines.clear();
      }
    } else {
      conn->out += line;
      conn->out += '\n';
    }
    FlushOut(conn);
    if (!conn->dead && conn->out.size() > kMaxOutBytes) Teardown(conn);
  }

  /// Writes a batch's response unit: the line protocol appends each line
  /// in command order; HTTP wraps the joined lines as one 200 body — the
  /// envelope succeeded, and per-command failures stay in-body exactly as
  /// the line protocol reports them (an envelope-level failure never
  /// reaches here; it is a prefailed single line with a mapped status).
  void RespondBatch(Conn* conn, const std::vector<std::string>& lines) {
    if (conn->proto == Proto::kHttp) {
      std::string body;
      for (const std::string& line : lines) {
        body += line;
        body += '\n';
      }
      conn->out +=
          WriteHttpResponse(200, body, conn->cur_keep_alive, 0);
      if (!conn->cur_keep_alive) {
        conn->no_more_input = true;
        conn->lines.clear();
      }
    } else {
      for (const std::string& line : lines) {
        conn->out += line;
        conn->out += '\n';
      }
    }
    FlushOut(conn);
    if (!conn->dead && conn->out.size() > kMaxOutBytes) Teardown(conn);
  }

  /// send until empty or EAGAIN; arms/disarms EPOLLOUT. Tears down on a
  /// write error (closed peer).
  void FlushOut(Conn* conn) {
    while (!conn->out.empty()) {
      const ssize_t wrote = ::send(conn->fd, conn->out.data(),
                                   conn->out.size(), MSG_NOSIGNAL);
      if (wrote > 0) {
        conn->out.erase(0, static_cast<size_t>(wrote));
        continue;
      }
      if (wrote < 0 && errno == EINTR) continue;
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      Teardown(conn);
      return;
    }
    UpdateWriteInterest(conn);
  }

  void UpdateWriteInterest(Conn* conn) {
    const bool want = !conn->out.empty();
    if (want == conn->want_write) return;
    conn->want_write = want;
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLET |
                   (want ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    event.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event);
  }

  // ---- lifecycle ----

  /// Marks the conn for destruction. Never destroys in place — callers up
  /// the stack still hold the pointer; MaybeDestroy at the safe points
  /// (end of Pump / OnConnEvent / completion handling) finishes the job.
  void Teardown(Conn* conn) { conn->dead = true; }

  void MaybeDestroy(Conn* conn) {
    if (conn->busy) return;
    if (conn->dead || (conn->no_more_input && conn->lines.empty() &&
                       conn->out.empty())) {
      Destroy(conn->id);
    }
  }

  void Destroy(uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn* conn = it->second.get();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conns_.erase(it);  // lease RAII returns the engine to the pool
    active_connections_.store(conns_.size());
  }

  // ---- worker threads ----

  void WorkerLoop() {
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(work_mutex_);
        work_cv_.wait(lock, [this] {
          return (workers_stop_ && jobs_.empty()) ||
                 (!jobs_.empty() && executing_ < max_inflight_);
        });
        if (jobs_.empty()) return;  // stop requested and fully drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
        ++executing_;
      }
      ExecuteJob(job);
      {
        std::lock_guard<std::mutex> lock(work_mutex_);
        --executing_;
      }
      work_cv_.notify_all();
    }
  }

  void ExecuteJob(Job& job) {
    const CommandContext ctx{&manager_, options_.engine_threads,
                             options_.default_backend,
                             options_.max_exact_points};
    Completion completion;
    completion.conn_id = job.conn_id;
    completion.counts = job.kind != Job::Kind::kAdopt;
    try {
      switch (job.kind) {
        case Job::Kind::kOpen: {
          EngineLease lease;
          completion.response = ExecuteOpen(ctx, job.request, &lease);
          completion.lease = std::move(lease);
          break;
        }
        case Job::Kind::kCompute: {
          completion.response =
              RunCompute(job.plan, *job.engine).response;
          break;
        }
        case Job::Kind::kLeader: {
          const ComputeResult result = RunCompute(job.plan, *job.engine);
          FlightOutcome outcome;
          outcome.response = result.response;
          if (result.ok) {
            outcome.capsule = std::make_shared<DiscEngine::SessionCapsule>(
                job.engine->ExportSession());
            if (result.seedable) {
              // A cold DisC-family DIVERSIFY: its capsule can seed
              // adapted answers at other radii in this family.
              outcome.adapt_family = job.plan.adapt_family;
              outcome.radius = job.plan.diversify.radius;
            }
          }
          manager_.FinishFlight(job.flight_key, std::move(outcome),
                                /*memoize=*/result.ok);
          completion.response = result.response;
          break;
        }
        case Job::Kind::kAdopt: {
          completion.response = AdoptOutcome(job.engine, job.plan.verb,
                                             job.outcome);
          completion.coalesced = true;
          break;
        }
        case Job::Kind::kBatch: {
          // ExecuteBatch never throws (per-command isolation happens
          // inside it) and finishes every flight it leads.
          completion.batch = ExecuteBatch(ctx, job.batch, job.lease,
                                          /*coalesce=*/true);
          completion.is_batch = true;
          break;
        }
      }
    } catch (const std::exception& e) {
      // Keep the flight honest even when the leader's computation threw:
      // followers must be released with the same error line.
      completion.response = SerializeError(
          "?",
          Status::IOError(std::string("internal error: ") + e.what()));
      if (job.kind == Job::Kind::kLeader) {
        FlightOutcome failed;
        failed.response = completion.response;
        manager_.FinishFlight(job.flight_key, std::move(failed),
                              /*memoize=*/false);
      }
    }
    PushCompletion(std::move(completion));
  }

  /// Installs a flight outcome into a follower/memo-hit engine and returns
  /// the line to send.
  std::string AdoptOutcome(DiscEngine* engine, Verb verb,
                           const FlightOutcome& outcome) {
    if (outcome.capsule != nullptr) {
      const Status adopted = engine->AdoptSession(*outcome.capsule);
      if (!adopted.ok()) {
        return SerializeError(VerbToString(verb), adopted);
      }
    }
    return outcome.response;
  }

  /// The follower waiter: runs on the leader's worker thread. The conn is
  /// busy for the whole window, so this thread is the engine's only
  /// toucher.
  void AdoptAndComplete(uint64_t conn_id, DiscEngine* engine, Verb verb,
                        const FlightOutcome& outcome) {
    Completion completion;
    completion.conn_id = conn_id;
    completion.coalesced = true;
    completion.counts = false;
    try {
      completion.response = AdoptOutcome(engine, verb, outcome);
    } catch (const std::exception& e) {
      completion.response = SerializeError(
          VerbToString(verb),
          Status::IOError(std::string("internal error: ") + e.what()));
    }
    PushCompletion(std::move(completion));
  }

  /// The proactive-adaptation waiter (§5.2 across requests): this conn
  /// leads its own flight but registered as an adapt-follower of an
  /// in-flight family leader at another radius instead of computing cold.
  /// Runs on that leader's worker thread once it finishes: when the
  /// leader's outcome is a seedable cold solve, adopt its capsule and zoom
  /// to our radius (DiscEngine::AdaptFrom — one computation instead of
  /// two); otherwise (leader failed, or itself adapted) compute cold. Then
  /// finish OUR flight so same-key followers and the memo see the result.
  /// Exempt from admission like any follower — the work rides the leader's
  /// slot.
  void AdaptFollowerComplete(uint64_t conn_id, DiscEngine* engine,
                             ComputePlan plan,
                             const FlightOutcome& leader) {
    Completion completion;
    completion.conn_id = conn_id;
    completion.coalesced = true;
    completion.counts = false;
    try {
      if (leader.capsule != nullptr && !leader.adapt_family.empty()) {
        plan.seed = leader.capsule;
        plan.seed_radius = leader.radius;
      }
      const ComputeResult result = RunCompute(plan, *engine);
      FlightOutcome outcome;
      outcome.response = result.response;
      if (result.ok) {
        outcome.capsule = std::make_shared<DiscEngine::SessionCapsule>(
            engine->ExportSession());
        if (result.seedable) {
          // The cold-fallback path can itself seed later adaptations.
          outcome.adapt_family = plan.adapt_family;
          outcome.radius = plan.diversify.radius;
        }
      }
      manager_.FinishFlight(plan.flight_key, std::move(outcome),
                            /*memoize=*/result.ok);
      completion.response = result.response;
    } catch (const std::exception& e) {
      completion.response = SerializeError(
          VerbToString(plan.verb),
          Status::IOError(std::string("internal error: ") + e.what()));
      FlightOutcome failed;
      failed.response = completion.response;
      manager_.FinishFlight(plan.flight_key, std::move(failed),
                            /*memoize=*/false);
    }
    PushCompletion(std::move(completion));
  }

  void PushCompletion(Completion completion) {
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(std::move(completion));
    }
    Wake();
  }

  void Wake() {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t wrote = ::write(wake_fd_, &one, sizeof(one));
  }

  void AddToEpoll(int fd, uint64_t id, uint32_t events) {
    epoll_event event{};
    event.events = events;
    event.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
  }

  const size_t max_inflight_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Loop-thread state.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 2;  // 0/1 are the listen/wake sentinels
  size_t jobs_in_system_ = 0;

  // Worker queue.
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<Job> jobs_;
  size_t executing_ = 0;
  bool workers_stop_ = false;

  // Completion queue (workers -> loop).
  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  std::mutex shutdown_mutex_;
  bool stopped_ = false;
  std::atomic<bool> stop_requested_{false};
  std::atomic<size_t> connections_accepted_{0};
  std::atomic<size_t> busy_rejections_{0};
  std::atomic<size_t> coalesced_responses_{0};
  std::atomic<size_t> active_connections_{0};
  std::atomic<size_t> http_requests_{0};
};

}  // namespace

Result<std::unique_ptr<DiscServer>> StartEventLoopServer(
    ServerOptions options) {
  auto server = std::make_unique<EventLoopServer>(std::move(options));
  DISC_RETURN_NOT_OK(server->Run());
  return std::unique_ptr<DiscServer>(std::move(server));
}

}  // namespace internal
}  // namespace disc
