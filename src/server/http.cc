#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <string_view>

namespace disc {

namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

std::string Lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsMethodChar(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '-';
}

/// Case-insensitive "does the comma-separated header value contain this
/// token" — Connection values can legitimately be lists.
bool HasToken(std::string_view value, std::string_view token) {
  const std::string lowered = Lower(value);
  size_t start = 0;
  while (start <= lowered.size()) {
    size_t comma = lowered.find(',', start);
    if (comma == std::string_view::npos) comma = lowered.size();
    if (Trim(std::string_view(lowered).substr(start, comma - start)) ==
        token) {
      return true;
    }
    start = comma + 1;
  }
  return false;
}

}  // namespace

HttpParser::Step HttpParser::Fail(Status status) {
  state_ = State::kFailed;
  error_ = std::move(status);
  return Step::kError;
}

bool HttpParser::TakeExpectContinue() {
  const bool value = expect_continue_;
  expect_continue_ = false;
  return value;
}

HttpParser::Step HttpParser::Emit(HttpRequest* request) {
  *request = std::move(current_);
  current_ = HttpRequest();
  state_ = State::kHead;
  body_remaining_ = 0;
  chunked_ = false;
  expect_continue_ = false;  // the body arrived; no interim response owed
  return Step::kRequest;
}

Status HttpParser::ParseHead(const std::string& head) {
  // Request line: METHOD SP request-target SP HTTP-version.
  size_t line_end = head.find('\n');
  std::string_view request_line(head.data(),
                                line_end == std::string::npos ? head.size()
                                                              : line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size()) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!std::all_of(method.begin(), method.end(), IsMethodChar)) {
    return Status::InvalidArgument("malformed HTTP method");
  }
  bool http11 = false;
  if (version == "HTTP/1.1") {
    http11 = true;
  } else if (version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version (want 1.0/1.1)");
  }
  current_.method = std::string(method);
  current_.target = std::string(target);
  current_.keep_alive = http11;

  // Headers. Only the four the transport needs are interpreted; everything
  // else is ignored.
  bool have_content_length = false;
  size_t content_length = 0;
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 1;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    if (eol == std::string::npos) eol = head.size();
    std::string_view line(head.data() + pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed HTTP header line");
    }
    const std::string name = Lower(Trim(line.substr(0, colon)));
    const std::string_view value = Trim(line.substr(colon + 1));
    if (name == "content-length") {
      size_t parsed = 0;
      const auto [end, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc() || end != value.data() + value.size()) {
        return Status::InvalidArgument("malformed Content-Length");
      }
      if (have_content_length && parsed != content_length) {
        return Status::InvalidArgument("conflicting Content-Length headers");
      }
      have_content_length = true;
      content_length = parsed;
    } else if (name == "transfer-encoding") {
      if (Lower(value) != "chunked") {
        return Status::Unimplemented("unsupported Transfer-Encoding: " +
                                     std::string(value));
      }
      chunked_ = true;
    } else if (name == "connection") {
      if (HasToken(value, "close")) {
        current_.keep_alive = false;
      } else if (HasToken(value, "keep-alive")) {
        current_.keep_alive = true;
      }
    } else if (name == "expect") {
      if (Lower(value) != "100-continue") {
        return Status::InvalidArgument("unsupported Expect header");
      }
      expect_continue_ = true;
    }
  }
  if (chunked_ && have_content_length) {
    return Status::InvalidArgument(
        "both Transfer-Encoding and Content-Length present");
  }
  if (have_content_length && content_length > kMaxHttpBodyBytes) {
    return Status::InvalidArgument("request body exceeds limit");
  }
  if (chunked_) {
    state_ = State::kChunkSize;
  } else if (content_length > 0) {
    state_ = State::kBody;
    body_remaining_ = content_length;
  } else {
    state_ = State::kHead;  // complete; Consume emits
    body_remaining_ = 0;
  }
  return Status::OK();
}

HttpParser::Step HttpParser::Consume(std::string* buffer,
                                     HttpRequest* request) {
  while (true) {
    switch (state_) {
      case State::kFailed:
        return Step::kError;

      case State::kHead: {
        // Tolerate blank line(s) between pipelined requests (RFC 9112 §2.2).
        while (!buffer->empty() &&
               (buffer->front() == '\r' || buffer->front() == '\n')) {
          if (buffer->front() == '\r' &&
              (buffer->size() < 2 || (*buffer)[1] != '\n')) {
            if (buffer->size() < 2) return Step::kNeedMore;
            return Fail(Status::InvalidArgument("stray CR before request"));
          }
          buffer->erase(0, buffer->front() == '\r' ? 2 : 1);
        }
        if (buffer->empty()) return Step::kNeedMore;
        // Head ends at the first blank line, CRLF or bare-LF style.
        const size_t lf_lf = buffer->find("\n\n");
        const size_t lf_crlf = buffer->find("\n\r\n");
        size_t term_pos = 0;
        size_t term_len = 0;
        if (lf_crlf != std::string::npos &&
            (lf_lf == std::string::npos || lf_crlf < lf_lf)) {
          term_pos = lf_crlf;
          term_len = 3;
        } else if (lf_lf != std::string::npos) {
          term_pos = lf_lf;
          term_len = 2;
        } else {
          if (buffer->size() > kMaxHttpHeadBytes) {
            return Fail(Status::InvalidArgument("HTTP head exceeds limit"));
          }
          return Step::kNeedMore;
        }
        if (term_pos + 1 > kMaxHttpHeadBytes) {
          return Fail(Status::InvalidArgument("HTTP head exceeds limit"));
        }
        const std::string head = buffer->substr(0, term_pos + 1);
        buffer->erase(0, term_pos + term_len);
        Status status = ParseHead(head);
        if (!status.ok()) return Fail(std::move(status));
        if (state_ == State::kHead) return Emit(request);  // no body
        break;  // fall through to body states with the remaining buffer
      }

      case State::kBody: {
        const size_t take = std::min(body_remaining_, buffer->size());
        current_.body.append(*buffer, 0, take);
        buffer->erase(0, take);
        body_remaining_ -= take;
        if (body_remaining_ > 0) return Step::kNeedMore;
        return Emit(request);
      }

      case State::kChunkSize: {
        const size_t eol = buffer->find('\n');
        if (eol == std::string::npos) {
          if (buffer->size() > 32) {
            return Fail(Status::InvalidArgument("malformed chunk size"));
          }
          return Step::kNeedMore;
        }
        std::string_view line(buffer->data(), eol);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        // Chunk extensions (";...") are ignored per RFC 9112 §7.1.1.
        const size_t semi = line.find(';');
        if (semi != std::string_view::npos) line = line.substr(0, semi);
        line = Trim(line);
        size_t size = 0;
        const auto [end, ec] = std::from_chars(
            line.data(), line.data() + line.size(), size, /*base=*/16);
        if (line.empty() || ec != std::errc() ||
            end != line.data() + line.size()) {
          return Fail(Status::InvalidArgument("malformed chunk size"));
        }
        if (size > kMaxHttpBodyBytes ||
            current_.body.size() + size > kMaxHttpBodyBytes) {
          return Fail(Status::InvalidArgument("request body exceeds limit"));
        }
        buffer->erase(0, eol + 1);
        if (size == 0) {
          state_ = State::kChunkTrailer;
        } else {
          state_ = State::kChunkData;
          body_remaining_ = size;
        }
        break;
      }

      case State::kChunkData: {
        const size_t take = std::min(body_remaining_, buffer->size());
        current_.body.append(*buffer, 0, take);
        buffer->erase(0, take);
        body_remaining_ -= take;
        if (body_remaining_ > 0) return Step::kNeedMore;
        state_ = State::kChunkDataEnd;
        break;
      }

      case State::kChunkDataEnd: {
        // The CRLF that closes every chunk's data.
        if (buffer->empty()) return Step::kNeedMore;
        if (buffer->front() == '\n') {
          buffer->erase(0, 1);
        } else if (buffer->front() == '\r') {
          if (buffer->size() < 2) return Step::kNeedMore;
          if ((*buffer)[1] != '\n') {
            return Fail(Status::InvalidArgument("malformed chunk delimiter"));
          }
          buffer->erase(0, 2);
        } else {
          return Fail(Status::InvalidArgument("malformed chunk delimiter"));
        }
        state_ = State::kChunkSize;
        break;
      }

      case State::kChunkTrailer: {
        // Trailer fields are read and discarded; a blank line ends them.
        const size_t eol = buffer->find('\n');
        if (eol == std::string::npos) {
          if (buffer->size() > kMaxHttpHeadBytes) {
            return Fail(Status::InvalidArgument("HTTP trailer exceeds limit"));
          }
          return Step::kNeedMore;
        }
        std::string_view line(buffer->data(), eol);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        const bool blank = line.empty();
        buffer->erase(0, eol + 1);
        if (blank) return Emit(request);
        break;
      }
    }
  }
}

const char* HttpReasonPhrase(int status_code) {
  switch (status_code) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string WriteHttpResponse(int status_code, const std::string& body,
                              bool keep_alive, int retry_after_seconds) {
  std::string response;
  response.reserve(body.size() + 128);
  response += "HTTP/1.1 ";
  response += std::to_string(status_code);
  response += ' ';
  response += HttpReasonPhrase(status_code);
  response += "\r\nContent-Type: application/json\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\n";
  if (retry_after_seconds > 0) {
    response += "Retry-After: ";
    response += std::to_string(retry_after_seconds);
    response += "\r\n";
  }
  response += keep_alive ? "Connection: keep-alive\r\n\r\n"
                         : "Connection: close\r\n\r\n";
  response += body;
  return response;
}

int HttpStatusForProtocolLine(const std::string& line) {
  if (line.rfind("{\"ok\":true", 0) == 0) return 200;
  static constexpr std::string_view kMarker = "\"code\":\"";
  const size_t start = line.find(kMarker);
  if (start == std::string::npos) return 500;
  const size_t code_start = start + kMarker.size();
  const size_t code_end = line.find('"', code_start);
  if (code_end == std::string::npos) return 500;
  const std::string_view code(line.data() + code_start, code_end - code_start);
  if (code == "Busy") return 503;
  if (code == "InvalidArgument") return 400;
  if (code == "NotFound") return 404;
  if (code == "FailedPrecondition") return 409;
  if (code == "Unimplemented") return 501;
  return 500;
}

Result<std::string> HttpRequestToCommandLine(const HttpRequest& request) {
  std::string_view verb;
  if (request.target == "/open") {
    verb = "OPEN";
  } else if (request.target == "/diversify") {
    verb = "DIVERSIFY";
  } else if (request.target == "/zoom") {
    verb = "ZOOM";
  } else if (request.target == "/stats") {
    verb = "STATS";
  } else if (request.target == "/close") {
    verb = "CLOSE";
  } else {
    // /batch never reaches this mapping: the event loop frames it into a
    // batch unit before the one-command translation applies.
    return Status::NotFound(
        "no such endpoint (want /open /diversify /zoom /stats /close "
        "/batch): " +
        request.target);
  }
  const bool method_ok =
      request.method == "POST" ||
      (request.method == "GET" && request.target == "/stats");
  if (!method_ok) {
    return Status::InvalidArgument("endpoint " + request.target +
                                   " requires POST");
  }
  std::string line(verb);
  std::string args(Trim(request.body));
  if (!args.empty()) {
    std::replace_if(
        args.begin(), args.end(),
        [](char c) { return c == '\n' || c == '\r' || c == '\t'; }, ' ');
    line += ' ';
    line += args;
  }
  return line;
}

}  // namespace disc
