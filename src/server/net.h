// Blocking TCP primitives for the disc_serve transport: listen/connect
// helpers plus a buffered newline-delimited channel. POSIX sockets only —
// the daemon targets Linux; nothing here is performance-critical (the
// engine work dominates every request by orders of magnitude).

#ifndef DISC_SERVER_NET_H_
#define DISC_SERVER_NET_H_

#include <string>
#include <utility>

#include "util/status.h"

namespace disc {

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port) with SO_REUSEADDR set. Returns the file descriptor.
Result<int> ListenTcp(const std::string& host, int port);

/// The port a listening socket is actually bound to (resolves port 0).
Result<int> ListenPort(int listen_fd);

/// Connects to host:port. Returns the file descriptor.
Result<int> ConnectTcp(const std::string& host, int port);

/// Closes a socket if it is open; idempotent.
void CloseSocket(int* fd);

/// Puts a file descriptor into non-blocking mode (O_NONBLOCK). Used by the
/// event-loop server; the blocking transport below never calls it.
Status SetNonBlocking(int fd);

/// A buffered line channel over a connected socket. Does NOT own the fd.
/// ReadLine strips the trailing '\n' (and a '\r' before it); WriteLine
/// appends the '\n'. Not thread-safe — one channel per connection handler.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}

  /// Reads the next line, blocking. NotFound on clean EOF (peer closed),
  /// IOError on a socket error.
  Result<std::string> ReadLine();

  /// Writes `line` plus '\n', blocking until fully sent. IOError on a
  /// socket error (including a closed peer; SIGPIPE is suppressed).
  Status WriteLine(const std::string& line);

 private:
  int fd_;
  std::string buffer_;
};

/// A client-side connection: owns the socket, speaks the line protocol.
/// Move-only; closes on destruction.
class LineClient {
 public:
  static Result<LineClient> Connect(const std::string& host, int port);

  LineClient(LineClient&& other) noexcept
      : fd_(other.fd_), channel_(std::move(other.channel_)) {
    other.fd_ = -1;
  }
  LineClient& operator=(LineClient&& other) noexcept;
  ~LineClient() { CloseSocket(&fd_); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  Status SendLine(const std::string& line) { return channel_.WriteLine(line); }
  Result<std::string> RecvLine() { return channel_.ReadLine(); }

  /// Sends one command and returns its one response line.
  Result<std::string> Roundtrip(const std::string& line);

 private:
  explicit LineClient(int fd) : fd_(fd), channel_(fd) {}

  int fd_ = -1;
  LineChannel channel_;
};

}  // namespace disc

#endif  // DISC_SERVER_NET_H_
