// Blocking TCP primitives for the disc_serve transport: listen/connect
// helpers plus a buffered newline-delimited channel. POSIX sockets only —
// the daemon targets Linux; nothing here is performance-critical (the
// engine work dominates every request by orders of magnitude).

#ifndef DISC_SERVER_NET_H_
#define DISC_SERVER_NET_H_

#include <string>
#include <utility>

#include "util/status.h"

namespace disc {

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port) with SO_REUSEADDR set. Returns the file descriptor.
Result<int> ListenTcp(const std::string& host, int port);

/// The port a listening socket is actually bound to (resolves port 0).
Result<int> ListenPort(int listen_fd);

/// Connects to host:port. Returns the file descriptor.
Result<int> ConnectTcp(const std::string& host, int port);

/// Closes a socket if it is open; idempotent.
void CloseSocket(int* fd);

/// Puts a file descriptor into non-blocking mode (O_NONBLOCK). Used by the
/// event-loop server; the blocking transport below never calls it.
Status SetNonBlocking(int fd);

/// A buffered line channel over a connected socket. Does NOT own the fd.
/// ReadLine strips the trailing '\n' (and a '\r' before it); WriteLine
/// appends the '\n'. Not thread-safe — one channel per connection handler.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}

  /// Reads the next line, blocking. NotFound on clean EOF (peer closed),
  /// IOError on a socket error.
  Result<std::string> ReadLine();

  /// Writes `line` plus '\n', blocking until fully sent. IOError on a
  /// socket error (including a closed peer; SIGPIPE is suppressed).
  Status WriteLine(const std::string& line);

 private:
  int fd_;
  std::string buffer_;
};

/// A client-side connection: owns the socket, speaks the line protocol.
/// Move-only; closes on destruction.
class LineClient {
 public:
  static Result<LineClient> Connect(const std::string& host, int port);

  LineClient(LineClient&& other) noexcept
      : fd_(other.fd_), channel_(std::move(other.channel_)) {
    other.fd_ = -1;
  }
  LineClient& operator=(LineClient&& other) noexcept;
  ~LineClient() { CloseSocket(&fd_); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  Status SendLine(const std::string& line) { return channel_.WriteLine(line); }
  Result<std::string> RecvLine() { return channel_.ReadLine(); }

  /// Sends one command and returns its one response line.
  Result<std::string> Roundtrip(const std::string& line);

 private:
  explicit LineClient(int fd) : fd_(fd), channel_(fd) {}

  int fd_ = -1;
  LineChannel channel_;
};

/// One parsed HTTP response. `head` is the raw status line + headers
/// (tests inspect e.g. Retry-After); `body` is the exact payload — for
/// disc_serve, the protocol JSON line plus its trailing newline.
struct HttpResponse {
  int status = 0;
  std::string head;
  std::string body;
};

/// A minimal blocking HTTP/1.1 client for the event loop's HTTP transport:
/// one keep-alive connection (= one disc_serve session), sequential
/// round-trips, Content-Length responses only (all the daemon sends).
/// Used by disc_client --http, the serve bench's HTTP leg, and tests.
/// Move-only; closes on destruction.
class HttpClient {
 public:
  static Result<HttpClient> Connect(const std::string& host, int port);

  HttpClient(HttpClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  HttpClient& operator=(HttpClient&& other) noexcept;
  ~HttpClient() { CloseSocket(&fd_); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// POSTs `body` to `path` and reads the full response. `extra_headers`,
  /// when non-empty, is spliced into the request head verbatim (each line
  /// must end with \r\n) — tests use it for Connection: close and friends.
  Result<HttpResponse> Post(const std::string& path, const std::string& body,
                            const std::string& extra_headers = "");

  /// GET (the read-only /stats endpoint accepts it).
  Result<HttpResponse> Get(const std::string& path);

 private:
  explicit HttpClient(int fd) : fd_(fd) {}

  Result<HttpResponse> Roundtrip(const std::string& request_text);

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace disc

#endif  // DISC_SERVER_NET_H_
