#!/usr/bin/env python3
"""Replay documented daemon transcripts against a freshly built disc_serve.

Scans README.md and docs/PROTOCOL.md for marked transcript pairs:

    <!-- transcript: line -->        (or: http)
    ```sh                            the commands block
    ...
    ```
    <!-- transcript-output -->
    ```json                          the expected responses, one per line
    ...
    ```

Command extraction:
  * line transcripts: a `printf '...' | ./build/disc_client` pipeline (the
    quoted printf body holds one command per line), or a plain fenced block
    with one command per line.
  * http transcripts: one `curl` invocation per line; the URL's path and
    the `-d '...'` body map onto the protocol exactly as the server does
    (POST with -d, GET without). Non-curl lines (daemon startup) are
    ignored. All requests in one transcript ride ONE keep-alive
    connection, i.e. one session.

Batch framing (docs/PROTOCOL.md section 9) is understood on both sides:
a line-transcript `BATCH n=<k>` envelope ships the next k commands as
one frame and expects k response lines for it, and an http response
whose body holds several lines (POST /batch) contributes one expected
line per body line. Multi-line bodies skip the per-line status check —
the envelope's single status is not a per-slot statement.

Each transcript gets a FRESH daemon (engine-pool state such as `reused`
and `sessions_served` must match a cold start). Matching is exact bytes
except: `"wall_ms":<number>` is wildcarded on both sides, and a literal
`...` in an expected line matches anything (abridged arrays). For http
transcripts the received status code must also match the PROTOCOL.md
mapping table derived from the body.

  --update   rewrite each expected-output block in place with the actual
             daemon responses (wall_ms and previously-abridged spans kept
             abridged), instead of failing on mismatch.

Run from the repo root; needs only the Python stdlib and a built daemon
(default ./build/disc_serve, override with --daemon=).
"""

import argparse
import re
import shlex
import socket
import subprocess
import sys
import time
from pathlib import Path

DOC_FILES = ["README.md", "docs/PROTOCOL.md"]
MARKER_RE = re.compile(r"<!--\s*transcript:\s*(line|http)\s*-->")
OUTPUT_MARKER_RE = re.compile(r"<!--\s*transcript-output\s*-->")
FENCE_RE = re.compile(r"^```")
WALL_MS_RE = re.compile(r'"wall_ms":[0-9][0-9.eE+-]*')
BANNER_RE = re.compile(r"disc_serve listening on ([0-9.]+):([0-9]+)")

# PROTOCOL.md section 4: HTTP status derived from the response body.
STATUS_FOR_CODE = {
    "Busy": 503,
    "InvalidArgument": 400,
    "NotFound": 404,
    "FailedPrecondition": 409,
    "Unimplemented": 501,
}


def expected_status(body_line):
    if '"ok":true' in body_line:
        return 200
    match = re.search(r'"code":"([A-Za-z]+)"', body_line)
    if match:
        return STATUS_FOR_CODE.get(match.group(1), 500)
    return 500


class Transcript:
    def __init__(self, path, kind, command_lines, output_start, output_end,
                 expected):
        self.path = path          # source doc
        self.kind = kind          # "line" | "http"
        self.command_lines = command_lines
        self.output_start = output_start  # doc line index of first expected
        self.output_end = output_end      # one past last expected
        self.expected = expected          # list of expected response lines


def parse_docs(root, files):
    """Yields Transcript objects for every marked pair in the given docs."""
    transcripts = []
    for rel in files:
        path = root / rel
        if not path.exists():
            continue
        lines = path.read_text().splitlines()
        i = 0
        while i < len(lines):
            marker = MARKER_RE.search(lines[i])
            if not marker:
                i += 1
                continue
            kind = marker.group(1)
            block, _, i = read_fenced_block(lines, i + 1, path)
            while i < len(lines) and not lines[i].strip():
                i += 1
            if i >= len(lines) or not OUTPUT_MARKER_RE.search(lines[i]):
                sys.exit(f"{path}:{i + 1}: expected <!-- transcript-output -->"
                         f" after the {kind} transcript block")
            expected, start, i = read_fenced_block(lines, i + 1, path)
            transcripts.append(
                Transcript(path, kind, block, start, start + len(expected),
                           expected))
    return transcripts


def read_fenced_block(lines, i, path):
    """Returns (content lines, content start index, index past the fence)."""
    while i < len(lines) and not FENCE_RE.match(lines[i]):
        if lines[i].strip():
            sys.exit(f"{path}:{i + 1}: expected a fenced block after a "
                     "transcript marker")
        i += 1
    if i >= len(lines):
        sys.exit(f"{path}: unterminated transcript block")
    i += 1
    start = i
    block = []
    while i < len(lines) and not FENCE_RE.match(lines[i]):
        block.append(lines[i])
        i += 1
    if i >= len(lines):
        sys.exit(f"{path}: unterminated fenced block")
    return block, start, i + 1


def extract_line_commands(block):
    text = "\n".join(block)
    match = re.search(r"printf '(.*?)'", text, re.DOTALL)
    if match:
        return [line for line in match.group(1).split("\n") if line.strip()]
    return [line for line in block if line.strip()
            and not line.lstrip().startswith(("#", "./", "$"))]


def extract_http_requests(block):
    """[(method, path, body)] from curl lines (backslash-joined first)."""
    joined, pending = [], ""
    for line in block:
        if line.rstrip().endswith("\\"):
            pending += line.rstrip()[:-1] + " "
            continue
        joined.append(pending + line)
        pending = ""
    requests = []
    for line in joined:
        if "curl" not in line:
            continue
        tokens = shlex.split(line)
        url, body = None, None
        j = 0
        while j < len(tokens):
            token = tokens[j]
            if token.startswith("http://"):
                url = token
            elif token in ("-d", "--data", "--data-raw"):
                j += 1
                body = tokens[j]
            j += 1
        if url is None:
            sys.exit(f"unparseable curl line in transcript: {line}")
        path = "/" + url.split("//", 1)[1].split("/", 1)[1]
        method = "POST" if body is not None else "GET"
        requests.append((method, path, body or ""))
    return requests


def start_daemon(daemon_path):
    proc = subprocess.Popen(
        [str(daemon_path), "--port=0"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    banner = proc.stdout.readline()
    match = BANNER_RE.search(banner)
    if not match:
        proc.kill()
        sys.exit(f"daemon did not print its listening banner: {banner!r}")
    return proc, match.group(1), int(match.group(2))


def recv_line(sock, buffered):
    while b"\n" not in buffered:
        chunk = sock.recv(65536)
        if not chunk:
            sys.exit("daemon closed the connection mid-transcript")
        buffered += chunk
    line, _, rest = buffered.partition(b"\n")
    return line.decode(), rest


BATCH_RE = re.compile(r"BATCH\s+n=(\d+)")


def run_line_transcript(host, port, commands):
    responses = []
    with socket.create_connection((host, port), timeout=30) as sock:
        buffered = b""
        i = 0
        while i < len(commands):
            command = commands[i]
            sock.sendall(command.encode() + b"\n")
            i += 1
            match = BATCH_RE.fullmatch(command.strip())
            frame = int(match.group(1)) if match else 0
            expect = 1  # a bare command — or a malformed envelope — answers 1
            if 1 <= frame <= 64:
                if i + frame > len(commands):
                    sys.exit(f"BATCH n={frame} frame runs past the end of "
                             "the transcript")
                payload = "".join(c + "\n" for c in commands[i:i + frame])
                sock.sendall(payload.encode())
                i += frame
                expect = frame
            for _ in range(expect):
                line, buffered = recv_line(sock, buffered)
                responses.append((None, line))
    return responses


def run_http_transcript(host, port, requests):
    responses = []
    with socket.create_connection((host, port), timeout=30) as sock:
        reader = sock.makefile("rb")
        for method, path, body in requests:
            payload = body.encode()
            head = (f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: {len(payload)}\r\n\r\n")
            sock.sendall(head.encode() + payload)
            status, body_text = read_http_response(reader)
            lines = body_text.rstrip("\n").split("\n")
            if len(lines) > 1:  # a batch body: one expected line per slot
                responses.extend((None, line) for line in lines)
            else:
                responses.append((status, lines[0]))
    return responses


def read_http_response(reader):
    status_line = reader.readline().decode()
    status = int(status_line.split(" ", 2)[1])
    length = None
    while True:
        header = reader.readline().decode()
        if header in ("\r\n", "\n", ""):
            break
        name, _, value = header.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if status == 100:  # interim response: real one follows
        return read_http_response(reader)
    if length is None:
        sys.exit(f"response without Content-Length: {status_line!r}")
    return status, reader.read(length).decode()


def normalize(line):
    return WALL_MS_RE.sub('"wall_ms":#', line)


def matches(expected, actual):
    pattern = re.escape(normalize(expected.strip())).replace(
        re.escape("..."), ".*")
    return re.fullmatch(pattern, normalize(actual)) is not None


def abridge(actual, expected):
    """--update: keep the doc's wall_ms/`...` abridgements where they still
    match the fresh output; otherwise take the actual line verbatim."""
    if expected is not None and matches(expected, actual):
        return expected
    return WALL_MS_RE.sub('"wall_ms":0', actual)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--daemon", default="build/disc_serve")
    parser.add_argument("--root", default=".")
    parser.add_argument("--update", action="store_true")
    args = parser.parse_args()
    root = Path(args.root).resolve()
    daemon = (root / args.daemon).resolve()
    if not daemon.exists():
        sys.exit(f"daemon binary not found: {daemon} (build it first)")

    transcripts = parse_docs(root, DOC_FILES)
    if not transcripts:
        sys.exit("no marked transcripts found — the docs lost their markers?")

    failures = 0
    updates = {}  # path -> [(start, end, new_lines)]
    for transcript in transcripts:
        proc, host, port = start_daemon(daemon)
        try:
            if transcript.kind == "line":
                commands = extract_line_commands(transcript.command_lines)
                responses = run_line_transcript(host, port, commands)
            else:
                requests = extract_http_requests(transcript.command_lines)
                responses = run_http_transcript(host, port, requests)
        finally:
            proc.terminate()
            proc.wait(timeout=10)

        where = f"{transcript.path.relative_to(root)}:{transcript.output_start}"
        if len(responses) != len(transcript.expected):
            print(f"FAIL {where}: {len(transcript.expected)} expected "
                  f"lines, {len(responses)} responses", file=sys.stderr)
            failures += 1
            continue
        new_lines = []
        for k, (status, actual) in enumerate(responses):
            expected = transcript.expected[k]
            new_lines.append(abridge(actual, expected))
            if not matches(expected, actual):
                if not args.update:
                    print(f"FAIL {where} response {k + 1}:\n"
                          f"  expected: {expected.strip()}\n"
                          f"  actual:   {actual}", file=sys.stderr)
                    failures += 1
            if status is not None and status != expected_status(actual):
                print(f"FAIL {where} response {k + 1}: HTTP status {status} "
                      f"but the body maps to {expected_status(actual)}",
                      file=sys.stderr)
                failures += 1
        if args.update and new_lines != transcript.expected:
            updates.setdefault(transcript.path, []).append(
                (transcript.output_start, transcript.output_end, new_lines))
        print(f"ok   {where}: {len(responses)} responses "
              f"({transcript.kind})")

    for path, edits in updates.items():
        lines = path.read_text().splitlines()
        for start, end, new_lines in sorted(edits, reverse=True):
            lines[start:end] = new_lines
        path.write_text("\n".join(lines) + "\n")
        print(f"updated {path.relative_to(root)}")

    if failures:
        sys.exit(f"{failures} transcript mismatch(es)")
    print(f"all {len(transcripts)} transcripts verified")


if __name__ == "__main__":
    main()
