#!/usr/bin/env python3
"""Checks that code paths referenced from the docs still exist in the tree.

Scans the markdown documentation (README.md, BUILDING.md, ROADMAP.md and
docs/*.md) for backticked references to repository paths — `src/...`,
`tests/...`, `bench/...`, `examples/...`, `tools/...`, `docs/...` — and
fails when a referenced path no longer exists, so renames and deletions
cannot silently rot the documentation.

The inverse direction is checked too: every subdirectory of src/ must be
mentioned in docs/ARCHITECTURE.md (the layer map), so a new layer cannot
land undocumented. CI runs this in the docs job; run it locally from the
repo root:

    python3 tools/check_doc_refs.py
"""

import glob
import os
import re
import sys

DOC_FILES = ["README.md", "BUILDING.md", "ROADMAP.md"] + sorted(
    glob.glob("docs/*.md")
)

# Inline code spans only: path-shaped references are expected to be
# backticked; prose mentions are not checked.
CODE_SPAN = re.compile(r"`([^`]+)`")

# A path-shaped token inside a code span. Anchored at the start (possibly
# after ./) so flags like --baseline bench/... still match their path part.
PATH_TOKEN = re.compile(
    r"(?:^|[\s=])((?:src|tests|bench|examples|tools|docs)/[A-Za-z0-9_.*/-]+)"
)


def candidate_paths(span: str):
    for match in PATH_TOKEN.finditer(span):
        yield match.group(1).rstrip(".,:;")


def path_exists(path: str) -> bool:
    if "*" in path:
        return bool(glob.glob(path))
    # `src/server/` and `src/server` both mean the directory; a bare stem
    # like `src/core/zoom` covers its .h/.cc pair.
    return (
        os.path.exists(path)
        or os.path.isdir(path.rstrip("/"))
        or bool(glob.glob(path + ".*"))
    )


ARCHITECTURE_DOC = "docs/ARCHITECTURE.md"


def undocumented_src_subdirs():
    """src/ subdirectories (layers) that docs/ARCHITECTURE.md never names."""
    if not os.path.isdir("src") or not os.path.exists(ARCHITECTURE_DOC):
        return []
    with open(ARCHITECTURE_DOC, encoding="utf-8") as handle:
        architecture = handle.read()
    undocumented = []
    for entry in sorted(os.listdir("src")):
        if not os.path.isdir(os.path.join("src", entry)):
            continue
        if f"src/{entry}" not in architecture:
            undocumented.append(entry)
    return undocumented


def main() -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    os.chdir(repo_root)

    missing = []
    checked = 0
    for doc in DOC_FILES:
        if not os.path.exists(doc):
            continue
        with open(doc, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                for span in CODE_SPAN.findall(line):
                    for path in candidate_paths(span):
                        checked += 1
                        if not path_exists(path):
                            missing.append(f"{doc}:{lineno}: `{path}`")

    failed = False
    if missing:
        failed = True
        print("Documentation references paths that do not exist:")
        for entry in missing:
            print(f"  {entry}")
        print(
            f"\n{len(missing)} stale reference(s) out of {checked} checked. "
            "Update the docs (or the checker's rules in "
            "tools/check_doc_refs.py if the reference is intentional)."
        )

    undocumented = undocumented_src_subdirs()
    if undocumented:
        failed = True
        print(f"src/ layers missing from {ARCHITECTURE_DOC}:")
        for entry in undocumented:
            print(f"  src/{entry}/")
        print(
            "\nEvery src/ subdirectory must appear in the layer map — add a "
            "paragraph for the new layer."
        )

    if failed:
        return 1
    print(
        f"OK: {checked} doc path references all resolve; every src/ layer "
        f"is documented in {ARCHITECTURE_DOC}."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
