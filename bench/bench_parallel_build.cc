// Parallel neighborhood construction: the threads-matrix benchmark.
//
// CI runs this binary twice — DISC_THREADS=1 and DISC_THREADS=4 — and
// gates two properties across the legs (bench/diff_bench_json.py):
//   * determinism: every counter reported here (edges, node accesses,
//     range queries, count checksums) must be bit-identical across legs;
//   * speedup: the 4-thread leg must win graph-build wall time by >= 1.5x
//     at n >= 10k on the brute-force path (pure distance compute, the one
//     whose scaling is machine-independent enough to hard-gate; the grid,
//     index, and counts passes are reported for trend watching but not
//     gated — they are memory/allocator-bound and noisier on CI runners).
//
// The benchmarks cover the three NeighborhoodGraph build paths plus the
// engine's neighborhood-count pass — the passes rewired onto
// util/parallel.h. Wall times land in google-benchmark's real_time; the
// deterministic counters double as the cross-leg identity proof.

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "graph/neighborhood.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace disc {
namespace bench {
namespace {

// The matrix leg this process runs: worker threads for every parallel pass.
size_t BenchThreads() {
  static const size_t threads = [] {
    const char* env = std::getenv("DISC_THREADS");
    if (env == nullptr) return size_t{1};
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<size_t>(parsed) : size_t{1};
  }();
  return threads;
}

// One pool for the whole binary (workers persist across benchmarks, like a
// served engine's pool). Null at 1 thread so the serial paths run.
ThreadPool* BenchPool() {
  static ThreadPool* pool =
      BenchThreads() > 1 ? new ThreadPool(BenchThreads()) : nullptr;
  return pool;
}

// The leg's thread count is deliberately NOT a table column: the cross-leg
// identity gate keys rows by their labels, and both legs must produce the
// same keys (the leg is ambient — DISC_THREADS — and wall time lives in
// the *_ms column, which the deterministic gate ignores).
TableCollector* ParallelTable() {
  static TableCollector table(
      "Parallel neighborhood construction (threads from DISC_THREADS)",
      "parallel_build.csv", {"pass", "n", "build_ms", "edges",
                             "node_accesses"});
  return &table;
}

void AddParallelRow(const char* pass, size_t n, double ms, uint64_t edges,
                    uint64_t node_accesses) {
  ParallelTable()->AddRow({pass, std::to_string(n), FormatDouble(ms, 4),
                           std::to_string(edges),
                           std::to_string(node_accesses)});
}

// O(n^2) path: dim 4 keeps the grid accelerator out. The chunky workload
// the speedup gate measures.
void BM_GraphBrute(benchmark::State& state, size_t n) {
  Dataset dataset = MakeUniformDataset(n, 4, 42);
  EuclideanMetric metric;
  const double radius = 0.35;
  double ms = 0.0;
  uint64_t edges = 0;
  for (auto _ : state) {
    Stopwatch watch;
    NeighborhoodGraph graph(dataset, metric, radius, BenchPool());
    ms = watch.ElapsedMillis();
    edges = graph.num_edges();
    benchmark::DoNotOptimize(graph.num_edges());
  }
  state.counters["edges"] = static_cast<double>(edges);
  AddParallelRow("brute", n, ms, edges, 0);
}

// Grid path: the default for the paper's 2-D workloads.
void BM_GraphGrid(benchmark::State& state, size_t n) {
  const Dataset& dataset = Clustered(n, 2);
  const double radius = 0.03;
  double ms = 0.0;
  uint64_t edges = 0;
  for (auto _ : state) {
    Stopwatch watch;
    NeighborhoodGraph graph(dataset, Euclidean(), radius, BenchPool());
    ms = watch.ElapsedMillis();
    edges = graph.num_edges();
    benchmark::DoNotOptimize(graph.num_edges());
  }
  state.counters["edges"] = static_cast<double>(edges);
  AddParallelRow("grid", n, ms, edges, 0);
}

// Index-backed path (one range query per object) over a bulk-loaded tree;
// node accesses must be bit-identical across legs (per-thread sinks summed).
void BM_GraphIndex(benchmark::State& state, size_t n) {
  const Dataset& dataset = Clustered(n, 2);
  MTreeOptions options;
  options.build.strategy = BuildStrategy::kBulkLoad;
  MTree* tree = CachedTree(dataset, Euclidean(), options);
  const double radius = 0.03;
  double ms = 0.0;
  uint64_t edges = 0;
  uint64_t accesses = 0;
  for (auto _ : state) {
    tree->ResetStats();
    Stopwatch watch;
    NeighborhoodGraph graph(*tree, radius, BenchPool());
    ms = watch.ElapsedMillis();
    edges = graph.num_edges();
    accesses = tree->stats().node_accesses;
    benchmark::DoNotOptimize(graph.num_edges());
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["node_accesses"] = static_cast<double>(accesses);
  state.counters["range_queries"] =
      static_cast<double>(tree->stats().range_queries);
  AddParallelRow("index", n, ms, edges, accesses);
}

// The engine's CountsForRadius pass (Greedy-DisC initialization): one range
// query per object, counts checksummed for the cross-leg identity gate.
void BM_Counts(benchmark::State& state, size_t n) {
  const Dataset& dataset = Clustered(n, 2);
  MTree* tree = CachedTree(dataset, Euclidean());
  const double radius = 0.03;
  double ms = 0.0;
  uint64_t checksum = 0;
  uint64_t accesses = 0;
  std::vector<uint32_t> counts;
  for (auto _ : state) {
    tree->ResetStats();
    Stopwatch watch;
    tree->ComputeNeighborCountsPostBuild(radius, &counts, BenchPool());
    ms = watch.ElapsedMillis();
    checksum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      checksum += counts[i] * (i + 1);  // order-sensitive checksum
    }
    accesses = tree->stats().node_accesses;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["counts_checksum"] = static_cast<double>(checksum);
  state.counters["node_accesses"] = static_cast<double>(accesses);
  AddParallelRow("counts", n, ms, 0, accesses);
}

[[maybe_unused]] const bool registered = [] {
  const size_t kSizes[] = {10000, 20000};
  for (size_t n : kSizes) {
    for (auto& [name, fn] :
         {std::pair<const char*, void (*)(benchmark::State&, size_t)>{
              "GraphBrute", BM_GraphBrute},
          {"GraphGrid", BM_GraphGrid},
          {"GraphIndex", BM_GraphIndex},
          {"Counts", BM_Counts}}) {
      std::string bench_name =
          "Parallel/" + std::string(name) + "/n=" + std::to_string(n);
      auto* fn_copy = fn;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [fn_copy, n](benchmark::State& state) { fn_copy(state, n); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
