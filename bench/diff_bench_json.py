#!/usr/bin/env python3
"""Perf-trajectory gate: diff a BENCH_pr.json against the committed baseline.

BENCH_pr.json (produced by the CI bench job, see .github/workflows/ci.yml) is
a `jq -s` merge of google-benchmark JSON files and the paper-style table JSON
twins ({"title", "header", "rows"}). This tool extracts the *deterministic*
metrics from both shapes — node accesses, distance computations, node counts,
fat factors — and fails when the candidate regressed by more than the
threshold against the baseline.

Wall-clock metrics (real_time / cpu_time / *_ms columns) are machine
dependent and excluded by default; pass --check-time to gate them too (only
meaningful when baseline and candidate ran on comparable hardware).

Two additional modes back the CI threads matrix (both legs run on the same
runner, so their wall clocks ARE comparable):

  --require-identical
      Any deterministic-metric delta beyond the threshold in EITHER
      direction fails (improvements too). With --threshold 0 this demands
      bit-identical metrics — how CI proves the --threads=4 leg computes
      exactly what the --threads=1 leg computes.

  --require-speedup FACTOR --speedup-metric REGEX
      Extracts the wall-clock metrics whose key matches REGEX from both
      files and fails unless baseline/candidate >= FACTOR for every match
      (and unless at least one key matched). How CI proves the parallel
      leg actually wins graph-build wall time.

Candidate-side absolute bounds (usable with or without --baseline; a
--baseline may be omitted entirely when only bounds are requested):

  --require-floor REGEX=VALUE / --require-ceiling REGEX=VALUE
      Every candidate metric (deterministic or wall-clock) whose key
      matches REGEX must be >= / <= VALUE. Repeatable; a bound matching
      no metric is a usage error. How CI pins the serve bench's
      requests/sec floor, p99 ceiling, and mismatches == 0.

Exit codes: 0 ok, 1 regression or missing benchmark, 2 usage/input error.

Usage:
  diff_bench_json.py --baseline bench/baseline/BENCH_baseline.json \
                     --candidate bench-out/BENCH_pr.json [--threshold 0.15]

  # threads-matrix determinism + speedup (CI bench-compare job):
  diff_bench_json.py --baseline t1/BENCH_parallel.json \
                     --candidate t4/BENCH_parallel.json \
                     --threshold 0 --require-identical
  diff_bench_json.py --baseline t1/BENCH_parallel.json \
                     --candidate t4/BENCH_parallel.json \
                     --require-speedup 1.5 \
                     --speedup-metric 'Parallel/GraphBrute/'

Regenerating the baseline after an intentional perf change:
  run the CI bench job's commands locally (BUILDING.md) and commit the
  merged JSON as bench/baseline/BENCH_baseline.json.
"""

import argparse
import json
import re
import sys

# google-benchmark bookkeeping fields; everything else numeric on a
# benchmark entry is a user counter.
GB_STANDARD_FIELDS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "family_index", "per_family_instance_index",
    "aggregate_name", "aggregate_unit", "time_unit", "label",
    "error_occurred", "error_message",
}
GB_TIME_FIELDS = {"real_time", "cpu_time"}


def is_time_metric(name):
    # Throughput (rps) is wall-clock derived and machine dependent, so it
    # rides with the time metrics: excluded from the deterministic diff,
    # available to --require-floor / --require-ceiling bounds.
    return (name in GB_TIME_FIELDS or name.endswith("_ms")
            or name.endswith("_time") or name == "ms"
            or name == "rps" or name.endswith("_rps"))


def parse_float(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def extract_gb(doc):
    """(deterministic, time) metric dicts for one google-benchmark doc."""
    deterministic, time_metrics = {}, {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "?")
        for field, value in bench.items():
            # real_time / cpu_time are not in GB_STANDARD_FIELDS; they fall
            # through and land in time_metrics via is_time_metric below.
            if field in GB_STANDARD_FIELDS:
                continue
            if not isinstance(value, (int, float)):
                continue
            target = time_metrics if is_time_metric(field) else deterministic
            target[f"{name} :: {field}"] = float(value)
    return deterministic, time_metrics


def extract_table(doc):
    """(deterministic, time) metric dicts for one {"title","header","rows"}
    table document.

    Columns whose cells are non-numeric in any row are treated as row labels
    (so are columns named like workload parameters); the rest are metrics.
    """
    title = doc.get("title", "?")
    header = doc.get("header", [])
    rows = doc.get("rows", [])
    if not header or not rows:
        return {}, {}
    param_columns = {"n", "dim", "seed", "capacity", "queries", "r",
                     "radius", "threads"}
    label_idx = set()
    for i, column in enumerate(header):
        if column.lower() in param_columns:
            label_idx.add(i)
            continue
        for row in rows:
            if i < len(row) and parse_float(row[i]) is None:
                label_idx.add(i)
                break
    deterministic, time_metrics = {}, {}
    for row in rows:
        label = "/".join(row[i] for i in sorted(label_idx) if i < len(row))
        for i, column in enumerate(header):
            if i in label_idx or i >= len(row):
                continue
            value = parse_float(row[i])
            if value is None:
                continue
            target = time_metrics if is_time_metric(column) else deterministic
            target[f"{title} :: {label} :: {column}"] = value
    return deterministic, time_metrics


def extract_all(merged):
    docs = merged if isinstance(merged, list) else [merged]
    deterministic, time_metrics = {}, {}
    for doc in docs:
        if not isinstance(doc, dict):
            continue
        if "benchmarks" in doc:
            det, tm = extract_gb(doc)
        elif "rows" in doc:
            det, tm = extract_table(doc)
        else:
            continue
        deterministic.update(det)
        time_metrics.update(tm)
    return deterministic, time_metrics


def check_bounds(metrics, specs, kind):
    """Returns (failures, error) for --require-floor / --require-ceiling.

    Each spec is 'REGEX=VALUE'; every candidate metric (deterministic and
    wall-clock) whose key matches REGEX must be >= VALUE (floor) or
    <= VALUE (ceiling). A spec that matches nothing is a usage error —
    a silently-unmatched bound would gate nothing.
    """
    failures = []
    for spec in specs:
        pattern, sep, bound_text = spec.rpartition("=")
        bound = parse_float(bound_text)
        if not sep or not pattern or bound is None:
            return failures, f"malformed --require-{kind} '{spec}' " \
                             f"(expected REGEX=VALUE)"
        matcher = re.compile(pattern)
        matched = 0
        for key in sorted(metrics):
            if not matcher.search(key):
                continue
            matched += 1
            value = metrics[key]
            ok = value >= bound if kind == "floor" else value <= bound
            status = "ok" if ok else "OUT OF BOUNDS"
            relation = ">=" if kind == "floor" else "<="
            print(f"  {kind} {status:13s}: {key}: {value:g} "
                  f"(need {relation} {bound:g})")
            if not ok:
                failures.append(key)
        if matched == 0:
            return failures, f"no metric matched --require-{kind} '{spec}'"
    return failures, None


def check_speedup(base_time, cand_time, factor, pattern):
    """Returns (failures, matched) for the --require-speedup gate."""
    matcher = re.compile(pattern)
    failures, matched = [], 0
    for key in sorted(base_time):
        if not matcher.search(key) or key not in cand_time:
            continue
        matched += 1
        base, new = base_time[key], cand_time[key]
        speedup = base / new if new > 0 else float("inf")
        status = "ok" if speedup >= factor else "TOO SLOW"
        print(f"  speedup {status:8s}: {key}: {base:g} -> {new:g} "
              f"({speedup:.2f}x, need {factor:g}x)")
        if speedup < factor:
            failures.append(key)
    return failures, matched


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=None,
                        help="reference merged JSON; omit to run only the "
                             "candidate-side --require-floor/--require-"
                             "ceiling bounds")
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression that fails the gate "
                             "(default 0.15 = +15%%)")
    parser.add_argument("--check-time", action="store_true",
                        help="also gate wall-clock metrics (requires "
                             "comparable hardware)")
    parser.add_argument("--require-identical", action="store_true",
                        help="fail on any delta beyond the threshold in "
                             "either direction (improvements too); with "
                             "--threshold 0 this demands bit-identical "
                             "deterministic metrics")
    parser.add_argument("--require-speedup", type=float, default=None,
                        metavar="FACTOR",
                        help="fail unless baseline/candidate wall time >= "
                             "FACTOR for every --speedup-metric match")
    parser.add_argument("--speedup-metric", default=None, metavar="REGEX",
                        help="wall-clock metric keys the speedup gate "
                             "applies to (required with --require-speedup)")
    parser.add_argument("--require-floor", action="append", default=[],
                        metavar="REGEX=VALUE",
                        help="fail unless every candidate metric matching "
                             "REGEX is >= VALUE (repeatable; matches "
                             "deterministic and wall-clock metrics)")
    parser.add_argument("--require-ceiling", action="append", default=[],
                        metavar="REGEX=VALUE",
                        help="fail unless every candidate metric matching "
                             "REGEX is <= VALUE (repeatable)")
    args = parser.parse_args()

    if (args.require_speedup is None) != (args.speedup_metric is None):
        print("error: --require-speedup and --speedup-metric go together",
              file=sys.stderr)
        return 2
    if args.baseline is None and args.require_speedup is not None:
        print("error: --require-speedup needs a --baseline",
              file=sys.stderr)
        return 2
    if args.baseline is None and not (args.require_floor
                                      or args.require_ceiling):
        print("error: nothing to do without a --baseline or bounds",
              file=sys.stderr)
        return 2

    try:
        base_det, base_time = {}, {}
        if args.baseline is not None:
            with open(args.baseline) as f:
                base_det, base_time = extract_all(json.load(f))
        with open(args.candidate) as f:
            cand_det, cand_time = extract_all(json.load(f))
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline = dict(base_det)
    candidate = dict(cand_det)
    if args.check_time:
        baseline.update(base_time)
        candidate.update(cand_time)
    if args.baseline is not None and not baseline \
            and args.require_speedup is None:
        print(f"error: no comparable metrics in {args.baseline}",
              file=sys.stderr)
        return 2

    regressions, missing, improvements, compared = [], [], [], 0
    for key, base in sorted(baseline.items()):
        if key not in candidate:
            missing.append(key)
            continue
        compared += 1
        new = candidate[key]
        if base == 0:
            if new > 0:
                regressions.append((key, base, new, float("inf")))
            continue
        delta = (new - base) / abs(base)
        if delta > args.threshold:
            regressions.append((key, base, new, delta))
        elif delta < -args.threshold:
            improvements.append((key, base, new, delta))

    print(f"compared {compared} metrics "
          f"(threshold +{args.threshold * 100:.0f}%)")
    for key, base, new, delta in improvements:
        tag = "DIVERGED " if args.require_identical else "improved "
        print(f"  {tag}: {key}: {base:g} -> {new:g} ({delta * 100:+.1f}%)")
    for key in missing:
        print(f"  MISSING  : {key} (renamed or removed? regenerate the "
              f"baseline, see --help)")
    for key, base, new, delta in regressions:
        print(f"  REGRESSED: {key}: {base:g} -> {new:g} ({delta * 100:+.1f}%)")

    speedup_failures, speedup_matched = [], 0
    if args.require_speedup is not None:
        speedup_failures, speedup_matched = check_speedup(
            base_time, cand_time, args.require_speedup, args.speedup_metric)
        if speedup_matched == 0:
            print(f"error: no wall-clock metric matched "
                  f"'{args.speedup_metric}'", file=sys.stderr)
            return 2

    bound_failures = []
    all_candidate = dict(cand_det)
    all_candidate.update(cand_time)
    for specs, kind in ((args.require_floor, "floor"),
                        (args.require_ceiling, "ceiling")):
        failures, error = check_bounds(all_candidate, specs, kind)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 2
        bound_failures.extend(failures)

    failed = bool(regressions or missing or speedup_failures
                  or bound_failures)
    if args.require_identical and improvements:
        failed = True
    if failed:
        print("FAIL: perf gate")
        return 1
    print("OK: no regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
