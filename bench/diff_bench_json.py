#!/usr/bin/env python3
"""Perf-trajectory gate: diff a BENCH_pr.json against the committed baseline.

BENCH_pr.json (produced by the CI bench job, see .github/workflows/ci.yml) is
a `jq -s` merge of google-benchmark JSON files and the paper-style table JSON
twins ({"title", "header", "rows"}). This tool extracts the *deterministic*
metrics from both shapes — node accesses, distance computations, node counts,
fat factors — and fails when the candidate regressed by more than the
threshold against the baseline.

Wall-clock metrics (real_time / cpu_time / *_ms columns) are machine
dependent and excluded by default; pass --check-time to gate them too (only
meaningful when baseline and candidate ran on comparable hardware).

Exit codes: 0 ok, 1 regression or missing benchmark, 2 usage/input error.

Usage:
  diff_bench_json.py --baseline bench/baseline/BENCH_baseline.json \
                     --candidate bench-out/BENCH_pr.json [--threshold 0.15]

Regenerating the baseline after an intentional perf change:
  run the CI bench job's commands locally (BUILDING.md) and commit the
  merged JSON as bench/baseline/BENCH_baseline.json.
"""

import argparse
import json
import sys

# google-benchmark bookkeeping fields; everything else numeric on a
# benchmark entry is a user counter.
GB_STANDARD_FIELDS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "family_index", "per_family_instance_index",
    "aggregate_name", "aggregate_unit", "time_unit", "label",
    "error_occurred", "error_message",
}
GB_TIME_FIELDS = {"real_time", "cpu_time"}


def is_time_metric(name):
    return (name in GB_TIME_FIELDS or name.endswith("_ms")
            or name.endswith("_time") or name == "ms")


def parse_float(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def extract_gb(doc, check_time):
    """{metric_key: value} for one google-benchmark output document."""
    metrics = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "?")
        for field, value in bench.items():
            if field in GB_STANDARD_FIELDS:
                continue
            if is_time_metric(field) and not check_time:
                continue
            if isinstance(value, (int, float)):
                metrics[f"{name} :: {field}"] = float(value)
    return metrics


def extract_table(doc, check_time):
    """{metric_key: value} for one {"title","header","rows"} table document.

    Columns whose cells are non-numeric in any row are treated as row labels
    (so are columns named like workload parameters); the rest are metrics.
    """
    title = doc.get("title", "?")
    header = doc.get("header", [])
    rows = doc.get("rows", [])
    if not header or not rows:
        return {}
    param_columns = {"n", "dim", "seed", "capacity", "queries", "r", "radius"}
    label_idx = set()
    for i, column in enumerate(header):
        if column.lower() in param_columns:
            label_idx.add(i)
            continue
        for row in rows:
            if i < len(row) and parse_float(row[i]) is None:
                label_idx.add(i)
                break
    metrics = {}
    for row in rows:
        label = "/".join(row[i] for i in sorted(label_idx) if i < len(row))
        for i, column in enumerate(header):
            if i in label_idx or i >= len(row):
                continue
            if is_time_metric(column) and not check_time:
                continue
            value = parse_float(row[i])
            if value is not None:
                metrics[f"{title} :: {label} :: {column}"] = value
    return metrics


def extract_all(merged, check_time):
    docs = merged if isinstance(merged, list) else [merged]
    metrics = {}
    for doc in docs:
        if not isinstance(doc, dict):
            continue
        if "benchmarks" in doc:
            metrics.update(extract_gb(doc, check_time))
        elif "rows" in doc:
            metrics.update(extract_table(doc, check_time))
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--candidate", required=True)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression that fails the gate "
                             "(default 0.15 = +15%%)")
    parser.add_argument("--check-time", action="store_true",
                        help="also gate wall-clock metrics (requires "
                             "comparable hardware)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = extract_all(json.load(f), args.check_time)
        with open(args.candidate) as f:
            candidate = extract_all(json.load(f), args.check_time)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no comparable metrics in {args.baseline}",
              file=sys.stderr)
        return 2

    regressions, missing, improvements, compared = [], [], [], 0
    for key, base in sorted(baseline.items()):
        if key not in candidate:
            missing.append(key)
            continue
        compared += 1
        new = candidate[key]
        if base == 0:
            if new > 0:
                regressions.append((key, base, new, float("inf")))
            continue
        delta = (new - base) / abs(base)
        if delta > args.threshold:
            regressions.append((key, base, new, delta))
        elif delta < -args.threshold:
            improvements.append((key, base, new, delta))

    print(f"compared {compared} metrics "
          f"(threshold +{args.threshold * 100:.0f}%)")
    for key, base, new, delta in improvements:
        print(f"  improved : {key}: {base:g} -> {new:g} ({delta * 100:+.1f}%)")
    for key in missing:
        print(f"  MISSING  : {key} (renamed or removed? regenerate the "
              f"baseline, see --help)")
    for key, base, new, delta in regressions:
        print(f"  REGRESSED: {key}: {base:g} -> {new:g} ({delta * 100:+.1f}%)")

    if regressions or missing:
        print("FAIL: perf gate")
        return 1
    print("OK: no regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
