// Speculative parallel greedy selection: the threads-matrix benchmark.
//
// CI runs this binary twice — DISC_THREADS=1 and DISC_THREADS=4 — and
// gates two properties across the legs (bench/diff_bench_json.py):
//   * determinism: every counter reported here (solution sizes, node
//     accesses, speculation commit/discard counters, tree checksums) must
//     be bit-identical across legs. The speculation width is pinned to 4 on
//     both legs precisely so the counters are leg-independent: the 1-thread
//     leg evaluates the same batches sequentially.
//   * speedup: the 4-thread leg must win greedy selection wall time by
//     >= 1.3x at n >= 10k (the Select/Greedy row; the other algorithm rows
//     are reported for trend watching but not hard-gated).
//
// The benchmarks cover the selection loops rewired onto core/speculation.h
// (speculative candidate evaluation + parallel maintenance fan-outs), the
// parallel M-tree bulk load, and the A/B rows for the greedy zoom-in
// observe-all variant (core/zoom.h) that decide whether observing every
// neighbor during selection beats recomputing closest-black distances
// before each chained zoom-in.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "core/zoom.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace disc {
namespace bench {
namespace {

// Pinned on both legs so speculation counters are cross-leg identical.
constexpr size_t kSpeculationWidth = 4;

// The matrix leg this process runs: worker threads for every parallel pass.
size_t BenchThreads() {
  static const size_t threads = [] {
    const char* env = std::getenv("DISC_THREADS");
    if (env == nullptr) return size_t{1};
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<size_t>(parsed) : size_t{1};
  }();
  return threads;
}

// One pool for the whole binary (workers persist across benchmarks, like a
// served engine's pool). Null at 1 thread so the serial paths run.
ThreadPool* BenchPool() {
  static ThreadPool* pool =
      BenchThreads() > 1 ? new ThreadPool(BenchThreads()) : nullptr;
  return pool;
}

// The leg's thread count is deliberately NOT a table column (see
// bench_parallel_build.cc: cross-leg gates key rows by label).
TableCollector* SelectTable() {
  static TableCollector table(
      "Speculative greedy selection (threads from DISC_THREADS)",
      "parallel_select.csv",
      {"pass", "n", "select_ms", "solution", "node_accesses", "committed",
       "discarded"});
  return &table;
}

uint64_t SolutionChecksum(const std::vector<ObjectId>& solution) {
  uint64_t checksum = 0;
  for (size_t i = 0; i < solution.size(); ++i) {
    checksum += static_cast<uint64_t>(solution[i]) * (i + 1);
  }
  return checksum;
}

// Greedy-family selection at n=10k with construction-time counts: the
// measured region is exactly the selection loop (speculation + maintenance
// fan-outs), the paper's Figures 7-9 cost center. `speculate` distinguishes
// the gated parallel row (width 4) from the serial-reference row (width 1,
// reported on both legs for the overhead trend).
void BM_Select(benchmark::State& state, Algorithm algorithm, size_t n,
               size_t speculate) {
  const Dataset& dataset = Clustered(n, 2);
  const double radius = 0.03;
  TreeWithCounts cached = CachedTreeWithCounts(dataset, Euclidean(), radius);
  AlgorithmRunOptions options;
  options.speculate = speculate;
  options.pool = speculate > 1 ? BenchPool() : nullptr;
  options.initial_counts = cached.counts;
  DiscResult result;
  double ms = 0.0;
  for (auto _ : state) {
    cached.tree->ResetStats();
    Stopwatch watch;
    result = RunAlgorithm(cached.tree, algorithm, radius, options);
    ms = watch.ElapsedMillis();
    benchmark::DoNotOptimize(result.solution.data());
  }
  state.counters["solution_size"] = static_cast<double>(result.size());
  state.counters["solution_checksum"] =
      static_cast<double>(SolutionChecksum(result.solution));
  state.counters["node_accesses"] =
      static_cast<double>(result.stats.node_accesses);
  state.counters["distance_computations"] =
      static_cast<double>(result.stats.distance_computations);
  state.counters["spec_batches"] =
      static_cast<double>(result.speculation.batches);
  state.counters["spec_committed"] =
      static_cast<double>(result.speculation.committed);
  state.counters["spec_discarded"] =
      static_cast<double>(result.speculation.discarded);
  const std::string pass = std::string(AlgorithmToString(algorithm)) +
                           (speculate > 1 ? "" : "-serial");
  SelectTable()->AddRow({pass, std::to_string(n), FormatDouble(ms, 4),
                         std::to_string(result.size()),
                         std::to_string(result.stats.node_accesses),
                         std::to_string(result.speculation.committed),
                         std::to_string(result.speculation.discarded)});
}

// Parallel bulk load: the whole Build through the pool. The tree must be
// byte-identical to the serial build (num_nodes + order-sensitive leaf
// checksum pin it across legs).
void BM_BulkLoad(benchmark::State& state, size_t n) {
  const Dataset& dataset = Clustered(n, 2);
  MTreeOptions options;
  options.build.strategy = BuildStrategy::kBulkLoad;
  double ms = 0.0;
  uint64_t num_nodes = 0;
  uint64_t leaf_checksum = 0;
  for (auto _ : state) {
    MTree tree(dataset, Euclidean(), options);
    Stopwatch watch;
    bool ok = tree.Build(BenchPool()).ok();
    ms = watch.ElapsedMillis();
    benchmark::DoNotOptimize(ok);
    num_nodes = tree.num_nodes();
    leaf_checksum = SolutionChecksum(tree.LeafOrder());
  }
  state.counters["num_nodes"] = static_cast<double>(num_nodes);
  state.counters["leaf_checksum"] = static_cast<double>(leaf_checksum);
  SelectTable()->AddRow({"bulk-load", std::to_string(n), FormatDouble(ms, 4),
                         "0", std::to_string(num_nodes), "0", "0"});
}

// The greedy zoom-in quirk, A/B. Both rows run the same chain — pruned
// Greedy-DisC at r=0.05, then greedy zoom-ins to 0.03 and 0.02 — and must
// end in the same solution (checksummed). Row A pays
// RecomputeClosestBlackDistances before the second zoom-in (the engine's
// current policy after a greedy pass); row B widens the selection queries
// (observe_all) so the second recompute is skipped. Whichever chain is
// cheaper decides the engine default; both run serial (zooming is not a
// parallel pass), so the rows are identical across legs and not
// speedup-gated.
void BM_ZoomChain(benchmark::State& state, size_t n, bool observe_all) {
  const Dataset& dataset = Clustered(n, 2);
  const double r0 = 0.05, r1 = 0.03, r2 = 0.02;
  MTree* tree = CachedTree(dataset, Euclidean());
  RunAlgorithm(tree, Algorithm::kGreedy, r0, {});
  const MTree::ColorState seeded = tree->SaveColorState();
  DiscResult final_zoom;
  double ms = 0.0;
  for (auto _ : state) {
    bool ok = tree->RestoreColorState(seeded).ok();
    benchmark::DoNotOptimize(ok);
    tree->ResetStats();
    Stopwatch watch;
    // The pruned run left stale distances; the first zoom-in always pays.
    tree->RecomputeClosestBlackDistances(r0);
    ZoomIn(tree, r1, /*greedy=*/true, observe_all);
    if (!observe_all) tree->RecomputeClosestBlackDistances(r1);
    final_zoom = ZoomIn(tree, r2, /*greedy=*/true, observe_all);
    ms = watch.ElapsedMillis();
  }
  state.counters["solution_size"] = static_cast<double>(final_zoom.size());
  state.counters["solution_checksum"] =
      static_cast<double>(SolutionChecksum(final_zoom.solution));
  state.counters["node_accesses"] =
      static_cast<double>(tree->stats().node_accesses);
  SelectTable()->AddRow(
      {observe_all ? "zoom-observe-all" : "zoom-recompute", std::to_string(n),
       FormatDouble(ms, 4), std::to_string(final_zoom.size()),
       std::to_string(tree->stats().node_accesses), "0", "0"});
}

[[maybe_unused]] const bool registered = [] {
  const size_t kN = 10000;
  const Algorithm kAlgos[] = {Algorithm::kGreedy, Algorithm::kLazyWhite,
                              Algorithm::kGreedyC, Algorithm::kFastC};
  for (Algorithm algorithm : kAlgos) {
    for (size_t speculate : {kSpeculationWidth, size_t{1}}) {
      std::string bench_name = "Select/" +
                               std::string(AlgorithmToString(algorithm)) +
                               (speculate > 1 ? "" : "-serial") +
                               "/n=" + std::to_string(kN);
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [algorithm, speculate](benchmark::State& state) {
            BM_Select(state, algorithm, kN, speculate);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RegisterBenchmark(
      ("BulkLoad/n=" + std::to_string(kN)).c_str(),
      [](benchmark::State& state) { BM_BulkLoad(state, kN); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  for (bool observe_all : {false, true}) {
    std::string bench_name = std::string("ZoomChain/") +
                             (observe_all ? "observe-all" : "recompute") +
                             "/n=" + std::to_string(kN);
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [observe_all](benchmark::State& state) {
          BM_ZoomChain(state, kN, observe_all);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
