// Shared infrastructure for the paper-reproduction benchmark harness.
//
// Every bench binary sweeps the same workloads §6 uses:
//   Uniform   — 10000 uniform 2-D points, Euclidean, r in 0.01..0.07
//   Clustered — 10000 clustered 2-D points, Euclidean, r in 0.01..0.07
//   Cities    — 5922-point synthetic Greek-cities stand-in, r in 0.001..0.015
//   Cameras   — 579-camera categorical catalog, Hamming, r in 1..6
//
// Each binary registers google-benchmark runs (wall-clock timing) whose
// counters carry the paper's metrics (solution size, M-tree node accesses),
// and additionally accumulates a paper-style table that is printed and
// written as CSV after the run.

#ifndef DISC_BENCH_COMMON_H_
#define DISC_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/disc_algorithms.h"
#include "data/cameras.h"
#include "data/cities.h"
#include "data/generators.h"
#include "eval/table.h"
#include "metric/metric.h"
#include "mtree/mtree.h"

namespace disc {
namespace bench {

/// One evaluation dataset plus its metric and paper radius sweep.
struct Workload {
  std::string name;
  const Dataset* dataset;
  const DistanceMetric* metric;
  std::vector<double> radii;
};

/// The four §6 workloads (constructed once, cached for the process).
const std::vector<Workload>& PaperWorkloads();

/// Individual cached datasets/metrics for benches with custom sweeps.
const Dataset& Uniform10k();
const Dataset& Clustered10k();
const Dataset& Clustered(size_t n, size_t dim);
const Dataset& Cities();
const Dataset& Cameras();
const DistanceMetric& Euclidean();
const DistanceMetric& Hamming();

/// Returns a cached, built M-tree for (dataset, options). Trees are reused
/// across benchmark registrations within a binary; algorithms reset colors
/// themselves, so sharing is safe.
MTree* CachedTree(const Dataset& dataset, const DistanceMetric& metric,
                  MTreeOptions options = {});

/// A tree whose white-neighborhood sizes were computed during construction
/// (§5.1, the paper's setup: the index is built knowing the query radius).
/// The greedy algorithms take `counts` via their initial_counts option, so
/// their reported node accesses cover only algorithmic work — matching how
/// the paper charges costs in Figures 7-16.
struct TreeWithCounts {
  MTree* tree;
  const std::vector<uint32_t>* counts;
};
TreeWithCounts CachedTreeWithCounts(const Dataset& dataset,
                                    const DistanceMetric& metric,
                                    double radius, MTreeOptions options = {});

/// Copies the run's metrics into the benchmark counters.
void ReportResult(benchmark::State& state, const DiscResult& result);

/// Accumulates paper-style rows; printed + written to CSV and a JSON twin
/// (same stem, .json extension) at process exit via PrintAndSaveAll().
class TableCollector {
 public:
  /// `csv_name` is the output file written next to the binary.
  TableCollector(std::string title, std::string csv_name,
                 std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Prints every collected table and writes its CSV. Call once from main.
  static void PrintAndSaveAll();

 private:
  TablePrinter printer_;
  std::string csv_name_;
};

/// Benchmark main: runs google-benchmark, then prints the collected tables.
#define DISC_BENCH_MAIN()                                        \
  int main(int argc, char** argv) {                              \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    ::disc::bench::TableCollector::PrintAndSaveAll();            \
    return 0;                                                    \
  }

}  // namespace bench
}  // namespace disc

#endif  // DISC_BENCH_COMMON_H_
