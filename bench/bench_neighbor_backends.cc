// Neighbor-backend quality and scale benchmark (ISSUE 8).
//
// Two claims ride on this binary, both gated in CI
// (bench/diff_bench_json.py over the merged BENCH JSON):
//   * quality — every backend builds the full neighborhood structure for
//     the paper's clustered workload; the exact family must match the
//     oracle bit-for-bit (mismatches == 0), and the LSH family's recall
//     under the documented default configuration must clear 0.9. The
//     downstream effect is measured too: Greedy-DisC runs on each backend's
//     graph and the solution is judged on the TRUE neighborhoods (coverage,
//     independence-violation rate).
//   * scale — the lsh-sharded backend builds a million-point neighborhood
//     graph (the configuration the exact-backend guardrail points users
//     to), with its recall measured against the grid-accelerated oracle.
//
// Workload sizes scale via DISC_NEIGHBOR_N (quality rows, default 10000)
// and DISC_NEIGHBOR_SCALE_N (scale row, default 1000000, 0 skips it).

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "core/reference.h"
#include "eval/neighbor_eval.h"
#include "graph/neighborhood.h"
#include "neighbor/backend.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace disc {
namespace bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

// One pool for the whole binary; build wall times are reported, not gated,
// so hardware threads are the honest configuration.
ThreadPool* BenchPool() {
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return pool;
}

TableCollector* QualityTable() {
  static TableCollector table(
      "Neighbor backend quality (vs exact oracle)", "neighbor_backends.csv",
      {"backend", "n", "build_ms", "edges", "recall", "mismatches",
       "coverage", "indep_viol"});
  return &table;
}

// The scale row gets its own table: diff_bench_json.py demotes any column
// with a non-numeric cell to a row label, so a "-" placeholder here would
// silently un-gate the quality table's coverage column.
TableCollector* ScaleTable() {
  static TableCollector table(
      "Neighbor backend scale (lsh-sharded)", "neighbor_scale.csv",
      {"backend", "n", "build_ms", "edges", "recall", "false_edges"});
  return &table;
}

AdjacencyLists GraphLists(const NeighborhoodGraph& graph) {
  AdjacencyLists lists(graph.num_vertices());
  for (ObjectId v = 0; v < graph.num_vertices(); ++v) {
    lists[v] = graph.neighbors(v);
  }
  return lists;
}

// The shared exact oracle for the quality rows (grid-accelerated build).
struct Oracle {
  AdjacencyLists lists;
};

const Oracle& QualityOracle(const Dataset& dataset, double radius) {
  static Oracle* oracle = [&] {
    NeighborhoodGraph graph(dataset, Euclidean(), radius, BenchPool());
    return new Oracle{GraphLists(graph)};
  }();
  return *oracle;
}

// Builds `kind` over the workload, measures edge agreement with the oracle
// and the on-oracle quality of the Greedy-DisC solution computed on the
// backend's graph, and lands everything in the table + counters.
void BM_BackendQuality(benchmark::State& state, NeighborBackendKind kind) {
  const size_t n = EnvSize("DISC_NEIGHBOR_N", 10000);
  const Dataset& dataset = Clustered(n, 2);
  const double radius = 0.03;
  const Oracle& oracle = QualityOracle(dataset, radius);

  NeighborBackendOptions options;
  options.kind = kind;
  auto backend =
      CreateNeighborBackend(dataset, Euclidean(), options, BenchPool());
  if (!backend.ok()) {
    state.SkipWithError(backend.status().ToString().c_str());
    return;
  }

  double ms = 0.0;
  AdjacencyComparison comparison;
  SolutionGraphQuality quality;
  size_t edges = 0;
  for (auto _ : state) {
    Stopwatch watch;
    auto graph = NeighborhoodGraph::FromBackend(**backend, radius,
                                                BenchPool());
    ms = watch.ElapsedMillis();
    if (!graph.ok()) {
      state.SkipWithError(graph.status().ToString().c_str());
      return;
    }
    edges = graph->num_edges();
    comparison = CompareAdjacency(oracle.lists, GraphLists(*graph));
    quality = EvaluateSolutionOnOracle(oracle.lists,
                                       ReferenceGreedyDisc(*graph));
    benchmark::DoNotOptimize(edges);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["recall"] = comparison.recall;
  state.counters["mismatches"] = static_cast<double>(comparison.mismatches());
  state.counters["coverage"] = quality.coverage;
  state.counters["indep_viol"] = quality.independence_violation_rate;
  QualityTable()->AddRow(
      {NeighborBackendKindToString(kind), std::to_string(n),
       FormatDouble(ms, 4), std::to_string(edges),
       FormatDouble(comparison.recall, 6),
       std::to_string(comparison.mismatches()),
       FormatDouble(quality.coverage, 6),
       FormatDouble(quality.independence_violation_rate, 6)});
}

// The scale row: lsh-sharded over a million uniform points — the workload
// the exact-family guardrail refuses — with recall against the
// grid-accelerated oracle.
void BM_LshShardedScale(benchmark::State& state) {
  const size_t n = EnvSize("DISC_NEIGHBOR_SCALE_N", 1000000);
  const Dataset dataset = MakeUniformDataset(n, 2, 42);
  const double radius = 0.003;

  NeighborBackendOptions options;
  options.kind = NeighborBackendKind::kLshSharded;
  auto backend =
      CreateNeighborBackend(dataset, Euclidean(), options, BenchPool());
  if (!backend.ok()) {
    state.SkipWithError(backend.status().ToString().c_str());
    return;
  }

  double ms = 0.0;
  AdjacencyComparison comparison;
  size_t edges = 0;
  for (auto _ : state) {
    Stopwatch watch;
    auto graph = NeighborhoodGraph::FromBackend(**backend, radius,
                                                BenchPool());
    ms = watch.ElapsedMillis();
    if (!graph.ok()) {
      state.SkipWithError(graph.status().ToString().c_str());
      return;
    }
    edges = graph->num_edges();
    NeighborhoodGraph oracle(dataset, Euclidean(), radius, BenchPool());
    comparison = CompareAdjacency(GraphLists(oracle), GraphLists(*graph));
    benchmark::DoNotOptimize(edges);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["recall"] = comparison.recall;
  state.counters["false_edges"] =
      static_cast<double>(comparison.false_edges);
  ScaleTable()->AddRow(
      {"lsh-sharded", std::to_string(n), FormatDouble(ms, 4),
       std::to_string(edges), FormatDouble(comparison.recall, 6),
       std::to_string(comparison.false_edges)});
}

[[maybe_unused]] const bool registered = [] {
  for (auto& [name, kind] :
       {std::pair<const char*, NeighborBackendKind>{
            "Exact", NeighborBackendKind::kExact},
        {"Grid", NeighborBackendKind::kGrid},
        {"Sharded", NeighborBackendKind::kSharded},
        {"Lsh", NeighborBackendKind::kLsh},
        {"LshSharded", NeighborBackendKind::kLshSharded}}) {
    auto kind_copy = kind;
    std::string bench_name =
        "NeighborQuality/" + std::string(name) + "/n=" +
        std::to_string(EnvSize("DISC_NEIGHBOR_N", 10000));
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [kind_copy](benchmark::State& state) {
          BM_BackendQuality(state, kind_copy);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  if (EnvSize("DISC_NEIGHBOR_SCALE_N", 1000000) > 0) {
    std::string scale_name =
        "NeighborScale/LshSharded/n=" +
        std::to_string(EnvSize("DISC_NEIGHBOR_SCALE_N", 1000000));
    benchmark::RegisterBenchmark(
        scale_name.c_str(),
        [](benchmark::State& state) { BM_LshShardedScale(state); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
