// Figure 9 (a)-(b): impact of dataset cardinality. Greedy-DisC on the
// Clustered 2-D dataset with 5000..15000 objects, r in 0.01..0.07.
// Expected shapes: solution size grows with cardinality mostly at small
// radii (large-radius solutions saturate quickly); node accesses grow with
// cardinality across the board.

#include "bench/common.h"

namespace disc {
namespace bench {
namespace {

const size_t kCardinalities[] = {5000, 7500, 10000, 12500, 15000};
const double kRadii[] = {0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07};

TableCollector* SizeTable() {
  static TableCollector table(
      "Figure 9(a) — Greedy-DisC solution size vs cardinality (Clustered 2-D)",
      "fig09a_size_vs_cardinality.csv",
      {"n", "r=0.01", "r=0.02", "r=0.03", "r=0.04", "r=0.05", "r=0.06",
       "r=0.07"});
  return &table;
}

TableCollector* AccessTable() {
  static TableCollector table(
      "Figure 9(b) — Greedy-DisC node accesses vs cardinality (Clustered 2-D)",
      "fig09b_accesses_vs_cardinality.csv",
      {"n", "r=0.01", "r=0.02", "r=0.03", "r=0.04", "r=0.05", "r=0.06",
       "r=0.07"});
  return &table;
}

void SweepCardinality(benchmark::State& state, size_t n) {
  std::vector<std::string> sizes = {std::to_string(n)};
  std::vector<std::string> accesses = {std::to_string(n)};
  for (auto _ : state) {
    sizes.resize(1);
    accesses.resize(1);
    for (double radius : kRadii) {
      TreeWithCounts tc =
          CachedTreeWithCounts(Clustered(n, 2), Euclidean(), radius);
      GreedyDiscOptions options;
      options.initial_counts = tc.counts;
      DiscResult result = GreedyDisc(tc.tree, radius, options);
      sizes.push_back(std::to_string(result.size()));
      accesses.push_back(std::to_string(result.stats.node_accesses));
      state.counters["size_r=" + FormatDouble(radius, 3)] =
          static_cast<double>(result.size());
      state.counters["acc_r=" + FormatDouble(radius, 3)] =
          static_cast<double>(result.stats.node_accesses);
    }
  }
  SizeTable()->AddRow(std::move(sizes));
  AccessTable()->AddRow(std::move(accesses));
}

[[maybe_unused]] const bool registered = [] {
  for (size_t n : kCardinalities) {
    std::string name = "Fig09ab/Clustered/n=" + std::to_string(n);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [n](benchmark::State& state) {
                                   SweepCardinality(state, n);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
