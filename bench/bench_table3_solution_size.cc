// Table 3 (a)-(d): solution size of Basic-DisC, Greedy-DisC, the two lazy
// Greedy-DisC variants, and Greedy-C, for every dataset and radius of the
// paper's sweep. One wide table per dataset, mirroring the paper's layout
// (algorithms as rows, radii as columns).

#include "bench/common.h"

namespace disc {
namespace bench {
namespace {

struct Algo {
  const char* name;
  DiscResult (*run)(const TreeWithCounts&, double);
};

DiscResult RunBasic(const TreeWithCounts& tc, double r) {
  return BasicDisc(tc.tree, r, true);
}

DiscResult RunGreedyVariant(const TreeWithCounts& tc, double r,
                            GreedyVariant variant) {
  GreedyDiscOptions options;
  options.variant = variant;
  options.initial_counts = tc.counts;
  return GreedyDisc(tc.tree, r, options);
}

DiscResult RunGreedy(const TreeWithCounts& tc, double r) {
  return RunGreedyVariant(tc, r, GreedyVariant::kGrey);
}

DiscResult RunLazyGrey(const TreeWithCounts& tc, double r) {
  return RunGreedyVariant(tc, r, GreedyVariant::kLazyGrey);
}

DiscResult RunLazyWhite(const TreeWithCounts& tc, double r) {
  return RunGreedyVariant(tc, r, GreedyVariant::kLazyWhite);
}

DiscResult RunGreedyC(const TreeWithCounts& tc, double r) {
  return GreedyC(tc.tree, r, tc.counts);
}

const Algo kAlgos[] = {
    {"B-DisC", RunBasic},          {"G-DisC", RunGreedy},
    {"L-Gr-G-DisC", RunLazyGrey},  {"L-Wh-G-DisC", RunLazyWhite},
    {"G-C", RunGreedyC},
};

std::vector<std::unique_ptr<TableCollector>>& Collectors() {
  static std::vector<std::unique_ptr<TableCollector>> collectors;
  return collectors;
}

void SweepSizes(benchmark::State& state, const Workload& workload,
                const Algo& algo, TableCollector* collector) {
  std::vector<std::string> row = {algo.name};
  uint64_t total_accesses = 0;
  for (auto _ : state) {
    row.resize(1);
    total_accesses = 0;
    for (double radius : workload.radii) {
      TreeWithCounts tc =
          CachedTreeWithCounts(*workload.dataset, *workload.metric, radius);
      DiscResult result = algo.run(tc, radius);
      row.push_back(std::to_string(result.size()));
      state.counters["r=" + FormatDouble(radius, 4)] =
          static_cast<double>(result.size());
      total_accesses += result.stats.node_accesses;
    }
  }
  state.counters["node_accesses_total"] = static_cast<double>(total_accesses);
  collector->AddRow(std::move(row));
}

[[maybe_unused]] const bool registered = [] {
  const char* panel = "abcd";
  int index = 0;
  for (const Workload& workload : PaperWorkloads()) {
    std::vector<std::string> header = {"algorithm"};
    for (double radius : workload.radii) {
      header.push_back("r=" + FormatDouble(radius, 4));
    }
    Collectors().push_back(std::make_unique<TableCollector>(
        std::string("Table 3(") + panel[index] + ") — solution size, " +
            workload.name,
        "table3" + std::string(1, panel[index]) + "_" + workload.name +
            ".csv",
        std::move(header)));
    TableCollector* collector = Collectors().back().get();
    for (const Algo& algo : kAlgos) {
      std::string name =
          "Table3/" + workload.name + "/" + std::string(algo.name);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&workload, &algo, collector](benchmark::State& state) {
            SweepSizes(state, workload, algo, collector);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    ++index;
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
