// Figure 10 (a)-(b): node accesses vs radius for M-trees built with the
// four splitting policies, whose fat-factors span low (MinOverlap) to high
// (random pivots). Expected shapes: on Uniform data, higher fat-factor
// (more overlap) costs clearly more accesses for the same solution; on
// Clustered data the effect is muted (locality + pruning absorb overlap);
// all policies converge at very large radii where one object covers nearly
// everything. Splitting policy never changes which objects are selected.

#include "bench/common.h"

namespace disc {
namespace bench {
namespace {

const double kRadii[] = {0.1, 0.3, 0.5, 0.7, 0.9};

struct Policy {
  const char* name;
  SplitPolicy policy;
};

const Policy kPolicies[] = {
    {"MinOverlap", SplitPolicy::MinOverlap()},
    {"MaxDistance", SplitPolicy::MaxDistanceSplit()},
    {"Balanced", SplitPolicy::BalancedSplit()},
    {"Random", SplitPolicy::RandomSplit()},
};

std::vector<std::unique_ptr<TableCollector>>& Collectors() {
  static std::vector<std::unique_ptr<TableCollector>> collectors;
  return collectors;
}

void SweepPolicy(benchmark::State& state, const Dataset& dataset,
                 const Policy& policy, TableCollector* collector) {
  MTreeOptions options;
  options.split_policy = policy.policy;
  const double fat = CachedTree(dataset, Euclidean(), options)->FatFactor();
  std::vector<std::string> row = {policy.name, FormatDouble(fat, 3)};
  for (auto _ : state) {
    row.resize(2);
    for (double radius : kRadii) {
      TreeWithCounts tc =
          CachedTreeWithCounts(dataset, Euclidean(), radius, options);
      GreedyDiscOptions greedy_options;
      greedy_options.initial_counts = tc.counts;
      DiscResult result = GreedyDisc(tc.tree, radius, greedy_options);
      row.push_back(std::to_string(result.stats.node_accesses));
      state.counters["r=" + FormatDouble(radius, 2)] =
          static_cast<double>(result.stats.node_accesses);
    }
  }
  state.counters["fat_factor"] = fat;
  collector->AddRow(std::move(row));
}

[[maybe_unused]] const bool registered = [] {
  struct Panel {
    const char* name;
    const Dataset* dataset;
  };
  const Panel panels[] = {{"Uniform", &Uniform10k()},
                          {"Clustered", &Clustered10k()}};
  char letter = 'a';
  for (const Panel& panel : panels) {
    std::vector<std::string> header = {"policy", "fat-factor"};
    for (double radius : kRadii) {
      header.push_back("r=" + FormatDouble(radius, 2));
    }
    Collectors().push_back(std::make_unique<TableCollector>(
        std::string("Figure 10(") + letter +
            ") — node accesses by splitting policy, " + panel.name,
        std::string("fig10") + letter + "_" + panel.name + ".csv",
        std::move(header)));
    TableCollector* collector = Collectors().back().get();
    for (const Policy& policy : kPolicies) {
      std::string name =
          "Fig10/" + std::string(panel.name) + "/" + policy.name;
      const Dataset* dataset = panel.dataset;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dataset, &policy, collector](benchmark::State& state) {
            SweepPolicy(state, *dataset, policy, collector);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    ++letter;
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
