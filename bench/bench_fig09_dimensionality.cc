// Figure 9 (c)-(d): impact of dimensionality. Greedy-DisC on the Clustered
// dataset (10000 objects) with 2..10 dimensions, r in 0.01..0.07.
// Expected shapes: higher dimensionality makes space sparser (curse of
// dimensionality), so solution sizes grow toward "everything is diverse";
// node accesses vary with the cost of the neighborhood-count maintenance.

#include "bench/common.h"

namespace disc {
namespace bench {
namespace {

const size_t kDimensions[] = {2, 4, 6, 8, 10};
const double kRadii[] = {0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07};

TableCollector* SizeTable() {
  static TableCollector table(
      "Figure 9(c) — Greedy-DisC solution size vs dimensionality "
      "(Clustered, 10000 objects)",
      "fig09c_size_vs_dimensionality.csv",
      {"dim", "r=0.01", "r=0.02", "r=0.03", "r=0.04", "r=0.05", "r=0.06",
       "r=0.07"});
  return &table;
}

TableCollector* AccessTable() {
  static TableCollector table(
      "Figure 9(d) — Greedy-DisC node accesses vs dimensionality "
      "(Clustered, 10000 objects)",
      "fig09d_accesses_vs_dimensionality.csv",
      {"dim", "r=0.01", "r=0.02", "r=0.03", "r=0.04", "r=0.05", "r=0.06",
       "r=0.07"});
  return &table;
}

void SweepDimensionality(benchmark::State& state, size_t dim) {
  std::vector<std::string> sizes = {std::to_string(dim)};
  std::vector<std::string> accesses = {std::to_string(dim)};
  for (auto _ : state) {
    sizes.resize(1);
    accesses.resize(1);
    for (double radius : kRadii) {
      TreeWithCounts tc =
          CachedTreeWithCounts(Clustered(10000, dim), Euclidean(), radius);
      GreedyDiscOptions options;
      options.initial_counts = tc.counts;
      DiscResult result = GreedyDisc(tc.tree, radius, options);
      sizes.push_back(std::to_string(result.size()));
      accesses.push_back(std::to_string(result.stats.node_accesses));
      state.counters["size_r=" + FormatDouble(radius, 3)] =
          static_cast<double>(result.size());
      state.counters["acc_r=" + FormatDouble(radius, 3)] =
          static_cast<double>(result.stats.node_accesses);
    }
  }
  SizeTable()->AddRow(std::move(sizes));
  AccessTable()->AddRow(std::move(accesses));
}

[[maybe_unused]] const bool registered = [] {
  for (size_t dim : kDimensions) {
    std::string name = "Fig09cd/Clustered/dim=" + std::to_string(dim);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [dim](benchmark::State& state) {
                                   SweepDimensionality(state, dim);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
