// Figure 7 (a)-(d): M-tree node accesses of Basic-DisC and Grey-Greedy-DisC
// with and without the §5.1 pruning rule, plus Greedy-C (which cannot use
// pruning), across every dataset and radius. Expected shapes: Basic-DisC's
// cost falls with the radius (fewer, bigger-coverage range queries per leaf
// pass); the greedy algorithms' cost rises with the radius (bigger
// neighborhood-maintenance queries); pruning saves the most at small radii.

#include "bench/common.h"

namespace disc {
namespace bench {
namespace {

struct Variant {
  const char* name;
  DiscResult (*run)(const TreeWithCounts&, double);
};

DiscResult RunBasicUnpruned(const TreeWithCounts& tc, double r) {
  return BasicDisc(tc.tree, r, false);
}
DiscResult RunBasicPruned(const TreeWithCounts& tc, double r) {
  return BasicDisc(tc.tree, r, true);
}
DiscResult RunGreedyUnpruned(const TreeWithCounts& tc, double r) {
  GreedyDiscOptions options;
  options.pruned = false;
  options.initial_counts = tc.counts;
  return GreedyDisc(tc.tree, r, options);
}
DiscResult RunGreedyPruned(const TreeWithCounts& tc, double r) {
  GreedyDiscOptions options;
  options.pruned = true;
  options.initial_counts = tc.counts;
  return GreedyDisc(tc.tree, r, options);
}
DiscResult RunGreedyC(const TreeWithCounts& tc, double r) {
  return GreedyC(tc.tree, r, tc.counts);
}

const Variant kVariants[] = {
    {"B-DisC", RunBasicUnpruned},
    {"B-DisC (Pruned)", RunBasicPruned},
    {"Gr-G-DisC", RunGreedyUnpruned},
    {"Gr-G-DisC (Pruned)", RunGreedyPruned},
    {"G-C", RunGreedyC},
};

std::vector<std::unique_ptr<TableCollector>>& Collectors() {
  static std::vector<std::unique_ptr<TableCollector>> collectors;
  return collectors;
}

void SweepAccesses(benchmark::State& state, const Workload& workload,
                   const Variant& variant, TableCollector* collector) {
  std::vector<std::string> row = {variant.name};
  for (auto _ : state) {
    row.resize(1);
    for (double radius : workload.radii) {
      TreeWithCounts tc =
          CachedTreeWithCounts(*workload.dataset, *workload.metric, radius);
      DiscResult result = variant.run(tc, radius);
      row.push_back(std::to_string(result.stats.node_accesses));
      state.counters["r=" + FormatDouble(radius, 4)] =
          static_cast<double>(result.stats.node_accesses);
    }
  }
  collector->AddRow(std::move(row));
}

[[maybe_unused]] const bool registered = [] {
  const char* panel = "abcd";
  int index = 0;
  for (const Workload& workload : PaperWorkloads()) {
    std::vector<std::string> header = {"algorithm"};
    for (double radius : workload.radii) {
      header.push_back("r=" + FormatDouble(radius, 4));
    }
    Collectors().push_back(std::make_unique<TableCollector>(
        std::string("Figure 7(") + panel[index] + ") — node accesses, " +
            workload.name,
        "fig07" + std::string(1, panel[index]) + "_" + workload.name + ".csv",
        std::move(header)));
    TableCollector* collector = Collectors().back().get();
    for (const Variant& variant : kVariants) {
      std::string name =
          "Fig07/" + workload.name + "/" + std::string(variant.name);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&workload, &variant, collector](benchmark::State& state) {
            SweepAccesses(state, workload, variant, collector);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    ++index;
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
