// Figure 6: quantitative counterpart of the qualitative model comparison.
//
// On the Clustered dataset, runs r-DisC, MaxSum, MaxMin, k-medoids and r-C
// at equal k (k = |DisC solution|, as in the paper) and scores each with
// the §4 quality measures. Expected shapes: DisC and r-C cover the dataset
// fully; MaxSum concentrates on the outskirts (coverage collapses, largest
// fSum); MaxMin covers better but under-represents dense areas; k-medoids
// minimizes the mean representation distance yet ignores outliers
// (incomplete coverage).

#include "bench/common.h"

#include "baselines/kmedoids.h"
#include "baselines/maxmin.h"
#include "baselines/maxsum.h"
#include "eval/quality.h"

namespace disc {
namespace bench {
namespace {

const double kRadius = 0.07;

TableCollector* Table() {
  static TableCollector table(
      "Figure 6 — diversification model comparison (Clustered, r=0.07, "
      "equal k)",
      "fig06_models.csv",
      {"model", "size", "coverage@r", "fMin", "fSum", "mean-rep-dist"});
  return &table;
}

void Score(benchmark::State& state, const char* name,
           const std::vector<ObjectId>& set) {
  const Dataset& dataset = Clustered10k();
  const DistanceMetric& metric = Euclidean();
  double coverage = CoverageFraction(dataset, metric, kRadius, set);
  double fmin = FMin(dataset, metric, set);
  double fsum = FSum(dataset, metric, set);
  double rep = MeanRepresentationDistance(dataset, metric, set);
  state.counters["size"] = static_cast<double>(set.size());
  state.counters["coverage"] = coverage;
  state.counters["fmin"] = fmin;
  state.counters["fsum"] = fsum;
  state.counters["mean_rep"] = rep;
  Table()->AddRow({name, std::to_string(set.size()),
                   FormatDouble(coverage, 4), FormatDouble(fmin, 4),
                   FormatDouble(fsum, 6), FormatDouble(rep, 4)});
}

size_t EqualK() {
  static const size_t k = [] {
    MTree* tree = CachedTree(Clustered10k(), Euclidean());
    return GreedyDisc(tree, kRadius, {}).size();
  }();
  return k;
}

void BM_DisC(benchmark::State& state) {
  MTree* tree = CachedTree(Clustered10k(), Euclidean());
  std::vector<ObjectId> solution;
  for (auto _ : state) {
    solution = GreedyDisc(tree, kRadius, {}).solution;
  }
  Score(state, "r-DisC", solution);
}

void BM_RC(benchmark::State& state) {
  MTree* tree = CachedTree(Clustered10k(), Euclidean());
  std::vector<ObjectId> solution;
  for (auto _ : state) {
    solution = GreedyC(tree, kRadius).solution;
  }
  Score(state, "r-C", solution);
}

void BM_MaxSum(benchmark::State& state) {
  std::vector<ObjectId> solution;
  for (auto _ : state) {
    auto result = GreedyMaxSum(Clustered10k(), Euclidean(), EqualK());
    if (result.ok()) solution = std::move(result).value();
  }
  Score(state, "MaxSum", solution);
}

void BM_MaxMin(benchmark::State& state) {
  std::vector<ObjectId> solution;
  for (auto _ : state) {
    auto result = GreedyMaxMin(Clustered10k(), Euclidean(), EqualK());
    if (result.ok()) solution = std::move(result).value();
  }
  Score(state, "MaxMin", solution);
}

void BM_KMedoids(benchmark::State& state) {
  std::vector<ObjectId> solution;
  for (auto _ : state) {
    auto result = KMedoids(Clustered10k(), Euclidean(), EqualK());
    if (result.ok()) solution = std::move(result).value().medoids;
  }
  Score(state, "k-medoids", solution);
}

BENCHMARK(BM_DisC)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxSum)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxMin)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KMedoids)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RC)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
