// Serving throughput: the transport-matrix benchmark (ISSUE 6; HTTP leg
// from ISSUE 7).
//
// CI runs this binary four times — DISC_SERVE_LOOP=blocking,
// DISC_SERVE_LOOP=event, DISC_SERVE_LOOP=http (the event loop's
// HTTP/1.1 transport: same commands as POST /diversify bodies over
// keep-alive connections), and DISC_SERVE_LOOP=batch (the event loop's
// BATCH envelope: each client ships all its rounds as ONE frame, so
// `req_ms` is the per-command latency *amortized* over the unit) — and
// gates across the legs (bench/diff_bench_json.py):
//   * correctness: `mismatches` must be 0 in every leg — every response a
//     client received, coalesced or not, and whatever the transport, is
//     byte-identical (minus the trailing wall_ms) to a direct DiscEngine
//     call on a replica engine (for HTTP, the response *body* is exactly
//     the protocol line);
//   * speedup: the event leg must win mean per-request wall time by >= 2x
//     (`:: req_ms`) — on the identical-request workload the event loop
//     computes each round once and fans it out, while the blocking
//     transport computes once per connection;
//   * bounds: an absolute requests/sec floor and p99 ceiling on the event
//     leg keep the numbers honest on their own, not just relatively.
//
// The workload: kClients connections each OPEN the same clustered dataset
// (separate engine leases — sessions never share a live engine), then run
// kRounds rounds where every client issues the SAME fresh-radius DIVERSIFY
// concurrently. Fresh radii keep every round's computation cold (no
// engine-cache hits); identical requests within a round are exactly what
// the single-flight table coalesces. Per-request wall times feed
// p50/p99; the leg is ambient (the env var), so both legs produce the
// same table keys and google-benchmark names for the cross-leg diff.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <atomic>
#include <latch>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "engine/engine.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/stopwatch.h"

namespace disc {
namespace bench {
namespace {

constexpr size_t kClients = 32;
constexpr size_t kRounds = 6;
constexpr size_t kN = 2000;
constexpr uint64_t kSeed = 5;

// The matrix leg this process runs. "blocking" and "event" pick the
// transport loop; "http" runs the event loop but speaks its HTTP/1.1
// framing from the clients (the server auto-detects per connection);
// "batch" runs the event loop with each client shipping all its rounds as
// one BATCH envelope.
struct BenchLeg {
  ServeLoop loop = ServeLoop::kEventLoop;
  bool http = false;
  bool batch = false;
};

BenchLeg BenchLoop() {
  static const BenchLeg leg = [] {
    const char* env = std::getenv("DISC_SERVE_LOOP");
    if (env != nullptr && std::strcmp(env, "blocking") == 0) {
      return BenchLeg{ServeLoop::kBlocking, false, false};
    }
    if (env != nullptr && std::strcmp(env, "http") == 0) {
      return BenchLeg{ServeLoop::kEventLoop, true, false};
    }
    if (env != nullptr && std::strcmp(env, "batch") == 0) {
      return BenchLeg{ServeLoop::kEventLoop, false, true};
    }
    return BenchLeg{ServeLoop::kEventLoop, false, false};
  }();
  return leg;
}

// One connection on either framing; Roundtrip("VERB args") always yields
// the protocol's one-line JSON response, so the replica-prefix check is
// transport-agnostic. HTTP mode lowercases the verb into the path and
// ships the args as the POST body, then strips the body's framing '\n'.
class BenchClient {
 public:
  static Result<BenchClient> Connect(const std::string& host, int port,
                                     bool http) {
    BenchClient client;
    client.http_mode_ = http;
    if (http) {
      DISC_ASSIGN_OR_RETURN(HttpClient inner, HttpClient::Connect(host, port));
      client.http_.emplace(std::move(inner));
    } else {
      DISC_ASSIGN_OR_RETURN(LineClient inner, LineClient::Connect(host, port));
      client.line_.emplace(std::move(inner));
    }
    return client;
  }

  Result<std::string> Roundtrip(const std::string& command) {
    if (!http_mode_) return line_->Roundtrip(command);
    const size_t space = command.find(' ');
    std::string verb = command.substr(0, space);
    for (char& c : verb) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    const std::string args =
        space == std::string::npos ? "" : command.substr(space + 1);
    DISC_ASSIGN_OR_RETURN(HttpResponse response,
                          http_->Post("/" + verb, args));
    std::string body = std::move(response.body);
    if (!body.empty() && body.back() == '\n') body.pop_back();
    return body;
  }

  /// Ships `commands` as one BATCH frame (line framing only) and reads the
  /// one-response-per-command lines back.
  Result<std::vector<std::string>> Batch(
      const std::vector<std::string>& commands) {
    DISC_RETURN_NOT_OK(
        line_->SendLine("BATCH n=" + std::to_string(commands.size())));
    for (const std::string& command : commands) {
      DISC_RETURN_NOT_OK(line_->SendLine(command));
    }
    std::vector<std::string> responses;
    responses.reserve(commands.size());
    for (size_t i = 0; i < commands.size(); ++i) {
      DISC_ASSIGN_OR_RETURN(std::string line, line_->RecvLine());
      responses.push_back(std::move(line));
    }
    return responses;
  }

 private:
  bool http_mode_ = false;
  std::optional<LineClient> line_;
  std::optional<HttpClient> http_;
};

// The leg is deliberately NOT a table column: the cross-leg diff keys rows
// by their labels, and both legs must produce the same keys (wall times
// live in *_ms / rps columns, which the deterministic gate ignores).
TableCollector* ServeTable() {
  static TableCollector table(
      "Serve throughput (transport from DISC_SERVE_LOOP)",
      "serve_throughput.csv",
      {"workload", "clients", "rounds", "requests", "mismatches", "rps",
       "req_ms", "p50_ms", "p99_ms"});
  return &table;
}

/// The per-round command and its expected response prefix (everything up
/// to the machine-dependent wall_ms), computed on a direct replica engine.
struct RoundSpec {
  std::string command;
  std::string expected_prefix;
};

std::vector<RoundSpec> BuildRounds() {
  EngineConfig config;
  config.dataset = DatasetSpec::Clustered(kN, 2, kSeed);
  auto engine = DiscEngine::Create(config);
  if (!engine.ok()) {
    std::fprintf(stderr, "replica engine failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<RoundSpec> rounds;
  rounds.reserve(kRounds);
  for (size_t k = 0; k < kRounds; ++k) {
    char radius_text[32];
    std::snprintf(radius_text, sizeof(radius_text), "%.4f",
                  0.030 + 0.0005 * static_cast<double>(k));
    RoundSpec spec;
    spec.command = std::string("DIVERSIFY r=") + radius_text;
    DiversifyRequest request;
    // Parse the formatted text so the replica computes with the exact
    // double the server will decode from the wire.
    request.radius = std::strtod(radius_text, nullptr);
    auto result = (*engine)->Diversify(request);
    if (!result.ok()) {
      std::fprintf(stderr, "replica diversify failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    std::string line = SerializeDiversifyResponse(
        Verb::kDiversify, *result, /*include_wall_ms=*/false);
    spec.expected_prefix = line.substr(0, line.size() - 1);  // drop '}'
    rounds.push_back(std::move(spec));
  }
  return rounds;
}

void BM_ServeThroughput(benchmark::State& state) {
  const BenchLeg leg = BenchLoop();
  ServerOptions options;
  options.port = 0;
  options.loop = leg.loop;
  // Blocking: one thread per connection, so workers must cover every
  // client. Event loop: a small fixed compute pool is the whole point.
  options.workers =
      options.loop == ServeLoop::kBlocking ? kClients : 4;
  options.max_idle_engines = kClients;
  auto server_or = DiscServer::Start(options);
  if (!server_or.ok()) {
    state.SkipWithError(server_or.status().ToString().c_str());
    return;
  }
  std::unique_ptr<DiscServer> server = std::move(server_or).value();

  const std::vector<RoundSpec> rounds = BuildRounds();

  // Connect + OPEN every client up front (setup, not measured). The OPENs
  // run concurrently; each builds or leases its own engine.
  std::vector<std::unique_ptr<BenchClient>> clients(kClients);
  std::atomic<size_t> open_failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (size_t i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        auto client =
            BenchClient::Connect("127.0.0.1", server->port(), leg.http);
        if (!client.ok()) {
          open_failures.fetch_add(1);
          return;
        }
        clients[i] =
            std::make_unique<BenchClient>(std::move(client).value());
        char open[96];
        std::snprintf(open, sizeof(open),
                      "OPEN dataset=clustered n=%zu dim=2 seed=%llu", kN,
                      static_cast<unsigned long long>(kSeed));
        auto response = clients[i]->Roundtrip(open);
        if (!response.ok() ||
            response->find("\"ok\":true") == std::string::npos) {
          open_failures.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  if (open_failures.load() > 0) {
    state.SkipWithError("client OPEN phase failed");
    return;
  }

  std::vector<double> request_ms;
  request_ms.reserve(kClients * kRounds);
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> requests{0};
  double total_ms = 0.0;

  for (auto _ : state) {
    std::vector<std::vector<double>> per_client_ms(kClients);
    Stopwatch total;
    if (leg.batch) {
      // One BATCH frame per client carrying every round's command: the
      // whole session costs one envelope and one admission slot, and the
      // per-command latency is the frame's wall time amortized over its
      // commands. Responses must still match the replica round by round.
      std::vector<std::string> commands;
      commands.reserve(rounds.size());
      for (const RoundSpec& round : rounds) {
        commands.push_back(round.command);
      }
      std::latch start(static_cast<ptrdiff_t>(kClients));
      std::vector<std::thread> threads;
      threads.reserve(kClients);
      for (size_t i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
          start.arrive_and_wait();
          Stopwatch watch;
          auto responses = clients[i]->Batch(commands);
          const double ms = watch.ElapsedMillis();
          requests.fetch_add(rounds.size());
          if (!responses.ok() || responses->size() != rounds.size()) {
            mismatches.fetch_add(rounds.size());
            return;
          }
          const double amortized_ms =
              ms / static_cast<double>(rounds.size());
          for (size_t k = 0; k < rounds.size(); ++k) {
            if ((*responses)[k].rfind(rounds[k].expected_prefix, 0) != 0) {
              mismatches.fetch_add(1);
            } else {
              per_client_ms[i].push_back(amortized_ms);
            }
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
    } else {
      for (const RoundSpec& round : rounds) {
        std::latch start(static_cast<ptrdiff_t>(kClients));
        std::vector<std::thread> threads;
        threads.reserve(kClients);
        for (size_t i = 0; i < kClients; ++i) {
          threads.emplace_back([&, i] {
            start.arrive_and_wait();
            Stopwatch watch;
            auto response = clients[i]->Roundtrip(round.command);
            const double ms = watch.ElapsedMillis();
            requests.fetch_add(1);
            if (!response.ok() ||
                response->rfind(round.expected_prefix, 0) != 0) {
              mismatches.fetch_add(1);
              return;
            }
            per_client_ms[i].push_back(ms);
          });
        }
        for (std::thread& thread : threads) thread.join();
      }
    }
    total_ms = total.ElapsedMillis();
    request_ms.clear();
    for (const auto& samples : per_client_ms) {
      request_ms.insert(request_ms.end(), samples.begin(), samples.end());
    }
  }

  for (size_t i = 0; i < kClients; ++i) {
    auto response = clients[i]->Roundtrip("CLOSE");
    if (!response.ok()) mismatches.fetch_add(1);
  }
  clients.clear();
  server->Shutdown();

  std::sort(request_ms.begin(), request_ms.end());
  auto percentile = [&](double p) {
    if (request_ms.empty()) return 0.0;
    const size_t at = std::min(
        request_ms.size() - 1,
        static_cast<size_t>(p * static_cast<double>(request_ms.size())));
    return request_ms[at];
  };
  const double p50 = percentile(0.50);
  const double p99 = percentile(0.99);
  const double total_requests = static_cast<double>(kClients * kRounds);
  const double rps =
      total_ms > 0 ? total_requests / (total_ms / 1000.0) : 0.0;
  double sum_ms = 0.0;
  for (double ms : request_ms) sum_ms += ms;
  const double req_ms =
      request_ms.empty() ? 0.0
                         : sum_ms / static_cast<double>(request_ms.size());

  state.counters["requests"] = static_cast<double>(requests.load());
  state.counters["mismatches"] = static_cast<double>(mismatches.load());
  state.counters["rps"] = rps;
  state.counters["req_ms"] = req_ms;
  state.counters["p50_ms"] = p50;
  state.counters["p99_ms"] = p99;
  ServeTable()->AddRow(
      {"clustered-identical", std::to_string(kClients),
       std::to_string(kRounds), std::to_string(requests.load()),
       std::to_string(mismatches.load()), FormatDouble(rps, 4),
       FormatDouble(req_ms, 4), FormatDouble(p50, 4),
       FormatDouble(p99, 4)});
}

[[maybe_unused]] const bool registered = [] {
  benchmark::RegisterBenchmark(
      "Serve/Throughput/clients=32",
      [](benchmark::State& state) { BM_ServeThroughput(state); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
