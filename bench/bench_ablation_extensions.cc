// §8 (future work) extensions implemented by this library, measured:
//
//  * Weighted DisC — total captured relevance and size versus uniform
//    weights, for both weighted objectives.
//  * Multi-radius DisC — representation density near vs far from a query
//    point as the radius band [r_min, r_max] widens.
//
// These are forward-looking features without paper-reported numbers; the
// bench records their cost and behavior so future changes are comparable.

#include "bench/common.h"

#include <cmath>

#include "core/weighted.h"
#include "eval/quality.h"

namespace disc {
namespace bench {
namespace {

const Dataset& Data() {
  static const Dataset& dataset = Clustered(4000, 2);
  return dataset;
}

std::vector<double> Relevance() {
  const Dataset& dataset = Data();
  const Point query{0.3, 0.6};
  std::vector<double> relevance(dataset.size());
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    relevance[i] =
        std::exp(-3.0 * Euclidean().Distance(dataset.point(i), query));
  }
  return relevance;
}

TableCollector* WeightedTable() {
  static TableCollector table(
      "Extension — weighted DisC (Clustered 4000, r=0.06)",
      "ablation_weighted.csv",
      {"objective", "size", "total-relevance", "relevance-per-object"});
  return &table;
}

void BM_Weighted(benchmark::State& state, int mode) {
  const Dataset& dataset = Data();
  std::vector<double> relevance = Relevance();
  std::vector<double> weights = relevance;
  for (double& w : weights) w += 0.05;
  const char* name = mode == 0   ? "uniform"
                     : mode == 1 ? "max-weight"
                                 : "weight-x-coverage";
  std::vector<ObjectId> solution;
  for (auto _ : state) {
    Result<std::vector<ObjectId>> result =
        mode == 0
            ? GreedyWeightedDisc(dataset, Euclidean(), 0.06,
                                 std::vector<double>(dataset.size(), 1.0),
                                 WeightedObjective::kMaxWeight)
            : GreedyWeightedDisc(dataset, Euclidean(), 0.06, weights,
                                 mode == 1
                                     ? WeightedObjective::kMaxWeight
                                     : WeightedObjective::kWeightTimesCoverage);
    if (result.ok()) solution = std::move(result).value();
  }
  double total = TotalWeight(solution, relevance);
  state.counters["size"] = static_cast<double>(solution.size());
  state.counters["relevance"] = total;
  WeightedTable()->AddRow(
      {name, std::to_string(solution.size()), FormatDouble(total, 5),
       FormatDouble(solution.empty() ? 0.0 : total / solution.size(), 4)});
}

TableCollector* MultiRadiusTable() {
  static TableCollector table(
      "Extension — multi-radius DisC density near/far from the query "
      "(Clustered 4000)",
      "ablation_multiradius.csv",
      {"radius-band", "size", "objects-per-rep (near)",
       "objects-per-rep (far)"});
  return &table;
}

void BM_MultiRadius(benchmark::State& state, double r_min, double r_max) {
  const Dataset& dataset = Data();
  std::vector<double> relevance = Relevance();
  const Point query{0.3, 0.6};
  std::vector<ObjectId> solution;
  for (auto _ : state) {
    auto radii = RelevanceRadii(relevance, r_min, r_max);
    if (!radii.ok()) continue;
    auto result = MultiRadiusDisc(dataset, Euclidean(), *radii, relevance);
    if (result.ok()) solution = std::move(result).value();
  }
  size_t near_total = 0, far_total = 0, near_reps = 0, far_reps = 0;
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    bool near = Euclidean().Distance(dataset.point(i), query) < 0.3;
    (near ? near_total : far_total)++;
  }
  for (ObjectId s : solution) {
    bool near = Euclidean().Distance(dataset.point(s), query) < 0.3;
    (near ? near_reps : far_reps)++;
  }
  double near_density =
      near_reps ? static_cast<double>(near_total) / near_reps : 0.0;
  double far_density =
      far_reps ? static_cast<double>(far_total) / far_reps : 0.0;
  state.counters["size"] = static_cast<double>(solution.size());
  state.counters["near_density"] = near_density;
  state.counters["far_density"] = far_density;
  std::string band_label = "[";
  band_label += FormatDouble(r_min, 3);
  band_label += ", ";
  band_label += FormatDouble(r_max, 3);
  band_label += "]";
  MultiRadiusTable()->AddRow({band_label, std::to_string(solution.size()),
                              FormatDouble(near_density, 4),
                              FormatDouble(far_density, 4)});
}

[[maybe_unused]] const bool registered = [] {
  for (int mode : {0, 1, 2}) {
    std::string name = "Extension/Weighted/mode=" + std::to_string(mode);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [mode](benchmark::State& state) {
                                   BM_Weighted(state, mode);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  struct Band {
    double r_min, r_max;
  };
  for (Band band : {Band{0.06, 0.06}, Band{0.04, 0.12}, Band{0.02, 0.2}}) {
    std::string name = "Extension/MultiRadius/band=" +
                       FormatDouble(band.r_min, 3) + "-" +
                       FormatDouble(band.r_max, 3);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [band](benchmark::State& state) {
          BM_MultiRadius(state, band.r_min, band.r_max);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
