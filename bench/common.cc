#include "bench/common.h"

#include <cstdio>
#include <mutex>

namespace disc {
namespace bench {

namespace {
constexpr uint64_t kUniformSeed = 42;
constexpr uint64_t kClusteredSeed = 42;
}  // namespace

const Dataset& Uniform10k() {
  static const Dataset dataset = MakeUniformDataset(10000, 2, kUniformSeed);
  return dataset;
}

const Dataset& Clustered10k() {
  static const Dataset dataset =
      MakeClusteredDataset(10000, 2, kClusteredSeed);
  return dataset;
}

const Dataset& Clustered(size_t n, size_t dim) {
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<Dataset>> cache;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[{n, dim}];
  if (slot == nullptr) {
    slot = std::make_unique<Dataset>(
        MakeClusteredDataset(n, dim, kClusteredSeed));
  }
  return *slot;
}

const Dataset& Cities() {
  static const Dataset dataset = MakeCitiesDataset();
  return dataset;
}

const Dataset& Cameras() {
  static const Dataset dataset = MakeCamerasDataset();
  return dataset;
}

const DistanceMetric& Euclidean() {
  static const EuclideanMetric metric;
  return metric;
}

const DistanceMetric& Hamming() {
  static const HammingMetric metric;
  return metric;
}

const std::vector<Workload>& PaperWorkloads() {
  static const std::vector<Workload> workloads = {
      {"Uniform", &Uniform10k(), &Euclidean(),
       {0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07}},
      {"Clustered", &Clustered10k(), &Euclidean(),
       {0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07}},
      {"Cities", &Cities(), &Euclidean(),
       {0.001, 0.0025, 0.005, 0.0075, 0.010, 0.0125, 0.015}},
      {"Cameras", &Cameras(), &Hamming(), {1, 2, 3, 4, 5, 6}},
  };
  return workloads;
}

MTree* CachedTree(const Dataset& dataset, const DistanceMetric& metric,
                  MTreeOptions options) {
  struct Key {
    const Dataset* dataset;
    const DistanceMetric* metric;
    size_t capacity;
    PromotePolicy promote;
    PartitionPolicy partition;
    BuildStrategy strategy;
    bool operator<(const Key& other) const {
      return std::tie(dataset, metric, capacity, promote, partition,
                      strategy) <
             std::tie(other.dataset, other.metric, other.capacity,
                      other.promote, other.partition, other.strategy);
    }
  };
  static std::map<Key, std::unique_ptr<MTree>> cache;
  static std::mutex mu;
  Key key{&dataset,
          &metric,
          options.node_capacity,
          options.split_policy.promote,
          options.split_policy.partition,
          options.build.strategy};
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[key];
  if (slot == nullptr) {
    slot = std::make_unique<MTree>(dataset, metric, options);
    Status status = slot->Build();
    if (!status.ok()) {
      std::fprintf(stderr, "fatal: M-tree build failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
  return slot.get();
}

TreeWithCounts CachedTreeWithCounts(const Dataset& dataset,
                                    const DistanceMetric& metric,
                                    double radius, MTreeOptions options) {
  struct Key {
    const Dataset* dataset;
    const DistanceMetric* metric;
    double radius;
    size_t capacity;
    PromotePolicy promote;
    PartitionPolicy partition;
    BuildStrategy strategy;
    bool operator<(const Key& other) const {
      return std::tie(dataset, metric, radius, capacity, promote, partition,
                      strategy) <
             std::tie(other.dataset, other.metric, other.radius,
                      other.capacity, other.promote, other.partition,
                      other.strategy);
    }
  };
  struct Entry {
    std::unique_ptr<MTree> tree;
    std::vector<uint32_t> counts;
  };
  static std::map<Key, Entry> cache;
  static std::mutex mu;
  Key key{&dataset,
          &metric,
          radius,
          options.node_capacity,
          options.split_policy.promote,
          options.split_policy.partition,
          options.build.strategy};
  std::lock_guard<std::mutex> lock(mu);
  Entry& entry = cache[key];
  if (entry.tree == nullptr) {
    entry.tree = std::make_unique<MTree>(dataset, metric, options);
    Status status = entry.tree->BuildWithNeighborCounts(radius, &entry.counts);
    if (!status.ok()) {
      std::fprintf(stderr, "fatal: M-tree build failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
  return TreeWithCounts{entry.tree.get(), &entry.counts};
}

void ReportResult(benchmark::State& state, const DiscResult& result) {
  state.counters["size"] = static_cast<double>(result.size());
  state.counters["node_accesses"] =
      static_cast<double>(result.stats.node_accesses);
  state.counters["range_queries"] =
      static_cast<double>(result.stats.range_queries);
}

namespace {

std::vector<TableCollector*>& Registry() {
  static std::vector<TableCollector*> registry;
  return registry;
}

}  // namespace

TableCollector::TableCollector(std::string title, std::string csv_name,
                               std::vector<std::string> header)
    : printer_(std::move(title)), csv_name_(std::move(csv_name)) {
  printer_.SetHeader(std::move(header));
  Registry().push_back(this);
}

void TableCollector::AddRow(std::vector<std::string> row) {
  printer_.AddRow(std::move(row));
}

void TableCollector::PrintAndSaveAll() {
  for (TableCollector* collector : Registry()) {
    if (collector->printer_.num_rows() == 0) continue;
    std::printf("\n");
    collector->printer_.Print();
    Status status = collector->printer_.WriteCsv(collector->csv_name_);
    if (status.ok()) {
      std::printf("(csv: %s)\n", collector->csv_name_.c_str());
    } else {
      std::fprintf(stderr, "csv write failed: %s\n",
                   status.ToString().c_str());
    }
    // Machine-readable twin of the CSV, so CI can archive the perf
    // trajectory per PR (see the bench job and BUILDING.md).
    std::string json_name = collector->csv_name_;
    const std::string suffix = ".csv";
    if (json_name.size() >= suffix.size() &&
        json_name.compare(json_name.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
      json_name.resize(json_name.size() - suffix.size());
    }
    json_name += ".json";
    status = collector->printer_.WriteJson(json_name);
    if (status.ok()) {
      std::printf("(json: %s)\n", json_name.c_str());
    } else {
      std::fprintf(stderr, "json write failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

}  // namespace bench
}  // namespace disc
