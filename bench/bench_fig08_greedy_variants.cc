// Figure 8 (a)-(d): node accesses of the pruned Greedy-DisC variants —
// Grey, White, Lazy-Grey, Lazy-White — against pruned Basic-DisC, across
// every dataset and radius. Expected shapes: White-Greedy wins on clustered
// data at larger radii (one 2r query replaces many per-grey queries); the
// lazy variants cut cost further at slightly larger solution sizes
// (cross-checked by Table 3).

#include "bench/common.h"

namespace disc {
namespace bench {
namespace {

struct Variant {
  const char* name;
  GreedyVariant greedy;
  bool basic;
};

const Variant kVariants[] = {
    {"B-DisC (Pruned)", GreedyVariant::kGrey, true},
    {"Gr-G-DisC (Pruned)", GreedyVariant::kGrey, false},
    {"Wh-G-DisC (Pruned)", GreedyVariant::kWhite, false},
    {"L-Gr-G-DisC (Pruned)", GreedyVariant::kLazyGrey, false},
    {"L-Wh-G-DisC (Pruned)", GreedyVariant::kLazyWhite, false},
};

std::vector<std::unique_ptr<TableCollector>>& Collectors() {
  static std::vector<std::unique_ptr<TableCollector>> collectors;
  return collectors;
}

void SweepVariants(benchmark::State& state, const Workload& workload,
                   const Variant& variant, TableCollector* collector) {
  std::vector<std::string> row = {variant.name};
  for (auto _ : state) {
    row.resize(1);
    for (double radius : workload.radii) {
      TreeWithCounts tc =
          CachedTreeWithCounts(*workload.dataset, *workload.metric, radius);
      DiscResult result;
      if (variant.basic) {
        result = BasicDisc(tc.tree, radius, true);
      } else {
        GreedyDiscOptions options;
        options.variant = variant.greedy;
        options.pruned = true;
        options.initial_counts = tc.counts;
        result = GreedyDisc(tc.tree, radius, options);
      }
      row.push_back(std::to_string(result.stats.node_accesses));
      state.counters["r=" + FormatDouble(radius, 4)] =
          static_cast<double>(result.stats.node_accesses);
    }
  }
  collector->AddRow(std::move(row));
}

[[maybe_unused]] const bool registered = [] {
  const char* panel = "abcd";
  int index = 0;
  for (const Workload& workload : PaperWorkloads()) {
    std::vector<std::string> header = {"algorithm"};
    for (double radius : workload.radii) {
      header.push_back("r=" + FormatDouble(radius, 4));
    }
    Collectors().push_back(std::make_unique<TableCollector>(
        std::string("Figure 8(") + panel[index] +
            ") — node accesses (pruned variants), " + workload.name,
        "fig08" + std::string(1, panel[index]) + "_" + workload.name + ".csv",
        std::move(header)));
    TableCollector* collector = Collectors().back().get();
    for (const Variant& variant : kVariants) {
      std::string name =
          "Fig08/" + workload.name + "/" + std::string(variant.name);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&workload, &variant, collector](benchmark::State& state) {
            SweepVariants(state, workload, variant, collector);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    ++index;
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
