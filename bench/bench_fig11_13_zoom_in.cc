// Figures 11, 12, 13: incremental zooming-in versus recomputation.
//
// For each radius step r -> r' (each solution adapted from the immediately
// larger radius, as in the paper), compares Greedy-DisC-from-scratch at r'
// against Zoom-In and Greedy-Zoom-In applied to the Greedy-DisC solution
// for r. Reports solution size (Fig. 11), node accesses (Fig. 12) and the
// Jaccard distance to the previous solution (Fig. 13). Zooming costs
// include the §5.2 closest-black post-processing pass. Expected shapes:
// similar sizes, much lower zooming cost, and far lower Jaccard distance
// than recomputation (the user keeps most of what they saw).

#include "bench/common.h"

#include "core/zoom.h"
#include "eval/quality.h"

namespace disc {
namespace bench {
namespace {

struct ZoomStep {
  double r_old;
  double r_new;
};

struct ZoomWorkload {
  const char* name;
  const Dataset* dataset;
  const DistanceMetric* metric;
  std::vector<ZoomStep> steps;
};

const std::vector<ZoomWorkload>& ZoomWorkloads() {
  static const std::vector<ZoomWorkload> workloads = {
      {"Clustered", &Clustered10k(), &Euclidean(),
       {{0.07, 0.06}, {0.06, 0.05}, {0.05, 0.04}, {0.04, 0.03}, {0.03, 0.02}}},
      {"Cities", &Cities(), &Euclidean(),
       {{0.01, 0.0075}, {0.0075, 0.005}, {0.005, 0.0025}, {0.0025, 0.001}}},
  };
  return workloads;
}

enum class Method { kScratch, kZoomIn, kGreedyZoomIn };

const char* MethodName(Method method) {
  switch (method) {
    case Method::kScratch:
      return "Greedy-DisC";
    case Method::kZoomIn:
      return "Zoom-In";
    case Method::kGreedyZoomIn:
      return "Greedy-Zoom-In";
  }
  return "?";
}

std::vector<std::unique_ptr<TableCollector>>& Collectors() {
  static std::vector<std::unique_ptr<TableCollector>> collectors;
  return collectors;
}

void SweepZoomIn(benchmark::State& state, const ZoomWorkload& workload,
                 Method method, TableCollector* sizes,
                 TableCollector* accesses, TableCollector* jaccard) {
  std::vector<std::string> size_row = {MethodName(method)};
  std::vector<std::string> access_row = {MethodName(method)};
  std::vector<std::string> jaccard_row = {MethodName(method)};
  for (auto _ : state) {
    size_row.resize(1);
    access_row.resize(1);
    jaccard_row.resize(1);
    for (const ZoomStep& step : workload.steps) {
      // Previous view: the Greedy-DisC solution at the larger radius, on a
      // tree whose neighborhood counts were computed during its build.
      TreeWithCounts old_tc = CachedTreeWithCounts(
          *workload.dataset, *workload.metric, step.r_old);
      GreedyDiscOptions base_options;
      base_options.initial_counts = old_tc.counts;
      DiscResult base = GreedyDisc(old_tc.tree, step.r_old, base_options);

      DiscResult adapted;
      if (method == Method::kScratch) {
        TreeWithCounts new_tc = CachedTreeWithCounts(
            *workload.dataset, *workload.metric, step.r_new);
        GreedyDiscOptions options;
        options.initial_counts = new_tc.counts;
        adapted = GreedyDisc(new_tc.tree, step.r_new, options);
      } else {
        AccessStats before = old_tc.tree->stats();
        old_tc.tree->RecomputeClosestBlackDistances(step.r_old);
        adapted =
            ZoomIn(old_tc.tree, step.r_new, method == Method::kGreedyZoomIn);
        adapted.stats = old_tc.tree->stats() - before;
      }

      double jd = JaccardDistance(base.solution, adapted.solution);
      size_row.push_back(std::to_string(adapted.size()));
      access_row.push_back(std::to_string(adapted.stats.node_accesses));
      jaccard_row.push_back(FormatDouble(jd, 3));
      std::string key = "r=" + FormatDouble(step.r_new, 4);
      state.counters["size_" + key] = static_cast<double>(adapted.size());
      state.counters["acc_" + key] =
          static_cast<double>(adapted.stats.node_accesses);
      state.counters["jac_" + key] = jd;
    }
  }
  sizes->AddRow(std::move(size_row));
  accesses->AddRow(std::move(access_row));
  jaccard->AddRow(std::move(jaccard_row));
}

[[maybe_unused]] const bool registered = [] {
  for (const ZoomWorkload& workload : ZoomWorkloads()) {
    std::vector<std::string> header = {"method"};
    for (const ZoomStep& step : workload.steps) {
      header.push_back("r=" + FormatDouble(step.r_new, 4));
    }
    auto make = [&](const std::string& what, const std::string& csv) {
      Collectors().push_back(std::make_unique<TableCollector>(
          what + ", " + workload.name + " (adapted from next larger r)",
          csv + "_" + workload.name + ".csv", header));
      return Collectors().back().get();
    };
    TableCollector* sizes = make("Figure 11 — zoom-in solution size",
                                 "fig11_zoomin_size");
    TableCollector* accesses = make("Figure 12 — zoom-in node accesses",
                                    "fig12_zoomin_accesses");
    TableCollector* jaccard = make(
        "Figure 13 — Jaccard distance to previous solution",
        "fig13_zoomin_jaccard");
    for (Method method :
         {Method::kScratch, Method::kZoomIn, Method::kGreedyZoomIn}) {
      std::string name = "Fig11_13/" + std::string(workload.name) + "/" +
                         MethodName(method);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&workload, method, sizes, accesses,
           jaccard](benchmark::State& state) {
            SweepZoomIn(state, workload, method, sizes, accesses, jaccard);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
