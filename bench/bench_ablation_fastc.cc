// §6 text: "The Fast-C heuristic required up to 30% less node accesses than
// Greedy-C, while computing similar sized solutions. However, the solutions
// had a larger percentage of independent objects."
//
// Sweeps Greedy-C vs Fast-C over radii on Uniform and Clustered, reporting
// solution size, node accesses, and the fraction of solution objects that
// are pairwise independent at r (DisC solutions would score 1.0).

#include "bench/common.h"

namespace disc {
namespace bench {
namespace {

const double kRadii[] = {0.02, 0.04, 0.08, 0.16};

double IndependentFraction(const Dataset& dataset,
                           const DistanceMetric& metric, double radius,
                           const std::vector<ObjectId>& set) {
  if (set.empty()) return 1.0;
  size_t independent = 0;
  for (ObjectId a : set) {
    bool clash = false;
    for (ObjectId b : set) {
      if (a != b &&
          metric.Distance(dataset.point(a), dataset.point(b)) <= radius) {
        clash = true;
        break;
      }
    }
    if (!clash) ++independent;
  }
  return static_cast<double>(independent) / static_cast<double>(set.size());
}

std::vector<std::unique_ptr<TableCollector>>& Collectors() {
  static std::vector<std::unique_ptr<TableCollector>> collectors;
  return collectors;
}

void BM_Coverage(benchmark::State& state, const Dataset& dataset,
                 bool fast, TableCollector* collector) {
  std::vector<std::string> row = {fast ? "Fast-C" : "Greedy-C"};
  for (auto _ : state) {
    row.resize(1);
    for (double radius : kRadii) {
      TreeWithCounts tc = CachedTreeWithCounts(dataset, Euclidean(), radius);
      DiscResult result = fast ? FastC(tc.tree, radius, tc.counts)
                               : GreedyC(tc.tree, radius, tc.counts);
      double indep =
          IndependentFraction(dataset, Euclidean(), radius, result.solution);
      row.push_back(std::to_string(result.size()) + "/" +
                    std::to_string(result.stats.node_accesses) + "/" +
                    FormatDouble(indep, 3));
      std::string key = "r=" + FormatDouble(radius, 3);
      state.counters["size_" + key] = static_cast<double>(result.size());
      state.counters["acc_" + key] =
          static_cast<double>(result.stats.node_accesses);
      state.counters["indep_" + key] = indep;
    }
  }
  collector->AddRow(std::move(row));
}

[[maybe_unused]] const bool registered = [] {
  struct Panel {
    const char* name;
    const Dataset* dataset;
  };
  const Panel panels[] = {{"Uniform", &Uniform10k()},
                          {"Clustered", &Clustered10k()}};
  for (const Panel& panel : panels) {
    std::vector<std::string> header = {"algorithm"};
    for (double radius : kRadii) {
      header.push_back("r=" + FormatDouble(radius, 3) +
                       " (size/accesses/indep)");
    }
    Collectors().push_back(std::make_unique<TableCollector>(
        std::string("Ablation — Greedy-C vs Fast-C, ") + panel.name,
        std::string("ablation_fastc_") + panel.name + ".csv",
        std::move(header)));
    TableCollector* collector = Collectors().back().get();
    for (bool fast : {false, true}) {
      std::string name = std::string("Ablation/FastC/") + panel.name + "/" +
                         (fast ? "Fast-C" : "Greedy-C");
      const Dataset* dataset = panel.dataset;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dataset, fast, collector](benchmark::State& state) {
            BM_Coverage(state, *dataset, fast, collector);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
