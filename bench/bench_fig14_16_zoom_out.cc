// Figures 14, 15, 16: incremental zooming-out versus recomputation.
//
// For each radius step r -> r' (each solution adapted from the immediately
// smaller radius), compares Greedy-DisC-from-scratch at r' against Zoom-Out
// and the three Greedy-Zoom-Out variants (a) most-red-neighbors, (b)
// fewest-red-neighbors, (c) most-white-neighbors. Reports solution size
// (Fig. 14), node accesses (Fig. 15) and Jaccard distance to the previous
// solution (Fig. 16). Expected shapes: (c) reaches the smallest adapted
// solutions at by far the highest cost; (a) is nearly as small at a
// fraction of the cost; the plain Zoom-Out is cheapest; all zooming
// variants stay closer to the previous solution than recomputation.

#include "bench/common.h"

#include "core/zoom.h"
#include "eval/quality.h"

namespace disc {
namespace bench {
namespace {

struct ZoomStep {
  double r_old;
  double r_new;
};

struct ZoomWorkload {
  const char* name;
  const Dataset* dataset;
  const DistanceMetric* metric;
  std::vector<ZoomStep> steps;
};

const std::vector<ZoomWorkload>& ZoomWorkloads() {
  static const std::vector<ZoomWorkload> workloads = {
      {"Clustered", &Clustered10k(), &Euclidean(),
       {{0.01, 0.02}, {0.02, 0.03}, {0.03, 0.04}, {0.04, 0.05}, {0.05, 0.06}}},
      {"Cities", &Cities(), &Euclidean(),
       {{0.0025, 0.005},
        {0.005, 0.0075},
        {0.0075, 0.01},
        {0.01, 0.0125}}},
  };
  return workloads;
}

struct Method {
  const char* name;
  bool scratch;
  ZoomOutVariant variant;
};

const Method kMethods[] = {
    {"Greedy-DisC", true, ZoomOutVariant::kArbitrary},
    {"Zoom-Out", false, ZoomOutVariant::kArbitrary},
    {"Greedy-Zoom-Out (a)", false, ZoomOutVariant::kGreedyMostRed},
    {"Greedy-Zoom-Out (b)", false, ZoomOutVariant::kGreedyFewestRed},
    {"Greedy-Zoom-Out (c)", false, ZoomOutVariant::kGreedyMostWhite},
};

std::vector<std::unique_ptr<TableCollector>>& Collectors() {
  static std::vector<std::unique_ptr<TableCollector>> collectors;
  return collectors;
}

void SweepZoomOut(benchmark::State& state, const ZoomWorkload& workload,
                  const Method& method, TableCollector* sizes,
                  TableCollector* accesses, TableCollector* jaccard) {
  std::vector<std::string> size_row = {method.name};
  std::vector<std::string> access_row = {method.name};
  std::vector<std::string> jaccard_row = {method.name};
  for (auto _ : state) {
    size_row.resize(1);
    access_row.resize(1);
    jaccard_row.resize(1);
    for (const ZoomStep& step : workload.steps) {
      TreeWithCounts old_tc = CachedTreeWithCounts(
          *workload.dataset, *workload.metric, step.r_old);
      GreedyDiscOptions base_options;
      base_options.initial_counts = old_tc.counts;
      DiscResult base = GreedyDisc(old_tc.tree, step.r_old, base_options);

      DiscResult adapted;
      if (method.scratch) {
        TreeWithCounts new_tc = CachedTreeWithCounts(
            *workload.dataset, *workload.metric, step.r_new);
        GreedyDiscOptions options;
        options.initial_counts = new_tc.counts;
        adapted = GreedyDisc(new_tc.tree, step.r_new, options);
      } else {
        adapted = ZoomOut(old_tc.tree, step.r_new, method.variant);
      }

      double jd = JaccardDistance(base.solution, adapted.solution);
      size_row.push_back(std::to_string(adapted.size()));
      access_row.push_back(std::to_string(adapted.stats.node_accesses));
      jaccard_row.push_back(FormatDouble(jd, 3));
      std::string key = "r=" + FormatDouble(step.r_new, 4);
      state.counters["size_" + key] = static_cast<double>(adapted.size());
      state.counters["acc_" + key] =
          static_cast<double>(adapted.stats.node_accesses);
      state.counters["jac_" + key] = jd;
    }
  }
  sizes->AddRow(std::move(size_row));
  accesses->AddRow(std::move(access_row));
  jaccard->AddRow(std::move(jaccard_row));
}

[[maybe_unused]] const bool registered = [] {
  for (const ZoomWorkload& workload : ZoomWorkloads()) {
    std::vector<std::string> header = {"method"};
    for (const ZoomStep& step : workload.steps) {
      header.push_back("r=" + FormatDouble(step.r_new, 4));
    }
    auto make = [&](const std::string& what, const std::string& csv) {
      Collectors().push_back(std::make_unique<TableCollector>(
          what + ", " + workload.name + " (adapted from next smaller r)",
          csv + "_" + workload.name + ".csv", header));
      return Collectors().back().get();
    };
    TableCollector* sizes = make("Figure 14 — zoom-out solution size",
                                 "fig14_zoomout_size");
    TableCollector* accesses = make("Figure 15 — zoom-out node accesses",
                                    "fig15_zoomout_accesses");
    TableCollector* jaccard = make(
        "Figure 16 — Jaccard distance to previous solution",
        "fig16_zoomout_jaccard");
    for (const Method& method : kMethods) {
      std::string name = "Fig14_16/" + std::string(workload.name) + "/" +
                         std::string(method.name);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&workload, &method, sizes, accesses,
           jaccard](benchmark::State& state) {
            SweepZoomOut(state, workload, method, sizes, accesses, jaccard);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
