// §6 text claims about the M-tree machinery, as four ablations:
//
//  (1) node capacity — "when doubling the node capacity, the computational
//      cost was reduced by almost 45%": Greedy-DisC accesses at capacity
//      25 / 50 / 100;
//  (2) white-neighborhood initialization — "computing the size of
//      neighborhoods while building the tree reduces node accesses up to
//      45%" versus a post-build counting pass;
//  (3) query mode — "employing bottom-up rather than top-down range queries
//      [benefited] less than 5% at most cases": total accesses for the same
//      query load issued both ways;
//  (4) build strategy — insert-at-a-time vs Ciaccia–Patella-style bulk load
//      (MTree::BulkLoad): construction wall time and distance computations,
//      plus the node accesses of a fixed downstream range-query load, per
//      cardinality. The bulk loader must win construction outright at
//      n >= 10000 (the PR gate tracked via the JSON artifact in CI).

#include "bench/common.h"
#include "util/stopwatch.h"

namespace disc {
namespace bench {
namespace {

const double kRadii[] = {0.01, 0.03, 0.05, 0.07};

// ---------------------------------------------------------------- capacity

TableCollector* CapacityTable() {
  static TableCollector table(
      "Ablation — node capacity vs Greedy-DisC node accesses (Clustered)",
      "ablation_capacity.csv",
      {"capacity", "r=0.01", "r=0.03", "r=0.05", "r=0.07"});
  return &table;
}

void BM_Capacity(benchmark::State& state, size_t capacity) {
  MTreeOptions options;
  options.node_capacity = capacity;
  std::vector<std::string> row = {std::to_string(capacity)};
  for (auto _ : state) {
    row.resize(1);
    for (double radius : kRadii) {
      TreeWithCounts tc =
          CachedTreeWithCounts(Clustered10k(), Euclidean(), radius, options);
      GreedyDiscOptions greedy_options;
      greedy_options.initial_counts = tc.counts;
      DiscResult result = GreedyDisc(tc.tree, radius, greedy_options);
      row.push_back(std::to_string(result.stats.node_accesses));
      state.counters["r=" + FormatDouble(radius, 3)] =
          static_cast<double>(result.stats.node_accesses);
    }
  }
  CapacityTable()->AddRow(std::move(row));
}

// ------------------------------------------------- count initialization

TableCollector* CountsTable() {
  static TableCollector table(
      "Ablation — white-count initialization: during build vs post-build "
      "pass (Clustered)",
      "ablation_build_counts.csv",
      {"strategy", "r=0.01", "r=0.03", "r=0.05", "r=0.07"});
  return &table;
}

void BM_CountInit(benchmark::State& state, bool during_build) {
  const Dataset& dataset = Clustered10k();
  std::vector<std::string> row = {during_build ? "during-build"
                                               : "post-build"};
  for (auto _ : state) {
    row.resize(1);
    for (double radius : kRadii) {
      // Fresh tree each time: the strategies differ in how the build and
      // the counting interleave, so caching would blur the comparison.
      MTree tree(dataset, Euclidean());
      std::vector<uint32_t> counts;
      if (during_build) {
        benchmark::DoNotOptimize(
            tree.BuildWithNeighborCounts(radius, &counts));
      } else {
        benchmark::DoNotOptimize(tree.Build());
        tree.ComputeNeighborCountsPostBuild(radius, &counts);
      }
      row.push_back(std::to_string(tree.stats().node_accesses));
      state.counters["r=" + FormatDouble(radius, 3)] =
          static_cast<double>(tree.stats().node_accesses);
    }
  }
  CountsTable()->AddRow(std::move(row));
}

// --------------------------------------------------------- query mode

TableCollector* QueryModeTable() {
  static TableCollector table(
      "Ablation — query mode, 2000 white-filtered queries, "
      "region-consolidated greys (Clustered)",
      "ablation_query_mode.csv",
      {"mode", "r=0.01", "r=0.03", "r=0.05", "r=0.07"});
  return &table;
}

// Modes: 0 = top-down, 1 = bottom-up (exact), 2 = bottom-up stopping at the
// first grey ancestor (Fast-C's flavor). The exact bottom-up climb visits
// the same node set as top-down by construction (difference 0%, consistent
// with the paper's "< 5% at most cases"); grey-stopping is where bottom-up
// actually wins, at the price of occasionally missing distant whites.
void BM_QueryMode(benchmark::State& state, int mode) {
  MTree* tree = CachedTree(Clustered10k(), Euclidean());
  static const char* kNames[] = {"top-down", "bottom-up",
                                 "bottom-up (grey-stop)"};
  std::vector<std::string> row = {kNames[mode]};
  std::vector<Neighbor> found;
  for (auto _ : state) {
    row.resize(1);
    for (double radius : kRadii) {
      // Late-run snapshot: coverage consolidates spatially, so whole
      // regions (here: everything right of x = 0.15) have gone grey. This
      // is the state in which grey-stopping and pruning pay off.
      tree->ResetColors();
      for (ObjectId i = 0; i < tree->size(); ++i) {
        if (Clustered10k().point(i)[0] >= 0.15) {
          tree->SetColor(i, Color::kGrey);
        }
      }
      AccessStats before = tree->stats();
      size_t found_total = 0;
      for (ObjectId center = 0; center < 2000; ++center) {
        found.clear();
        if (mode == 0) {
          tree->RangeQueryAround(center, radius, QueryFilter::kWhiteOnly,
                                 true, &found);
        } else {
          tree->RangeQueryBottomUp(center, radius, QueryFilter::kWhiteOnly,
                                   true, /*stop_at_grey=*/mode == 2, &found);
        }
        found_total += found.size();
      }
      uint64_t accesses = (tree->stats() - before).node_accesses;
      row.push_back(std::to_string(accesses) + " (" +
                    std::to_string(found_total) + " hits)");
      state.counters["r=" + FormatDouble(radius, 3)] =
          static_cast<double>(accesses);
      state.counters["hits_r=" + FormatDouble(radius, 3)] =
          static_cast<double>(found_total);
    }
  }
  QueryModeTable()->AddRow(std::move(row));
}

// ------------------------------------------------------- build strategy

TableCollector* BuildStrategyTable() {
  static TableCollector table(
      "Ablation — build strategy: construction cost and downstream query "
      "accesses (Clustered, capacity 50, 2000 queries at r=0.03)",
      "ablation_build_strategy.csv",
      {"strategy", "n", "build_ms", "build_dists", "nodes", "fat_factor",
       "query_accesses"});
  return &table;
}

void BM_BuildStrategy(benchmark::State& state, BuildStrategy strategy,
                      size_t n) {
  const Dataset& dataset = Clustered(n, 2);
  MTreeOptions options;
  options.build.strategy = strategy;
  const double query_radius = 0.03;
  const size_t num_queries = 2000;

  double build_ms = 0.0;
  uint64_t build_dists = 0;
  uint64_t query_accesses = 0;
  size_t nodes = 0;
  double fat = 0.0;
  for (auto _ : state) {
    // Fresh tree each iteration: construction is the thing being measured.
    MTree tree(dataset, Euclidean(), options);
    Stopwatch watch;
    Status status = tree.Build();
    build_ms = watch.ElapsedMillis();
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    build_dists = tree.stats().distance_computations;
    nodes = tree.num_nodes();

    // Downstream cost: the same fixed range-query load on each tree shape.
    // Paused so the benchmark's reported time measures construction only
    // (matching the build_ms counter in the JSON artifact).
    state.PauseTiming();
    tree.ResetStats();
    std::vector<Neighbor> found;
    for (ObjectId center = 0; center < num_queries && center < tree.size();
         ++center) {
      found.clear();
      tree.RangeQueryAround(center, query_radius, QueryFilter::kAll,
                            /*pruned=*/false, &found);
    }
    query_accesses = tree.stats().node_accesses;
    fat = tree.FatFactor();
    state.ResumeTiming();
  }
  state.counters["build_ms"] = build_ms;
  state.counters["build_dists"] = static_cast<double>(build_dists);
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["query_accesses"] = static_cast<double>(query_accesses);
  BuildStrategyTable()->AddRow(
      {BuildStrategyToString(strategy), std::to_string(n),
       FormatDouble(build_ms, 4), std::to_string(build_dists),
       std::to_string(nodes), FormatDouble(fat, 3),
       std::to_string(query_accesses)});
}

[[maybe_unused]] const bool registered = [] {
  for (size_t capacity : {25u, 50u, 100u}) {
    std::string name = "Ablation/Capacity/" + std::to_string(capacity);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [capacity](benchmark::State& state) {
                                   BM_Capacity(state, capacity);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (bool during_build : {false, true}) {
    std::string name = std::string("Ablation/CountInit/") +
                       (during_build ? "during-build" : "post-build");
    benchmark::RegisterBenchmark(name.c_str(),
                                 [during_build](benchmark::State& state) {
                                   BM_CountInit(state, during_build);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (int mode : {0, 1, 2}) {
    std::string name =
        std::string("Ablation/QueryMode/mode=") + std::to_string(mode);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [mode](benchmark::State& state) {
                                   BM_QueryMode(state, mode);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (size_t n : {1000u, 10000u, 20000u}) {
    for (BuildStrategy strategy :
         {BuildStrategy::kInsertAtATime, BuildStrategy::kBulkLoad}) {
      std::string name = "Ablation/BuildStrategy/" +
                         std::string(BuildStrategyToString(strategy)) + "/n=" +
                         std::to_string(n);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [strategy, n](benchmark::State& state) {
                                     BM_BuildStrategy(state, strategy, n);
                                   })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return true;
}();

}  // namespace
}  // namespace bench
}  // namespace disc

DISC_BENCH_MAIN()
