// Direct tests for the engine's configuration and dispatch seams, which
// were previously only exercised through engine_test's end-to-end paths:
// ParseAlgorithm/AlgorithmToString round-trips, the RunAlgorithm dispatcher
// against the per-algorithm entry points, and EngineConfig / DatasetSpec
// validation errors (bad metric names, unknown or unresolvable datasets).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/disc_algorithms.h"
#include "data/generators.h"
#include "engine/config.h"
#include "engine/engine.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "util/status.h"

namespace disc {
namespace {

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kBasic,  Algorithm::kGreedy, Algorithm::kGreedyWhite,
    Algorithm::kLazyGrey, Algorithm::kLazyWhite, Algorithm::kGreedyC,
    Algorithm::kFastC,
};

// ---------------------------------------------------------------------------
// ParseAlgorithm / AlgorithmToString
// ---------------------------------------------------------------------------

TEST(ParseAlgorithmTest, RoundTripsEveryAlgorithm) {
  for (Algorithm algorithm : kAllAlgorithms) {
    auto parsed = ParseAlgorithm(AlgorithmToString(algorithm));
    ASSERT_TRUE(parsed.ok()) << AlgorithmToString(algorithm);
    EXPECT_EQ(*parsed, algorithm);
  }
}

TEST(ParseAlgorithmTest, RejectsUnknownNamesWithTheVocabulary) {
  for (const char* bad : {"", "greedy ", "GREEDY", "greedyc", "basic-disc"}) {
    auto parsed = ParseAlgorithm(bad);
    ASSERT_FALSE(parsed.ok()) << "'" << bad << "' unexpectedly parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("unknown algorithm"),
              std::string::npos)
        << parsed.status().ToString();
  }
}

TEST(ParseAlgorithmTest, FamilyPredicatesMatchThePaper) {
  // Covering-only algorithms (§2.3) are not zoomable r-DisC producers.
  EXPECT_FALSE(IsDiscFamily(Algorithm::kGreedyC));
  EXPECT_FALSE(IsDiscFamily(Algorithm::kFastC));
  for (Algorithm algorithm :
       {Algorithm::kBasic, Algorithm::kGreedy, Algorithm::kGreedyWhite,
        Algorithm::kLazyGrey, Algorithm::kLazyWhite}) {
    EXPECT_TRUE(IsDiscFamily(algorithm)) << AlgorithmToString(algorithm);
  }
  // Basic-DisC is the only algorithm that ignores precomputed counts.
  EXPECT_FALSE(AlgorithmUsesNeighborCounts(Algorithm::kBasic));
  for (Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kGreedyWhite, Algorithm::kLazyGrey,
        Algorithm::kLazyWhite, Algorithm::kGreedyC, Algorithm::kFastC}) {
    EXPECT_TRUE(AlgorithmUsesNeighborCounts(algorithm))
        << AlgorithmToString(algorithm);
  }
}

// ---------------------------------------------------------------------------
// RunAlgorithm dispatch
// ---------------------------------------------------------------------------

DiscResult RunDirect(MTree* tree, Algorithm algorithm, double radius) {
  GreedyDiscOptions greedy;
  switch (algorithm) {
    case Algorithm::kBasic:
      return BasicDisc(tree, radius);
    case Algorithm::kGreedy:
      greedy.variant = GreedyVariant::kGrey;
      return GreedyDisc(tree, radius, greedy);
    case Algorithm::kGreedyWhite:
      greedy.variant = GreedyVariant::kWhite;
      return GreedyDisc(tree, radius, greedy);
    case Algorithm::kLazyGrey:
      greedy.variant = GreedyVariant::kLazyGrey;
      return GreedyDisc(tree, radius, greedy);
    case Algorithm::kLazyWhite:
      greedy.variant = GreedyVariant::kLazyWhite;
      return GreedyDisc(tree, radius, greedy);
    case Algorithm::kGreedyC:
      return GreedyC(tree, radius);
    case Algorithm::kFastC:
      return FastC(tree, radius);
  }
  return {};
}

TEST(RunAlgorithmTest, DispatchMatchesDirectEntryPoints) {
  const Dataset dataset = MakeClusteredDataset(250, 2, 13);
  EuclideanMetric metric;
  const double radius = 0.1;
  for (Algorithm algorithm : kAllAlgorithms) {
    MTree via_dispatch(dataset, metric);
    ASSERT_TRUE(via_dispatch.Build().ok());
    DiscResult dispatched = RunAlgorithm(&via_dispatch, algorithm, radius);

    MTree direct(dataset, metric);
    ASSERT_TRUE(direct.Build().ok());
    DiscResult expected = RunDirect(&direct, algorithm, radius);

    EXPECT_EQ(dispatched.solution, expected.solution)
        << AlgorithmToString(algorithm);
    EXPECT_FALSE(dispatched.solution.empty())
        << AlgorithmToString(algorithm);
  }
}

TEST(RunAlgorithmTest, HonorsThePrunedOption) {
  const Dataset dataset = MakeClusteredDataset(250, 2, 13);
  EuclideanMetric metric;
  AlgorithmRunOptions pruned;
  pruned.pruned = true;
  AlgorithmRunOptions unpruned;
  unpruned.pruned = false;

  MTree tree_a(dataset, metric);
  ASSERT_TRUE(tree_a.Build().ok());
  DiscResult with = RunAlgorithm(&tree_a, Algorithm::kGreedy, 0.1, pruned);

  MTree tree_b(dataset, metric);
  ASSERT_TRUE(tree_b.Build().ok());
  DiscResult without =
      RunAlgorithm(&tree_b, Algorithm::kGreedy, 0.1, unpruned);

  // Pruning changes cost, never the selected solution.
  EXPECT_EQ(with.solution, without.solution);
  EXPECT_LT(with.stats.node_accesses, without.stats.node_accesses);
}

// ---------------------------------------------------------------------------
// EngineConfig / DatasetSpec validation
// ---------------------------------------------------------------------------

TEST(EngineConfigTest, ParseDatasetSpecRejectsUnknownNames) {
  for (const char* bad : {"", "csv", "cluster", "uniform "}) {
    auto spec = ParseDatasetSpec(bad, 100, 2, 1);
    ASSERT_FALSE(spec.ok()) << "'" << bad << "' unexpectedly parsed";
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(spec.status().message().find("unknown dataset"),
              std::string::npos);
  }
}

TEST(EngineConfigTest, ParseMetricKindRejectsUnknownNames) {
  auto kind = ParseMetricKind("taxicab");
  ASSERT_FALSE(kind.ok());
  EXPECT_EQ(kind.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineConfigTest, CreateFailsOnMissingCsvFile) {
  EngineConfig config;
  config.dataset = DatasetSpec::Csv("/nonexistent/disc-engine-points.csv");
  auto engine = DiscEngine::Create(std::move(config));
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().code(), StatusCode::kOk);
}

TEST(EngineConfigTest, CreateFailsOnEmptyProvidedDataset) {
  EngineConfig config;
  config.dataset = DatasetSpec::Provided(Dataset(2));
  auto engine = DiscEngine::Create(std::move(config));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineConfigTest, DatasetSourceNamesRoundTripThroughParse) {
  // Every parseable source name is its own canonical string (kProvided has
  // no textual spelling by design: it cannot arrive over a wire).
  for (auto source :
       {DatasetSpec::Source::kUniform, DatasetSpec::Source::kClustered,
        DatasetSpec::Source::kCities, DatasetSpec::Source::kCameras}) {
    auto spec = ParseDatasetSpec(DatasetSourceToString(source), 10, 2, 1);
    ASSERT_TRUE(spec.ok()) << DatasetSourceToString(source);
    EXPECT_EQ(spec->source, source);
  }
  auto csv = ParseDatasetSpec("csv:points.csv", 10, 2, 1);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(std::string(DatasetSourceToString(csv->source)), "csv");
}

TEST(EngineConfigTest, DefaultsMatchTheDocumentedPerSourceValues) {
  EXPECT_EQ(DefaultMetricFor(DatasetSpec::Source::kCameras),
            MetricKind::kHamming);
  EXPECT_EQ(DefaultMetricFor(DatasetSpec::Source::kCities),
            MetricKind::kEuclidean);
  EXPECT_DOUBLE_EQ(DefaultRadiusFor(DatasetSpec::Source::kCities), 0.01);
  EXPECT_DOUBLE_EQ(DefaultRadiusFor(DatasetSpec::Source::kCameras), 3.0);
  EXPECT_DOUBLE_EQ(DefaultRadiusFor(DatasetSpec::Source::kUniform), 0.05);
}

}  // namespace
}  // namespace disc
