#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/kmedoids.h"
#include "baselines/maxmin.h"
#include "baselines/maxsum.h"
#include "data/generators.h"
#include "eval/quality.h"
#include "metric/metric.h"
#include "util/random.h"

namespace disc {
namespace {

TEST(MaxMinTest, ValidatesArguments) {
  Dataset d = MakeUniformDataset(10, 2, 1);
  EuclideanMetric metric;
  EXPECT_FALSE(GreedyMaxMin(Dataset{}, metric, 1).ok());
  EXPECT_FALSE(GreedyMaxMin(d, metric, 11).ok());
  EXPECT_FALSE(GreedyMaxMin(d, metric, 2, 99).ok());
  EXPECT_TRUE(GreedyMaxMin(d, metric, 10).ok());
}

TEST(MaxMinTest, KZeroIsEmpty) {
  Dataset d = MakeUniformDataset(10, 2, 1);
  EuclideanMetric metric;
  auto result = GreedyMaxMin(d, metric, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MaxMinTest, ReturnsKDistinctObjects) {
  Dataset d = MakeClusteredDataset(300, 2, 3);
  EuclideanMetric metric;
  auto result = GreedyMaxMin(d, metric, 15);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 15u);
  std::set<ObjectId> unique(result->begin(), result->end());
  EXPECT_EQ(unique.size(), 15u);
}

TEST(MaxMinTest, PicksExtremesOnALine) {
  Dataset d;
  for (double x : {0.0, 0.1, 0.2, 0.5, 1.0}) {
    ASSERT_TRUE(d.Add(Point{x}).ok());
  }
  EuclideanMetric metric;
  auto result = GreedyMaxMin(d, metric, 2, 0);
  ASSERT_TRUE(result.ok());
  // From start 0: farthest is 1.0 -> the pair {0.0, 1.0}.
  std::set<ObjectId> chosen(result->begin(), result->end());
  EXPECT_TRUE(chosen.count(0));
  EXPECT_TRUE(chosen.count(4));
}

TEST(MaxMinTest, FMinDecreasesWithK) {
  Dataset d = MakeUniformDataset(400, 2, 5);
  EuclideanMetric metric;
  double prev = 1e18;
  for (size_t k : {2u, 4u, 8u, 16u, 32u}) {
    auto result = GreedyMaxMin(d, metric, k);
    ASSERT_TRUE(result.ok());
    double f = FMin(d, metric, *result);
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
}

TEST(MaxMinTest, GonzalezTwoApproximation) {
  // Greedy MaxMin is a 2-approximation: its fMin is at least half the
  // optimum. Verify against brute force on a small instance.
  Dataset d = MakeUniformDataset(14, 2, 7);
  EuclideanMetric metric;
  const size_t k = 4;
  auto greedy = GreedyMaxMin(d, metric, k);
  ASSERT_TRUE(greedy.ok());
  double greedy_fmin = FMin(d, metric, *greedy);

  double best = 0;
  const size_t n = d.size();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) != k) continue;
    std::vector<ObjectId> subset;
    for (size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) subset.push_back(static_cast<ObjectId>(v));
    }
    best = std::max(best, FMin(d, metric, subset));
  }
  EXPECT_GE(greedy_fmin * 2.0 + 1e-12, best);
}

TEST(MaxSumTest, ValidatesArguments) {
  Dataset d = MakeUniformDataset(10, 2, 1);
  EuclideanMetric metric;
  EXPECT_FALSE(GreedyMaxSum(Dataset{}, metric, 1).ok());
  EXPECT_FALSE(GreedyMaxSum(d, metric, 11).ok());
  EXPECT_TRUE(GreedyMaxSum(d, metric, 3).ok());
}

TEST(MaxSumTest, ReturnsKDistinctObjects) {
  Dataset d = MakeClusteredDataset(300, 2, 9);
  EuclideanMetric metric;
  auto result = GreedyMaxSum(d, metric, 15);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 15u);
  std::set<ObjectId> unique(result->begin(), result->end());
  EXPECT_EQ(unique.size(), 15u);
}

TEST(MaxSumTest, FavorsOutskirts) {
  // A dense core plus 4 corner outliers: MaxSum with k=4 takes the corners.
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    double t = i / 50.0;
    ASSERT_TRUE(d.Add(Point{0.5 + 0.01 * t, 0.5 - 0.01 * t}).ok());
  }
  std::vector<ObjectId> corners;
  for (auto [x, y] : {std::pair{0.0, 0.0}, std::pair{0.0, 1.0},
                      std::pair{1.0, 0.0}, std::pair{1.0, 1.0}}) {
    corners.push_back(static_cast<ObjectId>(d.size()));
    ASSERT_TRUE(d.Add(Point{x, y}).ok());
  }
  EuclideanMetric metric;
  auto result = GreedyMaxSum(d, metric, 4);
  ASSERT_TRUE(result.ok());
  std::set<ObjectId> chosen(result->begin(), result->end());
  for (ObjectId c : corners) EXPECT_TRUE(chosen.count(c)) << c;
}

TEST(KMedoidsTest, ValidatesArguments) {
  Dataset d = MakeUniformDataset(10, 2, 1);
  EuclideanMetric metric;
  EXPECT_FALSE(KMedoids(Dataset{}, metric, 1).ok());
  EXPECT_FALSE(KMedoids(d, metric, 0).ok());
  EXPECT_FALSE(KMedoids(d, metric, 11).ok());
  EXPECT_TRUE(KMedoids(d, metric, 3).ok());
}

TEST(KMedoidsTest, MedoidsAreClusterMembersAndDistinct) {
  Dataset d = MakeClusteredDataset(400, 2, 11);
  EuclideanMetric metric;
  auto result = KMedoids(d, metric, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->medoids.size(), 8u);
  std::set<ObjectId> unique(result->medoids.begin(), result->medoids.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_EQ(result->assignment.size(), d.size());
  for (uint32_t a : result->assignment) EXPECT_LT(a, 8u);
}

TEST(KMedoidsTest, AssignmentIsNearestMedoid) {
  Dataset d = MakeClusteredDataset(200, 2, 13);
  EuclideanMetric metric;
  auto result = KMedoids(d, metric, 5);
  ASSERT_TRUE(result.ok());
  for (ObjectId i = 0; i < d.size(); ++i) {
    double assigned = metric.Distance(
        d.point(i), d.point(result->medoids[result->assignment[i]]));
    for (ObjectId m : result->medoids) {
      EXPECT_LE(assigned, metric.Distance(d.point(i), d.point(m)) + 1e-12);
    }
  }
}

TEST(KMedoidsTest, RecoversWellSeparatedClusters) {
  // Three tight, far-apart blobs: k-medoids with k=3 places one medoid in
  // each and achieves a tiny objective.
  Dataset d;
  Random rng(17);
  std::vector<std::pair<double, double>> centers = {
      {0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}};
  for (const auto& [cx, cy] : centers) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          d.Add(Point{cx + rng.Gaussian(0, 0.01), cy + rng.Gaussian(0, 0.01)})
              .ok());
    }
  }
  EuclideanMetric metric;
  auto result = KMedoids(d, metric, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->mean_distance, 0.05);
  // One medoid per blob (blob = 40 consecutive ids).
  std::set<size_t> blobs;
  for (ObjectId m : result->medoids) blobs.insert(m / 40);
  EXPECT_EQ(blobs.size(), 3u);
}

TEST(KMedoidsTest, DeterministicForFixedSeed) {
  Dataset d = MakeClusteredDataset(300, 2, 19);
  EuclideanMetric metric;
  auto a = KMedoids(d, metric, 6);
  auto b = KMedoids(d, metric, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->medoids, b->medoids);
}

TEST(KMedoidsTest, ObjectiveImprovesOverSingleIteration) {
  Dataset d = MakeClusteredDataset(500, 2, 23);
  EuclideanMetric metric;
  KMedoidsOptions one_iter;
  one_iter.max_iterations = 1;
  KMedoidsOptions many_iter;
  many_iter.max_iterations = 25;
  auto quick = KMedoids(d, metric, 10, one_iter);
  auto full = KMedoids(d, metric, 10, many_iter);
  ASSERT_TRUE(quick.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LE(full->mean_distance, quick->mean_distance + 1e-12);
}

}  // namespace
}  // namespace disc
