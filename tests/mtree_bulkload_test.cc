// Bulk-load construction (MTree::BulkLoad / BuildStrategy::kBulkLoad).
//
// The contract under test: a bulk-loaded tree is a *valid* M-tree (every
// structural invariant of MTree::Validate — covering radii, parent
// distances, uniform depth, leaf chain, white counters, node counts) that
// answers every query *identically* to an insert-built tree over the same
// dataset. The centerpiece is a property test sweeping random workloads;
// the rest covers the degenerate shapes and error paths, plus the
// end-to-end behavior of the DisC algorithms on bulk-loaded trees.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/disc_algorithms.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "graph/neighborhood.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "util/parallel.h"

namespace disc {
namespace {

MTreeOptions BulkOptions(size_t capacity = 50, uint64_t seed = 42) {
  MTreeOptions options;
  options.node_capacity = capacity;
  options.random_seed = seed;
  options.build.strategy = BuildStrategy::kBulkLoad;
  return options;
}

MTreeOptions InsertOptions(size_t capacity = 50) {
  MTreeOptions options;
  options.node_capacity = capacity;
  return options;
}

std::vector<ObjectId> SortedIds(const std::vector<Neighbor>& neighbors) {
  std::vector<ObjectId> ids;
  ids.reserve(neighbors.size());
  for (const Neighbor& nb : neighbors) ids.push_back(nb.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// The acceptance property: over random workloads, bulk-loaded and
// insert-built trees return identical RangeQuery result sets, and both pass
// the full structural invariant checker.
TEST(MTreeBulkLoadProperty, RangeQueryEquivalenceOverRandomWorkloads) {
  EuclideanMetric metric;
  const double radii[] = {0.02, 0.1, 0.3};
  for (uint64_t seed : {1u, 7u, 23u}) {
    for (size_t n : {30u, 120u, 700u}) {
      for (size_t capacity : {4u, 25u}) {
        const Dataset uniform = MakeUniformDataset(n, 2, seed);
        const Dataset clustered = MakeClusteredDataset(n, 3, seed);
        for (const Dataset* dataset : {&uniform, &clustered}) {
          MTree insert_tree(*dataset, metric, InsertOptions(capacity));
          MTree bulk_tree(*dataset, metric, BulkOptions(capacity, seed));
          ASSERT_TRUE(insert_tree.Build().ok());
          ASSERT_TRUE(bulk_tree.Build().ok());
          ASSERT_TRUE(insert_tree.Validate().ok())
              << insert_tree.Validate().ToString();
          ASSERT_TRUE(bulk_tree.Validate().ok())
              << bulk_tree.Validate().ToString();

          for (double radius : radii) {
            for (ObjectId center = 0; center < n; center += n / 9 + 1) {
              std::vector<Neighbor> from_insert, from_bulk;
              insert_tree.RangeQueryAround(center, radius, QueryFilter::kAll,
                                           /*pruned=*/false, &from_insert);
              bulk_tree.RangeQueryAround(center, radius, QueryFilter::kAll,
                                         /*pruned=*/false, &from_bulk);
              EXPECT_EQ(SortedIds(from_insert), SortedIds(from_bulk))
                  << "seed=" << seed << " n=" << n << " cap=" << capacity
                  << " r=" << radius << " center=" << center;
            }
          }
        }
      }
    }
  }
}

// The same equivalence for point-centered queries (arbitrary, non-stored
// centers) — exercised separately because they descend without an exclude id
// and without a precomputed center-to-pivot distance.
TEST(MTreeBulkLoadProperty, PointQueryEquivalence) {
  EuclideanMetric metric;
  const Dataset dataset = MakeClusteredDataset(400, 2, 5);
  MTree insert_tree(dataset, metric, InsertOptions(10));
  MTree bulk_tree(dataset, metric, BulkOptions(10));
  ASSERT_TRUE(insert_tree.Build().ok());
  ASSERT_TRUE(bulk_tree.Build().ok());
  for (double x : {0.1, 0.5, 0.9}) {
    for (double y : {0.2, 0.7}) {
      Point q{x, y};
      for (double radius : {0.05, 0.25}) {
        std::vector<Neighbor> from_insert, from_bulk;
        insert_tree.RangeQuery(q, radius, QueryFilter::kAll, false,
                               &from_insert);
        bulk_tree.RangeQuery(q, radius, QueryFilter::kAll, false, &from_bulk);
        EXPECT_EQ(SortedIds(from_insert), SortedIds(from_bulk))
            << "q=(" << x << "," << y << ") r=" << radius;
      }
    }
  }
}

// Bottom-up queries climb the parent pointers the bulk loader wires up.
TEST(MTreeBulkLoadProperty, BottomUpQueryEquivalence) {
  EuclideanMetric metric;
  const Dataset dataset = MakeUniformDataset(300, 2, 11);
  MTree bulk_tree(dataset, metric, BulkOptions(8));
  ASSERT_TRUE(bulk_tree.Build().ok());
  for (ObjectId center : {0u, 37u, 299u}) {
    std::vector<Neighbor> top_down, bottom_up;
    bulk_tree.RangeQueryAround(center, 0.15, QueryFilter::kAll, false,
                               &top_down);
    bulk_tree.RangeQueryBottomUp(center, 0.15, QueryFilter::kAll, false,
                                 /*stop_at_grey=*/false, &bottom_up);
    EXPECT_EQ(SortedIds(top_down), SortedIds(bottom_up)) << center;
  }
}

TEST(MTreeBulkLoad, NeighborCountsMatchInsertPath) {
  EuclideanMetric metric;
  const Dataset dataset = MakeClusteredDataset(250, 2, 9);
  const double radius = 0.08;
  std::vector<uint32_t> insert_counts, bulk_counts;
  MTree insert_tree(dataset, metric, InsertOptions(16));
  MTree bulk_tree(dataset, metric, BulkOptions(16));
  ASSERT_TRUE(
      insert_tree.BuildWithNeighborCounts(radius, &insert_counts).ok());
  ASSERT_TRUE(bulk_tree.BuildWithNeighborCounts(radius, &bulk_counts).ok());
  EXPECT_EQ(insert_counts, bulk_counts);
  ASSERT_TRUE(bulk_tree.Validate().ok());
}

TEST(MTreeBulkLoad, LeafChainEnumeratesEveryObjectOnce) {
  EuclideanMetric metric;
  const Dataset dataset = MakeUniformDataset(333, 2, 3);
  MTree tree(dataset, metric, BulkOptions(7));
  ASSERT_TRUE(tree.Build().ok());
  std::vector<ObjectId> order = tree.LeafOrder();
  ASSERT_EQ(order.size(), dataset.size());
  std::sort(order.begin(), order.end());
  for (ObjectId id = 0; id < dataset.size(); ++id) EXPECT_EQ(order[id], id);
}

TEST(MTreeBulkLoad, SingleLeafWhenEverythingFits) {
  EuclideanMetric metric;
  const Dataset dataset = MakeUniformDataset(40, 2, 2);
  MTree tree(dataset, metric, BulkOptions(50));
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  ASSERT_TRUE(tree.Validate().ok());
}

TEST(MTreeBulkLoad, SinglePointDataset) {
  EuclideanMetric metric;
  const Dataset dataset = MakeUniformDataset(1, 2, 2);
  MTree tree(dataset, metric, BulkOptions(2));
  ASSERT_TRUE(tree.Build().ok());
  ASSERT_TRUE(tree.Validate().ok());
  std::vector<Neighbor> found;
  tree.RangeQueryAround(0, 1.0, QueryFilter::kAll, false, &found);
  EXPECT_TRUE(found.empty());
}

// All-coincident points defeat nearest-seed clustering (every assignment
// lands on one seed); the loader must fall back to positional splitting and
// still produce a valid tree.
TEST(MTreeBulkLoad, DuplicatePointsFallBackToPositionalSplit) {
  Dataset dataset(2);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(dataset.Add(Point{0.5, 0.5}).ok());
  }
  EuclideanMetric metric;
  MTree tree(dataset, metric, BulkOptions(4));
  ASSERT_TRUE(tree.Build().ok());
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  std::vector<Neighbor> found;
  tree.RangeQueryAround(0, 0.0, QueryFilter::kAll, false, &found);
  EXPECT_EQ(found.size(), 299u);
}

TEST(MTreeBulkLoad, HammingMetricWorkload) {
  // Categorical coordinates + Hamming distance: many ties, integer
  // distances — a stress case for seed assignment.
  Dataset dataset(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(dataset
                    .Add(Point{static_cast<double>(i % 4),
                               static_cast<double>((i / 4) % 5),
                               static_cast<double>(i % 3)})
                    .ok());
  }
  HammingMetric metric;
  MTree insert_tree(dataset, metric, InsertOptions(8));
  MTree bulk_tree(dataset, metric, BulkOptions(8));
  ASSERT_TRUE(insert_tree.Build().ok());
  ASSERT_TRUE(bulk_tree.Build().ok());
  ASSERT_TRUE(bulk_tree.Validate().ok()) << bulk_tree.Validate().ToString();
  for (ObjectId center : {0u, 99u, 199u}) {
    std::vector<Neighbor> from_insert, from_bulk;
    insert_tree.RangeQueryAround(center, 2.0, QueryFilter::kAll, false,
                                 &from_insert);
    bulk_tree.RangeQueryAround(center, 2.0, QueryFilter::kAll, false,
                               &from_bulk);
    EXPECT_EQ(SortedIds(from_insert), SortedIds(from_bulk)) << center;
  }
}

TEST(MTreeBulkLoad, RejectsSamePreconditionsAsInsertBuild) {
  EuclideanMetric metric;
  {
    Dataset empty;
    MTree tree(empty, metric, BulkOptions());
    EXPECT_EQ(tree.Build().code(), StatusCode::kInvalidArgument);
  }
  {
    Dataset dataset = MakeUniformDataset(10, 2, 1);
    MTree tree(dataset, metric, BulkOptions(1));
    EXPECT_EQ(tree.Build().code(), StatusCode::kInvalidArgument);
  }
  {
    Dataset dataset = MakeUniformDataset(10, 2, 1);
    MTree tree(dataset, metric, BulkOptions());
    ASSERT_TRUE(tree.Build().ok());
    EXPECT_EQ(tree.Build().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(MTreeBulkLoad, DeterministicForFixedSeed) {
  EuclideanMetric metric;
  const Dataset dataset = MakeClusteredDataset(500, 2, 13);
  MTree a(dataset, metric, BulkOptions(10, 99));
  MTree b(dataset, metric, BulkOptions(10, 99));
  ASSERT_TRUE(a.Build().ok());
  ASSERT_TRUE(b.Build().ok());
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.LeafOrder(), b.LeafOrder());
}

// The parallel bulk load (seed-assignment and per-cluster leaf fan-outs over
// a ThreadPool) must produce the *same tree* as the serial build — node
// count, leaf chain, fat-factor, and construction stats all pinned identical
// at every thread count. Seed sampling stays on the calling thread in the
// serial draw order, so this holds structurally, not just statistically.
TEST(MTreeBulkLoad, ParallelBuildIsByteIdenticalAtAnyThreadCount) {
  EuclideanMetric metric;
  for (uint64_t seed : {13u, 99u}) {
    for (size_t n : {120u, 700u}) {
      for (size_t capacity : {4u, 25u}) {
        const Dataset dataset = MakeClusteredDataset(n, 2, seed);
        MTree serial(dataset, metric, BulkOptions(capacity, seed));
        ASSERT_TRUE(serial.Build().ok());
        ASSERT_TRUE(serial.Validate().ok()) << serial.Validate().ToString();
        for (size_t threads : {1u, 2u, 4u, 8u}) {
          ThreadPool pool(threads);
          MTree parallel(dataset, metric, BulkOptions(capacity, seed));
          ASSERT_TRUE(parallel.Build(&pool).ok());
          const std::string label = "seed=" + std::to_string(seed) +
                                    " n=" + std::to_string(n) +
                                    " cap=" + std::to_string(capacity) +
                                    " threads=" + std::to_string(threads);
          EXPECT_EQ(serial.num_nodes(), parallel.num_nodes()) << label;
          EXPECT_EQ(serial.LeafOrder(), parallel.LeafOrder()) << label;
          EXPECT_EQ(serial.FatFactor(), parallel.FatFactor()) << label;
          EXPECT_TRUE(serial.stats() == parallel.stats())
              << label << ": construction stats diverged (node_accesses "
              << serial.stats().node_accesses << " vs "
              << parallel.stats().node_accesses << ", distances "
              << serial.stats().distance_computations << " vs "
              << parallel.stats().distance_computations << ")";
          EXPECT_TRUE(parallel.Validate().ok())
              << label << ": " << parallel.Validate().ToString();
        }
      }
    }
  }
}

// Colors, the §5.1 pruning rule, and the greedy algorithms must behave on a
// bulk-loaded tree exactly as on an insert-built one: same solution, still a
// verified r-DisC diverse subset.
TEST(MTreeBulkLoad, GreedyDiscSolutionsMatchAndVerify) {
  EuclideanMetric metric;
  const Dataset dataset = MakeClusteredDataset(400, 2, 17);
  const double radius = 0.1;
  MTree insert_tree(dataset, metric, InsertOptions(16));
  MTree bulk_tree(dataset, metric, BulkOptions(16));
  ASSERT_TRUE(insert_tree.Build().ok());
  ASSERT_TRUE(bulk_tree.Build().ok());

  DiscResult from_insert = GreedyDisc(&insert_tree, radius);
  DiscResult from_bulk = GreedyDisc(&bulk_tree, radius);
  // Greedy-DisC is deterministic given the neighborhood structure, which is
  // identical for both trees (ties break on object id, not tree shape).
  EXPECT_EQ(from_insert.solution, from_bulk.solution);
  EXPECT_TRUE(
      VerifyDisCDiverse(dataset, metric, radius, from_bulk.solution).ok());
  ASSERT_TRUE(bulk_tree.Validate().ok()) << bulk_tree.Validate().ToString();
}

TEST(MTreeBulkLoad, IndexBackedNeighborhoodGraphMatchesDirectBuild) {
  EuclideanMetric metric;
  const Dataset dataset = MakeClusteredDataset(350, 2, 21);
  const double radius = 0.07;
  const NeighborhoodGraph direct(dataset, metric, radius);

  for (BuildStrategy strategy :
       {BuildStrategy::kInsertAtATime, BuildStrategy::kBulkLoad}) {
    MTreeOptions options;
    options.node_capacity = 16;
    options.build.strategy = strategy;
    MTree tree(dataset, metric, options);
    ASSERT_TRUE(tree.Build().ok());
    const NeighborhoodGraph indexed(tree, radius);
    ASSERT_EQ(indexed.num_vertices(), direct.num_vertices());
    EXPECT_EQ(indexed.num_edges(), direct.num_edges());
    for (ObjectId v = 0; v < direct.num_vertices(); ++v) {
      EXPECT_EQ(indexed.neighbors(v), direct.neighbors(v))
          << "strategy=" << BuildStrategyToString(strategy) << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace disc
