#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

namespace disc {
namespace {

TEST(RandomTest, SameSeedSameStream) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RandomTest, Uniform01InRange) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, Uniform01MeanNearHalf) {
  Random rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.5);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RandomTest, UniformIntCoversAllValues) {
  Random rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RandomTest, GaussianScaled) {
  Random rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RandomTest, ShuffleIsDeterministic) {
  std::vector<int> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Random ra(33), rb(33);
  ra.Shuffle(&a);
  rb.Shuffle(&b);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Pinned-stream regression tests.
//
// Every dataset generator and randomized algorithm in the library derives its
// behavior from this xoshiro256** stream, so dataset-dependent tests are only
// reproducible if the stream itself never drifts. These goldens pin the exact
// output across platforms, compilers, and refactorings; if one fails, either
// the generator was changed intentionally (re-pin AND expect every
// dataset-dependent golden elsewhere to shift) or a portability bug crept in.
// ---------------------------------------------------------------------------

TEST(RandomRegressionTest, NextPinnedSeed42) {
  Random rng(42);
  const uint64_t expected[] = {
      0x15780b2e0c2ec716ull, 0x6104d9866d113a7eull, 0xae17533239e499a1ull,
      0xecb8ad4703b360a1ull, 0xfde6dc7fe2ec5e64ull, 0xc50da53101795238ull,
      0xb82154855a65ddb2ull, 0xd99a2743ebe60087ull,
  };
  for (uint64_t want : expected) {
    EXPECT_EQ(rng.Next(), want);
  }
}

TEST(RandomRegressionTest, NextPinnedSeed0) {
  // Seed 0 must not produce a degenerate (all-zero) state: splitmix64
  // expansion guarantees a healthy stream even for the zero seed.
  Random rng(0);
  const uint64_t expected[] = {
      0x99ec5f36cb75f2b4ull, 0xbf6e1f784956452aull, 0x1a5f849d4933e6e0ull,
      0x6aa594f1262d2d2cull,
  };
  for (uint64_t want : expected) {
    EXPECT_EQ(rng.Next(), want);
  }
}

TEST(RandomRegressionTest, Uniform01Pinned) {
  // Uniform01 is Next() >> 11 scaled by 2^-53; exact equality is portable.
  Random rng(42);
  const double expected[] = {
      0.083862971059882163,
      0.37898025066266861,
      0.68004341102813937,
      0.92469294532538759,
  };
  for (double want : expected) {
    EXPECT_DOUBLE_EQ(rng.Uniform01(), want);
  }
}

TEST(RandomRegressionTest, UniformIntPinned) {
  Random rng(123);
  const uint64_t expected[] = {497u, 998u, 367u, 30u, 94u, 554u, 755u, 5u};
  for (uint64_t want : expected) {
    EXPECT_EQ(rng.UniformInt(1000), want);
  }
}

TEST(RandomRegressionTest, GaussianPinned) {
  // Box-Muller goes through libm (sqrt/log/sin/cos), so allow a few ulps of
  // cross-platform slack rather than demanding bit equality.
  Random rng(7);
  const double expected[] = {
      -0.27902399102519809,
      1.5277231859624536,
      1.8997685786889567,
      -0.22669574599685979,
  };
  for (double want : expected) {
    EXPECT_NEAR(rng.Gaussian(), want, 1e-12);
  }
}

TEST(RandomRegressionTest, ShufflePinned) {
  Random rng(99);
  std::vector<int> v(10);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(&v);
  const std::vector<int> expected = {4, 1, 9, 0, 7, 2, 5, 3, 6, 8};
  EXPECT_EQ(v, expected);
}

}  // namespace
}  // namespace disc
