#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace disc {
namespace {

TEST(RandomTest, SameSeedSameStream) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RandomTest, Uniform01InRange) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, Uniform01MeanNearHalf) {
  Random rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.5);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RandomTest, UniformIntCoversAllValues) {
  Random rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(RandomTest, GaussianScaled) {
  Random rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RandomTest, ShuffleIsDeterministic) {
  std::vector<int> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Random ra(33), rb(33);
  ra.Shuffle(&a);
  rb.Shuffle(&b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace disc
