#include "util/status.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad radius");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad radius");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad radius");
}

TEST(StatusTest, AllErrorFactoriesSetTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::IOError("x"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  DISC_RETURN_NOT_OK(FailWhenNegative(x));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DISC_ASSIGN_OR_RETURN(int half, Half(x));
  DISC_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnHappyPath) {
  Result<int> r = helpers::Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesFirstError) {
  EXPECT_FALSE(helpers::Quarter(7).ok());
  EXPECT_FALSE(helpers::Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_TRUE(helpers::Quarter(4).ok());
}

}  // namespace
}  // namespace disc
