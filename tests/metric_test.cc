#include "metric/metric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "metric/point.h"
#include "util/random.h"

namespace disc {
namespace {

TEST(PointTest, DimensionAndAccess) {
  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
}

TEST(PointTest, Mutation) {
  Point p{1.0, 2.0};
  p[1] = 5.0;
  EXPECT_DOUBLE_EQ(p[1], 5.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1.0, 2.0}), (Point{1.0, 2.0}));
  EXPECT_NE((Point{1.0, 2.0}), (Point{1.0, 2.1}));
  EXPECT_NE((Point{1.0}), (Point{1.0, 0.0}));
}

TEST(PointTest, ToString) {
  EXPECT_EQ((Point{0.5, 1.0}).ToString(), "(0.5, 1)");
  EXPECT_EQ(Point{}.ToString(), "()");
}

TEST(EuclideanTest, KnownValues) {
  EuclideanMetric m;
  EXPECT_DOUBLE_EQ(m.Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(m.Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_NEAR(m.Distance({0, 0, 0}, {1, 1, 1}), std::sqrt(3.0), 1e-12);
}

TEST(ManhattanTest, KnownValues) {
  ManhattanMetric m;
  EXPECT_DOUBLE_EQ(m.Distance({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(m.Distance({-1, -2}, {1, 2}), 6.0);
}

TEST(ChebyshevTest, KnownValues) {
  ChebyshevMetric m;
  EXPECT_DOUBLE_EQ(m.Distance({0, 0}, {3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(m.Distance({5, 5}, {5, 5}), 0.0);
}

TEST(HammingTest, CountsDifferingCoordinates) {
  HammingMetric m;
  EXPECT_DOUBLE_EQ(m.Distance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(m.Distance({1, 2, 3}, {1, 5, 3}), 1.0);
  EXPECT_DOUBLE_EQ(m.Distance({1, 2, 3}, {4, 5, 6}), 3.0);
}

TEST(MetricOrderingTest, ManhattanDominatesEuclideanDominatesChebyshev) {
  // For any pair of points: L1 >= L2 >= Linf.
  Random rng(5);
  EuclideanMetric l2;
  ManhattanMetric l1;
  ChebyshevMetric linf;
  for (int i = 0; i < 200; ++i) {
    Point a{rng.Uniform01(), rng.Uniform01(), rng.Uniform01()};
    Point b{rng.Uniform01(), rng.Uniform01(), rng.Uniform01()};
    double d1 = l1.Distance(a, b);
    double d2 = l2.Distance(a, b);
    double dinf = linf.Distance(a, b);
    EXPECT_GE(d1, d2 - 1e-12);
    EXPECT_GE(d2, dinf - 1e-12);
  }
}

TEST(MetricFactoryTest, MakeMetricProducesRightKind) {
  for (MetricKind kind :
       {MetricKind::kEuclidean, MetricKind::kManhattan, MetricKind::kChebyshev,
        MetricKind::kHamming}) {
    auto metric = MakeMetric(kind);
    ASSERT_NE(metric, nullptr);
    EXPECT_EQ(metric->kind(), kind);
  }
}

TEST(MetricFactoryTest, ParseRoundTrip) {
  for (MetricKind kind :
       {MetricKind::kEuclidean, MetricKind::kManhattan, MetricKind::kChebyshev,
        MetricKind::kHamming}) {
    auto parsed = ParseMetricKind(MetricKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(MetricFactoryTest, ParseUnknownFails) {
  auto parsed = ParseMetricKind("cosine");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Property sweep: metric axioms for every metric family and dimensionality.
// ---------------------------------------------------------------------------

class MetricAxiomsTest
    : public ::testing::TestWithParam<std::tuple<MetricKind, size_t>> {
 protected:
  Point RandomPoint(Random* rng, size_t dim, bool categorical) {
    std::vector<double> coords(dim);
    for (size_t d = 0; d < dim; ++d) {
      coords[d] = categorical ? static_cast<double>(rng->UniformInt(4))
                              : rng->Uniform(-10, 10);
    }
    return Point(std::move(coords));
  }
};

TEST_P(MetricAxiomsTest, IdentitySymmetryTriangle) {
  auto [kind, dim] = GetParam();
  auto metric = MakeMetric(kind);
  bool categorical = kind == MetricKind::kHamming;
  Random rng(1000 + static_cast<uint64_t>(dim));
  for (int i = 0; i < 300; ++i) {
    Point a = RandomPoint(&rng, dim, categorical);
    Point b = RandomPoint(&rng, dim, categorical);
    Point c = RandomPoint(&rng, dim, categorical);
    // Identity of indiscernibles (one direction) and non-negativity.
    EXPECT_DOUBLE_EQ(metric->Distance(a, a), 0.0);
    EXPECT_GE(metric->Distance(a, b), 0.0);
    // Symmetry.
    EXPECT_DOUBLE_EQ(metric->Distance(a, b), metric->Distance(b, a));
    // Triangle inequality.
    EXPECT_LE(metric->Distance(a, c),
              metric->Distance(a, b) + metric->Distance(b, c) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetricsAllDims, MetricAxiomsTest,
    ::testing::Combine(::testing::Values(MetricKind::kEuclidean,
                                         MetricKind::kManhattan,
                                         MetricKind::kChebyshev,
                                         MetricKind::kHamming),
                       ::testing::Values(1u, 2u, 3u, 7u, 10u)),
    [](const ::testing::TestParamInfo<std::tuple<MetricKind, size_t>>&
           param_info) {
      return std::string(MetricKindToString(std::get<0>(param_info.param))) +
             "_d" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace disc
