#include <gtest/gtest.h>

#include "core/disc_algorithms.h"
#include "core/reference.h"
#include "data/cameras.h"
#include "data/generators.h"
#include "graph/properties.h"
#include "metric/metric.h"

namespace disc {
namespace {

TEST(GreedyCTest, AlwaysCovers) {
  EuclideanMetric metric;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Dataset d = MakeClusteredDataset(500, 2, seed);
    MTree tree(d, metric);
    ASSERT_TRUE(tree.Build().ok());
    for (double radius : {0.03, 0.1}) {
      DiscResult result = GreedyC(&tree, radius);
      EXPECT_TRUE(
          VerifyCovering(d, metric, radius, result.solution).ok())
          << "seed " << seed << " radius " << radius;
    }
  }
}

TEST(GreedyCTest, MatchesGraphReference) {
  Dataset d = MakeClusteredDataset(400, 2, 7);
  EuclideanMetric metric;
  const double radius = 0.06;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult indexed = GreedyC(&tree, radius);
  NeighborhoodGraph graph(d, metric, radius);
  EXPECT_EQ(indexed.solution, ReferenceGreedyC(graph));
}

TEST(GreedyCTest, NeverLargerThanGreedyDisC) {
  // Greedy-C relaxes independence, so its greedy objective can only improve
  // (or match) the per-step coverage; its solutions come out no larger in
  // all our workloads (the paper: "similar or slightly smaller").
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(800, 2, 11);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  for (double radius : {0.02, 0.05, 0.1}) {
    size_t disc_size = GreedyDisc(&tree, radius, {}).size();
    size_t c_size = GreedyC(&tree, radius).size();
    EXPECT_LE(c_size, disc_size + 2) << "radius " << radius;
  }
}

TEST(GreedyCTest, SolutionsNeedNotBeIndependent) {
  // On the Figure 4 style topology, Greedy-C may include adjacent objects.
  // We only assert the system-level contract: covering always, independent
  // sometimes-not (so do not VerifyDisCDiverse here).
  Dataset d = MakeClusteredDataset(600, 2, 13);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult result = GreedyC(&tree, 0.04);
  EXPECT_TRUE(VerifyCovering(d, metric, 0.04, result.solution).ok());
}

TEST(GreedyCTest, SingleObjectDataset) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.5, 0.5}).ok());
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult result = GreedyC(&tree, 0.1);
  EXPECT_EQ(result.solution, std::vector<ObjectId>{0});
}

TEST(FastCTest, AlwaysCovers) {
  EuclideanMetric metric;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Dataset d = MakeClusteredDataset(500, 2, seed + 20);
    MTree tree(d, metric);
    ASSERT_TRUE(tree.Build().ok());
    for (double radius : {0.03, 0.1}) {
      DiscResult result = FastC(&tree, radius);
      EXPECT_TRUE(
          VerifyCovering(d, metric, radius, result.solution).ok())
          << "seed " << seed << " radius " << radius;
    }
  }
}

TEST(FastCTest, CheaperThanGreedyCAtLargeRadii) {
  // The paper reports "up to 30% less node accesses". The savings come from
  // grey-stopped/pruned queries, which pay off once coverage regions
  // consolidate — i.e., at larger radii. At small radii the two run at
  // parity (second assertion: never more than a modest overhead).
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(2000, 2, 31);
  MTreeOptions options;
  options.node_capacity = 25;
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());

  uint64_t full_large = GreedyC(&tree, 0.16).stats.node_accesses;
  uint64_t fast_large = FastC(&tree, 0.16).stats.node_accesses;
  EXPECT_LT(fast_large, full_large);

  uint64_t full_small = GreedyC(&tree, 0.02).stats.node_accesses;
  uint64_t fast_small = FastC(&tree, 0.02).stats.node_accesses;
  EXPECT_LT(fast_small, full_small * 23 / 20);  // within 15%
}

TEST(FastCTest, SimilarSolutionSizeToGreedyC) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(1500, 2, 37);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  const double radius = 0.05;
  size_t full = GreedyC(&tree, radius).size();
  size_t fast = FastC(&tree, radius).size();
  // The paper reports "similar sized solutions" — allow a modest band.
  EXPECT_LE(fast, full * 3 / 2 + 2);
  EXPECT_GE(fast + full / 2 + 2, full);
}

TEST(CoverageOnCategoricalTest, CamerasHammingCoverage) {
  Dataset d = MakeCamerasDataset();
  HammingMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  for (double radius : {2.0, 4.0}) {
    DiscResult result = GreedyC(&tree, radius);
    EXPECT_TRUE(VerifyCovering(d, metric, radius, result.solution).ok());
  }
}

}  // namespace
}  // namespace disc
