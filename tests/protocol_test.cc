// Unit tests for the disc_serve wire protocol (server/protocol.h): command
// parsing, typed request decoding, and JSON response serialization.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/disc_algorithms.h"
#include "core/zoom.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "util/status.h"

namespace disc {
namespace {

Request MustParse(const std::string& line) {
  auto request = ParseRequest(line);
  EXPECT_TRUE(request.ok()) << line << ": " << request.status().ToString();
  return std::move(request).value();
}

// ---------------------------------------------------------------------------
// ParseRequest
// ---------------------------------------------------------------------------

TEST(ParseRequestTest, ParsesEveryVerb) {
  EXPECT_EQ(MustParse("OPEN dataset=cities").verb, Verb::kOpen);
  EXPECT_EQ(MustParse("DIVERSIFY r=0.05").verb, Verb::kDiversify);
  EXPECT_EQ(MustParse("ZOOM to=0.01").verb, Verb::kZoom);
  EXPECT_EQ(MustParse("STATS").verb, Verb::kStats);
  EXPECT_EQ(MustParse("CLOSE").verb, Verb::kClose);
  EXPECT_EQ(MustParse("BATCH n=4").verb, Verb::kBatch);
}

TEST(ParseRequestTest, VerbIsCaseInsensitive) {
  EXPECT_EQ(MustParse("stats").verb, Verb::kStats);
  EXPECT_EQ(MustParse("Open dataset=cities").verb, Verb::kOpen);
}

TEST(ParseRequestTest, CollectsKeyValueArguments) {
  Request request =
      MustParse("OPEN dataset=clustered n=500 dim=3 seed=7 build=bulk");
  EXPECT_EQ(request.args.at("dataset"), "clustered");
  EXPECT_EQ(request.args.at("n"), "500");
  EXPECT_EQ(request.args.at("dim"), "3");
  EXPECT_EQ(request.args.at("seed"), "7");
  EXPECT_EQ(request.args.at("build"), "bulk");
}

TEST(ParseRequestTest, ToleratesExtraWhitespace) {
  Request request = MustParse("  OPEN   dataset=cities \t n=10  ");
  EXPECT_EQ(request.verb, Verb::kOpen);
  EXPECT_EQ(request.args.size(), 2u);
}

TEST(ParseRequestTest, RejectsEmptyLine) {
  auto request = ParseRequest("   ");
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, RejectsUnknownVerb) {
  auto request = ParseRequest("FROBNICATE x=1");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("unknown command"),
            std::string::npos);
}

TEST(ParseRequestTest, RejectsMalformedToken) {
  auto request = ParseRequest("OPEN dataset");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("key=value"), std::string::npos);
}

TEST(ParseRequestTest, RejectsUnknownKeyForVerb) {
  auto request = ParseRequest("DIVERSIFY r=0.1 dataset=cities");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("unknown key 'dataset'"),
            std::string::npos);
}

TEST(ParseRequestTest, RejectsDuplicateKey) {
  auto request = ParseRequest("DIVERSIFY r=0.1 r=0.2");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("duplicate key"),
            std::string::npos);
}

TEST(ParseRequestTest, RejectsMissingRequiredKey) {
  EXPECT_FALSE(ParseRequest("OPEN n=100").ok());
  EXPECT_FALSE(ParseRequest("DIVERSIFY algo=greedy").ok());
  EXPECT_FALSE(ParseRequest("ZOOM greedy=true").ok());
}

// ---------------------------------------------------------------------------
// DecodeOpen
// ---------------------------------------------------------------------------

TEST(DecodeOpenTest, AppliesCliDefaults) {
  auto params = DecodeOpen(MustParse("OPEN dataset=clustered"));
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  EXPECT_EQ(params->dataset_text, "clustered");
  EXPECT_EQ(params->config.dataset.source, DatasetSpec::Source::kClustered);
  EXPECT_EQ(params->config.dataset.n, 10000u);
  EXPECT_EQ(params->config.dataset.dim, 2u);
  EXPECT_EQ(params->config.dataset.seed, 42u);
  EXPECT_EQ(params->config.metric, MetricKind::kEuclidean);
  EXPECT_EQ(params->config.tree.build.strategy,
            BuildStrategy::kInsertAtATime);
}

TEST(DecodeOpenTest, MetricDefaultsPerDataset) {
  auto params = DecodeOpen(MustParse("OPEN dataset=cameras"));
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->config.metric, MetricKind::kHamming);
}

TEST(DecodeOpenTest, ExplicitKnobsOverrideDefaults) {
  auto params = DecodeOpen(MustParse(
      "OPEN dataset=uniform n=64 dim=5 seed=3 metric=manhattan build=bulk"));
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  EXPECT_EQ(params->config.dataset.n, 64u);
  EXPECT_EQ(params->config.dataset.dim, 5u);
  EXPECT_EQ(params->config.dataset.seed, 3u);
  EXPECT_EQ(params->config.metric, MetricKind::kManhattan);
  EXPECT_EQ(params->config.tree.build.strategy, BuildStrategy::kBulkLoad);
}

TEST(DecodeOpenTest, ParsesCsvSpec) {
  auto params = DecodeOpen(MustParse("OPEN dataset=csv:/tmp/points.csv"));
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->config.dataset.source, DatasetSpec::Source::kCsv);
  EXPECT_EQ(params->config.dataset.csv_path, "/tmp/points.csv");
}

TEST(DecodeOpenTest, RejectsBadValues) {
  EXPECT_FALSE(DecodeOpen(MustParse("OPEN dataset=nope")).ok());
  EXPECT_FALSE(DecodeOpen(MustParse("OPEN dataset=uniform n=abc")).ok());
  EXPECT_FALSE(DecodeOpen(MustParse("OPEN dataset=uniform n=0")).ok());
  EXPECT_FALSE(DecodeOpen(MustParse("OPEN dataset=uniform dim=0")).ok());
  EXPECT_FALSE(
      DecodeOpen(MustParse("OPEN dataset=uniform metric=taxicab")).ok());
  EXPECT_FALSE(
      DecodeOpen(MustParse("OPEN dataset=uniform build=magic")).ok());
}

TEST(DecodeOpenTest, RejectsOversizedWorkloads) {
  // One OPEN must not be able to bad_alloc the daemon (n*dim is capped).
  auto params =
      DecodeOpen(MustParse("OPEN dataset=uniform n=99999999999 dim=2"));
  ASSERT_FALSE(params.ok());
  EXPECT_EQ(params.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(params.status().message().find("serving limit"),
            std::string::npos)
      << params.status().ToString();
  // Overflow-proof: huge dim with small n is caught by the same division.
  EXPECT_FALSE(
      DecodeOpen(MustParse("OPEN dataset=uniform n=2 dim=99999999999"))
          .ok());
}

// ---------------------------------------------------------------------------
// DecodeDiversify / DecodeZoom
// ---------------------------------------------------------------------------

TEST(DecodeDiversifyTest, AppliesDefaults) {
  auto decoded = DecodeDiversify(MustParse("DIVERSIFY r=0.05"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded->radius, 0.05);
  EXPECT_EQ(decoded->algorithm, Algorithm::kGreedy);
  EXPECT_TRUE(decoded->pruned);
  EXPECT_FALSE(decoded->compute_quality);
}

TEST(DecodeDiversifyTest, DecodesEveryAlgorithmName) {
  for (Algorithm algorithm :
       {Algorithm::kBasic, Algorithm::kGreedy, Algorithm::kGreedyWhite,
        Algorithm::kLazyGrey, Algorithm::kLazyWhite, Algorithm::kGreedyC,
        Algorithm::kFastC}) {
    auto decoded = DecodeDiversify(MustParse(
        std::string("DIVERSIFY r=0.1 algo=") + AlgorithmToString(algorithm)));
    ASSERT_TRUE(decoded.ok()) << AlgorithmToString(algorithm);
    EXPECT_EQ(decoded->algorithm, algorithm);
  }
}

TEST(DecodeDiversifyTest, RejectsBadValues) {
  EXPECT_FALSE(DecodeDiversify(MustParse("DIVERSIFY r=oops")).ok());
  EXPECT_FALSE(DecodeDiversify(MustParse("DIVERSIFY r=0.1 algo=qp")).ok());
  EXPECT_FALSE(
      DecodeDiversify(MustParse("DIVERSIFY r=0.1 pruned=perhaps")).ok());
}

TEST(DecodeZoomTest, AppliesDefaults) {
  auto decoded = DecodeZoom(MustParse("ZOOM to=0.025"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded->radius, 0.025);
  EXPECT_TRUE(decoded->greedy);
  EXPECT_EQ(decoded->zoom_out_variant, ZoomOutVariant::kGreedyMostRed);
  EXPECT_FALSE(decoded->center.has_value());
  EXPECT_EQ(decoded->distances, DistancePolicy::kAuto);
}

TEST(DecodeZoomTest, DecodesVariantsCenterAndPolicy) {
  auto decoded = DecodeZoom(MustParse(
      "ZOOM to=0.2 greedy=false variant=arbitrary center=17 "
      "distances=exact quality=true"));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->greedy);
  EXPECT_EQ(decoded->zoom_out_variant, ZoomOutVariant::kArbitrary);
  ASSERT_TRUE(decoded->center.has_value());
  EXPECT_EQ(*decoded->center, 17u);
  EXPECT_EQ(decoded->distances, DistancePolicy::kRequireExact);
  EXPECT_TRUE(decoded->compute_quality);

  EXPECT_EQ(DecodeZoom(MustParse("ZOOM to=0.2 variant=greedy-b"))
                ->zoom_out_variant,
            ZoomOutVariant::kGreedyFewestRed);
  EXPECT_EQ(DecodeZoom(MustParse("ZOOM to=0.2 variant=greedy-c"))
                ->zoom_out_variant,
            ZoomOutVariant::kGreedyMostWhite);
}

TEST(DecodeZoomTest, RejectsBadValues) {
  EXPECT_FALSE(DecodeZoom(MustParse("ZOOM to=tiny")).ok());
  EXPECT_FALSE(DecodeZoom(MustParse("ZOOM to=0.1 variant=greedy-z")).ok());
  EXPECT_FALSE(DecodeZoom(MustParse("ZOOM to=0.1 center=-3")).ok());
  EXPECT_FALSE(DecodeZoom(MustParse("ZOOM to=0.1 distances=maybe")).ok());
}

// ---------------------------------------------------------------------------
// The BATCH envelope: DecodeBatchSize and the POST /batch body parser
// ---------------------------------------------------------------------------

TEST(DecodeBatchSizeTest, DecodesWithinBounds) {
  auto one = DecodeBatchSize(MustParse("BATCH n=1"));
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(*one, 1u);
  auto max = DecodeBatchSize(
      MustParse("BATCH n=" + std::to_string(kMaxBatchCommands)));
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(*max, kMaxBatchCommands);
}

TEST(DecodeBatchSizeTest, RejectsZeroOversizeAndMalformedCounts) {
  auto zero = DecodeBatchSize(MustParse("BATCH n=0"));
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);

  auto oversize = DecodeBatchSize(
      MustParse("BATCH n=" + std::to_string(kMaxBatchCommands + 1)));
  ASSERT_FALSE(oversize.ok());
  EXPECT_NE(oversize.status().message().find("exceeds the limit"),
            std::string::npos)
      << oversize.status().ToString();

  EXPECT_FALSE(DecodeBatchSize(MustParse("BATCH n=four")).ok());
  // n is required, and the envelope takes no other keys.
  EXPECT_FALSE(ParseRequest("BATCH").ok());
  EXPECT_FALSE(ParseRequest("BATCH n=2 r=0.1").ok());
}

TEST(ParseJsonStringArrayTest, ParsesCommandsWithEscapesAndWhitespace) {
  auto commands = ParseJsonStringArray(
      " [ \"OPEN dataset=cities\" ,\n\t\"DIVERSIFY r=0.05\" ] ");
  ASSERT_TRUE(commands.ok()) << commands.status().ToString();
  ASSERT_EQ(commands->size(), 2u);
  EXPECT_EQ((*commands)[0], "OPEN dataset=cities");
  EXPECT_EQ((*commands)[1], "DIVERSIFY r=0.05");

  auto escaped = ParseJsonStringArray(R"(["a\"b\\cA\t"])");
  ASSERT_TRUE(escaped.ok()) << escaped.status().ToString();
  ASSERT_EQ(escaped->size(), 1u);
  EXPECT_EQ((*escaped)[0], "a\"b\\cA\t");

  auto empty = ParseJsonStringArray("[]");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ParseJsonStringArrayTest, RejectsNonArrayShapes) {
  for (const char* bad :
       {"", "not json", "{\"a\":1}", "[1,2]", "[\"a\",]", "[\"a\"",
        "[\"a\"] trailing", "[\"unterminated]", R"(["bad \x escape"])"}) {
    auto parsed = ParseJsonStringArray(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

TEST(JsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonTest, FormatsDoublesShortestRoundTrip) {
  EXPECT_EQ(FormatJsonDouble(0.05), "0.05");
  EXPECT_EQ(FormatJsonDouble(2.0), "2");
  EXPECT_EQ(FormatJsonDouble(-1.5), "-1.5");
  EXPECT_EQ(FormatJsonDouble(INFINITY), "null");
  EXPECT_EQ(FormatJsonDouble(NAN), "null");
}

TEST(JsonTest, WriterPreservesFieldOrder) {
  JsonWriter writer;
  writer.Field("ok", true);
  writer.Field("count", static_cast<uint64_t>(3));
  writer.Field("name", "a\"b");
  EXPECT_EQ(writer.Finish(), "{\"ok\":true,\"count\":3,\"name\":\"a\\\"b\"}");
}

TEST(JsonTest, SerializesSolutionsInSelectionOrder) {
  EXPECT_EQ(SerializeSolution({}), "[]");
  EXPECT_EQ(SerializeSolution({5, 1, 9}), "[5,1,9]");
}

TEST(SerializeTest, DiversifyResponseShape) {
  DiversifyResponse response;
  response.solution = {4, 2};
  response.radius = 0.25;
  response.stats.node_accesses = 10;
  response.stats.range_queries = 3;
  response.stats.distance_computations = 99;
  response.wall_ms = 1.25;

  EXPECT_EQ(SerializeDiversifyResponse(Verb::kDiversify, response,
                                       /*include_wall_ms=*/false),
            "{\"ok\":true,\"cmd\":\"DIVERSIFY\",\"size\":2,"
            "\"radius\":0.25,\"from_cache\":false,\"node_accesses\":10,"
            "\"range_queries\":3,\"distance_computations\":99,"
            "\"solution\":[4,2]}");
}

TEST(SerializeTest, WallMsIsTheOnlyTrailingDifference) {
  DiversifyResponse response;
  response.solution = {1};
  response.radius = 0.1;
  std::string without =
      SerializeDiversifyResponse(Verb::kZoom, response, false);
  std::string with = SerializeDiversifyResponse(Verb::kZoom, response, true);
  // Everything deterministic is a shared prefix; wall_ms rides at the end.
  std::string prefix = without.substr(0, without.size() - 1);
  EXPECT_EQ(with.rfind(prefix, 0), 0u) << with;
  EXPECT_NE(with.find("\"wall_ms\":"), std::string::npos);
}

TEST(SerializeTest, QualityFieldsAppearWhenComputed) {
  DiversifyResponse response;
  response.solution = {1, 2};
  response.radius = 0.1;
  QualityMetrics quality;
  quality.f_min = 0.5;
  quality.coverage = 1.0;
  quality.verification = Status::OK();
  response.quality = quality;
  std::string line =
      SerializeDiversifyResponse(Verb::kDiversify, response, false);
  EXPECT_NE(line.find("\"f_min\":0.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"coverage\":1"), std::string::npos) << line;
  EXPECT_NE(line.find("\"verified\":\"OK\""), std::string::npos) << line;
}

TEST(SerializeTest, ErrorShape) {
  std::string line = SerializeError(
      "ZOOM", Status::FailedPrecondition("no solution \"yet\""));
  EXPECT_EQ(line,
            "{\"ok\":false,\"cmd\":\"ZOOM\",\"code\":\"FailedPrecondition\","
            "\"error\":\"no solution \\\"yet\\\"\"}");
}

TEST(SerializeTest, SnapshotIncludesSessionAndLifetimeFields) {
  EngineSnapshot snapshot;
  snapshot.dataset_size = 100;
  snapshot.dim = 2;
  snapshot.has_solution = true;
  snapshot.zoomable = true;
  snapshot.algorithm = Algorithm::kGreedy;
  snapshot.radius = 0.05;
  snapshot.solution_size = 7;
  snapshot.sessions_served = 3;
  snapshot.lifetime_stats.node_accesses = 123;
  std::string line = SerializeSnapshot(snapshot);
  EXPECT_NE(line.find("\"cmd\":\"STATS\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"algorithm\":\"greedy\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"sessions_served\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"node_accesses\":123"), std::string::npos) << line;
}

}  // namespace
}  // namespace disc
