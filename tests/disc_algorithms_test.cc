#include "core/disc_algorithms.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/reference.h"
#include "data/cameras.h"
#include "data/cities.h"
#include "data/generators.h"
#include "graph/properties.h"
#include "metric/metric.h"

namespace disc {
namespace {

// ---------------------------------------------------------------------------
// Property sweep: every algorithm variant must produce a valid r-DisC
// diverse subset (independent + covering, Definition 1) on every workload.
// ---------------------------------------------------------------------------

enum class Algo {
  kBasic,
  kBasicPruned,
  kGreedyGrey,
  kGreedyGreyPruned,
  kGreedyWhite,
  kGreedyLazyGrey,
  kGreedyLazyWhite,
};

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kBasic:
      return "Basic";
    case Algo::kBasicPruned:
      return "BasicPruned";
    case Algo::kGreedyGrey:
      return "GreedyGrey";
    case Algo::kGreedyGreyPruned:
      return "GreedyGreyPruned";
    case Algo::kGreedyWhite:
      return "GreedyWhite";
    case Algo::kGreedyLazyGrey:
      return "GreedyLazyGrey";
    case Algo::kGreedyLazyWhite:
      return "GreedyLazyWhite";
  }
  return "?";
}

DiscResult RunAlgo(Algo algo, MTree* tree, double radius) {
  GreedyDiscOptions options;
  switch (algo) {
    case Algo::kBasic:
      return BasicDisc(tree, radius, false);
    case Algo::kBasicPruned:
      return BasicDisc(tree, radius, true);
    case Algo::kGreedyGrey:
      options.variant = GreedyVariant::kGrey;
      options.pruned = false;
      return GreedyDisc(tree, radius, options);
    case Algo::kGreedyGreyPruned:
      options.variant = GreedyVariant::kGrey;
      options.pruned = true;
      return GreedyDisc(tree, radius, options);
    case Algo::kGreedyWhite:
      options.variant = GreedyVariant::kWhite;
      return GreedyDisc(tree, radius, options);
    case Algo::kGreedyLazyGrey:
      options.variant = GreedyVariant::kLazyGrey;
      return GreedyDisc(tree, radius, options);
    case Algo::kGreedyLazyWhite:
      options.variant = GreedyVariant::kLazyWhite;
      return GreedyDisc(tree, radius, options);
  }
  return {};
}

struct Workload {
  const char* name;
  Dataset dataset;
  std::unique_ptr<DistanceMetric> metric;
  double radius;
};

Workload MakeWorkload(int index) {
  switch (index) {
    case 0:
      return {"uniform_small_r", MakeUniformDataset(600, 2, 1),
              MakeMetric(MetricKind::kEuclidean), 0.03};
    case 1:
      return {"uniform_large_r", MakeUniformDataset(600, 2, 2),
              MakeMetric(MetricKind::kEuclidean), 0.2};
    case 2:
      return {"clustered", MakeClusteredDataset(800, 2, 3),
              MakeMetric(MetricKind::kEuclidean), 0.05};
    case 3:
      return {"clustered_3d", MakeClusteredDataset(500, 3, 4),
              MakeMetric(MetricKind::kEuclidean), 0.1};
    case 4:
      return {"manhattan", MakeUniformDataset(500, 2, 5),
              MakeMetric(MetricKind::kManhattan), 0.08};
    case 5:
      return {"cameras_hamming", MakeCamerasDataset(),
              MakeMetric(MetricKind::kHamming), 3.0};
    default:
      return {"grid", MakeGridDataset(20), MakeMetric(MetricKind::kEuclidean),
              0.11};
  }
}
constexpr int kNumWorkloads = 7;

class DiscValidityTest
    : public ::testing::TestWithParam<std::tuple<Algo, int>> {};

TEST_P(DiscValidityTest, ProducesValidDisCDiverseSubset) {
  auto [algo, workload_index] = GetParam();
  Workload w = MakeWorkload(workload_index);
  MTree tree(w.dataset, *w.metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult result = RunAlgo(algo, &tree, w.radius);
  EXPECT_FALSE(result.solution.empty());
  Status valid =
      VerifyDisCDiverse(w.dataset, *w.metric, w.radius, result.solution);
  EXPECT_TRUE(valid.ok()) << AlgoName(algo) << " on " << w.name << ": "
                          << valid.ToString();
  // Solutions must also be maximal (Lemma 1: independent + dominating).
  NeighborhoodGraph graph(w.dataset, *w.metric, w.radius);
  EXPECT_TRUE(IsMaximalIndependentSet(graph, result.solution));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgosAllWorkloads, DiscValidityTest,
    ::testing::Combine(::testing::Values(Algo::kBasic, Algo::kBasicPruned,
                                         Algo::kGreedyGrey,
                                         Algo::kGreedyGreyPruned,
                                         Algo::kGreedyWhite,
                                         Algo::kGreedyLazyGrey,
                                         Algo::kGreedyLazyWhite),
                       ::testing::Range(0, kNumWorkloads)),
    [](const ::testing::TestParamInfo<std::tuple<Algo, int>>& param_info) {
      return std::string(AlgoName(std::get<0>(param_info.param))) + "_w" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Cross-checks against the index-free reference implementations.
// ---------------------------------------------------------------------------

TEST(DiscReferenceEquivalenceTest, BasicMatchesReferenceOnLeafOrder) {
  Dataset d = MakeClusteredDataset(700, 2, 17);
  EuclideanMetric metric;
  const double radius = 0.06;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult indexed = BasicDisc(&tree, radius, true);
  NeighborhoodGraph graph(d, metric, radius);
  std::vector<ObjectId> reference =
      ReferenceBasicDisc(graph, tree.LeafOrder());
  EXPECT_EQ(indexed.solution, reference);
}

TEST(DiscReferenceEquivalenceTest, GreedyGreyMatchesReferenceExactly) {
  // Same tie-breaking + exact counts => identical selection sequences.
  Dataset d = MakeClusteredDataset(600, 2, 19);
  EuclideanMetric metric;
  const double radius = 0.07;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  GreedyDiscOptions options;
  options.variant = GreedyVariant::kGrey;
  options.pruned = true;
  DiscResult indexed = GreedyDisc(&tree, radius, options);
  NeighborhoodGraph graph(d, metric, radius);
  EXPECT_EQ(indexed.solution, ReferenceGreedyDisc(graph));
}

TEST(DiscReferenceEquivalenceTest, WhiteVariantMatchesGreyVariantSolutions) {
  // Both maintain exact counts, so they select identical objects.
  Dataset d = MakeClusteredDataset(500, 2, 23);
  EuclideanMetric metric;
  const double radius = 0.08;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  GreedyDiscOptions grey;
  grey.variant = GreedyVariant::kGrey;
  GreedyDiscOptions white;
  white.variant = GreedyVariant::kWhite;
  EXPECT_EQ(GreedyDisc(&tree, radius, grey).solution,
            GreedyDisc(&tree, radius, white).solution);
}

TEST(DiscReferenceEquivalenceTest, PruningNeverChangesTheSolution) {
  Dataset d = MakeClusteredDataset(500, 2, 29);
  EuclideanMetric metric;
  for (double radius : {0.03, 0.1}) {
    MTree tree(d, metric);
    ASSERT_TRUE(tree.Build().ok());
    EXPECT_EQ(BasicDisc(&tree, radius, false).solution,
              BasicDisc(&tree, radius, true).solution);
    GreedyDiscOptions pruned, unpruned;
    pruned.pruned = true;
    unpruned.pruned = false;
    EXPECT_EQ(GreedyDisc(&tree, radius, unpruned).solution,
              GreedyDisc(&tree, radius, pruned).solution);
  }
}

TEST(DiscReferenceEquivalenceTest, PrecomputedCountsChangeNothing) {
  Dataset d = MakeClusteredDataset(400, 2, 31);
  EuclideanMetric metric;
  const double radius = 0.09;
  MTree tree_a(d, metric);
  std::vector<uint32_t> counts;
  ASSERT_TRUE(tree_a.BuildWithNeighborCounts(radius, &counts).ok());
  GreedyDiscOptions with_counts;
  with_counts.initial_counts = &counts;
  DiscResult a = GreedyDisc(&tree_a, radius, with_counts);

  MTree tree_b(d, metric);
  ASSERT_TRUE(tree_b.Build().ok());
  DiscResult b = GreedyDisc(&tree_b, radius, {});
  EXPECT_EQ(a.solution, b.solution);
}

// ---------------------------------------------------------------------------
// Behavioral expectations from the paper's evaluation (§6).
// ---------------------------------------------------------------------------

TEST(DiscBehaviorTest, GreedyNeverLargerThanBasicAcrossRadii) {
  Dataset d = MakeClusteredDataset(1000, 2, 37);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  for (double radius : {0.02, 0.04, 0.08}) {
    size_t basic = BasicDisc(&tree, radius, true).size();
    size_t greedy = GreedyDisc(&tree, radius, {}).size();
    EXPECT_LE(greedy, basic) << "radius " << radius;
  }
}

TEST(DiscBehaviorTest, LargerRadiusSmallerSolution) {
  Dataset d = MakeClusteredDataset(800, 2, 41);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  size_t prev = SIZE_MAX;
  for (double radius : {0.01, 0.02, 0.04, 0.08, 0.16}) {
    size_t size = GreedyDisc(&tree, radius, {}).size();
    EXPECT_LE(size, prev) << "radius " << radius;
    prev = size;
  }
}

TEST(DiscBehaviorTest, ZeroRadiusSelectsEverythingDistinct) {
  // With r = 0, only exact duplicates are similar; on duplicate-free data
  // the diverse subset is all of P.
  Dataset d = MakeUniformDataset(200, 2, 43);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_EQ(BasicDisc(&tree, 0.0, true).size(), d.size());
}

TEST(DiscBehaviorTest, HugeRadiusSelectsSingleObject) {
  Dataset d = MakeUniformDataset(300, 2, 47);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_EQ(GreedyDisc(&tree, 2.0, {}).size(), 1u);
}

TEST(DiscBehaviorTest, PruningSavesAccessesForBasic) {
  Dataset d = MakeClusteredDataset(3000, 2, 53);
  EuclideanMetric metric;
  MTreeOptions options;
  options.node_capacity = 25;
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());
  const double radius = 0.02;
  uint64_t unpruned = BasicDisc(&tree, radius, false).stats.node_accesses;
  uint64_t pruned = BasicDisc(&tree, radius, true).stats.node_accesses;
  EXPECT_LT(pruned, unpruned);
}

TEST(DiscBehaviorTest, LazyVariantsCostNoMoreAccessesThanExact) {
  Dataset d = MakeClusteredDataset(2000, 2, 59);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  const double radius = 0.05;
  GreedyDiscOptions grey;
  grey.variant = GreedyVariant::kGrey;
  GreedyDiscOptions lazy;
  lazy.variant = GreedyVariant::kLazyGrey;
  uint64_t exact_cost = GreedyDisc(&tree, radius, grey).stats.node_accesses;
  uint64_t lazy_cost = GreedyDisc(&tree, radius, lazy).stats.node_accesses;
  EXPECT_LE(lazy_cost, exact_cost);
}

TEST(DiscBehaviorTest, SolutionOrderIsDeterministic) {
  Dataset d = MakeClusteredDataset(400, 2, 61);
  EuclideanMetric metric;
  MTree tree_a(d, metric);
  MTree tree_b(d, metric);
  ASSERT_TRUE(tree_a.Build().ok());
  ASSERT_TRUE(tree_b.Build().ok());
  EXPECT_EQ(GreedyDisc(&tree_a, 0.05, {}).solution,
            GreedyDisc(&tree_b, 0.05, {}).solution);
}

TEST(DiscBehaviorTest, StatsAttributedPerRun) {
  Dataset d = MakeUniformDataset(300, 2, 67);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult first = GreedyDisc(&tree, 0.1, {});
  DiscResult second = GreedyDisc(&tree, 0.1, {});
  EXPECT_GT(first.stats.node_accesses, 0u);
  // Runs on the same tree report their own work, not cumulative totals.
  EXPECT_EQ(first.stats.node_accesses, second.stats.node_accesses);
  EXPECT_GT(first.stats.range_queries, 0u);
}

}  // namespace
}  // namespace disc
