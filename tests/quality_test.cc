#include "eval/quality.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "data/generators.h"
#include "eval/table.h"
#include "metric/metric.h"
#include "util/csv.h"

namespace disc {
namespace {

Dataset UnitSquareCorners() {
  Dataset d;
  EXPECT_TRUE(d.Add(Point{0.0, 0.0}).ok());
  EXPECT_TRUE(d.Add(Point{1.0, 0.0}).ok());
  EXPECT_TRUE(d.Add(Point{0.0, 1.0}).ok());
  EXPECT_TRUE(d.Add(Point{1.0, 1.0}).ok());
  return d;
}

TEST(QualityTest, FMinOfCorners) {
  Dataset d = UnitSquareCorners();
  EuclideanMetric metric;
  EXPECT_DOUBLE_EQ(FMin(d, metric, {0, 1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(FMin(d, metric, {0, 3}), std::sqrt(2.0));
  EXPECT_TRUE(std::isinf(FMin(d, metric, {0})));
  EXPECT_TRUE(std::isinf(FMin(d, metric, {})));
}

TEST(QualityTest, FSumOfCorners) {
  Dataset d = UnitSquareCorners();
  EuclideanMetric metric;
  // 4 sides of length 1 + 2 diagonals of sqrt(2).
  EXPECT_NEAR(FSum(d, metric, {0, 1, 2, 3}), 4.0 + 2.0 * std::sqrt(2.0),
              1e-12);
  EXPECT_DOUBLE_EQ(FSum(d, metric, {0}), 0.0);
}

TEST(QualityTest, CoverageFraction) {
  Dataset d = UnitSquareCorners();
  EuclideanMetric metric;
  EXPECT_DOUBLE_EQ(CoverageFraction(d, metric, 1.0, {0}), 0.75);
  EXPECT_DOUBLE_EQ(CoverageFraction(d, metric, 1.5, {0}), 1.0);
  EXPECT_DOUBLE_EQ(CoverageFraction(d, metric, 0.1, {0}), 0.25);
  EXPECT_DOUBLE_EQ(CoverageFraction(d, metric, 0.0, {0, 1, 2, 3}), 1.0);
}

TEST(QualityTest, CoverageOfEmptyDatasetIsFull) {
  Dataset d;
  EuclideanMetric metric;
  EXPECT_DOUBLE_EQ(CoverageFraction(d, metric, 0.1, {}), 1.0);
}

TEST(QualityTest, MeanRepresentationDistance) {
  Dataset d = UnitSquareCorners();
  EuclideanMetric metric;
  // From corner 0: distances {0, 1, 1, sqrt(2)} / 4.
  EXPECT_NEAR(MeanRepresentationDistance(d, metric, {0}),
              (0.0 + 1.0 + 1.0 + std::sqrt(2.0)) / 4.0, 1e-12);
  EXPECT_TRUE(std::isinf(MeanRepresentationDistance(d, metric, {})));
}

TEST(QualityTest, JaccardDistanceBasics) {
  EXPECT_DOUBLE_EQ(JaccardDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardDistance({1}, {}), 1.0);
}

TEST(QualityTest, JaccardIgnoresOrderAndDuplicates) {
  EXPECT_DOUBLE_EQ(JaccardDistance({3, 1, 2}, {2, 3, 1}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 1, 2}, {2, 1}), 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table("demo");
  table.SetHeader({"algo", "size"});
  table.AddRow({"basic", "1360"});
  table.AddRow({"greedy-long-name", "7"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("algo"), std::string::npos);
  EXPECT_NE(out.find("greedy-long-name  7"), std::string::npos);
}

TEST(TablePrinterTest, CsvRoundTrip) {
  TablePrinter table("t");
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  std::string path =
      (std::filesystem::temp_directory_path() / "disc_table_test.csv")
          .string();
  ASSERT_TRUE(table.WriteCsv(path).ok());
  auto rows = ReadCsv(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2"}));
  std::filesystem::remove(path);
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.012345, 3), "0.0123");
  EXPECT_EQ(FormatDouble(2.0, 3), "2");
  EXPECT_EQ(FormatDouble(123456.0, 4), "1.235e+05");
}

}  // namespace
}  // namespace disc
