// End-to-end pipeline tests over the four evaluation datasets of §6:
// generate -> index -> diversify -> verify -> zoom -> verify. These mirror
// how the benchmark harness and example applications drive the library.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/kmedoids.h"
#include "baselines/maxmin.h"
#include "baselines/maxsum.h"
#include "core/disc_algorithms.h"
#include "core/zoom.h"
#include "data/cameras.h"
#include "data/cities.h"
#include "data/generators.h"
#include "eval/quality.h"
#include "graph/properties.h"
#include "metric/metric.h"

namespace disc {
namespace {

struct PaperWorkload {
  const char* name;
  Dataset dataset;
  std::unique_ptr<DistanceMetric> metric;
  double radius;       // a mid-range radius from the paper's sweep
  double radius_in;    // zoom-in target
  double radius_out;   // zoom-out target
};

PaperWorkload MakePaperWorkload(int index) {
  switch (index) {
    case 0:
      return {"Uniform", MakeUniformDataset(2000, 2, 4242),
              MakeMetric(MetricKind::kEuclidean), 0.04, 0.02, 0.08};
    case 1:
      return {"Clustered", MakeClusteredDataset(2000, 2, 4242),
              MakeMetric(MetricKind::kEuclidean), 0.04, 0.02, 0.08};
    case 2:
      return {"Cities", MakeCitiesDataset(),
              MakeMetric(MetricKind::kEuclidean), 0.01, 0.005, 0.02};
    default:
      return {"Cameras", MakeCamerasDataset(),
              MakeMetric(MetricKind::kHamming), 3.0, 2.0, 4.0};
  }
}

class PipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineTest, FullLifecycleOnPaperWorkload) {
  PaperWorkload w = MakePaperWorkload(GetParam());

  MTree tree(w.dataset, *w.metric);
  ASSERT_TRUE(tree.Build().ok());
  ASSERT_TRUE(tree.Validate().ok());

  // Diversify.
  DiscResult greedy = GreedyDisc(&tree, w.radius, {});
  ASSERT_FALSE(greedy.solution.empty());
  ASSERT_TRUE(
      VerifyDisCDiverse(w.dataset, *w.metric, w.radius, greedy.solution).ok())
      << w.name;

  // Zoom in: superset + valid at the smaller radius.
  tree.RecomputeClosestBlackDistances(w.radius);
  DiscResult zoom_in = ZoomIn(&tree, w.radius_in, true);
  EXPECT_GE(zoom_in.size(), greedy.size()) << w.name;
  EXPECT_TRUE(VerifyDisCDiverse(w.dataset, *w.metric, w.radius_in,
                                zoom_in.solution)
                  .ok())
      << w.name;

  // Zoom back out beyond the original radius.
  DiscResult zoom_out =
      ZoomOut(&tree, w.radius_out, ZoomOutVariant::kGreedyMostRed);
  EXPECT_LE(zoom_out.size(), zoom_in.size()) << w.name;
  EXPECT_TRUE(VerifyDisCDiverse(w.dataset, *w.metric, w.radius_out,
                                zoom_out.solution)
                  .ok())
      << w.name;
}

TEST_P(PipelineTest, TreeStateReusableAcrossRuns) {
  PaperWorkload w = MakePaperWorkload(GetParam());
  MTree tree(w.dataset, *w.metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult first = GreedyDisc(&tree, w.radius, {});
  DiscResult second = GreedyDisc(&tree, w.radius, {});
  EXPECT_EQ(first.solution, second.solution);
  ASSERT_TRUE(tree.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, PipelineTest,
                         ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& param_info)
                             -> std::string {
                           switch (param_info.param) {
                             case 0:
                               return "Uniform";
                             case 1:
                               return "Clustered";
                             case 2:
                               return "Cities";
                             default:
                               return "Cameras";
                           }
                         });

TEST(ModelComparisonIntegrationTest, Figure6Characteristics) {
  // Reproduce the qualitative claims of Figure 6 on a clustered dataset:
  //   - DisC covers the dataset fully at radius r;
  //   - MaxSum leaves parts of the dataset uncovered (outskirt bias);
  //   - k-medoids has the lowest mean representation distance but also
  //     incomplete coverage at r;
  //   - MaxMin covers better than MaxSum but worse than DisC.
  Dataset d = MakeClusteredDataset(2000, 2, 777);
  EuclideanMetric metric;
  const double radius = 0.07;

  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult disc = GreedyDisc(&tree, radius, {});
  const size_t k = disc.size();
  ASSERT_GT(k, 3u);

  auto maxsum = GreedyMaxSum(d, metric, k);
  auto maxmin = GreedyMaxMin(d, metric, k);
  auto medoids = KMedoids(d, metric, k);
  ASSERT_TRUE(maxsum.ok());
  ASSERT_TRUE(maxmin.ok());
  ASSERT_TRUE(medoids.ok());

  double cover_disc = CoverageFraction(d, metric, radius, disc.solution);
  double cover_maxsum = CoverageFraction(d, metric, radius, *maxsum);
  double cover_maxmin = CoverageFraction(d, metric, radius, *maxmin);
  double cover_medoids =
      CoverageFraction(d, metric, radius, medoids->medoids);

  EXPECT_DOUBLE_EQ(cover_disc, 1.0);
  EXPECT_LT(cover_maxsum, 1.0);
  EXPECT_GE(cover_maxmin, cover_maxsum);
  EXPECT_LT(cover_medoids, 1.0);

  // k-medoids minimizes mean representation distance by construction.
  EXPECT_LE(MeanRepresentationDistance(d, metric, medoids->medoids),
            MeanRepresentationDistance(d, metric, *maxsum));
}

TEST(CamerasScenarioTest, DiverseCatalogAtEveryPaperRadius) {
  // Table 3(d): Cameras with Hamming radii 1..6 — sizes must be strictly
  // decreasing from hundreds to a handful.
  Dataset d = MakeCamerasDataset();
  HammingMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  size_t prev = d.size() + 1;
  for (double radius : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    DiscResult result = GreedyDisc(&tree, radius, {});
    ASSERT_TRUE(
        VerifyDisCDiverse(d, metric, radius, result.solution).ok());
    EXPECT_LT(result.size(), prev);
    prev = result.size();
  }
  // At radius 7 (= all attributes) a single camera represents everything.
  EXPECT_EQ(GreedyDisc(&tree, 7.0, {}).size(), 1u);
}

}  // namespace
}  // namespace disc
