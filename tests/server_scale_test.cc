// Million-point serving smoke (slow label, nightly CI): the dataset-size
// cap that motivated ISSUE 8 is actually broken. A 1M-point OPEN —
// refused outright by the exact engine under the default guardrail — goes
// end to end through the event-loop server with the lsh-sharded backend:
// OPEN builds the sharded LSH engines, DIVERSIFY computes a graph-mode
// solution, STATS reports the session, CLOSE returns the engine.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "server/net.h"
#include "server/server.h"

namespace disc {
namespace {

std::string MustRoundtrip(LineClient& client, const std::string& line) {
  auto response = client.Roundtrip(line);
  EXPECT_TRUE(response.ok()) << line << ": "
                             << response.status().ToString();
  return response.ok() ? *response : "";
}

TEST(ServerScaleTest, MillionPointSessionServesThroughLshSharded) {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  // The operator flag path: every OPEN without a backend= key runs
  // lsh-sharded, exactly like `disc_serve --neighbor-backend=lsh-sharded`.
  options.default_backend = NeighborBackendKind::kLshSharded;
  auto server = DiscServer::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = LineClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // The default exact-family cap (262144) would refuse this dataset; the
  // lsh-sharded default is exactly the supported way past it.
  std::string open = MustRoundtrip(
      *client, "OPEN dataset=uniform n=1000000 dim=2 seed=42");
  ASSERT_NE(open.find("\"ok\":true"), std::string::npos) << open;
  EXPECT_NE(open.find("\"n\":1000000"), std::string::npos) << open;
  EXPECT_NE(open.find("\"backend\":\"lsh-sharded\""), std::string::npos)
      << open;

  std::string diversify =
      MustRoundtrip(*client, "DIVERSIFY r=0.003 algo=basic");
  ASSERT_NE(diversify.find("\"ok\":true"), std::string::npos) << diversify;
  EXPECT_NE(diversify.find("\"size\":"), std::string::npos) << diversify;
  EXPECT_EQ(diversify.find("\"size\":0,"), std::string::npos) << diversify;

  // A repeat is an honest cache hit — the graph is not rebuilt.
  std::string warm = MustRoundtrip(*client, "DIVERSIFY r=0.003 algo=basic");
  EXPECT_NE(warm.find("\"from_cache\":true"), std::string::npos) << warm;

  std::string stats = MustRoundtrip(*client, "STATS");
  EXPECT_NE(stats.find("\"backend\":\"lsh-sharded\""), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"has_solution\":true"), std::string::npos) << stats;

  EXPECT_EQ(MustRoundtrip(*client, "CLOSE"),
            "{\"ok\":true,\"cmd\":\"CLOSE\"}");

  SessionManagerStats manager = (*server)->manager_stats();
  EXPECT_EQ(manager.leases_released, manager.leases_acquired);
  (*server)->Shutdown();
}

}  // namespace
}  // namespace disc
