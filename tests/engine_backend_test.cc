// DiscEngine in graph mode (EngineConfig::neighbor != kExact): algorithms
// run on the backend-built neighborhood graph instead of tree colors.
//
// The contracts under test (ISSUE 8):
//  * an exact backend (sharded) reproduces the reference graph algorithms
//    and the exact engine's own solutions byte-for-byte;
//  * index-bound algorithm variants answer Unimplemented, the adaptive
//    operations (Zoom, Weighted, MultiRadius) answer FailedPrecondition;
//  * the solution cache works in graph mode (repeat = from_cache, zero
//    additional stats);
//  * Snapshot reports the backend, graph mode (no tree), and the zoom
//    blocker; Create enforces the exact-backend dataset cap.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/reference.h"
#include "data/generators.h"
#include "graph/neighborhood.h"
#include "metric/metric.h"
#include "util/status.h"

namespace disc {
namespace {

EngineConfig GraphModeConfig(NeighborBackendKind kind, size_t n = 600,
                             uint64_t seed = 9) {
  EngineConfig config;
  config.dataset = DatasetSpec::Clustered(n, 2, seed);
  config.threads = 1;
  config.neighbor.kind = kind;
  return config;
}

std::unique_ptr<DiscEngine> MustCreate(EngineConfig config) {
  auto engine = DiscEngine::Create(std::move(config));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return engine.ok() ? std::move(engine).value() : nullptr;
}

DiversifyRequest Request(Algorithm algorithm, double radius) {
  DiversifyRequest request;
  request.algorithm = algorithm;
  request.radius = radius;
  return request;
}

TEST(EngineBackendTest, ExactShardedBackendMatchesReferenceAlgorithms) {
  const double radius = 0.07;
  auto engine = MustCreate(GraphModeConfig(NeighborBackendKind::kSharded));
  ASSERT_NE(engine, nullptr);

  // The same graph, built directly at the graph layer.
  const Dataset dataset = MakeClusteredDataset(600, 2, 9);
  EuclideanMetric metric;
  NeighborhoodGraph graph(dataset, metric, radius);
  std::vector<ObjectId> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);

  auto basic = engine->Diversify(Request(Algorithm::kBasic, radius));
  ASSERT_TRUE(basic.ok()) << basic.status().ToString();
  EXPECT_EQ(basic->solution, ReferenceBasicDisc(graph, order));

  auto greedy = engine->Diversify(Request(Algorithm::kGreedy, radius));
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  EXPECT_EQ(greedy->solution, ReferenceGreedyDisc(graph));

  auto covering = engine->Diversify(Request(Algorithm::kGreedyC, radius));
  ASSERT_TRUE(covering.ok()) << covering.status().ToString();
  EXPECT_EQ(covering->solution, ReferenceGreedyC(graph));
}

TEST(EngineBackendTest, GraphModeGreedyEqualsTheExactEngineSolution) {
  const double radius = 0.08;
  auto exact = MustCreate(GraphModeConfig(NeighborBackendKind::kExact));
  auto sharded = MustCreate(GraphModeConfig(NeighborBackendKind::kSharded));
  ASSERT_NE(exact, nullptr);
  ASSERT_NE(sharded, nullptr);

  auto tree_solution = exact->Diversify(Request(Algorithm::kGreedy, radius));
  auto graph_solution =
      sharded->Diversify(Request(Algorithm::kGreedy, radius));
  ASSERT_TRUE(tree_solution.ok()) << tree_solution.status().ToString();
  ASSERT_TRUE(graph_solution.ok()) << graph_solution.status().ToString();
  // Greedy-DisC is deterministic in the neighborhood structure, and exact
  // shards reproduce it exactly — the two engine modes must agree.
  EXPECT_EQ(tree_solution->solution, graph_solution->solution);
}

TEST(EngineBackendTest, IndexBoundVariantsAnswerUnimplemented) {
  auto engine = MustCreate(GraphModeConfig(NeighborBackendKind::kLsh));
  ASSERT_NE(engine, nullptr);
  for (Algorithm algorithm :
       {Algorithm::kGreedyWhite, Algorithm::kLazyGrey, Algorithm::kLazyWhite,
        Algorithm::kFastC}) {
    auto response = engine->Diversify(Request(algorithm, 0.07));
    ASSERT_FALSE(response.ok()) << AlgorithmToString(algorithm);
    EXPECT_EQ(response.status().code(), StatusCode::kUnimplemented)
        << response.status().ToString();
  }
}

TEST(EngineBackendTest, AdaptiveOperationsAnswerFailedPrecondition) {
  auto engine = MustCreate(GraphModeConfig(NeighborBackendKind::kLshSharded));
  ASSERT_NE(engine, nullptr);
  auto solved = engine->Diversify(Request(Algorithm::kGreedy, 0.07));
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();

  ZoomRequest zoom;
  zoom.radius = 0.05;
  auto zoomed = engine->Zoom(zoom);
  ASSERT_FALSE(zoomed.ok());
  EXPECT_EQ(zoomed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(zoomed.status().message().find("lsh-sharded"), std::string::npos)
      << zoomed.status().ToString();

  WeightedRequest weighted;
  weighted.radius = 0.07;
  weighted.weights.assign(engine->dataset().size(), 1.0);
  auto heavy = engine->WeightedDiversify(weighted);
  ASSERT_FALSE(heavy.ok());
  EXPECT_EQ(heavy.status().code(), StatusCode::kFailedPrecondition);

  MultiRadiusRequest multi;
  multi.r_min = 0.05;
  multi.r_max = 0.1;
  multi.relevance.assign(engine->dataset().size(), 0.5);
  auto ranged = engine->MultiRadiusDiversify(multi);
  ASSERT_FALSE(ranged.ok());
  EXPECT_EQ(ranged.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineBackendTest, RepeatedRequestIsServedFromTheSolutionCache) {
  auto engine = MustCreate(GraphModeConfig(NeighborBackendKind::kLsh));
  ASSERT_NE(engine, nullptr);
  const DiversifyRequest request = Request(Algorithm::kGreedy, 0.06);

  auto cold = engine->Diversify(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->from_cache);
  EXPECT_GT(cold->stats.range_queries, 0u);

  auto warm = engine->Diversify(request);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->from_cache);
  EXPECT_EQ(warm->solution, cold->solution);
  EXPECT_EQ(warm->stats.range_queries, 0u);
  EXPECT_EQ(warm->stats.node_accesses, 0u);
  EXPECT_EQ(warm->stats.distance_computations, 0u);

  EngineSnapshot snapshot = engine->Snapshot();
  EXPECT_EQ(snapshot.cache_hits, 1u);
  EXPECT_EQ(snapshot.computations, 1u);
}

TEST(EngineBackendTest, SnapshotDescribesGraphMode) {
  auto engine = MustCreate(GraphModeConfig(NeighborBackendKind::kLsh));
  ASSERT_NE(engine, nullptr);

  EngineSnapshot before = engine->Snapshot();
  EXPECT_EQ(before.backend, NeighborBackendKind::kLsh);
  EXPECT_EQ(before.tree_nodes, 0u);
  EXPECT_EQ(before.tree_height, 0u);
  EXPECT_FALSE(before.has_solution);

  auto solved = engine->Diversify(Request(Algorithm::kGreedy, 0.06));
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EngineSnapshot after = engine->Snapshot();
  EXPECT_TRUE(after.has_solution);
  EXPECT_FALSE(after.zoomable);
  EXPECT_NE(after.zoom_blocker.find("lsh"), std::string::npos)
      << after.zoom_blocker;
  EXPECT_EQ(after.solution_size, solved->solution.size());
  EXPECT_GT(after.lifetime_stats.range_queries, 0u);
}

TEST(EngineBackendTest, LshSolutionCoversTheDatasetWell) {
  auto engine =
      MustCreate(GraphModeConfig(NeighborBackendKind::kLsh, 2000, 42));
  ASSERT_NE(engine, nullptr);
  DiversifyRequest request = Request(Algorithm::kGreedy, 0.05);
  request.compute_quality = true;
  auto response = engine->Diversify(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->quality.has_value());
  // Recall < 1 can cost a covered object or an independence pair, but the
  // default configuration must stay close to the exact result.
  EXPECT_GE(response->quality->coverage, 0.95);
  EXPECT_GT(response->size(), 0u);
}

TEST(EngineBackendTest, CreateRefusesExactEngineAboveTheCap) {
  EngineConfig config = GraphModeConfig(NeighborBackendKind::kExact, 500);
  config.neighbor.max_exact_points = 499;
  auto refused = DiscEngine::Create(std::move(config));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("lsh-sharded"),
            std::string::npos)
      << refused.status().ToString();

  EngineConfig exempt = GraphModeConfig(NeighborBackendKind::kLshSharded, 500);
  exempt.neighbor.max_exact_points = 499;
  EXPECT_NE(MustCreate(std::move(exempt)), nullptr);
}

}  // namespace
}  // namespace disc
