// Property tests for the pluggable neighbor backends (neighbor/backend.h).
//
// The contracts under test (ISSUE 8):
//  * exact family (exact, grid, sharded-with-exact-shards): the adjacency
//    structure is byte-identical to NeighborhoodGraph's own build paths, at
//    every thread count — sharding and fan-out may not change a single id;
//  * LSH family: deterministic for a fixed seed, always a SUBSET of the true
//    neighbor sets (candidates are distance-verified), and recall on the
//    paper workloads clears the documented default-config floor;
//  * lsh-sharded equals unsharded lsh byte-for-byte (same seed per shard);
//  * the exact-family guardrail refuses datasets above max_exact_points
//    with InvalidArgument instead of risking the O(n^2) fallback;
//  * stats accounting: one range_queries unit per logical query regardless
//    of shard fan-out.

#include "neighbor/backend.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "eval/neighbor_eval.h"
#include "graph/neighborhood.h"
#include "metric/metric.h"
#include "neighbor/sharded_backend.h"
#include "util/parallel.h"

namespace disc {
namespace {

NeighborBackendOptions Options(NeighborBackendKind kind, size_t shards = 0) {
  NeighborBackendOptions options;
  options.kind = kind;
  options.shards = shards;
  return options;
}

std::unique_ptr<NeighborBackend> MustCreate(
    const Dataset& dataset, const DistanceMetric& metric,
    const NeighborBackendOptions& options, ThreadPool* pool = nullptr) {
  auto backend = CreateNeighborBackend(dataset, metric, options, pool);
  EXPECT_TRUE(backend.ok()) << backend.status().ToString();
  return backend.ok() ? std::move(backend).value() : nullptr;
}

AdjacencyLists BuildLists(const NeighborBackend& backend, double radius,
                          ThreadPool* pool = nullptr) {
  AdjacencyLists adjacency;
  size_t edges = 0;
  Status status = backend.BuildNeighborhoods(radius, pool, &adjacency, &edges);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return adjacency;
}

/// The ground-truth adjacency structure, straight from the graph layer.
AdjacencyLists OracleLists(const Dataset& dataset,
                           const DistanceMetric& metric, double radius) {
  NeighborhoodGraph graph(dataset, metric, radius);
  AdjacencyLists lists(graph.num_vertices());
  for (ObjectId v = 0; v < graph.num_vertices(); ++v) {
    lists[v] = graph.neighbors(v);
  }
  return lists;
}

// ---------------------------------------------------------------------------
// Names and cache keys
// ---------------------------------------------------------------------------

TEST(NeighborBackendTest, KindNamesRoundTripThroughParse) {
  for (NeighborBackendKind kind :
       {NeighborBackendKind::kExact, NeighborBackendKind::kGrid,
        NeighborBackendKind::kLsh, NeighborBackendKind::kSharded,
        NeighborBackendKind::kLshSharded}) {
    auto parsed = ParseNeighborBackendKind(NeighborBackendKindToString(kind));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, kind);
  }
  auto bogus = ParseNeighborBackendKind("bogus");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bogus.status().message().find("lsh-sharded"), std::string::npos)
      << bogus.status().ToString();
}

TEST(NeighborBackendTest, ExactnessPredicateMatchesTheLshFamily) {
  EXPECT_TRUE(NeighborBackendIsExact(NeighborBackendKind::kExact));
  EXPECT_TRUE(NeighborBackendIsExact(NeighborBackendKind::kGrid));
  EXPECT_TRUE(NeighborBackendIsExact(NeighborBackendKind::kSharded));
  EXPECT_FALSE(NeighborBackendIsExact(NeighborBackendKind::kLsh));
  EXPECT_FALSE(NeighborBackendIsExact(NeighborBackendKind::kLshSharded));
}

TEST(NeighborBackendTest, CacheKeyCarriesEveryResultChangingKnob) {
  EXPECT_EQ(NeighborBackendCacheKey(Options(NeighborBackendKind::kExact)),
            "exact");
  EXPECT_EQ(NeighborBackendCacheKey(Options(NeighborBackendKind::kGrid)),
            "grid");
  EXPECT_EQ(NeighborBackendCacheKey(Options(NeighborBackendKind::kLsh)),
            "lsh:t6:h4:p8:w4:s42");
  EXPECT_EQ(NeighborBackendCacheKey(Options(NeighborBackendKind::kSharded)),
            "sharded");
  EXPECT_EQ(
      NeighborBackendCacheKey(Options(NeighborBackendKind::kSharded, 8)),
      "sharded:n8");
  NeighborBackendOptions tuned = Options(NeighborBackendKind::kLshSharded, 4);
  tuned.lsh.tables = 3;
  tuned.lsh.seed = 7;
  EXPECT_EQ(NeighborBackendCacheKey(tuned), "lsh-sharded:t3:h4:p8:w4:s7:n4");
}

TEST(NeighborBackendTest, DefaultShardCountIsAPureFunctionOfN) {
  EXPECT_EQ(ShardedBackend::DefaultShardCount(100), 2u);
  EXPECT_EQ(ShardedBackend::DefaultShardCount(4096), 4u);
  EXPECT_EQ(ShardedBackend::DefaultShardCount(32768), 8u);
  EXPECT_EQ(ShardedBackend::DefaultShardCount(262144), 16u);
  EXPECT_EQ(ShardedBackend::DefaultShardCount(1000000), 16u);
}

// ---------------------------------------------------------------------------
// Exact family: byte-identical to the graph layer at every thread count
// ---------------------------------------------------------------------------

TEST(NeighborBackendTest, ExactFamilyMatchesGraphLayerAtEveryThreadCount) {
  const Dataset dataset = MakeClusteredDataset(1200, 2, 17);
  EuclideanMetric metric;
  const double radius = 0.05;
  const AdjacencyLists oracle = OracleLists(dataset, metric, radius);

  for (NeighborBackendKind kind :
       {NeighborBackendKind::kExact, NeighborBackendKind::kGrid,
        NeighborBackendKind::kSharded}) {
    auto backend = MustCreate(dataset, metric, Options(kind));
    ASSERT_NE(backend, nullptr);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      std::unique_ptr<ThreadPool> pool =
          threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr;
      AdjacencyLists lists = BuildLists(*backend, radius, pool.get());
      EXPECT_EQ(lists, oracle)
          << NeighborBackendKindToString(kind) << " at " << threads
          << " threads diverged from the graph layer";
    }
  }
}

TEST(NeighborBackendTest, FromBackendReproducesDirectGraphForExactKinds) {
  const Dataset dataset = MakeUniformDataset(800, 3, 5);
  EuclideanMetric metric;
  const double radius = 0.12;
  NeighborhoodGraph direct(dataset, metric, radius);

  for (NeighborBackendKind kind :
       {NeighborBackendKind::kExact, NeighborBackendKind::kSharded}) {
    auto backend = MustCreate(dataset, metric, Options(kind));
    ASSERT_NE(backend, nullptr);
    auto graph = NeighborhoodGraph::FromBackend(*backend, radius);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    ASSERT_EQ(graph->num_vertices(), direct.num_vertices());
    EXPECT_EQ(graph->num_edges(), direct.num_edges());
    for (ObjectId v = 0; v < direct.num_vertices(); ++v) {
      ASSERT_EQ(graph->neighbors(v), direct.neighbors(v))
          << NeighborBackendKindToString(kind) << " vertex " << v;
    }
  }
}

TEST(NeighborBackendTest, RangeQueryAroundExcludesCenterAndSorts) {
  const Dataset dataset = MakeGridDataset(10);  // 100 points, spacing 1/9
  EuclideanMetric metric;
  for (NeighborBackendKind kind :
       {NeighborBackendKind::kExact, NeighborBackendKind::kGrid,
        NeighborBackendKind::kSharded}) {
    auto backend = MustCreate(dataset, metric, Options(kind, 4));
    ASSERT_NE(backend, nullptr);
    std::vector<ObjectId> out;
    backend->RangeQueryAround(55, 0.115, &out);  // axis neighbors only
    EXPECT_EQ(out, (std::vector<ObjectId>{45, 54, 56, 65}))
        << NeighborBackendKindToString(kind);
  }
}

TEST(NeighborBackendTest, ShardFanOutChargesOneRangeQueryPerCall) {
  const Dataset dataset = MakeClusteredDataset(600, 2, 3);
  EuclideanMetric metric;
  auto backend =
      MustCreate(dataset, metric, Options(NeighborBackendKind::kSharded, 6));
  ASSERT_NE(backend, nullptr);
  backend->ResetStats();
  std::vector<ObjectId> out;
  backend->RangeQueryAround(0, 0.05, &out);
  backend->RangeQueryAround(1, 0.05, &out);
  EXPECT_EQ(backend->stats().range_queries, 2u)
      << "fan-out across 6 shards must still count as one logical query";
}

// ---------------------------------------------------------------------------
// LSH family: determinism, subset-of-truth, recall, sharding transparency
// ---------------------------------------------------------------------------

TEST(NeighborBackendTest, LshIsDeterministicForAFixedSeed) {
  const Dataset dataset = MakeClusteredDataset(1500, 2, 23);
  EuclideanMetric metric;
  const double radius = 0.04;
  auto first = MustCreate(dataset, metric, Options(NeighborBackendKind::kLsh));
  auto second =
      MustCreate(dataset, metric, Options(NeighborBackendKind::kLsh));
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(BuildLists(*first, radius), BuildLists(*second, radius));

  NeighborBackendOptions reseeded = Options(NeighborBackendKind::kLsh);
  reseeded.lsh.seed = 1234;
  auto other = MustCreate(dataset, metric, reseeded);
  ASSERT_NE(other, nullptr);
  // The graphs themselves may coincide (both seeds can reach full recall on
  // an easy workload), so seed sensitivity is asserted where it is a hard
  // invariant: the memo identity, and the work the hash family induces.
  EXPECT_NE(NeighborBackendCacheKey(Options(NeighborBackendKind::kLsh)),
            NeighborBackendCacheKey(reseeded));
  first->ResetStats();
  other->ResetStats();
  BuildLists(*first, radius);
  BuildLists(*other, radius);
  EXPECT_NE(first->stats().distance_computations,
            other->stats().distance_computations)
      << "a different hash family must induce different candidate sets";
}

TEST(NeighborBackendTest, LshReportsOnlyTrueNeighborsAndClearsRecallFloor) {
  const Dataset dataset = MakeClusteredDataset(2000, 2, 42);
  EuclideanMetric metric;
  const double radius = 0.04;
  const AdjacencyLists oracle = OracleLists(dataset, metric, radius);
  auto lsh = MustCreate(dataset, metric, Options(NeighborBackendKind::kLsh));
  ASSERT_NE(lsh, nullptr);
  const AdjacencyLists lists = BuildLists(*lsh, radius);

  AdjacencyComparison comparison = CompareAdjacency(oracle, lists);
  EXPECT_EQ(comparison.false_edges, 0u)
      << "distance verification must keep every reported edge true";
  EXPECT_GE(comparison.recall, 0.9)
      << "default LSH config under the documented floor: "
      << comparison.missing_edges << "/" << comparison.oracle_edges
      << " edges missed";
}

TEST(NeighborBackendTest, LshShardedEqualsUnshardedLshByteForByte) {
  const Dataset dataset = MakeClusteredDataset(1800, 2, 11);
  EuclideanMetric metric;
  const double radius = 0.045;
  auto lsh = MustCreate(dataset, metric, Options(NeighborBackendKind::kLsh));
  auto sharded = MustCreate(dataset, metric,
                            Options(NeighborBackendKind::kLshSharded, 4));
  ASSERT_NE(lsh, nullptr);
  ASSERT_NE(sharded, nullptr);
  // Same seed => same hash family in every shard => identical unions; the
  // property that makes the shard count a pure capacity knob.
  EXPECT_EQ(BuildLists(*lsh, radius), BuildLists(*sharded, radius));
}

TEST(NeighborBackendTest, LshAdjacencyIsSymmetric) {
  const Dataset dataset = MakeUniformDataset(1000, 2, 31);
  EuclideanMetric metric;
  auto lsh = MustCreate(dataset, metric, Options(NeighborBackendKind::kLsh));
  ASSERT_NE(lsh, nullptr);
  const AdjacencyLists lists = BuildLists(*lsh, 0.05);
  for (ObjectId i = 0; i < lists.size(); ++i) {
    for (ObjectId j : lists[i]) {
      EXPECT_TRUE(std::binary_search(lists[j].begin(), lists[j].end(), i))
          << "edge " << i << "->" << j << " has no reverse entry";
    }
  }
}

TEST(NeighborBackendTest, LshRejectsTheHammingMetric) {
  const Dataset dataset = MakeUniformDataset(50, 4, 1);
  HammingMetric metric;
  for (NeighborBackendKind kind :
       {NeighborBackendKind::kLsh, NeighborBackendKind::kLshSharded}) {
    auto backend = CreateNeighborBackend(dataset, metric, Options(kind));
    ASSERT_FALSE(backend.ok()) << NeighborBackendKindToString(kind);
    EXPECT_EQ(backend.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// The exact-family guardrail
// ---------------------------------------------------------------------------

TEST(NeighborBackendTest, ExactBackendRefusesDatasetsAboveTheCap) {
  const Dataset dataset = MakeUniformDataset(500, 2, 2);
  EuclideanMetric metric;
  NeighborBackendOptions capped = Options(NeighborBackendKind::kExact);
  capped.max_exact_points = 499;
  auto backend = CreateNeighborBackend(dataset, metric, capped);
  ASSERT_FALSE(backend.ok());
  EXPECT_EQ(backend.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(backend.status().message().find("lsh-sharded"), std::string::npos)
      << backend.status().ToString();

  // The sharded and LSH kinds are the supported way past the cap.
  for (NeighborBackendKind kind :
       {NeighborBackendKind::kSharded, NeighborBackendKind::kLsh,
        NeighborBackendKind::kLshSharded}) {
    NeighborBackendOptions exempt = Options(kind);
    exempt.max_exact_points = 499;
    EXPECT_NE(MustCreate(dataset, metric, exempt), nullptr)
        << NeighborBackendKindToString(kind);
  }
}

TEST(NeighborBackendTest, GridBackendCapAppliesOnlyWhenGridCannotApply) {
  EuclideanMetric euclidean;
  // 2-D Euclidean: the grid accelerator applies, so the cap is moot.
  const Dataset flat = MakeUniformDataset(600, 2, 4);
  NeighborBackendOptions capped = Options(NeighborBackendKind::kGrid);
  capped.max_exact_points = 100;
  EXPECT_NE(MustCreate(flat, euclidean, capped), nullptr);

  // Dim 4 keeps the grid out; the same cap now refuses the O(n^2) fallback.
  const Dataset wide = MakeUniformDataset(600, 4, 4);
  auto refused = CreateNeighborBackend(wide, euclidean, capped);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace disc
