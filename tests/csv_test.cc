#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace disc {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "disc_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, SplitSimpleLine) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST_F(CsvTest, SplitEmptyFields) {
  auto fields = SplitCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST_F(CsvTest, SplitQuotedComma) {
  auto fields = SplitCsvLine("a,\"b,c\",d");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
}

TEST_F(CsvTest, SplitEscapedQuote) {
  auto fields = SplitCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST_F(CsvTest, SplitStripsCarriageReturn) {
  auto fields = SplitCsvLine("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST_F(CsvTest, ReadMissingFileIsIOError) {
  auto result = ReadCsv(Path("does_not_exist.csv"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, RoundTrip) {
  std::string path = Path("roundtrip.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteRow({"x", "y"});
    writer.WriteRow({"1.5", "2.5"});
    writer.WriteRow({"with,comma", "with\"quote"});
    writer.Close();
  }
  auto rows = ReadCsv(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0], "x");
  EXPECT_EQ((*rows)[2][0], "with,comma");
  EXPECT_EQ((*rows)[2][1], "with\"quote");
}

TEST_F(CsvTest, ReadSkipsBlankLines) {
  std::string path = Path("blanks.csv");
  std::ofstream out(path);
  out << "a,b\n\n\nc,d\n";
  out.close();
  auto rows = ReadCsv(path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(CsvTest, WriterToUnwritablePathReportsError) {
  CsvWriter writer("/nonexistent_dir_zzz/file.csv");
  EXPECT_FALSE(writer.status().ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kIOError);
  writer.WriteRow({"ignored"});  // must not crash
}

}  // namespace
}  // namespace disc
