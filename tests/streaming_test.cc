#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/reference.h"
#include "data/generators.h"
#include "graph/properties.h"
#include "metric/metric.h"

namespace disc {
namespace {

TEST(StreamingDiscTest, FirstArrivalAlwaysSelected) {
  EuclideanMetric metric;
  StreamingDisc stream(metric, 0.1);
  auto selected = stream.Insert(Point{0.5, 0.5});
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(*selected);
  EXPECT_EQ(stream.solution(), std::vector<ObjectId>{0});
}

TEST(StreamingDiscTest, CoveredArrivalRejected) {
  EuclideanMetric metric;
  StreamingDisc stream(metric, 0.1);
  ASSERT_TRUE(stream.Insert(Point{0.5, 0.5}).ok());
  auto second = stream.Insert(Point{0.55, 0.5});  // within 0.1
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(*second);
  EXPECT_EQ(stream.solution().size(), 1u);
  EXPECT_NEAR(stream.representative_distance(1), 0.05, 1e-12);
}

TEST(StreamingDiscTest, DimensionMismatchRejected) {
  EuclideanMetric metric;
  StreamingDisc stream(metric, 0.1);
  ASSERT_TRUE(stream.Insert(Point{0.5, 0.5}).ok());
  auto bad = stream.Insert(Point{0.5});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stream.seen(), 1u);  // rejected arrival not recorded
}

TEST(StreamingDiscTest, InvariantHoldsAfterEveryArrival) {
  EuclideanMetric metric;
  const double radius = 0.08;
  Dataset points = MakeClusteredDataset(400, 2, 91);
  StreamingDisc stream(metric, radius);
  for (ObjectId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(stream.Insert(points.point(i)).ok());
    if (i % 50 == 49) {  // spot-check the invariant along the stream
      Status s = VerifyDisCDiverse(stream.seen_dataset(), metric, radius,
                                   stream.solution());
      ASSERT_TRUE(s.ok()) << "after arrival " << i << ": " << s.ToString();
    }
  }
  EXPECT_TRUE(VerifyDisCDiverse(stream.seen_dataset(), metric, radius,
                                stream.solution())
                  .ok());
}

TEST(StreamingDiscTest, MatchesBasicDiscInArrivalOrder) {
  // The online rule is Basic-DisC with candidate order = arrival order, so
  // the final solutions must be identical.
  EuclideanMetric metric;
  const double radius = 0.07;
  Dataset points = MakeUniformDataset(500, 2, 93);
  StreamingDisc stream(metric, radius);
  for (ObjectId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(stream.Insert(points.point(i)).ok());
  }
  NeighborhoodGraph graph(points, metric, radius);
  std::vector<ObjectId> order(points.size());
  for (ObjectId i = 0; i < points.size(); ++i) order[i] = i;
  EXPECT_EQ(stream.solution(), ReferenceBasicDisc(graph, order));
}

TEST(StreamingDiscTest, RepresentativeDistancesAreTight) {
  EuclideanMetric metric;
  const double radius = 0.1;
  Dataset points = MakeClusteredDataset(300, 2, 97);
  StreamingDisc stream(metric, radius);
  for (ObjectId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(stream.Insert(points.point(i)).ok());
  }
  for (ObjectId i = 0; i < stream.seen(); ++i) {
    double recorded = stream.representative_distance(i);
    EXPECT_LE(recorded, radius);
    if (recorded == 0) continue;  // selected objects represent themselves
    // The recorded distance belongs to an actual covering member that had
    // already arrived (Insert stops at the first cover it finds, so it is
    // an upper bound on the distance to the closest member).
    bool witnessed = false;
    double best_earlier = 1e18;
    for (ObjectId s : stream.solution()) {
      if (s > i) break;
      double d = metric.Distance(points.point(i), points.point(s));
      best_earlier = std::min(best_earlier, d);
      if (std::abs(d - recorded) < 1e-12) witnessed = true;
    }
    EXPECT_TRUE(witnessed) << "object " << i;
    EXPECT_GE(recorded, best_earlier - 1e-12);
  }
}

TEST(StreamingDiscTest, ZeroRadiusSelectsAllDistinct) {
  EuclideanMetric metric;
  StreamingDisc stream(metric, 0.0);
  ASSERT_TRUE(stream.Insert(Point{0.1}).ok());
  ASSERT_TRUE(stream.Insert(Point{0.2}).ok());
  auto duplicate = stream.Insert(Point{0.1});
  ASSERT_TRUE(duplicate.ok());
  EXPECT_FALSE(*duplicate);  // exact duplicate is covered at r = 0
  EXPECT_EQ(stream.solution().size(), 2u);
}

TEST(StreamingDiscTest, SolutionIsMonotone) {
  // Once shown, a representative is never revoked.
  EuclideanMetric metric;
  Dataset points = MakeUniformDataset(300, 2, 99);
  StreamingDisc stream(metric, 0.15);
  std::vector<ObjectId> previous;
  for (ObjectId i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(stream.Insert(points.point(i)).ok());
    const auto& current = stream.solution();
    ASSERT_GE(current.size(), previous.size());
    for (size_t k = 0; k < previous.size(); ++k) {
      EXPECT_EQ(current[k], previous[k]);
    }
    previous = current;
  }
}

}  // namespace
}  // namespace disc
