// Deterministic fuzz tests for the wire-protocol parser (ISSUE 6): random
// and adversarially mutated command lines — truncations, byte flips,
// oversized tokens, embedded NULs, invalid UTF-8 — must always come back
// as a Status error or a well-formed Request, never a crash or a hang.
// The suite runs under ASan/UBSan in CI, so "no crash" includes "no
// out-of-bounds read" on any of these inputs.
//
// The generator is a fixed-seed LCG (no std::random_device), so every run
// fuzzes the exact same corpus: a failure reproduces by re-running the
// test, and the iteration index in the failure message pins the input.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace disc {
namespace {

/// Minimal deterministic generator (numerical-recipes LCG).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }

  /// Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  char AnyByte() { return static_cast<char>(Below(256)); }

 private:
  uint64_t state_;
};

/// A printable summary of a fuzz input for failure messages (hex-escapes
/// everything non-ASCII so the log itself stays one line).
std::string Summarize(const std::string& input) {
  std::string out;
  for (size_t i = 0; i < input.size() && i < 160; ++i) {
    const unsigned char byte = static_cast<unsigned char>(input[i]);
    if (byte >= 32 && byte < 127) {
      out += static_cast<char>(byte);
    } else {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\x%02x", byte);
      out += buffer;
    }
  }
  if (input.size() > 160) out += "...";
  return out;
}

/// Drives one input through the full decode path: parse, then — when the
/// parse succeeds — decode into the verb's typed request. Every outcome
/// except a crash is acceptable; a successful parse must also be stable
/// under re-parsing (same ok-ness, same verb).
void ExerciseLine(const std::string& line, size_t iteration) {
  Result<Request> request = ParseRequest(line);
  if (!request.ok()) {
    EXPECT_FALSE(request.status().message().empty())
        << "errors must carry a message; input " << iteration << ": "
        << Summarize(line);
    return;
  }
  Result<Request> again = ParseRequest(line);
  ASSERT_TRUE(again.ok()) << "parse not deterministic; input " << iteration
                          << ": " << Summarize(line);
  EXPECT_EQ(static_cast<int>(again->verb), static_cast<int>(request->verb));
  switch (request->verb) {
    case Verb::kOpen:
      (void)DecodeOpen(*request);
      break;
    case Verb::kDiversify:
      (void)DecodeDiversify(*request);
      break;
    case Verb::kZoom:
      (void)DecodeZoom(*request);
      break;
    case Verb::kStats:
    case Verb::kClose:
      break;
  }
  // Whatever survived parsing must serialize safely as an error echo (the
  // server does exactly this with client-controlled text).
  for (const auto& [key, value] : request->args) {
    (void)JsonEscape(key);
    (void)JsonEscape(value);
  }
}

TEST(ProtocolFuzzTest, RandomBytesNeverCrashTheParser) {
  Lcg rng(0x5eed0001);
  for (size_t i = 0; i < 20000; ++i) {
    std::string line(rng.Below(120), '\0');
    for (char& byte : line) byte = rng.AnyByte();
    ExerciseLine(line, i);
  }
}

TEST(ProtocolFuzzTest, MutatedValidCommandsNeverCrashTheParser) {
  const std::vector<std::string> corpus = {
      "OPEN dataset=clustered n=400 dim=2 seed=9 metric=euclidean "
      "build=insert",
      "OPEN dataset=csv:/tmp/points.csv metric=manhattan",
      "DIVERSIFY r=0.05 algo=greedy-c pruned=true quality=false",
      "DIVERSIFY r=1e-9 algo=basic",
      "ZOOM to=0.025 greedy=true variant=greedy-b center=17 "
      "distances=exact quality=true",
      "ZOOM to=0.1 variant=arbitrary distances=auto",
      "STATS",
      "CLOSE",
  };
  Lcg rng(0x5eed0002);
  for (size_t i = 0; i < 20000; ++i) {
    std::string line = corpus[rng.Below(corpus.size())];
    const size_t mutations = 1 + rng.Below(4);
    for (size_t m = 0; m < mutations; ++m) {
      switch (rng.Below(6)) {
        case 0:  // truncate anywhere, possibly mid-token
          if (!line.empty()) line.resize(rng.Below(line.size() + 1));
          break;
        case 1:  // flip one byte to anything, NUL included
          if (!line.empty()) line[rng.Below(line.size())] = rng.AnyByte();
          break;
        case 2: {  // insert a short burst of invalid UTF-8
          static const char kBurst[] = "\xc3\x28\xa0\xff\xfe\x00\xf0\x28";
          const size_t at = rng.Below(line.size() + 1);
          line.insert(at, kBurst, sizeof(kBurst) - 1);
          break;
        }
        case 3:  // duplicate a random slice (repeated keys, glued tokens)
          if (!line.empty()) {
            const size_t from = rng.Below(line.size());
            const size_t count = rng.Below(line.size() - from) + 1;
            line.insert(rng.Below(line.size() + 1),
                        line.substr(from, count));
          }
          break;
        case 4:  // splice two corpus entries together
          line += ' ';
          line += corpus[rng.Below(corpus.size())];
          break;
        case 5:  // swap the separator structure around
          for (char& byte : line) {
            if (byte == '=' && rng.Below(4) == 0) byte = ' ';
            if (byte == ' ' && rng.Below(4) == 0) byte = '=';
          }
          break;
      }
    }
    ExerciseLine(line, i);
  }
}

TEST(ProtocolFuzzTest, OversizedTokensAreHandledWithoutCrashing) {
  // Far beyond anything the transport admits per line (it caps at 1 MiB
  // without a newline); the parser itself must not care.
  const std::string huge_value(2 << 20, 'x');
  ExerciseLine("OPEN dataset=" + huge_value, 0);
  ExerciseLine("DIVERSIFY r=" + huge_value, 1);
  ExerciseLine("DIVERSIFY r=0.05 " + huge_value + "=1", 2);
  const std::string huge_key(1 << 20, 'k');
  ExerciseLine("ZOOM to=0.1 " + huge_key + "=" + huge_value, 3);
  ExerciseLine(std::string(1 << 20, ' ') + "STATS", 4);
  ExerciseLine("STATS" + std::string(1 << 20, ' '), 5);
}

TEST(ProtocolFuzzTest, EmbeddedNulsAndControlBytesAreJustBytes) {
  // NULs in every structural position: verb, key, value, separators.
  const std::vector<std::string> lines = {
      std::string("\0OPEN dataset=clustered", 23),
      std::string("OPEN\0 dataset=clustered", 23),
      std::string("OPEN dataset=clu\0stered", 23),
      std::string("OPEN dataset\0=clustered", 23),
      std::string("OPEN \0=\0", 8),
      std::string("\0\0\0\0", 4),
      std::string("DIVERSIFY r=0.05\0", 17),
      std::string("STATS\0", 6),
  };
  for (size_t i = 0; i < lines.size(); ++i) ExerciseLine(lines[i], i);
}

TEST(ProtocolFuzzTest, JsonEscapeIsSafeOnArbitraryBytes) {
  Lcg rng(0x5eed0003);
  for (size_t i = 0; i < 5000; ++i) {
    std::string text(rng.Below(64), '\0');
    for (char& byte : text) byte = rng.AnyByte();
    const std::string escaped = JsonEscape(text);
    // The escaped form must be embeddable in a JSON string: no raw
    // quote, backslash, or control byte may survive unescaped.
    for (size_t at = 0; at < escaped.size(); ++at) {
      const unsigned char byte = static_cast<unsigned char>(escaped[at]);
      if (byte < 0x20) {
        ADD_FAILURE() << "raw control byte " << static_cast<int>(byte)
                      << " at " << at << " in: " << Summarize(escaped);
        break;
      }
      if (escaped[at] == '"' &&
          (at == 0 || escaped[at - 1] != '\\')) {
        ADD_FAILURE() << "unescaped quote at " << at << " in: "
                      << Summarize(escaped);
        break;
      }
    }
  }
}

}  // namespace
}  // namespace disc
