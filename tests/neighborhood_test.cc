#include "graph/neighborhood.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "data/generators.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "util/parallel.h"

namespace disc {
namespace {

// Wraps a metric and counts Distance calls. The counter is atomic so the
// same wrapper pins the parallel builds too.
class CountingMetric final : public DistanceMetric {
 public:
  explicit CountingMetric(const DistanceMetric& inner) : inner_(inner) {}

  double Distance(const Point& a, const Point& b) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_.Distance(a, b);
  }
  MetricKind kind() const override { return inner_.kind(); }

  uint64_t calls() const { return calls_.load(); }
  void Reset() { calls_.store(0); }

 private:
  const DistanceMetric& inner_;
  mutable std::atomic<uint64_t> calls_{0};
};

TEST(NeighborhoodGraphTest, EmptyDataset) {
  Dataset d;
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.1);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(NeighborhoodGraphTest, SingleVertexHasNoNeighbors) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.5, 0.5}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 1.0);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(NeighborhoodGraphTest, SimpleTriangle) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.0, 0.0}).ok());
  ASSERT_TRUE(d.Add(Point{0.1, 0.0}).ok());
  ASSERT_TRUE(d.Add(Point{0.9, 0.9}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(NeighborhoodGraphTest, BoundaryDistanceIsAnEdge) {
  // dist == r must be an edge (the paper uses dist <= r for similarity).
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.0}).ok());
  ASSERT_TRUE(d.Add(Point{0.5}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.5);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(NeighborhoodGraphTest, ZeroRadiusOnlyDuplicates) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.3, 0.3}).ok());
  ASSERT_TRUE(d.Add(Point{0.3, 0.3}).ok());
  ASSERT_TRUE(d.Add(Point{0.4, 0.3}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.0);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(NeighborhoodGraphTest, NeighborsSortedById) {
  Dataset d = MakeUniformDataset(200, 2, 3);
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.2);
  for (ObjectId v = 0; v < g.num_vertices(); ++v) {
    const auto& nbs = g.neighbors(v);
    for (size_t i = 1; i < nbs.size(); ++i) {
      EXPECT_LT(nbs[i - 1], nbs[i]);
    }
  }
}

TEST(NeighborhoodGraphTest, MaxDegreeMatchesScan) {
  Dataset d = MakeClusteredDataset(300, 2, 9);
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.1);
  size_t expected = 0;
  for (ObjectId v = 0; v < g.num_vertices(); ++v) {
    expected = std::max(expected, g.degree(v));
  }
  EXPECT_EQ(g.MaxDegree(), expected);
}

// The grid accelerator (n >= 256, dim <= 3, Minkowski metric) must agree
// exactly with the brute-force construction. Exercise several shapes.
struct GridParam {
  size_t n;
  size_t dim;
  MetricKind kind;
  double radius;
};

class GridEquivalenceTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(GridEquivalenceTest, GridMatchesBruteForce) {
  const GridParam& p = GetParam();
  // The accelerated path engages at n >= 256; build the same dataset twice,
  // once large (grid) and once forced brute (by a tiny copy trick we instead
  // verify adjacency directly against pairwise distances).
  Dataset d = p.kind == MetricKind::kEuclidean
                  ? MakeClusteredDataset(p.n, p.dim, 77)
                  : MakeUniformDataset(p.n, p.dim, 77);
  auto metric = MakeMetric(p.kind);
  NeighborhoodGraph g(d, *metric, p.radius);
  size_t edges = 0;
  for (ObjectId i = 0; i < d.size(); ++i) {
    for (ObjectId j = i + 1; j < d.size(); ++j) {
      bool close = metric->Distance(d.point(i), d.point(j)) <= p.radius;
      ASSERT_EQ(g.HasEdge(i, j), close)
          << "edge (" << i << "," << j << ") mismatch";
      if (close) ++edges;
    }
  }
  EXPECT_EQ(g.num_edges(), edges);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridEquivalenceTest,
    ::testing::Values(GridParam{400, 2, MetricKind::kEuclidean, 0.05},
                      GridParam{400, 2, MetricKind::kEuclidean, 0.3},
                      GridParam{300, 2, MetricKind::kManhattan, 0.1},
                      GridParam{300, 3, MetricKind::kEuclidean, 0.15},
                      GridParam{300, 2, MetricKind::kChebyshev, 0.08},
                      GridParam{100, 2, MetricKind::kEuclidean, 0.1}),
    [](const ::testing::TestParamInfo<GridParam>& param_info) {
      const GridParam& p = param_info.param;
      return std::string(MetricKindToString(p.kind)) + "_n" +
             std::to_string(p.n) + "_d" + std::to_string(p.dim) + "_i" +
             std::to_string(param_info.index);
    });

// ---------------------------------------------------------------------------
// Distance-call accounting: one computation per unordered pair.
// ---------------------------------------------------------------------------

TEST(NeighborhoodGraphTest, BruteForceComputesEachPairOnce) {
  // n < 256 keeps the build on the O(n^2) path. The regression this pins:
  // a scan that evaluated Distance(a, b) and Distance(b, a) separately
  // would cost exactly n(n-1) calls — twice this bound.
  const size_t n = 120;
  Dataset d = MakeUniformDataset(n, 2, 11);
  EuclideanMetric inner;
  CountingMetric metric(inner);
  NeighborhoodGraph g(d, metric, 0.1);
  EXPECT_EQ(metric.calls(), n * (n - 1) / 2);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(NeighborhoodGraphTest, GridComputesAtMostEachPairOnce) {
  // The grid path (n >= 256, low dim) sees each candidate pair from both
  // endpoints' cell enumerations; the j <= i skip must dedupe it to at most
  // one Distance call per unordered pair (fewer: distant pairs never meet).
  const size_t n = 400;
  Dataset d = MakeClusteredDataset(n, 2, 11);
  EuclideanMetric inner;
  CountingMetric metric(inner);
  NeighborhoodGraph g(d, metric, 0.05);
  EXPECT_GT(metric.calls(), 0u);
  EXPECT_LT(metric.calls(), n * (n - 1) / 2);  // the accelerator must pay off
  // (GridEquivalenceTest pins the resulting graph against brute force; this
  // test pins the cost model: dedupe means at most one call per pair.)
}

// ---------------------------------------------------------------------------
// Parallel builds: byte-identical to serial for every path and thread count.
// ---------------------------------------------------------------------------

void ExpectSameGraph(const NeighborhoodGraph& a, const NeighborhoodGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (ObjectId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.neighbors(v), b.neighbors(v)) << "vertex " << v;
  }
}

TEST(NeighborhoodGraphParallelTest, BruteForcePathMatchesSerial) {
  // dim 4 keeps the build off the grid accelerator.
  Dataset d = MakeUniformDataset(500, 4, 23);
  EuclideanMetric metric;
  NeighborhoodGraph serial(d, metric, 0.25);
  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    NeighborhoodGraph parallel(d, metric, 0.25, &pool);
    ExpectSameGraph(serial, parallel);
  }
}

TEST(NeighborhoodGraphParallelTest, GridPathMatchesSerial) {
  Dataset d = MakeClusteredDataset(800, 2, 23);
  EuclideanMetric metric;
  NeighborhoodGraph serial(d, metric, 0.05);
  for (size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    NeighborhoodGraph parallel(d, metric, 0.05, &pool);
    ExpectSameGraph(serial, parallel);
  }
}

TEST(NeighborhoodGraphParallelTest, ParallelBruteForceDistanceCallsUnchanged) {
  // Threading must not change the work, only the wall time: still exactly
  // one Distance call per unordered pair.
  const size_t n = 300;
  Dataset d = MakeUniformDataset(n, 4, 29);
  EuclideanMetric inner;
  CountingMetric metric(inner);
  ThreadPool pool(4);
  NeighborhoodGraph g(d, metric, 0.3, &pool);
  EXPECT_EQ(metric.calls(), n * (n - 1) / 2);
}

TEST(NeighborhoodGraphParallelTest, IndexBackedPathMatchesSerialWithStats) {
  Dataset d = MakeClusteredDataset(600, 2, 31);
  EuclideanMetric metric;
  const double radius = 0.05;

  MTree serial_tree(d, metric);
  ASSERT_TRUE(serial_tree.Build().ok());
  serial_tree.ResetStats();
  NeighborhoodGraph serial(serial_tree, radius);
  const AccessStats serial_stats = serial_tree.stats();

  for (size_t threads : {2u, 4u}) {
    MTree tree(d, metric);
    ASSERT_TRUE(tree.Build().ok());
    tree.ResetStats();
    ThreadPool pool(threads);
    NeighborhoodGraph parallel(tree, radius, &pool);
    ExpectSameGraph(serial, parallel);
    // Node-access accounting fans out through per-thread sinks and is
    // summed back: totals must be exactly the serial totals.
    EXPECT_EQ(tree.stats(), serial_stats) << "threads " << threads;
  }
}

TEST(NeighborhoodGraphParallelTest, ParallelCountsMatchSerial) {
  Dataset d = MakeClusteredDataset(700, 2, 37);
  EuclideanMetric metric;
  const double radius = 0.04;

  MTree serial_tree(d, metric);
  ASSERT_TRUE(serial_tree.Build().ok());
  serial_tree.ResetStats();
  std::vector<uint32_t> serial_counts;
  serial_tree.ComputeNeighborCountsPostBuild(radius, &serial_counts);
  const AccessStats serial_stats = serial_tree.stats();

  for (size_t threads : {2u, 4u}) {
    MTree tree(d, metric);
    ASSERT_TRUE(tree.Build().ok());
    tree.ResetStats();
    ThreadPool pool(threads);
    std::vector<uint32_t> counts;
    tree.ComputeNeighborCountsPostBuild(radius, &counts, &pool);
    EXPECT_EQ(counts, serial_counts) << "threads " << threads;
    EXPECT_EQ(tree.stats(), serial_stats) << "threads " << threads;
  }
}

TEST(NeighborhoodGraphTest, HammingGraphOnCategoricalData) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0, 0, 0}).ok());
  ASSERT_TRUE(d.Add(Point{0, 0, 1}).ok());
  ASSERT_TRUE(d.Add(Point{1, 1, 1}).ok());
  HammingMetric metric;
  NeighborhoodGraph g(d, metric, 1.0);
  EXPECT_TRUE(g.HasEdge(0, 1));   // differ in 1 attribute
  EXPECT_FALSE(g.HasEdge(0, 2));  // differ in 3 attributes
  EXPECT_FALSE(g.HasEdge(1, 2));  // differ in 2 attributes
}

}  // namespace
}  // namespace disc
