#include "graph/neighborhood.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "metric/metric.h"

namespace disc {
namespace {

TEST(NeighborhoodGraphTest, EmptyDataset) {
  Dataset d;
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.1);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(NeighborhoodGraphTest, SingleVertexHasNoNeighbors) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.5, 0.5}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 1.0);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(NeighborhoodGraphTest, SimpleTriangle) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.0, 0.0}).ok());
  ASSERT_TRUE(d.Add(Point{0.1, 0.0}).ok());
  ASSERT_TRUE(d.Add(Point{0.9, 0.9}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(NeighborhoodGraphTest, BoundaryDistanceIsAnEdge) {
  // dist == r must be an edge (the paper uses dist <= r for similarity).
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.0}).ok());
  ASSERT_TRUE(d.Add(Point{0.5}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.5);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(NeighborhoodGraphTest, ZeroRadiusOnlyDuplicates) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.3, 0.3}).ok());
  ASSERT_TRUE(d.Add(Point{0.3, 0.3}).ok());
  ASSERT_TRUE(d.Add(Point{0.4, 0.3}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.0);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(NeighborhoodGraphTest, NeighborsSortedById) {
  Dataset d = MakeUniformDataset(200, 2, 3);
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.2);
  for (ObjectId v = 0; v < g.num_vertices(); ++v) {
    const auto& nbs = g.neighbors(v);
    for (size_t i = 1; i < nbs.size(); ++i) {
      EXPECT_LT(nbs[i - 1], nbs[i]);
    }
  }
}

TEST(NeighborhoodGraphTest, MaxDegreeMatchesScan) {
  Dataset d = MakeClusteredDataset(300, 2, 9);
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.1);
  size_t expected = 0;
  for (ObjectId v = 0; v < g.num_vertices(); ++v) {
    expected = std::max(expected, g.degree(v));
  }
  EXPECT_EQ(g.MaxDegree(), expected);
}

// The grid accelerator (n >= 256, dim <= 3, Minkowski metric) must agree
// exactly with the brute-force construction. Exercise several shapes.
struct GridParam {
  size_t n;
  size_t dim;
  MetricKind kind;
  double radius;
};

class GridEquivalenceTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(GridEquivalenceTest, GridMatchesBruteForce) {
  const GridParam& p = GetParam();
  // The accelerated path engages at n >= 256; build the same dataset twice,
  // once large (grid) and once forced brute (by a tiny copy trick we instead
  // verify adjacency directly against pairwise distances).
  Dataset d = p.kind == MetricKind::kEuclidean
                  ? MakeClusteredDataset(p.n, p.dim, 77)
                  : MakeUniformDataset(p.n, p.dim, 77);
  auto metric = MakeMetric(p.kind);
  NeighborhoodGraph g(d, *metric, p.radius);
  size_t edges = 0;
  for (ObjectId i = 0; i < d.size(); ++i) {
    for (ObjectId j = i + 1; j < d.size(); ++j) {
      bool close = metric->Distance(d.point(i), d.point(j)) <= p.radius;
      ASSERT_EQ(g.HasEdge(i, j), close)
          << "edge (" << i << "," << j << ") mismatch";
      if (close) ++edges;
    }
  }
  EXPECT_EQ(g.num_edges(), edges);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridEquivalenceTest,
    ::testing::Values(GridParam{400, 2, MetricKind::kEuclidean, 0.05},
                      GridParam{400, 2, MetricKind::kEuclidean, 0.3},
                      GridParam{300, 2, MetricKind::kManhattan, 0.1},
                      GridParam{300, 3, MetricKind::kEuclidean, 0.15},
                      GridParam{300, 2, MetricKind::kChebyshev, 0.08},
                      GridParam{100, 2, MetricKind::kEuclidean, 0.1}),
    [](const ::testing::TestParamInfo<GridParam>& param_info) {
      const GridParam& p = param_info.param;
      return std::string(MetricKindToString(p.kind)) + "_n" +
             std::to_string(p.n) + "_d" + std::to_string(p.dim) + "_i" +
             std::to_string(param_info.index);
    });

TEST(NeighborhoodGraphTest, HammingGraphOnCategoricalData) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0, 0, 0}).ok());
  ASSERT_TRUE(d.Add(Point{0, 0, 1}).ok());
  ASSERT_TRUE(d.Add(Point{1, 1, 1}).ok());
  HammingMetric metric;
  NeighborhoodGraph g(d, metric, 1.0);
  EXPECT_TRUE(g.HasEdge(0, 1));   // differ in 1 attribute
  EXPECT_FALSE(g.HasEdge(0, 2));  // differ in 3 attributes
  EXPECT_FALSE(g.HasEdge(1, 2));  // differ in 2 attributes
}

}  // namespace
}  // namespace disc
