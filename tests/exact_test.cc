#include "graph/exact.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "util/random.h"

namespace disc {
namespace {

Dataset LineDataset(std::initializer_list<double> xs) {
  Dataset d;
  for (double x : xs) EXPECT_TRUE(d.Add(Point{x}).ok());
  return d;
}

TEST(ExactSolverTest, EmptyGraph) {
  Dataset d;
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 1.0);
  auto result = ExactMinimumIndependentDominatingSet(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ExactSolverTest, SingleVertex) {
  Dataset d = LineDataset({0.0});
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 1.0);
  auto result = ExactMinimumIndependentDominatingSet(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, std::vector<ObjectId>{0});
}

TEST(ExactSolverTest, ChainOfSixNeedsTwo) {
  // 0-1-2-3-4-5 at radius 1: {1, 4} is the optimum.
  Dataset d = LineDataset({0, 1, 2, 3, 4, 5});
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 1.0);
  auto result = ExactMinimumIndependentDominatingSetSize(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 2u);
}

TEST(ExactSolverTest, Figure4MinimumIndependentDominatingIsLargerThanMDS) {
  // Figure 4 of the paper: a star of leaves {v1, v3, v5} around v2 plus a
  // second hub v5-{v4, v6}; minimum dominating = 2 but minimum *independent*
  // dominating = 3. Reconstruct that topology with 1-D points... a star
  // cannot be embedded in 1-D, so build the graph from a 2-D layout:
  Dataset d;
  // v2 hub at origin; v1, v3, v5 within radius; v5 is itself a hub for
  // v4, v6 which are far from v2.
  ASSERT_TRUE(d.Add(Point{0.0, 0.0}).ok());     // 0 = v2 hub
  ASSERT_TRUE(d.Add(Point{0.0, 0.9}).ok());     // 1 = v1 leaf of v2
  ASSERT_TRUE(d.Add(Point{0.9, 0.0}).ok());     // 2 = v3 leaf of v2
  ASSERT_TRUE(d.Add(Point{-0.9, 0.0}).ok());    // 3 = v5 (shared with v2)
  ASSERT_TRUE(d.Add(Point{-1.7, 0.55}).ok());   // 4 = v4 leaf of v5
  ASSERT_TRUE(d.Add(Point{-1.7, -0.55}).ok());  // 5 = v6 leaf of v5
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 1.0);
  // Sanity: hub adjacency as intended; v4 and v6 are NOT adjacent.
  ASSERT_TRUE(g.HasEdge(0, 3));
  ASSERT_TRUE(g.HasEdge(3, 4));
  ASSERT_TRUE(g.HasEdge(3, 5));
  ASSERT_FALSE(g.HasEdge(0, 4));
  ASSERT_FALSE(g.HasEdge(4, 5));

  // {0, 3} dominates but is NOT independent (edge 0-3).
  EXPECT_TRUE(IsDominatingSet(g, {0, 3}));
  EXPECT_FALSE(IsIndependentSet(g, {0, 3}));

  auto result = ExactMinimumIndependentDominatingSet(g);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 2u);
  EXPECT_TRUE(IsMaximalIndependentSet(g, *result));
}

TEST(ExactSolverTest, ResultIsAlwaysIndependentDominating) {
  EuclideanMetric metric;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Dataset d = MakeUniformDataset(20, 2, seed);
    NeighborhoodGraph g(d, metric, 0.3);
    auto result = ExactMinimumIndependentDominatingSet(g);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(IsMaximalIndependentSet(g, *result)) << "seed " << seed;
  }
}

TEST(ExactSolverTest, NoMaximalIndependentSetIsSmaller) {
  // Exhaustively confirm optimality on a small instance: no independent
  // dominating set of smaller size exists.
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(14, 2, 5);
  NeighborhoodGraph g(d, metric, 0.35);
  auto best = ExactMinimumIndependentDominatingSetSize(g);
  ASSERT_TRUE(best.ok());
  size_t n = g.num_vertices();
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) >= *best) continue;
    std::vector<ObjectId> subset;
    for (size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) subset.push_back(static_cast<ObjectId>(v));
    }
    EXPECT_FALSE(IsMaximalIndependentSet(g, subset))
        << "found smaller solution than claimed optimum";
  }
}

TEST(ExactSolverTest, RefusesOversizedGraphs) {
  Dataset d = MakeUniformDataset(50, 2, 3);
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.1);
  ExactSolverOptions options;
  options.max_vertices = 40;
  auto result = ExactMinimumIndependentDominatingSet(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExactSolverTest, BudgetExhaustionReported) {
  Dataset d = MakeUniformDataset(30, 2, 9);
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.25);
  ExactSolverOptions options;
  options.max_search_nodes = 3;  // absurdly small
  auto result = ExactMinimumIndependentDominatingSet(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(ExactSolverTest, DisconnectedComponentsSolvedIndependently) {
  // Two far-apart cliques of 3: optimum is exactly one vertex per clique.
  Dataset d;
  for (double x : {0.0, 0.1, 0.2}) ASSERT_TRUE(d.Add(Point{x, 0.0}).ok());
  for (double x : {5.0, 5.1, 5.2}) ASSERT_TRUE(d.Add(Point{x, 0.0}).ok());
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.25);
  auto result = ExactMinimumIndependentDominatingSetSize(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 2u);
}

}  // namespace
}  // namespace disc
