// Edge cases and failure injection across the public API: degenerate radii,
// degenerate datasets, zooming to extremes, and every documented error path.

#include <gtest/gtest.h>

#include <limits>

#include "core/disc_algorithms.h"
#include "core/zoom.h"
#include "data/generators.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "mtree/mtree.h"

namespace disc {
namespace {

class EdgeCaseFixture : public ::testing::Test {
 protected:
  EdgeCaseFixture()
      : dataset_(MakeClusteredDataset(400, 2, 7)), tree_(dataset_, metric_) {
    EXPECT_TRUE(tree_.Build().ok());
  }
  EuclideanMetric metric_;
  Dataset dataset_;
  MTree tree_;
};

TEST_F(EdgeCaseFixture, ZoomInToZeroRadiusSelectsEverything) {
  GreedyDisc(&tree_, 0.1, {});
  tree_.RecomputeClosestBlackDistances(0.1);
  DiscResult all = ZoomIn(&tree_, 0.0, /*greedy=*/false);
  // At r' = 0 only exact duplicates stay covered; this dataset has none.
  EXPECT_EQ(all.size(), dataset_.size());
  EXPECT_TRUE(VerifyDisCDiverse(dataset_, metric_, 0.0, all.solution).ok());
}

TEST_F(EdgeCaseFixture, ZoomOutToHugeRadiusSelectsOne) {
  GreedyDisc(&tree_, 0.05, {});
  DiscResult one = ZoomOut(&tree_, 3.0, ZoomOutVariant::kGreedyMostRed);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_TRUE(VerifyDisCDiverse(dataset_, metric_, 3.0, one.solution).ok());
}

TEST_F(EdgeCaseFixture, ZoomOutArbitraryToHugeRadiusSelectsOne) {
  GreedyDisc(&tree_, 0.05, {});
  DiscResult one = ZoomOut(&tree_, 3.0, ZoomOutVariant::kArbitrary);
  EXPECT_EQ(one.size(), 1u);
}

TEST_F(EdgeCaseFixture, LocalZoomCoveringWholeDatasetActsGlobally) {
  DiscResult base = GreedyDisc(&tree_, 0.1, {});
  tree_.RecomputeClosestBlackDistances(0.1);
  // A region radius spanning the whole unit square: local == global zoom-in.
  ObjectId center = base.solution.front();
  DiscResult local = LocalZoom(&tree_, center, 3.0, 0.05, /*greedy=*/true);
  EXPECT_TRUE(
      VerifyDisCDiverse(dataset_, metric_, 0.05, local.solution).ok());
  EXPECT_GT(local.size(), base.size());
}

TEST_F(EdgeCaseFixture, RepeatedZoomInIsIdempotentAtSameRadius) {
  GreedyDisc(&tree_, 0.08, {});
  tree_.RecomputeClosestBlackDistances(0.08);
  DiscResult once = ZoomIn(&tree_, 0.08, false);
  DiscResult twice = ZoomIn(&tree_, 0.08, false);
  EXPECT_EQ(once.size(), twice.size());
}

TEST_F(EdgeCaseFixture, NegativeRadiusQueriesReturnNothing) {
  std::vector<Neighbor> found;
  tree_.RangeQueryAround(0, -1.0, QueryFilter::kAll, false, &found);
  EXPECT_TRUE(found.empty());
}

TEST_F(EdgeCaseFixture, StatsDeltaNeverNegative) {
  DiscResult a = BasicDisc(&tree_, 0.05, true);
  EXPECT_GT(a.stats.node_accesses, 0u);
  EXPECT_GE(a.wall_ms, 0.0);
}

TEST(DegenerateDatasetTest, TwoPointsAllAlgorithms) {
  Dataset d(1);
  ASSERT_TRUE(d.Add(Point{0.0}).ok());
  ASSERT_TRUE(d.Add(Point{1.0}).ok());
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  // Radius below the gap: both selected. Above: one selected.
  EXPECT_EQ(BasicDisc(&tree, 0.5, true).size(), 2u);
  EXPECT_EQ(BasicDisc(&tree, 1.0, true).size(), 1u);
  EXPECT_EQ(GreedyDisc(&tree, 0.5, {}).size(), 2u);
  EXPECT_EQ(GreedyC(&tree, 1.0).size(), 1u);
  EXPECT_EQ(FastC(&tree, 1.0).size(), 1u);
}

TEST(DegenerateDatasetTest, BoundaryRadiusExactlyAtPairDistance) {
  // dist == r means "similar": the pair cannot both be selected.
  Dataset d(1);
  ASSERT_TRUE(d.Add(Point{0.0}).ok());
  ASSERT_TRUE(d.Add(Point{0.25}).ok());
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_EQ(GreedyDisc(&tree, 0.25, {}).size(), 1u);
  // Just below: independent, both needed.
  EXPECT_EQ(GreedyDisc(&tree, 0.2499999, {}).size(), 2u);
}

TEST(DegenerateDatasetTest, HighDimensionalTinyDataset) {
  Dataset d = MakeUniformDataset(5, 10, 3);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  DiscResult result = GreedyDisc(&tree, 0.5, {});
  EXPECT_TRUE(VerifyDisCDiverse(d, metric, 0.5, result.solution).ok());
}

TEST(InfinityAndPrecisionTest, VeryCloseButDistinctPoints) {
  Dataset d(1);
  ASSERT_TRUE(d.Add(Point{0.0}).ok());
  ASSERT_TRUE(d.Add(Point{1e-15}).ok());
  ASSERT_TRUE(d.Add(Point{0.5}).ok());
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_TRUE(tree.Validate().ok());
  DiscResult result = GreedyDisc(&tree, 1e-12, {});
  EXPECT_EQ(result.size(), 2u);  // the 1e-15 twin is covered
}

TEST(ErrorPathTest, GreedyOptionsWithWrongSizedCountsAreSafeInRelease) {
  // initial_counts is validated by assert in debug builds; here we only
  // document the contract (size must equal dataset size) by exercising the
  // correct-size path.
  Dataset d = MakeUniformDataset(50, 2, 9);
  EuclideanMetric metric;
  MTree tree(d, metric);
  std::vector<uint32_t> counts;
  ASSERT_TRUE(tree.BuildWithNeighborCounts(0.2, &counts).ok());
  ASSERT_EQ(counts.size(), d.size());
  GreedyDiscOptions options;
  options.initial_counts = &counts;
  DiscResult result = GreedyDisc(&tree, 0.2, options);
  EXPECT_TRUE(VerifyDisCDiverse(d, metric, 0.2, result.solution).ok());
}

TEST(ErrorPathTest, BuildWithNegativeRadiusRejected) {
  Dataset d = MakeUniformDataset(10, 2, 1);
  EuclideanMetric metric;
  MTree tree(d, metric);
  std::vector<uint32_t> counts;
  Status s = tree.BuildWithNeighborCounts(-0.1, &counts);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ErrorPathTest, ZoomWithoutPriorRunStillProducesValidSolution) {
  // Calling ZoomOut on a freshly reset tree (no blacks at all) must not
  // crash: pass 1 is empty and pass 2 covers everything from scratch.
  Dataset d = MakeUniformDataset(200, 2, 11);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  tree.ResetColors();
  // All objects are white; recolor step maps them to white again.
  for (ObjectId i = 0; i < d.size(); ++i) tree.SetColor(i, Color::kGrey);
  DiscResult result = ZoomOut(&tree, 0.3, ZoomOutVariant::kGreedyMostRed);
  EXPECT_TRUE(VerifyDisCDiverse(d, metric, 0.3, result.solution).ok());
}

}  // namespace
}  // namespace disc
