// End-to-end tests for the OPEN backend= protocol field and the server's
// neighbor-backend plumbing (ISSUE 8): graph-mode sessions over the wire,
// pool-key separation between exact and approximate engines, the operator
// default (ServerOptions::default_backend), and strict rejection of unknown
// backend values.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "engine/engine.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"

namespace disc {
namespace {

std::unique_ptr<DiscServer> StartServer(ServerOptions options = {}) {
  options.host = "127.0.0.1";
  options.port = 0;  // ephemeral; parallel ctest runs must not collide
  auto server = DiscServer::Start(std::move(options));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

LineClient ConnectTo(const DiscServer& server) {
  auto client = LineClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

std::string MustRoundtrip(LineClient& client, const std::string& line) {
  auto response = client.Roundtrip(line);
  EXPECT_TRUE(response.ok()) << line << ": "
                             << response.status().ToString();
  return response.ok() ? *response : "";
}

TEST(ServerBackendTest, BackendFieldOpensAGraphModeSession) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);

  std::string open = MustRoundtrip(
      client, "OPEN dataset=clustered n=400 dim=2 seed=9 backend=lsh");
  EXPECT_NE(open.find("\"ok\":true"), std::string::npos) << open;
  EXPECT_NE(open.find("\"backend\":\"lsh\""), std::string::npos) << open;

  std::string diversify = MustRoundtrip(client, "DIVERSIFY r=0.08 algo=basic");
  EXPECT_NE(diversify.find("\"ok\":true"), std::string::npos) << diversify;

  // Graph-mode sessions hold no tree color state: no zooming.
  std::string zoom = MustRoundtrip(client, "ZOOM to=0.05");
  EXPECT_NE(zoom.find("\"ok\":false"), std::string::npos) << zoom;
  EXPECT_NE(zoom.find("\"code\":\"FailedPrecondition\""), std::string::npos)
      << zoom;

  std::string stats = MustRoundtrip(client, "STATS");
  EXPECT_NE(stats.find("\"backend\":\"lsh\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"has_solution\":true"), std::string::npos) << stats;
  MustRoundtrip(client, "CLOSE");
}

TEST(ServerBackendTest, ExactSessionsKeepTheHistoricalWireFormat) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  std::string open =
      MustRoundtrip(client, "OPEN dataset=clustered n=300 dim=2 seed=5");
  EXPECT_NE(open.find("\"ok\":true"), std::string::npos) << open;
  // The backend field appears only off the default: every pre-backend
  // transcript stays byte-identical.
  EXPECT_EQ(open.find("backend"), std::string::npos) << open;
  std::string stats = MustRoundtrip(client, "STATS");
  EXPECT_EQ(stats.find("backend"), std::string::npos) << stats;
  MustRoundtrip(client, "CLOSE");
}

TEST(ServerBackendTest, GraphModeResponsesMatchADirectEngineByteForByte) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client,
                "OPEN dataset=clustered n=400 dim=2 seed=9 backend=sharded");

  EngineConfig config;
  config.dataset = DatasetSpec::Clustered(400, 2, 9);
  config.neighbor.kind = NeighborBackendKind::kSharded;
  auto engine = DiscEngine::Create(std::move(config));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  DiversifyRequest request;
  request.radius = 0.1;
  auto expected = (*engine)->Diversify(request);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  std::string wire = MustRoundtrip(client, "DIVERSIFY r=0.1");
  std::string prefix = SerializeDiversifyResponse(
      Verb::kDiversify, *expected, /*include_wall_ms=*/false);
  prefix.pop_back();  // drop the closing brace before the wall_ms field
  EXPECT_EQ(wire.rfind(prefix, 0), 0u) << wire;
  MustRoundtrip(client, "CLOSE");
}

TEST(ServerBackendTest, BackendIsPartOfThePoolingIdentity) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);

  // Same dataset, three backends: each first OPEN builds a fresh engine.
  MustRoundtrip(client, "OPEN dataset=clustered n=300 dim=2 seed=5");
  MustRoundtrip(client, "CLOSE");
  std::string lsh_open = MustRoundtrip(
      client, "OPEN dataset=clustered n=300 dim=2 seed=5 backend=lsh");
  EXPECT_NE(lsh_open.find("\"reused\":false"), std::string::npos) << lsh_open;
  MustRoundtrip(client, "DIVERSIFY r=0.08");
  MustRoundtrip(client, "CLOSE");

  // Reopening the same (dataset, backend) leases the pooled engine back,
  // and its memoized solution returns as an honest cache hit.
  std::string reopened = MustRoundtrip(
      client, "OPEN dataset=clustered n=300 dim=2 seed=5 backend=lsh");
  EXPECT_NE(reopened.find("\"reused\":true"), std::string::npos) << reopened;
  std::string warm = MustRoundtrip(client, "DIVERSIFY r=0.08");
  EXPECT_NE(warm.find("\"from_cache\":true"), std::string::npos) << warm;
  MustRoundtrip(client, "CLOSE");

  // The exact engine's memo was never shared with the approximate one.
  std::string exact = MustRoundtrip(
      client, "OPEN dataset=clustered n=300 dim=2 seed=5");
  EXPECT_NE(exact.find("\"reused\":true"), std::string::npos) << exact;
  std::string cold = MustRoundtrip(client, "DIVERSIFY r=0.08");
  EXPECT_NE(cold.find("\"from_cache\":false"), std::string::npos) << cold;
  MustRoundtrip(client, "CLOSE");
}

TEST(ServerBackendTest, OperatorDefaultAppliesOnlyWithoutTheField) {
  ServerOptions options;
  options.default_backend = NeighborBackendKind::kLsh;
  auto server = StartServer(std::move(options));
  LineClient client = ConnectTo(*server);

  std::string defaulted =
      MustRoundtrip(client, "OPEN dataset=clustered n=300 dim=2 seed=5");
  EXPECT_NE(defaulted.find("\"backend\":\"lsh\""), std::string::npos)
      << defaulted;
  MustRoundtrip(client, "CLOSE");

  // An explicit backend=exact overrides the operator default.
  std::string exact = MustRoundtrip(
      client, "OPEN dataset=clustered n=300 dim=2 seed=5 backend=exact");
  EXPECT_NE(exact.find("\"ok\":true"), std::string::npos) << exact;
  EXPECT_EQ(exact.find("backend"), std::string::npos) << exact;
  MustRoundtrip(client, "CLOSE");
}

TEST(ServerBackendTest, UnknownBackendValueIsAnErrorLine) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  std::string bad = MustRoundtrip(
      client, "OPEN dataset=clustered n=300 dim=2 seed=5 backend=bogus");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos) << bad;
  EXPECT_NE(bad.find("\"code\":\"InvalidArgument\""), std::string::npos)
      << bad;
  EXPECT_NE(bad.find("unknown neighbor backend"), std::string::npos) << bad;

  // The failed OPEN leaves the connection usable.
  std::string good =
      MustRoundtrip(client, "OPEN dataset=clustered n=200 dim=2 seed=5");
  EXPECT_NE(good.find("\"ok\":true"), std::string::npos) << good;
  MustRoundtrip(client, "CLOSE");
}

}  // namespace
}  // namespace disc
