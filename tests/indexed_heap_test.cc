#include "util/indexed_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/random.h"

namespace disc {
namespace {

TEST(IndexedMaxHeapTest, StartsEmpty) {
  IndexedMaxHeap heap(10);
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_FALSE(heap.contains(0));
}

TEST(IndexedMaxHeapTest, PushAndTop) {
  IndexedMaxHeap heap(10);
  heap.Push(3, 5);
  EXPECT_EQ(heap.Top(), 3u);
  EXPECT_EQ(heap.TopPriority(), 5);
  heap.Push(7, 9);
  EXPECT_EQ(heap.Top(), 7u);
}

TEST(IndexedMaxHeapTest, TiesBreakTowardSmallerId) {
  IndexedMaxHeap heap(10);
  heap.Push(5, 4);
  heap.Push(2, 4);
  heap.Push(8, 4);
  EXPECT_EQ(heap.PopTop(), 2u);
  EXPECT_EQ(heap.PopTop(), 5u);
  EXPECT_EQ(heap.PopTop(), 8u);
}

TEST(IndexedMaxHeapTest, PopTopRemoves) {
  IndexedMaxHeap heap(4);
  heap.Push(0, 1);
  heap.Push(1, 2);
  EXPECT_EQ(heap.PopTop(), 1u);
  EXPECT_FALSE(heap.contains(1));
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedMaxHeapTest, RemoveArbitrary) {
  IndexedMaxHeap heap(8);
  for (size_t i = 0; i < 8; ++i) heap.Push(i, static_cast<int64_t>(i));
  heap.Remove(4);
  EXPECT_FALSE(heap.contains(4));
  EXPECT_EQ(heap.size(), 7u);
  std::vector<size_t> order;
  while (!heap.empty()) order.push_back(heap.PopTop());
  EXPECT_EQ(order, (std::vector<size_t>{7, 6, 5, 3, 2, 1, 0}));
}

TEST(IndexedMaxHeapTest, UpdateRaisesPriority) {
  IndexedMaxHeap heap(4);
  heap.Push(0, 1);
  heap.Push(1, 2);
  heap.Update(0, 10);
  EXPECT_EQ(heap.Top(), 0u);
  EXPECT_EQ(heap.priority(0), 10);
}

TEST(IndexedMaxHeapTest, UpdateLowersPriority) {
  IndexedMaxHeap heap(4);
  heap.Push(0, 5);
  heap.Push(1, 3);
  heap.Update(0, 1);
  EXPECT_EQ(heap.Top(), 1u);
}

TEST(IndexedMaxHeapTest, AdjustDelta) {
  IndexedMaxHeap heap(4);
  heap.Push(2, 5);
  heap.Adjust(2, -3);
  EXPECT_EQ(heap.priority(2), 2);
  heap.Adjust(2, +10);
  EXPECT_EQ(heap.priority(2), 12);
}

TEST(IndexedMaxHeapTest, NegativePrioritiesWork) {
  IndexedMaxHeap heap(4);
  heap.Push(0, -5);
  heap.Push(1, -2);
  heap.Push(2, -9);
  EXPECT_EQ(heap.PopTop(), 1u);
  EXPECT_EQ(heap.PopTop(), 0u);
  EXPECT_EQ(heap.PopTop(), 2u);
}

TEST(IndexedMaxHeapTest, ClearEmptiesAndAllowsReuse) {
  IndexedMaxHeap heap(4);
  heap.Push(0, 1);
  heap.Push(1, 2);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.contains(0));
  heap.Push(0, 5);
  EXPECT_EQ(heap.Top(), 0u);
}

TEST(IndexedMaxHeapTest, PopAllSortedOrder) {
  IndexedMaxHeap heap(100);
  Random rng(42);
  std::vector<int64_t> priorities;
  for (size_t i = 0; i < 100; ++i) {
    int64_t p = static_cast<int64_t>(rng.UniformInt(50));
    heap.Push(i, p);
    priorities.push_back(p);
  }
  int64_t prev = INT64_MAX;
  size_t prev_id = 0;
  while (!heap.empty()) {
    int64_t p = heap.TopPriority();
    size_t id = heap.PopTop();
    if (p == prev) {
      EXPECT_GT(id, prev_id);  // ties ascend by id
    } else {
      EXPECT_LT(p, prev);
    }
    prev = p;
    prev_id = id;
  }
}

// Randomized differential test against a naive map-based priority queue.
TEST(IndexedMaxHeapTest, MatchesNaiveImplementationUnderRandomOps) {
  const size_t capacity = 64;
  IndexedMaxHeap heap(capacity);
  std::map<size_t, int64_t> naive;
  Random rng(99);

  auto naive_top = [&]() {
    size_t best_id = 0;
    int64_t best_p = INT64_MIN;
    for (const auto& [id, p] : naive) {
      if (p > best_p || (p == best_p && id < best_id)) {
        best_p = p;
        best_id = id;
      }
    }
    return std::make_pair(best_id, best_p);
  };

  for (int step = 0; step < 5000; ++step) {
    int op = static_cast<int>(rng.UniformInt(4));
    if (op == 0) {  // push
      size_t id = rng.UniformInt(capacity);
      if (!naive.count(id)) {
        int64_t p = static_cast<int64_t>(rng.UniformInt(100)) - 50;
        heap.Push(id, p);
        naive[id] = p;
      }
    } else if (op == 1 && !naive.empty()) {  // pop top
      auto [id, p] = naive_top();
      EXPECT_EQ(heap.Top(), id);
      EXPECT_EQ(heap.TopPriority(), p);
      EXPECT_EQ(heap.PopTop(), id);
      naive.erase(id);
    } else if (op == 2 && !naive.empty()) {  // update random
      size_t idx = rng.UniformInt(naive.size());
      auto it = naive.begin();
      std::advance(it, idx);
      int64_t p = static_cast<int64_t>(rng.UniformInt(100)) - 50;
      heap.Update(it->first, p);
      it->second = p;
    } else if (op == 3 && !naive.empty()) {  // remove random
      size_t idx = rng.UniformInt(naive.size());
      auto it = naive.begin();
      std::advance(it, idx);
      heap.Remove(it->first);
      naive.erase(it);
    }
    ASSERT_EQ(heap.size(), naive.size());
  }
}

}  // namespace
}  // namespace disc
