#include "data/dataset.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "metric/metric.h"
#include "util/csv.h"

namespace disc {
namespace {

TEST(DatasetTest, StartsEmpty) {
  Dataset d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.dim(), 0u);
}

TEST(DatasetTest, FirstAddFixesDimension) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{1.0, 2.0}).ok());
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DatasetTest, DimensionMismatchRejected) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{1.0, 2.0}).ok());
  Status s = d.Add(Point{1.0, 2.0, 3.0});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(d.size(), 1u);  // rejected point not stored
}

TEST(DatasetTest, ExplicitDimensionEnforcedFromStart) {
  Dataset d(3);
  EXPECT_FALSE(d.Add(Point{1.0}).ok());
  EXPECT_TRUE(d.Add(Point{1.0, 2.0, 3.0}).ok());
}

TEST(DatasetTest, LabelsDefaultEmpty) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.0}).ok());
  EXPECT_FALSE(d.has_labels());
  EXPECT_EQ(d.label(0), "");
  d.SetLabel(0, "origin");
  EXPECT_TRUE(d.has_labels());
  EXPECT_EQ(d.label(0), "origin");
}

TEST(DatasetTest, AttributeNames) {
  Dataset d;
  d.SetAttributeNames({"x", "y"});
  ASSERT_EQ(d.attribute_names().size(), 2u);
  EXPECT_EQ(d.attribute_names()[1], "y");
}

TEST(DatasetTest, NormalizeToUnitBox) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{10.0, -5.0}).ok());
  ASSERT_TRUE(d.Add(Point{20.0, 5.0}).ok());
  ASSERT_TRUE(d.Add(Point{15.0, 0.0}).ok());
  d.NormalizeToUnitBox();
  EXPECT_DOUBLE_EQ(d.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(d.point(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(d.point(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(d.point(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(d.point(1)[1], 1.0);
}

TEST(DatasetTest, NormalizeConstantDimensionMapsToZero) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{7.0, 1.0}).ok());
  ASSERT_TRUE(d.Add(Point{7.0, 3.0}).ok());
  d.NormalizeToUnitBox();
  EXPECT_DOUBLE_EQ(d.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(d.point(1)[0], 0.0);
}

TEST(DatasetTest, NormalizeEmptyIsNoop) {
  Dataset d;
  d.NormalizeToUnitBox();  // must not crash
  EXPECT_TRUE(d.empty());
}

TEST(DatasetTest, BoundingBox) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{1.0, 5.0}).ok());
  ASSERT_TRUE(d.Add(Point{-2.0, 7.0}).ok());
  std::vector<double> mins, maxs;
  d.BoundingBox(&mins, &maxs);
  EXPECT_DOUBLE_EQ(mins[0], -2.0);
  EXPECT_DOUBLE_EQ(maxs[0], 1.0);
  EXPECT_DOUBLE_EQ(mins[1], 5.0);
  EXPECT_DOUBLE_EQ(maxs[1], 7.0);
}

TEST(DatasetTest, DiameterEstimateOnLine) {
  Dataset d;
  for (double x : {0.0, 0.3, 0.9, 1.0}) ASSERT_TRUE(d.Add(Point{x}).ok());
  EuclideanMetric metric;
  EXPECT_DOUBLE_EQ(d.DiameterEstimate(metric), 1.0);
}

class DatasetCsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "disc_dataset_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(DatasetCsvTest, SaveAndLoadRoundTrip) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.25, 0.75}).ok());
  ASSERT_TRUE(d.Add(Point{0.5, 0.5}).ok());
  std::string path = Path("points.csv");
  ASSERT_TRUE(SavePointsCsv(path, d).ok());
  auto loaded = LoadPointsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_NEAR(loaded->point(0)[0], 0.25, 1e-6);
  EXPECT_NEAR(loaded->point(1)[1], 0.5, 1e-6);
}

TEST_F(DatasetCsvTest, SaveWithSelectionAddsMarkerColumn) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.0}).ok());
  ASSERT_TRUE(d.Add(Point{1.0}).ok());
  std::vector<ObjectId> selected = {1};
  std::string path = Path("marked.csv");
  ASSERT_TRUE(SavePointsCsv(path, d, &selected).ok());
  auto rows = ReadCsv(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].back(), "0");
  EXPECT_EQ((*rows)[1].back(), "1");
}

TEST_F(DatasetCsvTest, LoadNonNumericIsCorruption) {
  std::string path = Path("bad.csv");
  std::ofstream out(path);
  out << "1.0,hello\n";
  out.close();
  auto loaded = LoadPointsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(DatasetCsvTest, LoadRaggedRowsIsInvalidArgument) {
  std::string path = Path("ragged.csv");
  std::ofstream out(path);
  out << "1.0,2.0\n3.0\n";
  out.close();
  auto loaded = LoadPointsCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DatasetCsvTest, LoadMissingFileIsIOError) {
  auto loaded = LoadPointsCsv(Path("missing.csv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace disc
