#include "mtree/mtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "data/generators.h"
#include "metric/metric.h"
#include "util/random.h"

namespace disc {
namespace {

std::vector<ObjectId> SortedIds(std::vector<Neighbor> neighbors) {
  std::vector<ObjectId> ids;
  ids.reserve(neighbors.size());
  for (const Neighbor& nb : neighbors) ids.push_back(nb.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<ObjectId> BruteForceRange(const Dataset& d,
                                      const DistanceMetric& metric,
                                      const Point& center, double radius,
                                      ObjectId exclude = kInvalidObject) {
  std::vector<ObjectId> ids;
  for (ObjectId i = 0; i < d.size(); ++i) {
    if (i == exclude) continue;
    if (metric.Distance(center, d.point(i)) <= radius) ids.push_back(i);
  }
  return ids;
}

TEST(MTreeBuildTest, EmptyDatasetRejected) {
  Dataset d;
  EuclideanMetric metric;
  MTree tree(d, metric);
  Status s = tree.Build();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(MTreeBuildTest, TinyCapacityRejected) {
  Dataset d = MakeUniformDataset(10, 2, 1);
  EuclideanMetric metric;
  MTreeOptions options;
  options.node_capacity = 1;
  MTree tree(d, metric, options);
  Status s = tree.Build();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(MTreeBuildTest, DoubleBuildRejected) {
  Dataset d = MakeUniformDataset(10, 2, 1);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  Status s = tree.Build();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(MTreeBuildTest, SingleObjectTree) {
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.5, 0.5}).ok());
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_TRUE(tree.Validate().ok());
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.LeafOrder(), std::vector<ObjectId>{0});
}

TEST(MTreeBuildTest, StructurallyValidAfterManySplits) {
  Dataset d = MakeUniformDataset(2000, 2, 42);
  EuclideanMetric metric;
  MTreeOptions options;
  options.node_capacity = 8;  // force deep tree
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  EXPECT_GT(tree.height(), 2u);
  EXPECT_GT(tree.num_nodes(), 100u);
}

TEST(MTreeBuildTest, LeafOrderIsAPermutation) {
  Dataset d = MakeClusteredDataset(777, 2, 3);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  std::vector<ObjectId> order = tree.LeafOrder();
  ASSERT_EQ(order.size(), d.size());
  std::set<ObjectId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), d.size());
}

TEST(MTreeBuildTest, BuildCountsAccesses) {
  Dataset d = MakeUniformDataset(500, 2, 7);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_GT(tree.stats().node_accesses, 500u);  // at least one per insert
  tree.ResetStats();
  EXPECT_EQ(tree.stats().node_accesses, 0u);
}

class MTreePolicyTest : public ::testing::TestWithParam<SplitPolicy> {};

TEST_P(MTreePolicyTest, ValidUnderEveryPolicyAndCapacity) {
  EuclideanMetric metric;
  for (size_t capacity : {3u, 5u, 25u, 50u}) {
    Dataset d = MakeClusteredDataset(600, 2, 11);
    MTreeOptions options;
    options.node_capacity = capacity;
    options.split_policy = GetParam();
    MTree tree(d, metric, options);
    ASSERT_TRUE(tree.Build().ok());
    EXPECT_TRUE(tree.Validate().ok())
        << "capacity " << capacity << ": " << tree.Validate().ToString();
  }
}

TEST_P(MTreePolicyTest, RangeQueriesExactUnderEveryPolicy) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(400, 2, 13);
  MTreeOptions options;
  options.node_capacity = 10;
  options.split_policy = GetParam();
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());
  std::vector<Neighbor> found;
  for (ObjectId center : {0u, 17u, 100u, 399u}) {
    for (double radius : {0.01, 0.05, 0.2, 0.7}) {
      found.clear();
      tree.RangeQueryAround(center, radius, QueryFilter::kAll, false, &found);
      EXPECT_EQ(SortedIds(found),
                BruteForceRange(d, metric, d.point(center), radius, center));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MTreePolicyTest,
    ::testing::Values(SplitPolicy::MinOverlap(),
                      SplitPolicy::MaxDistanceSplit(),
                      SplitPolicy::BalancedSplit(), SplitPolicy::RandomSplit()),
    [](const ::testing::TestParamInfo<SplitPolicy>& param_info) -> std::string {
      switch (param_info.index) {
        case 0:
          return "MinOverlap";
        case 1:
          return "MaxDistance";
        case 2:
          return "Balanced";
        default:
          return "Random";
      }
    });

TEST(MTreeQueryTest, RangeQueryMatchesBruteForceManhattan) {
  ManhattanMetric metric;
  Dataset d = MakeUniformDataset(300, 2, 19);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  std::vector<Neighbor> found;
  for (double radius : {0.05, 0.15, 0.4}) {
    found.clear();
    tree.RangeQuery(d.point(5), radius, QueryFilter::kAll, false, &found);
    EXPECT_EQ(SortedIds(found),
              BruteForceRange(d, metric, d.point(5), radius));
  }
}

TEST(MTreeQueryTest, RangeQueryHammingCategorical) {
  HammingMetric metric;
  Dataset d;
  Random rng(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(d.Add(Point{static_cast<double>(rng.UniformInt(4)),
                            static_cast<double>(rng.UniformInt(4)),
                            static_cast<double>(rng.UniformInt(4)),
                            static_cast<double>(rng.UniformInt(4))})
                    .ok());
  }
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_TRUE(tree.Validate().ok());
  std::vector<Neighbor> found;
  for (double radius : {1.0, 2.0, 3.0}) {
    found.clear();
    tree.RangeQueryAround(42, radius, QueryFilter::kAll, false, &found);
    EXPECT_EQ(SortedIds(found),
              BruteForceRange(d, metric, d.point(42), radius, 42));
  }
}

TEST(MTreeQueryTest, ReportedDistancesAreCorrect) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(200, 2, 23);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  std::vector<Neighbor> found;
  tree.RangeQueryAround(7, 0.3, QueryFilter::kAll, false, &found);
  for (const Neighbor& nb : found) {
    EXPECT_NEAR(nb.dist, metric.Distance(d.point(7), d.point(nb.id)), 1e-12);
  }
}

TEST(MTreeQueryTest, WhiteFilterReturnsOnlyWhites) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(300, 2, 29);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  // Grey out every even object.
  for (ObjectId i = 0; i < d.size(); i += 2) tree.SetColor(i, Color::kGrey);
  std::vector<Neighbor> found;
  tree.RangeQueryAround(1, 0.4, QueryFilter::kWhiteOnly, false, &found);
  std::vector<ObjectId> expected;
  for (ObjectId i :
       BruteForceRange(d, metric, d.point(1), 0.4, 1)) {
    if (i % 2 == 1) expected.push_back(i);
  }
  EXPECT_EQ(SortedIds(found), expected);
}

TEST(MTreeQueryTest, PrunedWhiteQueryEqualsUnprunedWhiteQuery) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(500, 2, 31);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  Random rng(8);
  for (ObjectId i = 0; i < d.size(); ++i) {
    if (rng.Uniform01() < 0.7) tree.SetColor(i, Color::kGrey);
  }
  std::vector<Neighbor> pruned, unpruned;
  for (ObjectId center : {3u, 99u, 400u}) {
    pruned.clear();
    unpruned.clear();
    tree.RangeQueryAround(center, 0.15, QueryFilter::kWhiteOnly, true,
                          &pruned);
    tree.RangeQueryAround(center, 0.15, QueryFilter::kWhiteOnly, false,
                          &unpruned);
    EXPECT_EQ(SortedIds(pruned), SortedIds(unpruned));
  }
}

TEST(MTreeQueryTest, PruningReducesAccessesWhenMostlyGrey) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(2000, 2, 37);
  MTreeOptions options;
  options.node_capacity = 10;
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());
  for (ObjectId i = 0; i < d.size(); ++i) {
    if (i % 100 != 0) tree.SetColor(i, Color::kGrey);
  }
  tree.ResetStats();
  std::vector<Neighbor> found;
  tree.RangeQueryAround(0, 0.3, QueryFilter::kWhiteOnly, false, &found);
  uint64_t unpruned_cost = tree.stats().node_accesses;
  tree.ResetStats();
  found.clear();
  tree.RangeQueryAround(0, 0.3, QueryFilter::kWhiteOnly, true, &found);
  uint64_t pruned_cost = tree.stats().node_accesses;
  EXPECT_LT(pruned_cost, unpruned_cost);
}

TEST(MTreeQueryTest, BottomUpWithoutGreyStopIsExact) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(600, 2, 41);
  MTreeOptions options;
  options.node_capacity = 10;
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());
  std::vector<Neighbor> found;
  for (ObjectId center : {10u, 200u, 599u}) {
    for (double radius : {0.02, 0.1, 0.4}) {
      found.clear();
      tree.RangeQueryBottomUp(center, radius, QueryFilter::kAll, false, false,
                              &found);
      EXPECT_EQ(SortedIds(found),
                BruteForceRange(d, metric, d.point(center), radius, center));
    }
  }
}

TEST(MTreeQueryTest, BottomUpGreyStopReturnsSubsetOfWhites) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(600, 2, 41);
  MTreeOptions options;
  options.node_capacity = 10;
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());
  // Grey out most objects so some subtrees go fully grey.
  for (ObjectId i = 0; i < d.size(); ++i) {
    if (i % 7 != 0) tree.SetColor(i, Color::kGrey);
  }
  std::vector<Neighbor> fast, exact;
  for (ObjectId center : {3u, 111u, 598u}) {
    fast.clear();
    exact.clear();
    tree.RangeQueryBottomUp(center, 0.15, QueryFilter::kWhiteOnly, true, true,
                            &fast);
    tree.RangeQueryAround(center, 0.15, QueryFilter::kWhiteOnly, true, &exact);
    auto fast_ids = SortedIds(fast);
    auto exact_ids = SortedIds(exact);
    // Grey-stopping may miss whites but never invents results.
    for (ObjectId id : fast_ids) {
      EXPECT_TRUE(
          std::binary_search(exact_ids.begin(), exact_ids.end(), id));
    }
  }
}

TEST(MTreeColorTest, ResetColorsMakesEverythingWhite) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(100, 2, 43);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  tree.SetColor(5, Color::kBlack);
  tree.SetColor(6, Color::kGrey);
  tree.ResetColors();
  EXPECT_EQ(tree.white_count(), d.size());
  EXPECT_EQ(tree.color(5), Color::kWhite);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(MTreeColorTest, WhiteCountTracksTransitions) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(50, 2, 47);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_EQ(tree.white_count(), 50u);
  tree.SetColor(0, Color::kGrey);
  tree.SetColor(1, Color::kBlack);
  EXPECT_EQ(tree.white_count(), 48u);
  tree.SetColor(0, Color::kWhite);
  EXPECT_EQ(tree.white_count(), 49u);
  tree.SetColor(1, Color::kRed);  // black -> red: both non-white
  EXPECT_EQ(tree.white_count(), 49u);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(MTreeColorTest, ObjectsWithColor) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(10, 2, 53);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  tree.SetColor(3, Color::kBlack);
  tree.SetColor(7, Color::kBlack);
  tree.SetColor(5, Color::kGrey);
  EXPECT_EQ(tree.ObjectsWithColor(Color::kBlack),
            (std::vector<ObjectId>{3, 7}));
  EXPECT_EQ(tree.ObjectsWithColor(Color::kGrey), (std::vector<ObjectId>{5}));
  EXPECT_EQ(tree.ObjectsWithColor(Color::kWhite).size(), 7u);
}

TEST(MTreeColorTest, ScanLeavesSkipsGreyLeavesWithoutAccess) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(400, 2, 59);
  MTreeOptions options;
  options.node_capacity = 8;
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());
  for (ObjectId i = 0; i < d.size(); ++i) tree.SetColor(i, Color::kGrey);
  tree.ResetStats();
  size_t visited = 0;
  tree.ScanLeaves(true, [&](ObjectId) { ++visited; });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(tree.stats().node_accesses, 0u);
  tree.ResetStats();
  tree.ScanLeaves(false, [&](ObjectId) { ++visited; });
  EXPECT_EQ(visited, d.size());
  EXPECT_EQ(tree.stats().node_accesses, tree.num_leaves());
}

TEST(MTreeZoomSupportTest, ObserveBlackNeighborKeepsMinimum) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(10, 2, 61);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_TRUE(std::isinf(tree.closest_black_dist(0)));
  tree.ObserveBlackNeighbor(0, 0.5);
  tree.ObserveBlackNeighbor(0, 0.8);  // larger: ignored
  EXPECT_DOUBLE_EQ(tree.closest_black_dist(0), 0.5);
  tree.ObserveBlackNeighbor(0, 0.2);
  EXPECT_DOUBLE_EQ(tree.closest_black_dist(0), 0.2);
  tree.ClearClosestBlackDistance(0);
  EXPECT_TRUE(std::isinf(tree.closest_black_dist(0)));
}

TEST(MTreeZoomSupportTest, RecomputeClosestBlackDistancesIsExact) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(300, 2, 67);
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  std::vector<ObjectId> blacks = {10, 50, 100, 200};
  for (ObjectId b : blacks) tree.SetColor(b, Color::kBlack);
  const double radius = 0.25;
  tree.RecomputeClosestBlackDistances(radius);
  for (ObjectId i = 0; i < d.size(); ++i) {
    double expected = std::numeric_limits<double>::infinity();
    for (ObjectId b : blacks) {
      if (b == i) continue;
      double dist = metric.Distance(d.point(i), d.point(b));
      if (dist <= radius) expected = std::min(expected, dist);
    }
    EXPECT_DOUBLE_EQ(tree.closest_black_dist(i), expected) << "object " << i;
  }
}

TEST(MTreeStatsTest, FatFactorInUnitRangeAndPolicySensitive) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(1500, 2, 71);
  MTreeOptions low_overlap;
  low_overlap.node_capacity = 25;
  low_overlap.split_policy = SplitPolicy::MinOverlap();
  MTree tree_low(d, metric, low_overlap);
  ASSERT_TRUE(tree_low.Build().ok());

  MTreeOptions high_overlap = low_overlap;
  high_overlap.split_policy = SplitPolicy::RandomSplit();
  MTree tree_high(d, metric, high_overlap);
  ASSERT_TRUE(tree_high.Build().ok());

  double f_low = tree_low.FatFactor();
  double f_high = tree_high.FatFactor();
  EXPECT_GE(f_low, 0.0);
  EXPECT_LE(f_low, 1.0);
  EXPECT_GE(f_high, 0.0);
  EXPECT_LE(f_high, 1.0);
  // The paper (Figure 10): MinOverlap produces the lowest fat-factor,
  // random pivots the highest.
  EXPECT_LT(f_low, f_high);
}

TEST(MTreeStatsTest, CapacityAffectsNodeCount) {
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(1000, 2, 73);
  MTreeOptions small_nodes;
  small_nodes.node_capacity = 25;
  MTreeOptions large_nodes;
  large_nodes.node_capacity = 100;
  MTree tree_small(d, metric, small_nodes);
  MTree tree_large(d, metric, large_nodes);
  ASSERT_TRUE(tree_small.Build().ok());
  ASSERT_TRUE(tree_large.Build().ok());
  EXPECT_GT(tree_small.num_nodes(), tree_large.num_nodes());
}

TEST(MTreeCountsTest, BuildTimeNeighborCountsMatchPostBuild) {
  EuclideanMetric metric;
  const double radius = 0.1;
  Dataset d = MakeClusteredDataset(500, 2, 79);

  MTree tree_a(d, metric);
  std::vector<uint32_t> counts_build;
  ASSERT_TRUE(tree_a.BuildWithNeighborCounts(radius, &counts_build).ok());

  MTree tree_b(d, metric);
  ASSERT_TRUE(tree_b.Build().ok());
  std::vector<uint32_t> counts_post;
  tree_b.ComputeNeighborCountsPostBuild(radius, &counts_post);

  ASSERT_EQ(counts_build.size(), counts_post.size());
  for (size_t i = 0; i < counts_build.size(); ++i) {
    EXPECT_EQ(counts_build[i], counts_post[i]) << "object " << i;
  }
  // And both must equal the true neighborhood size.
  for (ObjectId i = 0; i < d.size(); ++i) {
    EXPECT_EQ(counts_post[i],
              BruteForceRange(d, metric, d.point(i), radius, i).size());
  }
}

TEST(MTreeCountsTest, BuildTimeCountsCheaperThanPostBuild) {
  EuclideanMetric metric;
  const double radius = 0.05;
  Dataset d = MakeClusteredDataset(2000, 2, 83);

  MTree tree_a(d, metric);
  std::vector<uint32_t> counts;
  ASSERT_TRUE(tree_a.BuildWithNeighborCounts(radius, &counts).ok());
  uint64_t cost_build_time = tree_a.stats().node_accesses;

  MTree tree_b(d, metric);
  ASSERT_TRUE(tree_b.Build().ok());
  tree_b.ComputeNeighborCountsPostBuild(radius, &counts);
  uint64_t cost_post = tree_b.stats().node_accesses;

  EXPECT_LT(cost_build_time, cost_post);
}

}  // namespace
}  // namespace disc
