// Unit tests for eval/neighbor_eval.h: the edge-level oracle comparison and
// the on-oracle solution judgment used by the backend property tests and
// bench/bench_neighbor_backends.cc.

#include "eval/neighbor_eval.h"

#include <gtest/gtest.h>

#include <vector>

namespace disc {
namespace {

// A 4-vertex path 0-1-2-3 as sorted adjacency lists.
AdjacencyLists PathGraph() {
  return AdjacencyLists{{1}, {0, 2}, {1, 3}, {2}};
}

TEST(NeighborEvalTest, IdenticalStructuresAgreePerfectly) {
  const AdjacencyLists oracle = PathGraph();
  AdjacencyComparison comparison = CompareAdjacency(oracle, oracle);
  EXPECT_EQ(comparison.oracle_edges, 3u);
  EXPECT_EQ(comparison.candidate_edges, 3u);
  EXPECT_EQ(comparison.missing_edges, 0u);
  EXPECT_EQ(comparison.false_edges, 0u);
  EXPECT_EQ(comparison.mismatches(), 0u);
  EXPECT_DOUBLE_EQ(comparison.recall, 1.0);
}

TEST(NeighborEvalTest, MissingEdgesLowerRecall) {
  const AdjacencyLists oracle = PathGraph();
  // The candidate lost edge 1-2 (in both directions, as a symmetric
  // approximate build would).
  const AdjacencyLists candidate{{1}, {0}, {3}, {2}};
  AdjacencyComparison comparison = CompareAdjacency(oracle, candidate);
  EXPECT_EQ(comparison.oracle_edges, 3u);
  EXPECT_EQ(comparison.candidate_edges, 2u);
  EXPECT_EQ(comparison.missing_edges, 1u);
  EXPECT_EQ(comparison.false_edges, 0u);
  EXPECT_NEAR(comparison.recall, 2.0 / 3.0, 1e-12);
}

TEST(NeighborEvalTest, FalseEdgesAreCountedSeparately) {
  const AdjacencyLists oracle = PathGraph();
  // The candidate invented edge 0-3.
  const AdjacencyLists candidate{{1, 3}, {0, 2}, {1, 3}, {0, 2}};
  AdjacencyComparison comparison = CompareAdjacency(oracle, candidate);
  EXPECT_EQ(comparison.missing_edges, 0u);
  EXPECT_EQ(comparison.false_edges, 1u);
  EXPECT_EQ(comparison.mismatches(), 1u);
  EXPECT_DOUBLE_EQ(comparison.recall, 1.0);
}

TEST(NeighborEvalTest, EdgelessOracleHasPerfectRecall) {
  const AdjacencyLists oracle{{}, {}, {}};
  AdjacencyComparison comparison = CompareAdjacency(oracle, oracle);
  EXPECT_EQ(comparison.oracle_edges, 0u);
  EXPECT_DOUBLE_EQ(comparison.recall, 1.0);
}

TEST(NeighborEvalTest, ValidDominatingIndependentSetScoresClean) {
  // On the path 0-1-2-3, {1, 3} dominates every vertex and its members are
  // not adjacent: a valid independent dominating set.
  SolutionGraphQuality quality =
      EvaluateSolutionOnOracle(PathGraph(), {1, 3});
  EXPECT_DOUBLE_EQ(quality.coverage, 1.0);
  EXPECT_DOUBLE_EQ(quality.independence_violation_rate, 0.0);
}

TEST(NeighborEvalTest, UncoveredObjectsLowerCoverage) {
  // {0} covers 0 and 1 but neither 2 nor 3.
  SolutionGraphQuality quality = EvaluateSolutionOnOracle(PathGraph(), {0});
  EXPECT_DOUBLE_EQ(quality.coverage, 0.5);
  EXPECT_DOUBLE_EQ(quality.independence_violation_rate, 0.0);
}

TEST(NeighborEvalTest, AdjacentMembersViolateIndependence) {
  // 1 and 2 are adjacent in the oracle: both members are in violation; the
  // pair still covers the whole path.
  SolutionGraphQuality quality =
      EvaluateSolutionOnOracle(PathGraph(), {1, 2});
  EXPECT_DOUBLE_EQ(quality.coverage, 1.0);
  EXPECT_DOUBLE_EQ(quality.independence_violation_rate, 1.0);
}

TEST(NeighborEvalTest, MixedSolutionReportsTheViolatingFraction) {
  // Star with center 0 on 5 vertices. Members {0, 1, 4}: each member has a
  // member neighbor (1 and 4 touch 0, 0 touches both), so all violate.
  const AdjacencyLists star{{1, 2, 3, 4}, {0}, {0}, {0}, {0}};
  SolutionGraphQuality all_violating =
      EvaluateSolutionOnOracle(star, {0, 1, 4});
  EXPECT_DOUBLE_EQ(all_violating.coverage, 1.0);
  EXPECT_DOUBLE_EQ(all_violating.independence_violation_rate, 1.0);

  // Members {1, 2}: adjacent only to the non-member 0 — independent, and
  // they cover {0, 1, 2} of 5.
  SolutionGraphQuality partial = EvaluateSolutionOnOracle(star, {1, 2});
  EXPECT_DOUBLE_EQ(partial.coverage, 0.6);
  EXPECT_DOUBLE_EQ(partial.independence_violation_rate, 0.0);
}

TEST(NeighborEvalTest, EmptyInputsAreWellDefined) {
  SolutionGraphQuality empty_everything = EvaluateSolutionOnOracle({}, {});
  EXPECT_DOUBLE_EQ(empty_everything.coverage, 1.0);
  EXPECT_DOUBLE_EQ(empty_everything.independence_violation_rate, 0.0);

  SolutionGraphQuality empty_solution =
      EvaluateSolutionOnOracle(PathGraph(), {});
  EXPECT_DOUBLE_EQ(empty_solution.coverage, 0.0);
  EXPECT_DOUBLE_EQ(empty_solution.independence_violation_rate, 0.0);
}

}  // namespace
}  // namespace disc
