// Randomized stress tests for the M-tree: many shapes of data (including
// pathological duplicates), every split policy, several capacities and
// metrics — always validating structural invariants and differential-testing
// range queries against brute force.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/disc_algorithms.h"
#include "data/generators.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "util/random.h"

namespace disc {
namespace {

std::vector<ObjectId> SortedIds(const std::vector<Neighbor>& neighbors) {
  std::vector<ObjectId> ids;
  ids.reserve(neighbors.size());
  for (const Neighbor& nb : neighbors) ids.push_back(nb.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// Random dataset with duplicates and collinear runs mixed in.
Dataset AdversarialDataset(size_t n, size_t dim, uint64_t seed) {
  Random rng(seed);
  Dataset d(dim);
  for (size_t i = 0; i < n; ++i) {
    double roll = rng.Uniform01();
    std::vector<double> coords(dim);
    if (roll < 0.15 && !d.empty()) {
      // Exact duplicate of an earlier point.
      ObjectId src = static_cast<ObjectId>(rng.UniformInt(d.size()));
      for (size_t k = 0; k < dim; ++k) coords[k] = d.point(src)[k];
    } else if (roll < 0.3) {
      // Collinear run along the first axis.
      for (size_t k = 0; k < dim; ++k) coords[k] = 0.5;
      coords[0] = rng.Uniform01();
    } else {
      for (size_t k = 0; k < dim; ++k) coords[k] = rng.Uniform01();
    }
    EXPECT_TRUE(d.Add(Point(std::move(coords))).ok());
  }
  return d;
}

struct StressParam {
  uint64_t seed;
  size_t n;
  size_t dim;
  size_t capacity;
  int policy;  // index into kPolicies
  MetricKind metric;
};

SplitPolicy PolicyByIndex(int index) {
  switch (index) {
    case 0:
      return SplitPolicy::MinOverlap();
    case 1:
      return SplitPolicy::MaxDistanceSplit();
    case 2:
      return SplitPolicy::BalancedSplit();
    default:
      return SplitPolicy::RandomSplit();
  }
}

class MTreeStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(MTreeStressTest, ValidStructureAndExactQueriesUnderChurn) {
  const StressParam& p = GetParam();
  Dataset dataset = AdversarialDataset(p.n, p.dim, p.seed);
  auto metric = MakeMetric(p.metric);
  MTreeOptions options;
  options.node_capacity = p.capacity;
  options.split_policy = PolicyByIndex(p.policy);
  MTree tree(dataset, *metric, options);
  ASSERT_TRUE(tree.Build().ok());
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();

  Random rng(p.seed ^ 0xabcdef);
  std::vector<Neighbor> found;
  for (int round = 0; round < 25; ++round) {
    // Random color churn, including red (zoom-out state).
    for (int flips = 0; flips < 40; ++flips) {
      ObjectId id = static_cast<ObjectId>(rng.UniformInt(dataset.size()));
      Color c = static_cast<Color>(rng.UniformInt(4));
      tree.SetColor(id, c);
    }
    ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();

    // Differential range query (all objects).
    ObjectId center = static_cast<ObjectId>(rng.UniformInt(dataset.size()));
    double radius = rng.Uniform(0.0, 0.6);
    found.clear();
    tree.RangeQueryAround(center, radius, QueryFilter::kAll, false, &found);
    std::vector<ObjectId> expected;
    for (ObjectId i = 0; i < dataset.size(); ++i) {
      if (i == center) continue;
      if (metric->Distance(dataset.point(center), dataset.point(i)) <=
          radius) {
        expected.push_back(i);
      }
    }
    ASSERT_EQ(SortedIds(found), expected)
        << "round " << round << " center " << center << " r " << radius;

    // Differential white-filtered pruned query.
    found.clear();
    tree.RangeQueryAround(center, radius, QueryFilter::kWhiteOnly, true,
                          &found);
    std::vector<ObjectId> expected_white;
    for (ObjectId id : expected) {
      if (tree.color(id) == Color::kWhite) expected_white.push_back(id);
    }
    ASSERT_EQ(SortedIds(found), expected_white);

    // Differential exact bottom-up query.
    found.clear();
    tree.RangeQueryBottomUp(center, radius, QueryFilter::kAll, false, false,
                            &found);
    ASSERT_EQ(SortedIds(found), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MTreeStressTest,
    ::testing::Values(
        StressParam{1, 3, 2, 3, 0, MetricKind::kEuclidean},
        StressParam{2, 17, 2, 3, 1, MetricKind::kEuclidean},
        StressParam{3, 64, 2, 4, 2, MetricKind::kManhattan},
        StressParam{4, 150, 3, 5, 3, MetricKind::kEuclidean},
        StressParam{5, 400, 2, 8, 0, MetricKind::kChebyshev},
        StressParam{6, 333, 5, 10, 1, MetricKind::kEuclidean},
        StressParam{7, 500, 2, 50, 2, MetricKind::kManhattan},
        StressParam{8, 222, 4, 6, 3, MetricKind::kEuclidean}),
    [](const ::testing::TestParamInfo<StressParam>& param_info) {
      const StressParam& p = param_info.param;
      return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
             "_d" + std::to_string(p.dim) + "_c" + std::to_string(p.capacity) +
             "_p" + std::to_string(p.policy);
    });

TEST(MTreeDuplicateTest, AllPointsIdentical) {
  // The most degenerate input: every point equal. Splits must terminate,
  // structure must validate, queries must behave.
  Dataset d(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(d.Add(Point{0.5, 0.5}).ok());
  }
  EuclideanMetric metric;
  MTreeOptions options;
  options.node_capacity = 4;
  MTree tree(d, metric, options);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  std::vector<Neighbor> found;
  tree.RangeQueryAround(0, 0.0, QueryFilter::kAll, false, &found);
  EXPECT_EQ(found.size(), 99u);  // everyone is a 0-distance neighbor
  tree.RangeQueryAround(0, 1.0, QueryFilter::kAll, false, &found);
}

TEST(MTreeDuplicateTest, DiscOnAllIdenticalSelectsOne) {
  Dataset d(2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(d.Add(Point{0.3, 0.7}).ok());
  }
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  EXPECT_EQ(BasicDisc(&tree, 0.0, true).size(), 1u);
  EXPECT_EQ(GreedyDisc(&tree, 0.1, {}).size(), 1u);
}

TEST(MTreeStressTest2, LeafOrderStableUnderColorChanges) {
  Dataset d = MakeClusteredDataset(300, 2, 5);
  EuclideanMetric metric;
  MTree tree(d, metric);
  ASSERT_TRUE(tree.Build().ok());
  auto before = tree.LeafOrder();
  for (ObjectId i = 0; i < d.size(); i += 3) tree.SetColor(i, Color::kBlack);
  EXPECT_EQ(tree.LeafOrder(), before);
}

}  // namespace
}  // namespace disc
