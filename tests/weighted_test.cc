#include "core/weighted.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "util/random.h"

namespace disc {
namespace {

std::vector<double> RandomWeights(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<double> w(n);
  for (double& v : w) v = rng.Uniform(0.1, 1.0);
  return w;
}

TEST(WeightedDiscTest, RejectsBadInputs) {
  Dataset d = MakeUniformDataset(50, 2, 1);
  EuclideanMetric metric;
  std::vector<double> short_weights(10, 1.0);
  EXPECT_FALSE(GreedyWeightedDisc(d, metric, 0.1, short_weights).ok());
  std::vector<double> negative(50, 1.0);
  negative[3] = -1.0;
  EXPECT_FALSE(GreedyWeightedDisc(d, metric, 0.1, negative).ok());
  std::vector<double> good(50, 1.0);
  EXPECT_FALSE(GreedyWeightedDisc(d, metric, -0.5, good).ok());
  EXPECT_TRUE(GreedyWeightedDisc(d, metric, 0.1, good).ok());
}

TEST(WeightedDiscTest, AlwaysProducesValidDisCSubset) {
  EuclideanMetric metric;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Dataset d = MakeClusteredDataset(300, 2, seed);
    auto weights = RandomWeights(d.size(), seed + 100);
    for (auto objective : {WeightedObjective::kMaxWeight,
                           WeightedObjective::kWeightTimesCoverage}) {
      auto result = GreedyWeightedDisc(d, metric, 0.08, weights, objective);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(VerifyDisCDiverse(d, metric, 0.08, *result).ok());
    }
  }
}

TEST(WeightedDiscTest, PrefersHeavyObjects) {
  // Two nearby objects; the heavier one must be selected.
  Dataset d;
  ASSERT_TRUE(d.Add(Point{0.50, 0.50}).ok());  // light
  ASSERT_TRUE(d.Add(Point{0.52, 0.50}).ok());  // heavy (similar to light)
  ASSERT_TRUE(d.Add(Point{0.90, 0.90}).ok());  // far away
  EuclideanMetric metric;
  std::vector<double> weights = {0.1, 5.0, 1.0};
  auto result = GreedyWeightedDisc(d, metric, 0.1, weights,
                                   WeightedObjective::kMaxWeight);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(std::find(result->begin(), result->end(), 1), result->end());
  EXPECT_EQ(std::find(result->begin(), result->end(), 0), result->end());
}

TEST(WeightedDiscTest, HigherTotalWeightThanUnweightedGreedyOnAverage) {
  EuclideanMetric metric;
  size_t wins = 0, trials = 5;
  for (uint64_t seed = 1; seed <= trials; ++seed) {
    Dataset d = MakeClusteredDataset(250, 2, seed + 40);
    auto weights = RandomWeights(d.size(), seed);
    auto weighted = GreedyWeightedDisc(d, metric, 0.1, weights,
                                       WeightedObjective::kMaxWeight);
    ASSERT_TRUE(weighted.ok());
    // Unweighted proxy: same algorithm with all-equal weights.
    std::vector<double> flat(d.size(), 1.0);
    auto unweighted = GreedyWeightedDisc(d, metric, 0.1, flat,
                                         WeightedObjective::kMaxWeight);
    ASSERT_TRUE(unweighted.ok());
    double ww = TotalWeight(*weighted, weights);
    double uw = TotalWeight(*unweighted, weights);
    // Normalize per object so set-size differences don't dominate.
    if (ww / weighted->size() >= uw / unweighted->size()) ++wins;
  }
  EXPECT_GE(wins, trials - 1);
}

TEST(RelevanceRadiiTest, MapsRelevanceToRadiusRange) {
  auto radii = RelevanceRadii({0.0, 0.5, 1.0}, 0.1, 0.5);
  ASSERT_TRUE(radii.ok());
  EXPECT_DOUBLE_EQ((*radii)[0], 0.5);  // irrelevant -> coarse
  EXPECT_DOUBLE_EQ((*radii)[1], 0.3);
  EXPECT_DOUBLE_EQ((*radii)[2], 0.1);  // relevant -> fine
}

TEST(RelevanceRadiiTest, Validation) {
  EXPECT_FALSE(RelevanceRadii({0.5}, 0.0, 0.5).ok());
  EXPECT_FALSE(RelevanceRadii({0.5}, 0.5, 0.1).ok());
  EXPECT_FALSE(RelevanceRadii({1.5}, 0.1, 0.5).ok());
}

TEST(MultiRadiusDiscTest, CoversEveryObjectAtItsRepresentativeRadius) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(300, 2, 71);
  Random rng(5);
  std::vector<double> relevance(d.size());
  for (double& v : relevance) v = rng.Uniform01();
  auto radii = RelevanceRadii(relevance, 0.05, 0.2);
  ASSERT_TRUE(radii.ok());
  auto result = MultiRadiusDisc(d, metric, *radii, relevance);
  ASSERT_TRUE(result.ok());
  // Coverage: every object within r(s) of some selected s.
  for (ObjectId i = 0; i < d.size(); ++i) {
    bool covered = false;
    for (ObjectId s : *result) {
      if (metric.Distance(d.point(i), d.point(s)) <= (*radii)[s]) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "object " << i;
  }
  // Dissimilarity under the min-radius rule.
  for (size_t a = 0; a < result->size(); ++a) {
    for (size_t b = a + 1; b < result->size(); ++b) {
      ObjectId s1 = (*result)[a], s2 = (*result)[b];
      double min_r = std::min((*radii)[s1], (*radii)[s2]);
      EXPECT_GT(metric.Distance(d.point(s1), d.point(s2)), min_r);
    }
  }
}

TEST(MultiRadiusDiscTest, RelevantAreasGetDenserRepresentation) {
  // Left half highly relevant (small radius), right half irrelevant: the
  // solution must place more representatives per object on the left.
  EuclideanMetric metric;
  Dataset d = MakeUniformDataset(400, 2, 73);
  std::vector<double> relevance(d.size());
  size_t left_count = 0;
  for (ObjectId i = 0; i < d.size(); ++i) {
    bool left = d.point(i)[0] < 0.5;
    relevance[i] = left ? 1.0 : 0.0;
    left_count += left;
  }
  auto radii = RelevanceRadii(relevance, 0.04, 0.25);
  ASSERT_TRUE(radii.ok());
  auto result = MultiRadiusDisc(d, metric, *radii, relevance);
  ASSERT_TRUE(result.ok());
  size_t left_reps = 0, right_reps = 0;
  for (ObjectId s : *result) {
    (d.point(s)[0] < 0.5 ? left_reps : right_reps)++;
  }
  EXPECT_GT(left_reps, 2 * right_reps);
}

TEST(MultiRadiusDiscTest, UniformRadiiReduceToClassicDisC) {
  EuclideanMetric metric;
  Dataset d = MakeClusteredDataset(200, 2, 79);
  std::vector<double> relevance(d.size(), 0.5);
  std::vector<double> radii(d.size(), 0.1);
  auto result = MultiRadiusDisc(d, metric, radii, relevance);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(VerifyDisCDiverse(d, metric, 0.1, *result).ok());
}

}  // namespace
}  // namespace disc
