#include "core/zoom.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/bounds.h"
#include "core/disc_algorithms.h"
#include "data/cities.h"
#include "data/generators.h"
#include "eval/quality.h"
#include "graph/properties.h"
#include "metric/metric.h"

namespace disc {
namespace {

bool IsSubset(const std::vector<ObjectId>& small,
              const std::vector<ObjectId>& big) {
  std::set<ObjectId> big_set(big.begin(), big.end());
  for (ObjectId id : small) {
    if (!big_set.count(id)) return false;
  }
  return true;
}

// Builds a tree, runs pruned Greedy-DisC at `r_old`, and performs the §5.2
// post-processing so the zooming rule has exact closest-black distances.
struct ZoomFixture {
  ZoomFixture(Dataset ds, double r_old_in)
      : dataset(std::move(ds)), r_old(r_old_in), tree(dataset, metric) {
    EXPECT_TRUE(tree.Build().ok());
    old_result = GreedyDisc(&tree, r_old, {});
    tree.RecomputeClosestBlackDistances(r_old);
  }

  Dataset dataset;
  EuclideanMetric metric;
  double r_old;
  MTree tree;
  DiscResult old_result;
};

class ZoomInTest : public ::testing::TestWithParam<bool> {};

TEST_P(ZoomInTest, ProducesValidSupersetSolution) {
  const bool greedy = GetParam();
  for (uint64_t seed : {1u, 2u}) {
    ZoomFixture fx(MakeClusteredDataset(700, 2, seed), 0.1);
    DiscResult zoomed = ZoomIn(&fx.tree, 0.05, greedy);
    // Lemma 5(i): the old solution is kept.
    EXPECT_TRUE(IsSubset(fx.old_result.solution, zoomed.solution));
    // The result is a valid solution at the new radius.
    Status valid =
        VerifyDisCDiverse(fx.dataset, fx.metric, 0.05, zoomed.solution);
    EXPECT_TRUE(valid.ok()) << valid.ToString();
  }
}

TEST_P(ZoomInTest, GrowthWithinTheoreticalBound) {
  const bool greedy = GetParam();
  ZoomFixture fx(MakeClusteredDataset(800, 2, 3), 0.08);
  const double r_new = 0.04;
  DiscResult zoomed = ZoomIn(&fx.tree, r_new, greedy);
  // Lemma 5(ii) with the Euclidean NI bound of Lemma 4.
  auto bound = ZoomInGrowthBound(MetricKind::kEuclidean, r_new, fx.r_old);
  ASSERT_TRUE(bound.ok());
  EXPECT_LE(zoomed.size(),
            static_cast<size_t>(*bound * fx.old_result.size()) + 1);
}

TEST_P(ZoomInTest, CheaperThanRecomputingFromScratch) {
  const bool greedy = GetParam();
  ZoomFixture fx(MakeClusteredDataset(2500, 2, 5), 0.08);
  DiscResult zoomed = ZoomIn(&fx.tree, 0.04, greedy);

  MTree fresh(fx.dataset, fx.metric);
  ASSERT_TRUE(fresh.Build().ok());
  fresh.ResetStats();
  DiscResult scratch = GreedyDisc(&fresh, 0.04, {});
  EXPECT_LT(zoomed.stats.node_accesses, scratch.stats.node_accesses);
}

TEST_P(ZoomInTest, ClosterToOldSolutionThanScratch) {
  const bool greedy = GetParam();
  ZoomFixture fx(MakeClusteredDataset(1200, 2, 7), 0.09);
  DiscResult zoomed = ZoomIn(&fx.tree, 0.045, greedy);

  MTree fresh(fx.dataset, fx.metric);
  ASSERT_TRUE(fresh.Build().ok());
  DiscResult scratch = GreedyDisc(&fresh, 0.045, {});

  double zoom_dist =
      JaccardDistance(fx.old_result.solution, zoomed.solution);
  double scratch_dist =
      JaccardDistance(fx.old_result.solution, scratch.solution);
  EXPECT_LT(zoom_dist, scratch_dist);
}

INSTANTIATE_TEST_SUITE_P(Variants, ZoomInTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "Greedy" : "Arbitrary";
                         });

class ZoomOutTest : public ::testing::TestWithParam<ZoomOutVariant> {};

TEST_P(ZoomOutTest, ProducesValidSolutionAtLargerRadius) {
  for (uint64_t seed : {11u, 12u}) {
    ZoomFixture fx(MakeClusteredDataset(700, 2, seed), 0.04);
    const double r_new = 0.09;
    DiscResult zoomed = ZoomOut(&fx.tree, r_new, GetParam());
    Status valid =
        VerifyDisCDiverse(fx.dataset, fx.metric, r_new, zoomed.solution);
    EXPECT_TRUE(valid.ok())
        << ZoomOutVariantToString(GetParam()) << ": " << valid.ToString();
    // Zooming out must shrink the solution on these workloads.
    EXPECT_LT(zoomed.size(), fx.old_result.size());
  }
}

TEST_P(ZoomOutTest, KeepsPartOfTheOldSolution) {
  ZoomFixture fx(MakeClusteredDataset(900, 2, 13), 0.05);
  DiscResult zoomed = ZoomOut(&fx.tree, 0.1, GetParam());
  // At least one previously shown object survives in every variant (the
  // first confirmed red always stays).
  std::set<ObjectId> old_set(fx.old_result.solution.begin(),
                             fx.old_result.solution.end());
  size_t kept = 0;
  for (ObjectId id : zoomed.solution) kept += old_set.count(id);
  EXPECT_GT(kept, 0u);
}

TEST_P(ZoomOutTest, CloserToOldSolutionThanScratch) {
  ZoomFixture fx(MakeClusteredDataset(1200, 2, 17), 0.05);
  const double r_new = 0.1;
  DiscResult zoomed = ZoomOut(&fx.tree, r_new, GetParam());

  MTree fresh(fx.dataset, fx.metric);
  ASSERT_TRUE(fresh.Build().ok());
  DiscResult scratch = GreedyDisc(&fresh, r_new, {});

  EXPECT_LE(JaccardDistance(fx.old_result.solution, zoomed.solution),
            JaccardDistance(fx.old_result.solution, scratch.solution));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ZoomOutTest,
    ::testing::Values(ZoomOutVariant::kArbitrary,
                      ZoomOutVariant::kGreedyMostRed,
                      ZoomOutVariant::kGreedyFewestRed,
                      ZoomOutVariant::kGreedyMostWhite),
    [](const ::testing::TestParamInfo<ZoomOutVariant>& param_info) {
      switch (param_info.param) {
        case ZoomOutVariant::kArbitrary:
          return "Arbitrary";
        case ZoomOutVariant::kGreedyMostRed:
          return "GreedyA";
        case ZoomOutVariant::kGreedyFewestRed:
          return "GreedyB";
        case ZoomOutVariant::kGreedyMostWhite:
          return "GreedyC";
      }
      return "Unknown";
    });

TEST(ZoomOutBehaviorTest, FewestRedKeepsMoreOfTheOldSolution) {
  // Variant (b) explicitly maximizes S^r ∩ S^r'.
  ZoomFixture fx_a(MakeClusteredDataset(1500, 2, 19), 0.04);
  ZoomFixture fx_b(MakeClusteredDataset(1500, 2, 19), 0.04);
  const double r_new = 0.08;
  auto kept = [](const DiscResult& old_result, const DiscResult& zoomed) {
    std::set<ObjectId> old_set(old_result.solution.begin(),
                               old_result.solution.end());
    size_t count = 0;
    for (ObjectId id : zoomed.solution) count += old_set.count(id);
    return count;
  };
  DiscResult za = ZoomOut(&fx_a.tree, r_new, ZoomOutVariant::kGreedyMostRed);
  DiscResult zb = ZoomOut(&fx_b.tree, r_new, ZoomOutVariant::kGreedyFewestRed);
  EXPECT_GE(kept(fx_b.old_result, zb), kept(fx_a.old_result, za));
}

TEST(ZoomChainTest, InThenOutThenInRemainsValid) {
  ZoomFixture fx(MakeClusteredDataset(800, 2, 23), 0.08);
  DiscResult in1 = ZoomIn(&fx.tree, 0.04, true);
  ASSERT_TRUE(
      VerifyDisCDiverse(fx.dataset, fx.metric, 0.04, in1.solution).ok());

  DiscResult out = ZoomOut(&fx.tree, 0.1, ZoomOutVariant::kGreedyMostRed);
  ASSERT_TRUE(
      VerifyDisCDiverse(fx.dataset, fx.metric, 0.1, out.solution).ok());

  fx.tree.RecomputeClosestBlackDistances(0.1);
  DiscResult in2 = ZoomIn(&fx.tree, 0.06, true);
  EXPECT_TRUE(
      VerifyDisCDiverse(fx.dataset, fx.metric, 0.06, in2.solution).ok());
}

// The observe_all selection queries widen what a greedy zoom-in *observes*
// but never what it *selects*: the chain with observe_all (which skips the
// RecomputeClosestBlackDistances between zoom-ins) must reproduce the
// recompute chain's solutions exactly, and must leave every object's
// closest-black distance exact (equal to what a full recompute produces).
// This is the correctness side of the bench_parallel_select.cc ZoomChain
// A/B rows; the engine adopts observe_all based on those rows.
TEST(ZoomChainTest, ObserveAllChainMatchesRecomputeChain) {
  const Dataset dataset = MakeClusteredDataset(800, 2, 23);

  ZoomFixture recompute(dataset, 0.08);
  DiscResult a1 = ZoomIn(&recompute.tree, 0.04, /*greedy=*/true);
  recompute.tree.RecomputeClosestBlackDistances(0.04);
  DiscResult a2 = ZoomIn(&recompute.tree, 0.02, /*greedy=*/true);

  ZoomFixture observe(dataset, 0.08);
  DiscResult b1 =
      ZoomIn(&observe.tree, 0.04, /*greedy=*/true, /*observe_all=*/true);
  // No recompute: the observe_all pass left the distances exact.
  DiscResult b2 =
      ZoomIn(&observe.tree, 0.02, /*greedy=*/true, /*observe_all=*/true);

  EXPECT_EQ(a1.solution, b1.solution);
  EXPECT_EQ(a2.solution, b2.solution);
  ASSERT_TRUE(
      VerifyDisCDiverse(dataset, observe.metric, 0.02, b2.solution).ok());

  // Distances after the observe_all chain are exact: recomputing from
  // scratch at the final radius changes nothing.
  std::vector<double> before;
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    before.push_back(observe.tree.closest_black_dist(id));
  }
  observe.tree.RecomputeClosestBlackDistances(0.02);
  for (ObjectId id = 0; id < dataset.size(); ++id) {
    // Exact within the final radius; beyond it both values mean "not
    // covered" and the recompute may not see them at all.
    if (before[id] <= 0.02 ||
        observe.tree.closest_black_dist(id) <= 0.02) {
      EXPECT_EQ(before[id], observe.tree.closest_black_dist(id))
          << "id=" << id;
    }
  }
}

TEST(LocalZoomTest, LocalZoomInRefinesOnlyTheRegion) {
  ZoomFixture fx(MakeCitiesDataset(), 0.05);
  ObjectId center = fx.old_result.solution.front();
  DiscResult local = LocalZoom(&fx.tree, center, 0.05, 0.02, true);

  // The solution changes only inside the region.
  std::set<ObjectId> region;
  for (ObjectId i = 0; i < fx.dataset.size(); ++i) {
    if (fx.metric.Distance(fx.dataset.point(i), fx.dataset.point(center)) <=
        0.05) {
      region.insert(i);
    }
  }
  std::set<ObjectId> old_set(fx.old_result.solution.begin(),
                             fx.old_result.solution.end());
  std::set<ObjectId> new_set(local.solution.begin(), local.solution.end());
  for (ObjectId id : old_set) {
    if (!region.count(id)) {
      EXPECT_TRUE(new_set.count(id)) << id;
    }
  }
  for (ObjectId id : new_set) {
    if (!region.count(id)) {
      EXPECT_TRUE(old_set.count(id)) << id;
    }
  }
  // More representatives inside the region than before (finer radius).
  size_t old_in_region = 0, new_in_region = 0;
  for (ObjectId id : old_set) old_in_region += region.count(id);
  for (ObjectId id : new_set) new_in_region += region.count(id);
  EXPECT_GE(new_in_region, old_in_region);
  // Region objects are covered at the new radius. The representative may be
  // a region member or a pre-existing one just outside the boundary (its
  // coverage ball reaches in); both count.
  for (ObjectId id : region) {
    bool covered = false;
    for (ObjectId s : new_set) {
      if (fx.metric.Distance(fx.dataset.point(id), fx.dataset.point(s)) <=
          0.02) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "region object " << id << " uncovered";
  }
}

TEST(LocalZoomTest, LocalZoomOutCoarsensOnlyTheRegion) {
  ZoomFixture fx(MakeClusteredDataset(1000, 2, 29), 0.04);
  ObjectId center = fx.old_result.solution.front();
  DiscResult local = LocalZoom(&fx.tree, center, 0.04, 0.08, true);

  std::set<ObjectId> old_set(fx.old_result.solution.begin(),
                             fx.old_result.solution.end());
  std::set<ObjectId> new_set(local.solution.begin(), local.solution.end());
  std::set<ObjectId> region;
  for (ObjectId i = 0; i < fx.dataset.size(); ++i) {
    if (fx.metric.Distance(fx.dataset.point(i), fx.dataset.point(center)) <=
        0.04) {
      region.insert(i);
    }
  }
  for (ObjectId id : new_set) {
    if (!region.count(id)) {
      EXPECT_TRUE(old_set.count(id));
    }
  }
  // Inside the region, representatives at the coarser radius are fewer or
  // equal.
  size_t old_in = 0, new_in = 0;
  for (ObjectId id : old_set) old_in += region.count(id);
  for (ObjectId id : new_set) new_in += region.count(id);
  EXPECT_LE(new_in, old_in);
}

TEST(ZoomEdgeCaseTest, ZoomInWithEqualRadiusKeepsSolution) {
  ZoomFixture fx(MakeClusteredDataset(500, 2, 31), 0.06);
  DiscResult same = ZoomIn(&fx.tree, 0.06, false);
  std::vector<ObjectId> sorted_old = fx.old_result.solution;
  std::vector<ObjectId> sorted_new = same.solution;
  std::sort(sorted_old.begin(), sorted_old.end());
  std::sort(sorted_new.begin(), sorted_new.end());
  EXPECT_EQ(sorted_old, sorted_new);
}

}  // namespace
}  // namespace disc
