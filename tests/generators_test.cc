#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace disc {
namespace {

TEST(UniformGeneratorTest, SizeAndDimension) {
  Dataset d = MakeUniformDataset(500, 3, 1);
  EXPECT_EQ(d.size(), 500u);
  EXPECT_EQ(d.dim(), 3u);
}

TEST(UniformGeneratorTest, CoordinatesInUnitBox) {
  Dataset d = MakeUniformDataset(1000, 4, 2);
  for (ObjectId i = 0; i < d.size(); ++i) {
    for (size_t k = 0; k < d.dim(); ++k) {
      EXPECT_GE(d.point(i)[k], 0.0);
      EXPECT_LT(d.point(i)[k], 1.0);
    }
  }
}

TEST(UniformGeneratorTest, Deterministic) {
  Dataset a = MakeUniformDataset(100, 2, 7);
  Dataset b = MakeUniformDataset(100, 2, 7);
  for (ObjectId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.point(i), b.point(i));
  }
}

TEST(UniformGeneratorTest, DifferentSeedsDiffer) {
  Dataset a = MakeUniformDataset(100, 2, 7);
  Dataset b = MakeUniformDataset(100, 2, 8);
  size_t equal = 0;
  for (ObjectId i = 0; i < a.size(); ++i) {
    if (a.point(i) == b.point(i)) ++equal;
  }
  EXPECT_LT(equal, 5u);
}

TEST(UniformGeneratorTest, MeanNearCenter) {
  Dataset d = MakeUniformDataset(20000, 2, 3);
  double sx = 0, sy = 0;
  for (ObjectId i = 0; i < d.size(); ++i) {
    sx += d.point(i)[0];
    sy += d.point(i)[1];
  }
  EXPECT_NEAR(sx / d.size(), 0.5, 0.02);
  EXPECT_NEAR(sy / d.size(), 0.5, 0.02);
}

TEST(UniformGeneratorTest, EmptyDataset) {
  Dataset d = MakeUniformDataset(0, 2, 1);
  EXPECT_TRUE(d.empty());
}

TEST(ClusteredGeneratorTest, SizeAndBox) {
  Dataset d = MakeClusteredDataset(2000, 2, 11);
  EXPECT_EQ(d.size(), 2000u);
  for (ObjectId i = 0; i < d.size(); ++i) {
    for (size_t k = 0; k < d.dim(); ++k) {
      EXPECT_GE(d.point(i)[k], 0.0);
      EXPECT_LE(d.point(i)[k], 1.0);
    }
  }
}

TEST(ClusteredGeneratorTest, Deterministic) {
  Dataset a = MakeClusteredDataset(300, 3, 5);
  Dataset b = MakeClusteredDataset(300, 3, 5);
  for (ObjectId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.point(i), b.point(i));
  }
}

TEST(ClusteredGeneratorTest, MoreConcentratedThanUniform) {
  // Clustered data should have a much smaller mean nearest-neighbor
  // distance than uniform data of the same cardinality.
  const size_t n = 1500;
  Dataset clustered = MakeClusteredDataset(n, 2, 17);
  Dataset uniform = MakeUniformDataset(n, 2, 17);
  auto mean_nn = [](const Dataset& d) {
    double total = 0;
    for (ObjectId i = 0; i < d.size(); ++i) {
      double best = 1e9;
      for (ObjectId j = 0; j < d.size(); ++j) {
        if (i == j) continue;
        double dx = d.point(i)[0] - d.point(j)[0];
        double dy = d.point(i)[1] - d.point(j)[1];
        best = std::min(best, std::sqrt(dx * dx + dy * dy));
      }
      total += best;
    }
    return total / d.size();
  };
  EXPECT_LT(mean_nn(clustered), 0.8 * mean_nn(uniform));
}

TEST(ClusteredGeneratorTest, HonorsClusterCountOption) {
  ClusteredOptions options;
  options.num_clusters = 2;
  options.spread = 0.01;
  options.noise_fraction = 0.0;
  Dataset d = MakeClusteredDataset(400, 2, 23, options);
  EXPECT_EQ(d.size(), 400u);
  // With two tight clusters the per-dimension variance splits points into
  // two groups; verify the bounding box is NOT tiny (two distinct centers)
  // while the nearest-neighbor distances are (tight clusters).
  std::vector<double> mins, maxs;
  d.BoundingBox(&mins, &maxs);
  double extent = std::max(maxs[0] - mins[0], maxs[1] - mins[1]);
  EXPECT_GT(extent, 0.05);
}

TEST(ClusteredGeneratorTest, HighDimensional) {
  Dataset d = MakeClusteredDataset(500, 10, 29);
  EXPECT_EQ(d.dim(), 10u);
  EXPECT_EQ(d.size(), 500u);
}

TEST(GridGeneratorTest, CountAndSpacing) {
  Dataset d = MakeGridDataset(4);
  ASSERT_EQ(d.size(), 16u);
  EXPECT_DOUBLE_EQ(d.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(d.point(1)[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(d.point(15)[0], 1.0);
  EXPECT_DOUBLE_EQ(d.point(15)[1], 1.0);
}

TEST(GridGeneratorTest, DegenerateSides) {
  EXPECT_TRUE(MakeGridDataset(0).empty());
  Dataset single = MakeGridDataset(1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single.point(0)[0], 0.0);
}

}  // namespace
}  // namespace disc
