// Tests for the DiscEngine façade: request routing, session-state
// tracking, zoom preconditions (previously undefined behavior at the core
// layer), the solution cache, and the §8 extension endpoints.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "graph/properties.h"
#include "util/status.h"

namespace disc {
namespace {

std::unique_ptr<DiscEngine> MakeEngine(size_t n = 300, uint64_t seed = 7,
                                       BuildStrategy strategy =
                                           BuildStrategy::kInsertAtATime) {
  EngineConfig config;
  config.dataset = DatasetSpec::Clustered(n, 2, seed);
  config.tree.build.strategy = strategy;
  auto engine = DiscEngine::Create(std::move(config));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

bool IsSubset(const std::vector<ObjectId>& small,
              const std::vector<ObjectId>& big) {
  std::set<ObjectId> big_set(big.begin(), big.end());
  for (ObjectId id : small) {
    if (!big_set.count(id)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

TEST(EngineCreateTest, BuildsFromGeneratorSpecs) {
  for (auto source : {DatasetSpec::Source::kUniform,
                      DatasetSpec::Source::kClustered}) {
    EngineConfig config;
    config.dataset = source == DatasetSpec::Source::kUniform
                         ? DatasetSpec::Uniform(100, 2, 1)
                         : DatasetSpec::Clustered(100, 2, 1);
    auto engine = DiscEngine::Create(std::move(config));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ((*engine)->dataset().size(), 100u);
    EXPECT_EQ((*engine)->Snapshot().dataset_size, 100u);
  }
}

TEST(EngineCreateTest, BuildsFromProvidedDataset) {
  EngineConfig config;
  config.dataset = DatasetSpec::Provided(MakeGridDataset(10));
  auto engine = DiscEngine::Create(std::move(config));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->dataset().size(), 100u);
}

TEST(EngineCreateTest, EmptyProvidedDatasetFails) {
  EngineConfig config;
  config.dataset = DatasetSpec::Provided(Dataset(2));
  auto engine = DiscEngine::Create(std::move(config));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineCreateTest, MissingCsvPropagatesLoaderError) {
  EngineConfig config;
  config.dataset = DatasetSpec::Csv("/nonexistent/points.csv");
  auto engine = DiscEngine::Create(std::move(config));
  EXPECT_FALSE(engine.ok());
}

TEST(EngineCreateTest, ParseDatasetSpecCoversCliNames) {
  auto clustered = ParseDatasetSpec("clustered", 50, 3, 9);
  ASSERT_TRUE(clustered.ok());
  EXPECT_EQ(clustered->source, DatasetSpec::Source::kClustered);
  EXPECT_EQ(clustered->n, 50u);
  EXPECT_EQ(clustered->dim, 3u);

  auto csv = ParseDatasetSpec("csv:/tmp/p.csv", 0, 0, 0);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->source, DatasetSpec::Source::kCsv);
  EXPECT_EQ(csv->csv_path, "/tmp/p.csv");

  auto bad = ParseDatasetSpec("no-such-dataset", 0, 0, 0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Diversify
// ---------------------------------------------------------------------------

TEST(EngineDiversifyTest, EveryAlgorithmProducesVerifiedSolution) {
  auto engine = MakeEngine();
  for (Algorithm algorithm :
       {Algorithm::kBasic, Algorithm::kGreedy, Algorithm::kGreedyWhite,
        Algorithm::kLazyGrey, Algorithm::kLazyWhite, Algorithm::kGreedyC,
        Algorithm::kFastC}) {
    DiversifyRequest request;
    request.algorithm = algorithm;
    request.radius = 0.1;
    request.compute_quality = true;
    auto response = engine->Diversify(request);
    ASSERT_TRUE(response.ok())
        << AlgorithmToString(algorithm) << ": " << response.status().ToString();
    EXPECT_GT(response->size(), 0u) << AlgorithmToString(algorithm);
    ASSERT_TRUE(response->quality.has_value());
    EXPECT_TRUE(response->quality->verification.ok())
        << AlgorithmToString(algorithm) << ": "
        << response->quality->verification.ToString();
    EXPECT_GT(response->stats.node_accesses, 0u);
    EXPECT_DOUBLE_EQ(response->quality->coverage, 1.0);
  }
}

TEST(EngineDiversifyTest, NegativeOrNonFiniteRadiusIsInvalid) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = -0.5;
  EXPECT_EQ(engine->Diversify(request).status().code(),
            StatusCode::kInvalidArgument);
  request.radius = std::nan("");
  EXPECT_EQ(engine->Diversify(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineDiversifyTest, MatchesDirectAlgorithmRunOnBothBuildStrategies) {
  // The engine must not change what gets computed, only who owns the state.
  auto insert_engine = MakeEngine(300, 7, BuildStrategy::kInsertAtATime);
  auto bulk_engine = MakeEngine(300, 7, BuildStrategy::kBulkLoad);
  DiversifyRequest request;
  request.radius = 0.1;
  auto a = insert_engine->Diversify(request);
  auto b = bulk_engine->Diversify(request);
  ASSERT_TRUE(a.ok() && b.ok());
  // Greedy-DisC is deterministic in the neighborhood structure, which both
  // index shapes answer identically.
  EXPECT_EQ(a->solution, b->solution);
}

// ---------------------------------------------------------------------------
// Zoom preconditions (previously UB at the core layer)
// ---------------------------------------------------------------------------

TEST(EngineZoomPreconditionTest, ZoomBeforeDiversifyFails) {
  auto engine = MakeEngine();
  ZoomRequest zoom;
  zoom.radius = 0.05;
  auto response = engine->Zoom(zoom);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineZoomPreconditionTest, ZoomAfterCoveringOnlyRunFails) {
  auto engine = MakeEngine();
  for (Algorithm algorithm : {Algorithm::kGreedyC, Algorithm::kFastC}) {
    DiversifyRequest request;
    request.algorithm = algorithm;
    request.radius = 0.1;
    ASSERT_TRUE(engine->Diversify(request).ok());
    ZoomRequest zoom;
    zoom.radius = 0.05;
    auto response = engine->Zoom(zoom);
    ASSERT_FALSE(response.ok()) << AlgorithmToString(algorithm);
    EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(EngineZoomPreconditionTest, StaleDistancesFailUnderRequireExact) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = 0.1;
  request.pruned = true;
  ASSERT_TRUE(engine->Diversify(request).ok());
  EXPECT_FALSE(engine->Snapshot().distances_exact);

  ZoomRequest zoom;
  zoom.radius = 0.05;
  zoom.distances = DistancePolicy::kRequireExact;
  auto response = engine->Zoom(zoom);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);

  // kAuto recomputes and succeeds on the same session; with a non-greedy
  // pass the recomputed distances then stay exact.
  zoom.distances = DistancePolicy::kAuto;
  zoom.greedy = false;
  auto ok_response = engine->Zoom(zoom);
  ASSERT_TRUE(ok_response.ok()) << ok_response.status().ToString();
  EXPECT_TRUE(engine->Snapshot().distances_exact);
}

TEST(EngineZoomPreconditionTest, UnprunedRunSatisfiesRequireExact) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = 0.1;
  request.pruned = false;
  ASSERT_TRUE(engine->Diversify(request).ok());
  EXPECT_TRUE(engine->Snapshot().distances_exact);

  ZoomRequest zoom;
  zoom.radius = 0.05;
  zoom.distances = DistancePolicy::kRequireExact;
  EXPECT_TRUE(engine->Zoom(zoom).ok());
}

TEST(EngineZoomPreconditionTest, SameRadiusAndBadCenterAreInvalid) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = 0.1;
  ASSERT_TRUE(engine->Diversify(request).ok());

  ZoomRequest same;
  same.radius = 0.1;
  EXPECT_EQ(engine->Zoom(same).status().code(), StatusCode::kInvalidArgument);

  // Also invalid for local zooms: LocalZoom's contract only defines
  // new_radius strictly below or above the old one.
  ZoomRequest local_same = same;
  local_same.center = 0;
  EXPECT_EQ(engine->Zoom(local_same).status().code(),
            StatusCode::kInvalidArgument);

  // A default-constructed ZoomRequest (radius 0) must not silently zoom the
  // whole dataset in.
  ZoomRequest zero;
  EXPECT_EQ(engine->Zoom(zero).status().code(), StatusCode::kInvalidArgument);

  ZoomRequest bad_center;
  bad_center.radius = 0.05;
  bad_center.center = static_cast<ObjectId>(engine->dataset().size());
  EXPECT_EQ(engine->Zoom(bad_center).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineZoomPreconditionTest, ZoomAfterResetFails) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = 0.1;
  ASSERT_TRUE(engine->Diversify(request).ok());
  engine->Reset();
  ZoomRequest zoom;
  zoom.radius = 0.05;
  EXPECT_EQ(engine->Zoom(zoom).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Zooming behavior
// ---------------------------------------------------------------------------

class EngineZoomTest : public ::testing::TestWithParam<bool> {};

TEST_P(EngineZoomTest, ZoomInProducesValidSupersetAfterPrunedAndUnpruned) {
  const bool pruned = GetParam();
  auto engine = MakeEngine(500, 3);
  DiversifyRequest request;
  request.radius = 0.1;
  request.pruned = pruned;
  auto base = engine->Diversify(request);
  ASSERT_TRUE(base.ok());

  ZoomRequest zoom;
  zoom.radius = 0.05;
  zoom.compute_quality = true;
  auto finer = engine->Zoom(zoom);
  ASSERT_TRUE(finer.ok()) << finer.status().ToString();
  EXPECT_TRUE(IsSubset(base->solution, finer->solution));
  EXPECT_TRUE(finer->quality->verification.ok())
      << finer->quality->verification.ToString();
  EXPECT_DOUBLE_EQ(finer->radius, 0.05);
  EXPECT_DOUBLE_EQ(engine->Snapshot().radius, 0.05);
}

TEST_P(EngineZoomTest, ZoomOutProducesValidSolutionAfterPrunedAndUnpruned) {
  const bool pruned = GetParam();
  auto engine = MakeEngine(500, 3);
  DiversifyRequest request;
  request.radius = 0.08;
  request.pruned = pruned;
  ASSERT_TRUE(engine->Diversify(request).ok());

  ZoomRequest zoom;
  zoom.radius = 0.16;
  zoom.compute_quality = true;
  auto coarser = engine->Zoom(zoom);
  ASSERT_TRUE(coarser.ok()) << coarser.status().ToString();
  EXPECT_TRUE(coarser->quality->verification.ok())
      << coarser->quality->verification.ToString();
  // The greedy zoom-out pass leaves only distance upper bounds behind
  // (core/zoom.h), so a follow-up zoom-in must recompute — the engine
  // tracks that and kAuto handles it.
  EXPECT_FALSE(engine->Snapshot().distances_exact);
  ZoomRequest again;
  again.radius = 0.08;
  again.compute_quality = true;
  auto back = engine->Zoom(again);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->quality->verification.ok())
      << back->quality->verification.ToString();
}

INSTANTIATE_TEST_SUITE_P(PrunedAndUnpruned, EngineZoomTest,
                         ::testing::Bool());

TEST(EngineZoomChainTest, GreedyPassStalenessIsTrackedPerVariant) {
  // Arbitrary (non-greedy) zoom-out leaves exact distances: a chained
  // zoom-in may demand them. A greedy zoom-out does not.
  auto engine = MakeEngine(400, 13);
  DiversifyRequest request;
  request.radius = 0.08;
  request.pruned = false;
  ASSERT_TRUE(engine->Diversify(request).ok());

  ZoomRequest arbitrary_out;
  arbitrary_out.radius = 0.16;
  arbitrary_out.zoom_out_variant = ZoomOutVariant::kArbitrary;
  ASSERT_TRUE(engine->Zoom(arbitrary_out).ok());
  EXPECT_TRUE(engine->Snapshot().distances_exact);

  ZoomRequest strict_in;
  strict_in.radius = 0.08;
  strict_in.distances = DistancePolicy::kRequireExact;
  strict_in.greedy = false;
  strict_in.compute_quality = true;
  auto back = engine->Zoom(strict_in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->quality->verification.ok())
      << back->quality->verification.ToString();
  // The non-greedy zoom-in also kept distances exact.
  EXPECT_TRUE(engine->Snapshot().distances_exact);

  ZoomRequest greedy_out;
  greedy_out.radius = 0.16;
  ASSERT_TRUE(engine->Zoom(greedy_out).ok());
  EXPECT_FALSE(engine->Snapshot().distances_exact);
  auto strict_back = engine->Zoom(strict_in);
  ASSERT_FALSE(strict_back.ok());
  EXPECT_EQ(strict_back.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineLocalZoomTest, LocalZoomKeepsCoverageAndBlocksFurtherZooms) {
  auto engine = MakeEngine(500, 5);
  DiversifyRequest request;
  request.radius = 0.1;
  auto base = engine->Diversify(request);
  ASSERT_TRUE(base.ok());

  ZoomRequest local;
  local.radius = 0.04;
  local.center = base->solution.front();
  local.compute_quality = true;
  auto zoomed = engine->Zoom(local);
  ASSERT_TRUE(zoomed.ok()) << zoomed.status().ToString();
  // Coverage holds globally at the larger of the two radii.
  EXPECT_TRUE(zoomed->quality->verification.ok())
      << zoomed->quality->verification.ToString();
  EXPECT_DOUBLE_EQ(zoomed->radius, 0.1);

  EngineSnapshot snapshot = engine->Snapshot();
  EXPECT_TRUE(snapshot.has_solution);
  EXPECT_FALSE(snapshot.zoomable);
  EXPECT_FALSE(snapshot.zoom_blocker.empty());

  ZoomRequest follow_up;
  follow_up.radius = 0.02;
  EXPECT_EQ(engine->Zoom(follow_up).status().code(),
            StatusCode::kFailedPrecondition);

  // A fresh Diversify re-arms zooming.
  ASSERT_TRUE(engine->Diversify(request).ok());
  EXPECT_TRUE(engine->Snapshot().zoomable);
  EXPECT_TRUE(engine->Zoom(follow_up).ok());
}

// ---------------------------------------------------------------------------
// Solution cache
// ---------------------------------------------------------------------------

TEST(EngineCacheTest, RepeatedRequestIsServedFromCacheWithZeroAccesses) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = 0.1;
  auto first = engine->Diversify(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  EXPECT_GT(first->stats.node_accesses, 0u);

  auto second = engine->Diversify(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->stats.node_accesses, 0u);
  EXPECT_EQ(second->stats.range_queries, 0u);
  EXPECT_EQ(second->stats.distance_computations, 0u);
  EXPECT_EQ(second->solution, first->solution);
  EXPECT_EQ(engine->Snapshot().cached_solutions, 1u);
}

TEST(EngineCacheTest, DifferentRequestsMissTheCache) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = 0.1;
  ASSERT_TRUE(engine->Diversify(request).ok());

  DiversifyRequest other_radius = request;
  other_radius.radius = 0.2;
  auto response = engine->Diversify(other_radius);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->from_cache);

  DiversifyRequest other_algorithm = request;
  other_algorithm.algorithm = Algorithm::kBasic;
  response = engine->Diversify(other_algorithm);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->from_cache);

  DiversifyRequest unpruned = request;
  unpruned.pruned = false;
  response = engine->Diversify(unpruned);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->from_cache);
}

TEST(EngineCacheTest, CacheHitRestoresZoomableSessionState) {
  // A -> B -> A(cached) -> zoom must behave exactly like A -> zoom.
  auto reference = MakeEngine(400, 11);
  DiversifyRequest request_a;
  request_a.radius = 0.1;
  ASSERT_TRUE(reference->Diversify(request_a).ok());
  ZoomRequest zoom;
  zoom.radius = 0.05;
  auto expected = reference->Zoom(zoom);
  ASSERT_TRUE(expected.ok());

  auto engine = MakeEngine(400, 11);
  ASSERT_TRUE(engine->Diversify(request_a).ok());
  DiversifyRequest request_b;
  request_b.radius = 0.2;
  ASSERT_TRUE(engine->Diversify(request_b).ok());
  auto cached = engine->Diversify(request_a);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);

  auto zoomed = engine->Zoom(zoom);
  ASSERT_TRUE(zoomed.ok()) << zoomed.status().ToString();
  EXPECT_EQ(zoomed->solution, expected->solution);
}

TEST(EngineCacheTest, AutoRecomputedDistancesAreBankedIntoTheCacheEntry) {
  // Pruned Diversify -> zoom-in (kAuto recomputes §5.2 distances) ->
  // restore the same view -> the entry now carries exact distances, so a
  // strict zoom-in succeeds without another recomputation.
  auto engine = MakeEngine(400, 17);
  DiversifyRequest request;
  request.radius = 0.1;
  ASSERT_TRUE(engine->Diversify(request).ok());
  ZoomRequest zoom;
  zoom.radius = 0.05;
  ASSERT_TRUE(engine->Zoom(zoom).ok());

  auto restored = engine->Diversify(request);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->from_cache);
  EXPECT_TRUE(engine->Snapshot().distances_exact);

  ZoomRequest strict = zoom;
  strict.distances = DistancePolicy::kRequireExact;
  strict.compute_quality = true;
  auto again = engine->Zoom(strict);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->quality->verification.ok())
      << again->quality->verification.ToString();
}

TEST(EngineCacheTest, CacheHitComputesQualityOnDemand) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = 0.1;
  ASSERT_TRUE(engine->Diversify(request).ok());

  request.compute_quality = true;
  auto cached = engine->Diversify(request);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
  ASSERT_TRUE(cached->quality.has_value());
  EXPECT_TRUE(cached->quality->verification.ok());
}

TEST(EngineCacheTest, ResetDropsTheCache) {
  auto engine = MakeEngine();
  DiversifyRequest request;
  request.radius = 0.1;
  ASSERT_TRUE(engine->Diversify(request).ok());
  EXPECT_EQ(engine->Snapshot().cached_solutions, 1u);
  engine->Reset();
  EXPECT_EQ(engine->Snapshot().cached_solutions, 0u);
  auto response = engine->Diversify(request);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->from_cache);
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

TEST(EngineSnapshotTest, TracksSessionLifecycle) {
  auto engine = MakeEngine();
  EngineSnapshot fresh = engine->Snapshot();
  EXPECT_FALSE(fresh.has_solution);
  EXPECT_FALSE(fresh.zoomable);
  EXPECT_GT(fresh.tree_nodes, 0u);
  EXPECT_GT(fresh.tree_height, 0u);

  DiversifyRequest request;
  request.radius = 0.1;
  auto response = engine->Diversify(request);
  ASSERT_TRUE(response.ok());
  EngineSnapshot after = engine->Snapshot();
  EXPECT_TRUE(after.has_solution);
  EXPECT_TRUE(after.zoomable);
  EXPECT_EQ(after.algorithm, Algorithm::kGreedy);
  EXPECT_DOUBLE_EQ(after.radius, 0.1);
  EXPECT_EQ(after.solution_size, response->size());
  EXPECT_GT(after.lifetime_stats.node_accesses, 0u);
  EXPECT_EQ(after.cached_count_radii, 1u);

  engine->Reset();
  EngineSnapshot reset = engine->Snapshot();
  EXPECT_FALSE(reset.has_solution);
  // Neighborhood counts are color-independent and survive Reset.
  EXPECT_EQ(reset.cached_count_radii, 1u);
}

// ---------------------------------------------------------------------------
// §8 extensions
// ---------------------------------------------------------------------------

TEST(EngineWeightedTest, ProducesVerifiedSolutionAndKeepsSessionUntouched) {
  auto engine = MakeEngine();
  WeightedRequest request;
  request.radius = 0.1;
  request.weights.assign(engine->dataset().size(), 1.0);
  request.compute_quality = true;
  auto response = engine->WeightedDiversify(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_GT(response->size(), 0u);
  EXPECT_TRUE(response->quality->verification.ok())
      << response->quality->verification.ToString();
  // Stateless: no session, so zooming still requires a Diversify.
  EXPECT_FALSE(engine->Snapshot().has_solution);
}

TEST(EngineWeightedTest, RejectsMismatchedWeights) {
  auto engine = MakeEngine();
  WeightedRequest request;
  request.radius = 0.1;
  request.weights = {1.0, 2.0};
  EXPECT_EQ(engine->WeightedDiversify(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineMultiRadiusTest, CoversEveryObjectWithinItsRadius) {
  auto engine = MakeEngine();
  const size_t n = engine->dataset().size();
  std::vector<double> relevance(n, 0.5);
  MultiRadiusRequest request;
  request.r_min = 0.05;
  request.r_max = 0.2;
  request.relevance = relevance;
  request.compute_quality = true;
  auto response = engine->MultiRadiusDiversify(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_GT(response->size(), 0u);
  EXPECT_TRUE(response->quality->verification.ok())
      << response->quality->verification.ToString();
  EXPECT_DOUBLE_EQ(response->radius, 0.2);
}

TEST(EngineMultiRadiusTest, RejectsBadRadiusRange) {
  auto engine = MakeEngine();
  MultiRadiusRequest request;
  request.r_min = 0.2;
  request.r_max = 0.1;
  request.relevance.assign(engine->dataset().size(), 0.5);
  EXPECT_EQ(engine->MultiRadiusDiversify(request).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Threaded engines: EngineConfig::threads changes wall time, nothing else.
// ---------------------------------------------------------------------------

std::unique_ptr<DiscEngine> MakeThreadedEngine(DatasetSpec spec,
                                               MetricKind metric,
                                               size_t threads) {
  EngineConfig config;
  config.dataset = std::move(spec);
  config.metric = metric;
  config.threads = threads;
  auto engine = DiscEngine::Create(std::move(config));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

// Every algorithm on every dataset shape: a threads=4 engine must produce
// byte-identical responses to a threads=1 engine — solution membership AND
// order, plus the reported node-access / range-query / distance totals.
// This suite runs under TSan in CI, which also proves the fan-out is
// race-free.
TEST(EngineThreadedTest, AllAlgorithmsByteIdenticalAcrossThreadCounts) {
  const struct {
    DatasetSpec spec;
    MetricKind metric;
    double radius;
  } kWorkloads[] = {
      {DatasetSpec::Clustered(1500, 2, 7), MetricKind::kEuclidean, 0.05},
      {DatasetSpec::Uniform(800, 5, 7), MetricKind::kManhattan, 0.6},
      {DatasetSpec::Cameras(), MetricKind::kHamming, 3.0},
  };
  const Algorithm kAlgorithms[] = {
      Algorithm::kBasic,     Algorithm::kGreedy,  Algorithm::kGreedyWhite,
      Algorithm::kLazyGrey,  Algorithm::kLazyWhite,
      Algorithm::kGreedyC,   Algorithm::kFastC,
  };

  for (const auto& workload : kWorkloads) {
    auto serial = MakeThreadedEngine(workload.spec, workload.metric, 1);
    auto threaded = MakeThreadedEngine(workload.spec, workload.metric, 4);
    EXPECT_EQ(serial->Snapshot().threads, 1u);
    EXPECT_EQ(threaded->Snapshot().threads, 4u);

    for (Algorithm algorithm : kAlgorithms) {
      DiversifyRequest request;
      request.algorithm = algorithm;
      request.radius = workload.radius;
      auto serial_response = serial->Diversify(request);
      auto threaded_response = threaded->Diversify(request);
      ASSERT_TRUE(serial_response.ok())
          << serial_response.status().ToString();
      ASSERT_TRUE(threaded_response.ok())
          << threaded_response.status().ToString();
      // Membership and order.
      ASSERT_EQ(serial_response->solution, threaded_response->solution)
          << AlgorithmToString(algorithm);
      // Reported work (per-thread counters summed back must be exact).
      EXPECT_EQ(serial_response->stats.node_accesses,
                threaded_response->stats.node_accesses)
          << AlgorithmToString(algorithm);
      EXPECT_EQ(serial_response->stats.range_queries,
                threaded_response->stats.range_queries)
          << AlgorithmToString(algorithm);
      EXPECT_EQ(serial_response->stats.distance_computations,
                threaded_response->stats.distance_computations)
          << AlgorithmToString(algorithm);
    }
    // Lifetime totals across the whole request sequence agree too.
    const AccessStats serial_total = serial->Snapshot().lifetime_stats;
    const AccessStats threaded_total = threaded->Snapshot().lifetime_stats;
    EXPECT_EQ(serial_total.node_accesses, threaded_total.node_accesses);
    EXPECT_EQ(serial_total.range_queries, threaded_total.range_queries);
    EXPECT_EQ(serial_total.distance_computations,
              threaded_total.distance_computations);
  }
}

TEST(EngineThreadedTest, ZoomAfterThreadedBuildMatchesSerial) {
  auto serial =
      MakeThreadedEngine(DatasetSpec::Clustered(1000, 2, 9),
                         MetricKind::kEuclidean, 1);
  auto threaded =
      MakeThreadedEngine(DatasetSpec::Clustered(1000, 2, 9),
                         MetricKind::kEuclidean, 4);
  DiversifyRequest request;
  request.radius = 0.08;
  ASSERT_TRUE(serial->Diversify(request).ok());
  ASSERT_TRUE(threaded->Diversify(request).ok());

  ZoomRequest zoom;
  zoom.radius = 0.04;
  auto serial_zoom = serial->Zoom(zoom);
  auto threaded_zoom = threaded->Zoom(zoom);
  ASSERT_TRUE(serial_zoom.ok()) << serial_zoom.status().ToString();
  ASSERT_TRUE(threaded_zoom.ok()) << threaded_zoom.status().ToString();
  EXPECT_EQ(serial_zoom->solution, threaded_zoom->solution);
  EXPECT_EQ(serial_zoom->stats.node_accesses,
            threaded_zoom->stats.node_accesses);
}

TEST(EngineThreadedTest, RepeatedDiversifyAfterThreadedBuildIsCacheHit) {
  // The counts pass fans out across the pool; the cache must still absorb
  // the repeat completely — zero node accesses — and report the hit.
  auto engine = MakeThreadedEngine(DatasetSpec::Clustered(1200, 2, 13),
                                   MetricKind::kEuclidean, 4);
  EXPECT_EQ(engine->Snapshot().cache_hits, 0u);

  DiversifyRequest request;
  request.radius = 0.06;
  auto first = engine->Diversify(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->from_cache);
  EXPECT_GT(first->stats.node_accesses, 0u);

  auto second = engine->Diversify(request);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->stats.node_accesses, 0u);
  EXPECT_EQ(second->stats.range_queries, 0u);
  EXPECT_EQ(second->solution, first->solution);
  EXPECT_EQ(engine->Snapshot().cache_hits, 1u);

  // Still a zero-access hit for the next session leasing this engine.
  engine->NewSession();
  auto third = engine->Diversify(request);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->from_cache);
  EXPECT_EQ(third->stats.node_accesses, 0u);
  EXPECT_EQ(engine->Snapshot().cache_hits, 2u);
}

}  // namespace
}  // namespace disc
