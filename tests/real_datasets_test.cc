#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "data/cameras.h"
#include "data/cities.h"
#include "metric/metric.h"

namespace disc {
namespace {

TEST(CitiesTest, CardinalityMatchesPaper) {
  Dataset d = MakeCitiesDataset();
  EXPECT_EQ(d.size(), kCitiesCardinality);
  EXPECT_EQ(d.dim(), 2u);
}

TEST(CitiesTest, NormalizedToUnitBox) {
  Dataset d = MakeCitiesDataset();
  double min_x = 1e9, max_x = -1e9, min_y = 1e9, max_y = -1e9;
  for (ObjectId i = 0; i < d.size(); ++i) {
    min_x = std::min(min_x, d.point(i)[0]);
    max_x = std::max(max_x, d.point(i)[0]);
    min_y = std::min(min_y, d.point(i)[1]);
    max_y = std::max(max_y, d.point(i)[1]);
  }
  EXPECT_DOUBLE_EQ(min_x, 0.0);
  EXPECT_DOUBLE_EQ(max_x, 1.0);
  EXPECT_DOUBLE_EQ(min_y, 0.0);
  EXPECT_DOUBLE_EQ(max_y, 1.0);
}

TEST(CitiesTest, Deterministic) {
  Dataset a = MakeCitiesDataset();
  Dataset b = MakeCitiesDataset();
  for (ObjectId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.point(i), b.point(i));
  }
}

TEST(CitiesTest, NonUniform) {
  // The settlement distribution must be clustered: the densest 10% cell of a
  // 10x10 grid holds far more than 1% of the points.
  Dataset d = MakeCitiesDataset();
  std::vector<size_t> cell_count(100, 0);
  for (ObjectId i = 0; i < d.size(); ++i) {
    size_t cx = std::min<size_t>(9, static_cast<size_t>(d.point(i)[0] * 10));
    size_t cy = std::min<size_t>(9, static_cast<size_t>(d.point(i)[1] * 10));
    ++cell_count[cy * 10 + cx];
  }
  size_t densest = *std::max_element(cell_count.begin(), cell_count.end());
  EXPECT_GT(densest, d.size() / 20);  // > 5% of all points in one cell
}

class CitiesCsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "disc_cities_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(CitiesCsvTest, LoadsAndNormalizes) {
  std::string path = (dir_ / "cities.csv").string();
  std::ofstream out(path);
  out << "100,200\n300,400\n200,300\n";
  out.close();
  auto loaded = LoadCitiesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ(loaded->point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(loaded->point(1)[0], 1.0);
}

TEST_F(CitiesCsvTest, RejectsWrongColumnCount) {
  std::string path = (dir_ / "bad.csv").string();
  std::ofstream out(path);
  out << "1,2,3\n4,5,6\n";
  out.close();
  auto loaded = LoadCitiesCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CamerasTest, CardinalityMatchesPaper) {
  Dataset d = MakeCamerasDataset();
  EXPECT_EQ(d.size(), kCamerasCardinality);
  EXPECT_EQ(d.dim(), kCamerasAttributes);
}

TEST(CamerasTest, Deterministic) {
  Dataset a = MakeCamerasDataset();
  Dataset b = MakeCamerasDataset();
  for (ObjectId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.point(i), b.point(i));
  }
}

TEST(CamerasTest, AttributeCodesAreIntegral) {
  Dataset d = MakeCamerasDataset();
  for (ObjectId i = 0; i < d.size(); ++i) {
    for (size_t a = 0; a < d.dim(); ++a) {
      double v = d.point(i)[a];
      EXPECT_DOUBLE_EQ(v, std::floor(v));
      EXPECT_GE(v, 0.0);
    }
  }
}

TEST(CamerasTest, AttributeValuesDecode) {
  Dataset d = MakeCamerasDataset();
  for (ObjectId i = 0; i < d.size(); ++i) {
    for (size_t a = 0; a < kCamerasAttributes; ++a) {
      EXPECT_FALSE(CameraAttributeValue(d, i, a).empty());
    }
  }
}

TEST(CamerasTest, HasLabelsAndAttributeNames) {
  Dataset d = MakeCamerasDataset();
  EXPECT_TRUE(d.has_labels());
  EXPECT_FALSE(d.label(0).empty());
  ASSERT_EQ(d.attribute_names().size(), kCamerasAttributes);
  EXPECT_EQ(d.attribute_names()[0], "brand");
}

TEST(CamerasTest, HammingDistancesSpanUsefulRange) {
  // The paper sweeps radii 1..6 over 7 attributes; the catalog must contain
  // both near-duplicates (small distances) and fully distinct items.
  Dataset d = MakeCamerasDataset();
  HammingMetric metric;
  std::set<int> observed;
  for (ObjectId i = 0; i < d.size(); ++i) {
    for (ObjectId j = i + 1; j < d.size(); ++j) {
      observed.insert(
          static_cast<int>(metric.Distance(d.point(i), d.point(j))));
    }
  }
  EXPECT_TRUE(observed.count(1));
  EXPECT_TRUE(observed.count(7));
  // Multiple intermediate values must occur.
  EXPECT_GE(observed.size(), 6u);
}

TEST(CamerasTest, BrandsFollowSkewedPopularity) {
  Dataset d = MakeCamerasDataset();
  std::vector<size_t> brand_count(32, 0);
  for (ObjectId i = 0; i < d.size(); ++i) {
    ++brand_count[static_cast<size_t>(d.point(i)[0])];
  }
  size_t top = *std::max_element(brand_count.begin(), brand_count.end());
  // A popularity power law: the most common brand should own a significant
  // share of the catalog.
  EXPECT_GT(top, d.size() / 10);
}

}  // namespace
}  // namespace disc
